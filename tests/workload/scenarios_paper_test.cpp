#include "workload/scenarios_paper.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

TEST(PaperScenarios, TokenAllocationMatchesSectionIvD) {
  const auto spec = scenario_token_allocation(BwControl::kAdaptive);
  ASSERT_EQ(spec.jobs.size(), 4u);
  // Priorities 10/10/30/50 % from node counts 1/1/3/5.
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(1)), 0.1);
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(2)), 0.1);
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(3)), 0.3);
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(4)), 0.5);
  for (const auto& job : spec.jobs) {
    EXPECT_EQ(job.processes.size(), 16u) << job.name;
    for (const auto& process : job.processes) {
      EXPECT_EQ(process.kind, ProcessPattern::Kind::kContinuous);
      EXPECT_EQ(process.total_rpcs, 1024u);  // 1 GiB at 1 MiB RPCs
    }
  }
  EXPECT_TRUE(spec.stop_when_idle);
}

TEST(PaperScenarios, RedistributionMatchesSectionIvE) {
  const auto spec = scenario_token_redistribution(BwControl::kAdaptive);
  ASSERT_EQ(spec.jobs.size(), 4u);
  // Jobs 1-3 high priority (30%), job 4 low (10%).
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(1)), 0.3);
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(4)), 0.1);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(spec.jobs[j].processes.size(), 2u);
    for (const auto& process : spec.jobs[j].processes)
      EXPECT_EQ(process.kind, ProcessPattern::Kind::kPeriodicBurst);
  }
  EXPECT_EQ(spec.jobs[3].processes.size(), 16u);
  for (const auto& process : spec.jobs[3].processes)
    EXPECT_EQ(process.kind, ProcessPattern::Kind::kContinuous);
  // Burst shapes differ across the three bursty jobs (interleaving).
  EXPECT_NE(spec.jobs[0].processes[0].burst_rpcs,
            spec.jobs[1].processes[0].burst_rpcs);
  EXPECT_NE(spec.jobs[1].processes[0].period.ns(),
            spec.jobs[2].processes[0].period.ns());
}

TEST(PaperScenarios, RecompensationMatchesSectionIvF) {
  const auto spec = scenario_token_recompensation(BwControl::kAdaptive);
  ASSERT_EQ(spec.jobs.size(), 4u);
  // Equal 25% priority everywhere.
  for (std::uint32_t id = 1; id <= 4; ++id)
    EXPECT_DOUBLE_EQ(spec.static_priority(JobId(id)), 0.25);
  // Jobs 1-3: one bursty process + one delayed continuous process, with
  // delays 20/50/80 s.
  const double delays[] = {20.0, 50.0, 80.0};
  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_EQ(spec.jobs[j].processes.size(), 2u);
    EXPECT_EQ(spec.jobs[j].processes[0].kind,
              ProcessPattern::Kind::kPeriodicBurst);
    EXPECT_EQ(spec.jobs[j].processes[1].kind,
              ProcessPattern::Kind::kContinuous);
    EXPECT_DOUBLE_EQ(spec.jobs[j].processes[1].start_delay.to_seconds(),
                     delays[j]);
  }
  // Job 3 has the smallest burst (the paper's biggest lender).
  EXPECT_LT(spec.jobs[2].processes[0].burst_rpcs,
            spec.jobs[0].processes[0].burst_rpcs);
  EXPECT_LT(spec.jobs[2].processes[0].burst_rpcs,
            spec.jobs[1].processes[0].burst_rpcs);
}

TEST(PaperScenarios, ControlKnobPropagates) {
  EXPECT_EQ(scenario_token_allocation(BwControl::kNone).control,
            BwControl::kNone);
  EXPECT_EQ(scenario_token_redistribution(BwControl::kStatic).control,
            BwControl::kStatic);
}

TEST(PaperScenarios, ObservationPeriodIsHundredMs) {
  // §IV-H selects 100 ms for all experiments.
  for (const auto& spec :
       {scenario_token_allocation(BwControl::kAdaptive),
        scenario_token_redistribution(BwControl::kAdaptive),
        scenario_token_recompensation(BwControl::kAdaptive)}) {
    EXPECT_EQ(spec.observation_period.ns(),
              SimDuration::millis(100).ns());
  }
}

TEST(PaperScenarios, TotalNodesSumsJobAllocations) {
  const auto spec = scenario_token_allocation(BwControl::kAdaptive);
  EXPECT_EQ(spec.total_nodes(), 10u);
  EXPECT_DOUBLE_EQ(spec.static_priority(JobId(99)), 0.0);  // unknown job
}

}  // namespace
}  // namespace adaptbf
