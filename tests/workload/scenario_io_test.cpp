#include "workload/scenario_io.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

constexpr const char* kValid = R"ini(
[scenario]
name = demo
control = adaptive
duration_s = 30
observation_ms = 50
stop_when_idle = true

[server]
osts = 2
threads = 8
seq_bandwidth_mibps = 800
rand_bandwidth_mibps = 200
overhead_us = 25

[client]
rpc_size_kib = 512
max_inflight = 4

[job.1]
name = small
nodes = 1
process = continuous total=1024 count=4

[job.2]
name = bursty
nodes = 3
process = burst total=640 burst=64 period_s=5 delay_s=2 count=2 random=true
)ini";

TEST(ScenarioIo, LoadsValidFile) {
  const auto result = load_scenario(kValid);
  ASSERT_TRUE(result.ok()) << result.error;
  const ScenarioSpec& spec = *result.spec;
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.control, BwControl::kAdaptive);
  EXPECT_DOUBLE_EQ(spec.duration.to_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(spec.observation_period.to_seconds(), 0.05);
  EXPECT_TRUE(spec.stop_when_idle);
  EXPECT_EQ(spec.num_osts, 2u);
  EXPECT_EQ(spec.num_threads, 8u);
  EXPECT_DOUBLE_EQ(spec.disk.seq_bandwidth, 800.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(spec.disk.per_rpc_overhead.to_seconds(), 25e-6);
  EXPECT_EQ(spec.rpc_size_bytes, 512u * 1024);
  EXPECT_EQ(spec.max_inflight_per_process, 4u);
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].name, "small");
  EXPECT_EQ(spec.jobs[0].nodes, 1u);
  EXPECT_EQ(spec.jobs[0].processes.size(), 4u);
  EXPECT_EQ(spec.jobs[0].processes[0].kind,
            ProcessPattern::Kind::kContinuous);
  EXPECT_EQ(spec.jobs[1].processes.size(), 2u);
  const auto& burst = spec.jobs[1].processes[0];
  EXPECT_EQ(burst.kind, ProcessPattern::Kind::kPeriodicBurst);
  EXPECT_EQ(burst.total_rpcs, 640u);
  EXPECT_EQ(burst.burst_rpcs, 64u);
  EXPECT_DOUBLE_EQ(burst.period.to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(burst.start_delay.to_seconds(), 2.0);
  EXPECT_EQ(burst.locality, Locality::kRandom);
}

TEST(ScenarioIo, DefaultsApplyWhenKeysOmitted) {
  const auto result = load_scenario(
      "[job.1]\nprocess = continuous total=10\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec->control, BwControl::kAdaptive);
  EXPECT_EQ(result.spec->num_osts, 1u);
  EXPECT_EQ(result.spec->jobs[0].name, "Job1");  // derived from section id
  EXPECT_EQ(result.spec->jobs[0].nodes, 1u);
}

TEST(ScenarioIo, RejectsUnknownSection) {
  const auto result =
      load_scenario("[serverz]\nthreads = 2\n[job.1]\nprocess = continuous "
                    "total=1\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("serverz"), std::string::npos);
}

TEST(ScenarioIo, RejectsUnknownKeys) {
  EXPECT_FALSE(load_scenario("[scenario]\nspeed = 9\n[job.1]\nprocess = "
                             "continuous total=1\n")
                   .ok());
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = continuous total=1 "
                             "warp=9\n")
                   .ok());
}

TEST(ScenarioIo, RejectsBadValues) {
  EXPECT_FALSE(
      load_scenario("[scenario]\ncontrol = chaotic\n[job.1]\nprocess = "
                    "continuous total=1\n")
          .ok());
  EXPECT_FALSE(load_scenario("[scenario]\nduration_s = -3\n[job.1]\n"
                             "process = continuous total=1\n")
                   .ok());
  EXPECT_FALSE(load_scenario("[server]\nosts = 0\n[job.1]\nprocess = "
                             "continuous total=1\n")
                   .ok());
  EXPECT_FALSE(load_scenario("[job.0]\nprocess = continuous total=1\n").ok());
  EXPECT_FALSE(load_scenario("[job.abc]\nprocess = continuous total=1\n").ok());
}

TEST(ScenarioIo, RejectsBadProcessLines) {
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = burst total=10\n").ok());
  EXPECT_FALSE(
      load_scenario("[job.1]\nprocess = burst total=10 burst=0 period_s=1\n")
          .ok());
  EXPECT_FALSE(
      load_scenario("[job.1]\nprocess = continuous total=10 burst=5\n").ok());
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = teleport total=10\n").ok());
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = continuous total=10 "
                             "count=0\n")
                   .ok());
  EXPECT_FALSE(load_scenario("[job.1]\nprocess =\n").ok());
}

TEST(ScenarioIo, RejectsJoblessScenario) {
  EXPECT_FALSE(load_scenario("[scenario]\nname = empty\n").ok());
  EXPECT_FALSE(load_scenario("[job.1]\nname = noproc\n").ok());
}

TEST(ScenarioIo, RoundTripsThroughIni) {
  const auto first = load_scenario(kValid);
  ASSERT_TRUE(first.ok());
  const std::string rendered = scenario_to_ini(*first.spec);
  const auto second = load_scenario(rendered);
  ASSERT_TRUE(second.ok()) << second.error << "\n" << rendered;
  const ScenarioSpec& a = *first.spec;
  const ScenarioSpec& b = *second.spec;
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.control, b.control);
  EXPECT_EQ(a.duration.ns(), b.duration.ns());
  EXPECT_EQ(a.observation_period.ns(), b.observation_period.ns());
  EXPECT_EQ(a.num_osts, b.num_osts);
  EXPECT_EQ(a.rpc_size_bytes, b.rpc_size_bytes);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].id, b.jobs[j].id);
    EXPECT_EQ(a.jobs[j].nodes, b.jobs[j].nodes);
    ASSERT_EQ(a.jobs[j].processes.size(), b.jobs[j].processes.size());
    for (std::size_t p = 0; p < a.jobs[j].processes.size(); ++p) {
      EXPECT_EQ(a.jobs[j].processes[p].kind, b.jobs[j].processes[p].kind);
      EXPECT_EQ(a.jobs[j].processes[p].total_rpcs,
                b.jobs[j].processes[p].total_rpcs);
      EXPECT_EQ(a.jobs[j].processes[p].period.ns(),
                b.jobs[j].processes[p].period.ns());
      EXPECT_EQ(a.jobs[j].processes[p].locality,
                b.jobs[j].processes[p].locality);
    }
  }
}

TEST(ScenarioIo, PoissonProcessParses) {
  const auto result = load_scenario(
      "[job.1]\nprocess = poisson total=500 rate=25.5 seed=9 delay_s=2\n");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& process = result.spec->jobs[0].processes[0];
  EXPECT_EQ(process.kind, ProcessPattern::Kind::kPoisson);
  EXPECT_EQ(process.total_rpcs, 500u);
  EXPECT_DOUBLE_EQ(process.poisson_rate, 25.5);
  EXPECT_EQ(process.seed, 9u);
  EXPECT_DOUBLE_EQ(process.start_delay.to_seconds(), 2.0);
}

TEST(ScenarioIo, PoissonRejectsBadShapes) {
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = poisson total=10\n").ok());
  EXPECT_FALSE(
      load_scenario("[job.1]\nprocess = poisson total=10 rate=0\n").ok());
  EXPECT_FALSE(load_scenario("[job.1]\nprocess = poisson total=10 rate=5 "
                             "burst=4\n")
                   .ok());
}

TEST(ScenarioIo, PoissonRoundTrips) {
  ScenarioSpec spec;
  JobSpec job;
  job.id = JobId(1);
  job.processes.push_back(poisson_pattern(500, 25.5, 9));
  spec.jobs.push_back(job);
  const auto reloaded = load_scenario(scenario_to_ini(spec));
  ASSERT_TRUE(reloaded.ok()) << reloaded.error;
  const auto& process = reloaded.spec->jobs[0].processes[0];
  EXPECT_EQ(process.kind, ProcessPattern::Kind::kPoisson);
  EXPECT_DOUBLE_EQ(process.poisson_rate, 25.5);
  EXPECT_EQ(process.seed, 9u);
}

TEST(ScenarioIo, GiftControlParses) {
  const auto result = load_scenario(
      "[scenario]\ncontrol = gift\n[job.1]\nprocess = continuous "
      "total=1\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.spec->control, BwControl::kGift);
}

TEST(ScenarioIo, MissingFileReportsError) {
  const auto result = load_scenario_file("/nonexistent/path.ini");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace adaptbf
