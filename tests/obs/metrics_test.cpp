// Telemetry core tests: exactness under concurrency, histogram bucket
// semantics, merge algebra, and the golden renders the stats endpoint
// (sweep/dispatch.h) serves.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/random.h"

namespace adaptbf {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counter, CountsExactlyUnderConcurrency) {
  MetricRegistry registry;
  Counter& counter = registry.counter("adaptbf_test_ops_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, IncByDelta) {
  Counter counter;
  counter.inc(41);
  counter.inc();
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  gauge.add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
}

// --------------------------------------------------------------- histogram

/// Reference bucketing: first bound with v <= bound, else +Inf.
std::size_t reference_bucket(std::span<const double> bounds, double v) {
  for (std::size_t i = 0; i < bounds.size(); ++i)
    if (v <= bounds[i]) return i;
  return bounds.size();
}

TEST(Histogram, BucketPropertyAgainstReference) {
  const double bounds[] = {0.1, 1.0, 5.0, 25.0};
  Histogram hist{std::span<const double>(bounds)};
  std::vector<std::uint64_t> expected(std::size(bounds) + 1, 0);
  Xoshiro256 rng(0xfeedbeefu);
  double sum = 0.0;
  constexpr int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.next_double() * 50.0;  // Spills into +Inf sometimes.
    hist.observe(v);
    ++expected[reference_bucket(bounds, v)];
    sum += v;
  }
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_NEAR(hist.sum(), sum, 1e-6);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(hist.bucket_count(i), expected[i]) << "bucket " << i;
}

TEST(Histogram, ValueOnBoundLandsInThatBucket) {
  // Prometheus buckets are `le`: a value EQUAL to an upper bound belongs
  // in that bound's bucket, not the next one.
  const double bounds[] = {1.0, 2.0};
  Histogram hist{std::span<const double>(bounds)};
  hist.observe(1.0);
  hist.observe(2.0);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 0u);
}

TEST(Histogram, DefaultRuntimeBoundsStrictlyIncreasing) {
  const auto bounds = trial_runtime_bounds_s();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
    EXPECT_LT(bounds[i], bounds[i + 1]);
}

MetricSample histogram_sample(std::span<const double> bounds,
                              std::span<const double> values) {
  Histogram hist{bounds};
  for (const double v : values) hist.observe(v);
  MetricSample sample;
  sample.kind = MetricSample::Kind::kHistogram;
  sample.bounds.assign(bounds.begin(), bounds.end());
  sample.buckets.resize(bounds.size() + 1);
  for (std::size_t i = 0; i < sample.buckets.size(); ++i)
    sample.buckets[i] = hist.bucket_count(i);
  sample.count = hist.count();
  sample.sum = hist.sum();
  return sample;
}

TEST(HistogramQuantile, MonotoneAndWithinBounds) {
  const double bounds[] = {0.5, 1.0, 2.0, 4.0};
  std::vector<double> values;
  Xoshiro256 rng(7u);
  for (int i = 0; i < 1'000; ++i) values.push_back(rng.next_double() * 3.0);
  const MetricSample sample = histogram_sample(bounds, values);
  double last = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = histogram_quantile(sample, q);
    EXPECT_GE(value, last) << "q=" << q;  // Monotone in q.
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, bounds[3]);
    last = value;
  }
}

TEST(HistogramQuantile, InfBucketClampsToHighestFiniteBound) {
  const double bounds[] = {1.0, 2.0};
  const double values[] = {10.0, 20.0, 30.0};  // All in +Inf.
  const MetricSample sample = histogram_sample(bounds, values);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.99), 2.0);
}

TEST(HistogramQuantile, EmptyAndInvalidAreNaN) {
  const double bounds[] = {1.0};
  const MetricSample empty = histogram_sample(bounds, {});
  EXPECT_TRUE(std::isnan(histogram_quantile(empty, 0.5)));
  const double values[] = {0.5};
  const MetricSample sample = histogram_sample(bounds, values);
  EXPECT_TRUE(std::isnan(histogram_quantile(sample, 1.5)));
  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  EXPECT_TRUE(std::isnan(histogram_quantile(counter, 0.5)));
}

TEST(HistogramQuantile, QZeroSkipsEmptyLeadingBuckets) {
  // q = 0 must land at the lower edge of the first bucket holding mass —
  // not at the upper bound of a leading bucket that holds nothing.
  const double bounds[] = {1.0, 2.0, 4.0};
  const double values[] = {3.0, 3.5};  // All mass in (2, 4].
  const MetricSample sample = histogram_sample(bounds, values);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.0), 2.0);
}

TEST(HistogramQuantile, SingleBucketMassInterpolatesAcrossThatBucket) {
  const double bounds[] = {10.0, 20.0, 40.0};
  const double values[] = {25.0, 30.0, 35.0, 39.0};  // All in (20, 40].
  const MetricSample sample = histogram_sample(bounds, values);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.0), 20.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.5), 30.0);  // 20 + 20 * 2/4.
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 1.0), 40.0);
  double last = 20.0;
  for (double q = 0.0; q <= 1.0; q += 0.125) {
    const double value = histogram_quantile(sample, q);
    EXPECT_GE(value, last);
    EXPECT_GE(value, 20.0);
    EXPECT_LE(value, 40.0);
    last = value;
  }
}

TEST(HistogramQuantile, ExtremeQuantilesHitTheOccupiedEdges) {
  const double bounds[] = {0.5, 1.0, 2.0, 4.0};
  const double values[] = {0.25, 0.75, 1.5, 3.0};
  const MetricSample sample = histogram_sample(bounds, values);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(sample, 1.0), 4.0);
}

TEST(HistogramQuantile, EstimateSharesABucketWithTheSortedSampleOracle) {
  // For any q, the interpolated estimate and the true sorted-sample
  // quantile must land in the SAME bucket: the estimate's bucket is the
  // first with cumulative >= q*n, and since cumulative counts are
  // integers that bucket also holds the ceil(q*n)-th sample.
  const double bounds[] = {0.5, 1.0, 2.0, 4.0};
  Xoshiro256 rng(0x5eedu);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> values;
    const int n = 1 + static_cast<int>(rng.next_double() * 40.0);
    for (int i = 0; i < n; ++i)
      values.push_back(rng.next_double() * 4.0);  // Stay inside the bounds.
    const MetricSample sample = histogram_sample(bounds, values);
    std::sort(values.begin(), values.end());
    for (double q = 0.05; q <= 1.0; q += 0.05) {
      const double rank = q * static_cast<double>(n);
      const double oracle =
          values[std::min<std::size_t>(
              static_cast<std::size_t>(std::ceil(rank)) - 1, values.size() - 1)];
      const double estimate = histogram_quantile(sample, q);
      const std::size_t bucket = reference_bucket(bounds, oracle);
      const double lo = bucket == 0 ? 0.0 : bounds[bucket - 1];
      const double hi = bounds[bucket];
      EXPECT_GE(estimate, lo) << "n=" << n << " q=" << q;
      EXPECT_LE(estimate, hi) << "n=" << n << " q=" << q;
    }
  }
}

// -------------------------------------------------------------------- ewma

TEST(Ewma, SeedsOnFirstObservation) {
  Ewma ewma(0.5);
  EXPECT_EQ(ewma.value(), 0.0);  // Unseeded.
  ewma.observe(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);  // Seeded, not decayed up from 0.
  ewma.observe(20.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
}

// ------------------------------------------------------------------- merge

MetricsSnapshot random_snapshot(std::uint64_t seed) {
  MetricRegistry registry;
  Xoshiro256 rng(seed);
  registry.counter("adaptbf_test_a_total")
      .inc(static_cast<std::uint64_t>(rng.next_double() * 1000));
  registry.counter("adaptbf_test_b_total", "worker=\"1\"")
      .inc(static_cast<std::uint64_t>(rng.next_double() * 1000));
  Histogram& hist = registry.histogram("adaptbf_test_runtime_seconds",
                                       trial_runtime_bounds_s());
  const int n = 1 + static_cast<int>(rng.next_double() * 50);
  for (int i = 0; i < n; ++i) hist.observe(rng.next_double() * 100.0);
  return registry.snapshot();
}

bool counters_and_histograms_equal(const MetricsSnapshot& a,
                                   const MetricsSnapshot& b) {
  if (a.samples.size() != b.samples.size()) return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const MetricSample& x = a.samples[i];
    const MetricSample& y = b.samples[i];
    if (x.name != y.name || x.labels != y.labels || x.kind != y.kind)
      return false;
    switch (x.kind) {
      case MetricSample::Kind::kCounter:
        if (x.counter != y.counter) return false;
        break;
      case MetricSample::Kind::kGauge:
        break;  // Last-write-wins: order-dependent by design.
      case MetricSample::Kind::kHistogram:
        if (x.buckets != y.buckets || x.count != y.count ||
            std::abs(x.sum - y.sum) > 1e-9 * std::abs(x.sum))
          return false;
        break;
    }
  }
  return true;
}

TEST(MetricsMerge, CountersAndBucketsAdd) {
  MetricsSnapshot a = random_snapshot(1);
  const MetricsSnapshot b = random_snapshot(2);
  const std::uint64_t a_total =
      a.find("adaptbf_test_a_total")->counter;
  const std::uint64_t b_total =
      b.find("adaptbf_test_a_total")->counter;
  a.merge(b);
  EXPECT_EQ(a.find("adaptbf_test_a_total")->counter, a_total + b_total);
}

TEST(MetricsMerge, AssociativeAndCommutativeOverCountersAndHistograms) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const MetricsSnapshot a = random_snapshot(seed * 3 + 1);
    const MetricsSnapshot b = random_snapshot(seed * 3 + 2);
    const MetricsSnapshot c = random_snapshot(seed * 3 + 3);

    MetricsSnapshot ab_c = a;  // (a+b)+c
    ab_c.merge(b);
    ab_c.merge(c);
    MetricsSnapshot a_bc = a;  // a+(b+c)
    MetricsSnapshot bc = b;
    bc.merge(c);
    a_bc.merge(bc);
    EXPECT_TRUE(counters_and_histograms_equal(ab_c, a_bc)) << "seed " << seed;

    MetricsSnapshot ba = b;  // b+a == a+b
    ba.merge(a);
    MetricsSnapshot ab = a;
    ab.merge(b);
    EXPECT_TRUE(counters_and_histograms_equal(ab, ba)) << "seed " << seed;
  }
}

TEST(MetricsMerge, DisjointSeriesUnionAndStaySorted) {
  MetricRegistry left_registry;
  left_registry.counter("adaptbf_z_total").inc(1);
  MetricRegistry right_registry;
  right_registry.counter("adaptbf_a_total").inc(2);
  MetricsSnapshot merged = left_registry.snapshot();
  merged.merge(right_registry.snapshot());
  ASSERT_EQ(merged.samples.size(), 2u);
  EXPECT_EQ(merged.samples[0].name, "adaptbf_a_total");
  EXPECT_EQ(merged.samples[1].name, "adaptbf_z_total");
}

TEST(MetricsMerge, GaugesLastWriteWins) {
  MetricRegistry left_registry;
  left_registry.gauge("adaptbf_depth").set(1.0);
  MetricRegistry right_registry;
  right_registry.gauge("adaptbf_depth").set(9.0);
  MetricsSnapshot merged = left_registry.snapshot();
  merged.merge(right_registry.snapshot());
  EXPECT_DOUBLE_EQ(merged.find("adaptbf_depth")->gauge, 9.0);
}

TEST(MetricsMerge, KindMismatchThrows) {
  MetricRegistry counter_registry;
  counter_registry.counter("adaptbf_x").inc();
  MetricRegistry gauge_registry;
  gauge_registry.gauge("adaptbf_x").set(1.0);
  MetricsSnapshot merged = counter_registry.snapshot();
  EXPECT_THROW(merged.merge(gauge_registry.snapshot()), std::runtime_error);
}

TEST(MetricsMerge, HistogramBoundsMismatchThrows) {
  const double bounds_a[] = {1.0, 2.0};
  const double bounds_b[] = {1.0, 3.0};
  MetricRegistry registry_a;
  registry_a.histogram("adaptbf_h", bounds_a).observe(0.5);
  MetricRegistry registry_b;
  registry_b.histogram("adaptbf_h", bounds_b).observe(0.5);
  MetricsSnapshot merged = registry_a.snapshot();
  EXPECT_THROW(merged.merge(registry_b.snapshot()), std::runtime_error);
}

// ----------------------------------------------------------------- renders

/// One registry with one metric of each kind, fixed values: the golden
/// render fixture.
MetricsSnapshot golden_snapshot() {
  MetricRegistry registry;
  registry.counter("adaptbf_sweep_trials_done_total").inc(42);
  registry.gauge("adaptbf_dispatch_rows_done").set(17.5);
  const double bounds[] = {0.5, 2.0};
  Histogram& hist =
      registry.histogram("adaptbf_sweep_trial_runtime_seconds", bounds);
  hist.observe(0.25);   // bucket le=0.5
  hist.observe(2.0);    // bucket le=2 (le semantics: ON the bound)
  hist.observe(100.0);  // +Inf
  registry.counter("adaptbf_dispatch_worker_rows_journaled_total",
                   "worker=\"3\"")
      .inc(7);
  return registry.snapshot();
}

TEST(MetricsRender, PrometheusGolden) {
  const std::string expected =
      "# TYPE adaptbf_dispatch_rows_done gauge\n"
      "adaptbf_dispatch_rows_done 17.5\n"
      "# TYPE adaptbf_dispatch_worker_rows_journaled_total counter\n"
      "adaptbf_dispatch_worker_rows_journaled_total{worker=\"3\"} 7\n"
      "# TYPE adaptbf_sweep_trial_runtime_seconds histogram\n"
      "adaptbf_sweep_trial_runtime_seconds_bucket{le=\"0.5\"} 1\n"
      "adaptbf_sweep_trial_runtime_seconds_bucket{le=\"2\"} 2\n"
      "adaptbf_sweep_trial_runtime_seconds_bucket{le=\"+Inf\"} 3\n"
      "adaptbf_sweep_trial_runtime_seconds_sum 102.25\n"
      "adaptbf_sweep_trial_runtime_seconds_count 3\n"
      "# TYPE adaptbf_sweep_trials_done_total counter\n"
      "adaptbf_sweep_trials_done_total 42\n";
  EXPECT_EQ(golden_snapshot().to_prometheus(), expected);
}

TEST(MetricsRender, JsonGoldenAndRoundTrip) {
  const std::string rendered = golden_snapshot().to_json();
  const std::string expected =
      "{\"adaptbf_metrics\":1,\"metrics\":["
      "{\"name\":\"adaptbf_dispatch_rows_done\",\"labels\":\"\","
      "\"type\":\"gauge\",\"value\":17.5},"
      "{\"name\":\"adaptbf_dispatch_worker_rows_journaled_total\","
      "\"labels\":\"worker=\\\"3\\\"\",\"type\":\"counter\",\"value\":7},"
      "{\"name\":\"adaptbf_sweep_trial_runtime_seconds\",\"labels\":\"\","
      "\"type\":\"histogram\",\"count\":3,\"sum\":102.25,"
      "\"bounds\":[0.5,2],\"buckets\":[1,1,1]},"
      "{\"name\":\"adaptbf_sweep_trials_done_total\",\"labels\":\"\","
      "\"type\":\"counter\",\"value\":42}"
      "]}";
  EXPECT_EQ(rendered, expected);

  MetricsSnapshot parsed;
  ASSERT_TRUE(metrics_from_json(rendered, parsed));
  EXPECT_TRUE(counters_and_histograms_equal(golden_snapshot(), parsed));
  EXPECT_EQ(parsed.to_json(), rendered);  // Full fixed-point.
}

TEST(MetricsRender, JsonRejectsMalformedDocuments) {
  MetricsSnapshot out;
  EXPECT_FALSE(metrics_from_json("", out));
  EXPECT_FALSE(metrics_from_json("{\"adaptbf_metrics\":2,\"metrics\":[]}",
                                 out));
  EXPECT_FALSE(metrics_from_json(
      "{\"adaptbf_metrics\":1,\"metrics\":[{\"name\":\"x\",\"labels\":\"\","
      "\"type\":\"sparkline\",\"value\":1}]}",
      out));
  // Histogram with buckets.size() != bounds.size() + 1.
  EXPECT_FALSE(metrics_from_json(
      "{\"adaptbf_metrics\":1,\"metrics\":[{\"name\":\"x\",\"labels\":\"\","
      "\"type\":\"histogram\",\"count\":0,\"sum\":0,\"bounds\":[1],"
      "\"buckets\":[0]}]}",
      out));
  // Trailing garbage after a valid document.
  EXPECT_FALSE(
      metrics_from_json("{\"adaptbf_metrics\":1,\"metrics\":[]}x", out));
}

// ---------------------------------------------------------------- registry

TEST(MetricRegistry, CreateOrGetReturnsStableSlot) {
  MetricRegistry registry;
  Counter& first = registry.counter("adaptbf_x_total");
  first.inc(5);
  Counter& again = registry.counter("adaptbf_x_total");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 5u);
  // Same name, different labels: a distinct series.
  Counter& labeled = registry.counter("adaptbf_x_total", "worker=\"1\"");
  EXPECT_NE(&first, &labeled);
  EXPECT_EQ(labeled.value(), 0u);
}

TEST(MetricRegistry, SnapshotSortedByNameThenLabels) {
  MetricRegistry registry;
  registry.counter("adaptbf_b_total").inc();
  registry.counter("adaptbf_a_total", "worker=\"2\"").inc();
  registry.counter("adaptbf_a_total", "worker=\"1\"").inc();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "adaptbf_a_total");
  EXPECT_EQ(snap.samples[0].labels, "worker=\"1\"");
  EXPECT_EQ(snap.samples[1].labels, "worker=\"2\"");
  EXPECT_EQ(snap.samples[2].name, "adaptbf_b_total");
}

TEST(MetricRegistry, KindConflictAborts) {
  MetricRegistry registry;
  (void)registry.counter("adaptbf_conflict");
  EXPECT_DEATH((void)registry.gauge("adaptbf_conflict"),
               "different kind");
}

}  // namespace
}  // namespace adaptbf
