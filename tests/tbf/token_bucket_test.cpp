#include "tbf/token_bucket.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime::zero() + SimDuration::millis(ms); }

TEST(TokenBucket, StartsWithInitialTokens) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 3.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(SimTime::zero()), 3.0);
}

TEST(TokenBucket, InitialClampedToDepth) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 100.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(SimTime::zero()), 3.0);
}

TEST(TokenBucket, AccumulatesAtRate) {
  TokenBucket bucket(10.0, 100.0, SimTime::zero(), 0.0);
  EXPECT_NEAR(bucket.tokens(at_ms(500)), 5.0, 1e-9);
  EXPECT_NEAR(bucket.tokens(at_ms(1000)), 10.0, 1e-9);
}

TEST(TokenBucket, CapsAtDepth) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.tokens(at_ms(10'000)), 3.0);
}

TEST(TokenBucket, ConsumeReducesTokens) {
  TokenBucket bucket(0.0, 10.0, SimTime::zero(), 5.0);
  EXPECT_TRUE(bucket.try_consume(2.0, SimTime::zero()));
  EXPECT_DOUBLE_EQ(bucket.tokens(SimTime::zero()), 3.0);
}

TEST(TokenBucket, ConsumeFailsWhenInsufficient) {
  TokenBucket bucket(0.0, 10.0, SimTime::zero(), 1.0);
  EXPECT_FALSE(bucket.try_consume(2.0, SimTime::zero()));
  EXPECT_DOUBLE_EQ(bucket.tokens(SimTime::zero()), 1.0);  // unchanged
}

TEST(TokenBucket, ConsumeSucceedsAtComputedDeadline) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 0.0);
  const SimTime ready = bucket.time_for_tokens(1.0, SimTime::zero());
  EXPECT_EQ(ready, at_ms(100));
  EXPECT_TRUE(bucket.try_consume(1.0, ready));
}

TEST(TokenBucket, DeadlineIsNowWhenTokensAvailable) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 2.0);
  EXPECT_EQ(bucket.time_for_tokens(1.0, at_ms(5)), at_ms(5));
}

TEST(TokenBucket, ZeroRateNeverReady) {
  TokenBucket bucket(0.0, 3.0, SimTime::zero(), 0.0);
  EXPECT_EQ(bucket.time_for_tokens(1.0, SimTime::zero()), SimTime::max());
}

TEST(TokenBucket, RequestBeyondDepthNeverReady) {
  TokenBucket bucket(10.0, 3.0, SimTime::zero(), 0.0);
  EXPECT_EQ(bucket.time_for_tokens(4.0, SimTime::zero()), SimTime::max());
}

TEST(TokenBucket, SetRateAccruesOldRateFirst) {
  TokenBucket bucket(10.0, 100.0, SimTime::zero(), 0.0);
  bucket.set_rate(100.0, at_ms(1000));  // 10 tokens accrued at old rate
  EXPECT_NEAR(bucket.tokens(at_ms(1000)), 10.0, 1e-9);
  EXPECT_NEAR(bucket.tokens(at_ms(1100)), 20.0, 1e-9);  // new rate
}

TEST(TokenBucket, SetDepthClampsTokens) {
  TokenBucket bucket(0.0, 10.0, SimTime::zero(), 8.0);
  bucket.set_depth(4.0, SimTime::zero());
  EXPECT_DOUBLE_EQ(bucket.tokens(SimTime::zero()), 4.0);
}

TEST(TokenBucket, RateLimitsThroughputOverTime) {
  // Consuming greedily for 10 simulated seconds at rate 7/s from an
  // initially-empty bucket must yield ~70 tokens, never more than depth
  // extra — the fundamental TBF guarantee.
  TokenBucket bucket(7.0, 3.0, SimTime::zero(), 0.0);
  int consumed = 0;
  SimTime now = SimTime::zero();
  const SimTime end = at_ms(10'000);
  while (now < end) {
    const SimTime ready = bucket.time_for_tokens(1.0, now);
    if (ready > end) break;
    now = ready;
    ASSERT_TRUE(bucket.try_consume(1.0, now));
    ++consumed;
  }
  EXPECT_GE(consumed, 69);
  EXPECT_LE(consumed, 71);
}

TEST(TokenBucket, BurstUpToDepthThenPaced) {
  TokenBucket bucket(1.0, 3.0, SimTime::zero(), 3.0);
  // Three immediate consumes (the burst allowance)...
  EXPECT_TRUE(bucket.try_consume(1.0, SimTime::zero()));
  EXPECT_TRUE(bucket.try_consume(1.0, SimTime::zero()));
  EXPECT_TRUE(bucket.try_consume(1.0, SimTime::zero()));
  // ...then the fourth must wait a full second.
  EXPECT_FALSE(bucket.try_consume(1.0, SimTime::zero()));
  EXPECT_EQ(bucket.time_for_tokens(1.0, SimTime::zero()), at_ms(1000));
}

TEST(TokenBucket, EpsilonToleranceAtExactDeadline) {
  // A wakeup at the nanosecond-rounded deadline must always succeed even
  // when floating-point accrual lands a hair short.
  TokenBucket bucket(3.0, 3.0, SimTime::zero(), 0.0);
  SimTime now = SimTime::zero();
  for (int i = 0; i < 1000; ++i) {
    now = bucket.time_for_tokens(1.0, now);
    ASSERT_TRUE(bucket.try_consume(1.0, now)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace adaptbf
