#include "tbf/tbf_scheduler.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

SimTime at_ms(std::int64_t ms) {
  return SimTime::zero() + SimDuration::millis(ms);
}

Rpc make_rpc(std::uint32_t job, std::uint64_t id) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  rpc.size_bytes = 1024 * 1024;
  return rpc;
}

RuleSpec job_rule(std::uint32_t job, double rate, std::int32_t rank = 0,
                  double depth = 3.0) {
  RuleSpec spec;
  spec.name = "job_" + std::to_string(job);
  spec.matcher = RpcMatcher::for_job(JobId(job));
  spec.rate = rate;
  spec.depth = depth;
  spec.rank = rank;
  return spec;
}

TEST(TbfScheduler, UnmatchedRpcsGoToFallback) {
  TbfScheduler scheduler;
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  EXPECT_EQ(scheduler.fallback_backlog(), 1u);
  EXPECT_EQ(scheduler.backlog(), 1u);
}

TEST(TbfScheduler, FallbackServedImmediately) {
  TbfScheduler scheduler;
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  auto rpc = scheduler.dequeue(SimTime::zero());
  ASSERT_TRUE(rpc.has_value());
  EXPECT_EQ(rpc->id, 1u);
  EXPECT_EQ(scheduler.backlog(), 0u);
}

TEST(TbfScheduler, FallbackIsFcfs) {
  TbfScheduler scheduler;
  for (std::uint64_t i = 1; i <= 5; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  for (std::uint64_t i = 1; i <= 5; ++i)
    EXPECT_EQ(scheduler.dequeue(SimTime::zero())->id, i);
}

TEST(TbfScheduler, MatchedRpcConsumesToken) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 10.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  EXPECT_EQ(scheduler.fallback_backlog(), 0u);
  auto rpc = scheduler.dequeue(SimTime::zero());
  ASSERT_TRUE(rpc.has_value());
  // Started full with depth 3: one consumed.
  EXPECT_NEAR(scheduler.queue_tokens(JobId(1), SimTime::zero()), 2.0, 1e-9);
}

TEST(TbfScheduler, RateGatesDequeue) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 10.0));  // 10 RPC/s, depth 3, starts full
  for (std::uint64_t i = 1; i <= 5; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  // Burst of 3 passes at t=0 (full bucket)...
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
  // ...the fourth is token-blocked.
  EXPECT_FALSE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_EQ(scheduler.next_ready_time(SimTime::zero()), at_ms(100));
  EXPECT_TRUE(scheduler.dequeue(at_ms(100)).has_value());
  EXPECT_FALSE(scheduler.dequeue(at_ms(100)).has_value());
  EXPECT_TRUE(scheduler.dequeue(at_ms(200)).has_value());
}

TEST(TbfScheduler, LongRunThroughputMatchesRate) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 50.0));
  for (std::uint64_t i = 0; i < 1000; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  // Greedily drain for 10 s.
  int served = 0;
  SimTime now = SimTime::zero();
  const SimTime end = at_ms(10'000);
  while (now <= end) {
    if (scheduler.dequeue(now).has_value()) {
      ++served;
      continue;
    }
    const SimTime ready = scheduler.next_ready_time(now);
    if (ready > end) break;
    now = ready;
  }
  // 50/s x 10 s = 500 plus the initial burst of <= 3.
  EXPECT_GE(served, 500);
  EXPECT_LE(served, 504);
}

TEST(TbfScheduler, EarliestDeadlineQueueServedFirst) {
  TbfScheduler scheduler;
  TbfScheduler::Config config;
  config.start_full = false;  // force both queues to wait for tokens
  scheduler = TbfScheduler(config);
  scheduler.start_rule(job_rule(1, 10.0));  // token at t=100ms
  scheduler.start_rule(job_rule(2, 20.0));  // token at t=50ms
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  scheduler.enqueue(make_rpc(2, 2), SimTime::zero());
  EXPECT_EQ(scheduler.next_ready_time(SimTime::zero()), at_ms(50));
  auto first = scheduler.dequeue(at_ms(100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job, JobId(2));  // earlier deadline wins
  auto second = scheduler.dequeue(at_ms(100));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->job, JobId(1));
}

TEST(TbfScheduler, RankBreaksDeadlineTies) {
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 10.0, /*rank=*/5));
  scheduler.start_rule(job_rule(2, 10.0, /*rank=*/-5));  // higher priority
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  scheduler.enqueue(make_rpc(2, 2), SimTime::zero());
  auto first = scheduler.dequeue(at_ms(100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job, JobId(2));
}

TEST(TbfScheduler, ChangeRuleTakesEffect) {
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 10.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  // Raise the rate tenfold: the deadline moves from 100ms to 10ms.
  EXPECT_TRUE(scheduler.change_rule("job_1", 100.0, 0, SimTime::zero()));
  EXPECT_EQ(scheduler.next_ready_time(SimTime::zero()), at_ms(10));
  EXPECT_TRUE(scheduler.dequeue(at_ms(10)).has_value());
}

TEST(TbfScheduler, ChangeRuleLoweringRateDefersService) {
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 100.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  EXPECT_TRUE(scheduler.change_rule("job_1", 1.0, 0, SimTime::zero()));
  EXPECT_FALSE(scheduler.dequeue(at_ms(10)).has_value());
  EXPECT_TRUE(scheduler.dequeue(at_ms(1000)).has_value());
}

TEST(TbfScheduler, ChangeUnknownRuleFails) {
  TbfScheduler scheduler;
  EXPECT_FALSE(scheduler.change_rule("nope", 1.0, 0, SimTime::zero()));
}

TEST(TbfScheduler, StopRuleDrainsQueueThroughFallback) {
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 0.5));  // very slow
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  scheduler.enqueue(make_rpc(1, 2), SimTime::zero());
  EXPECT_FALSE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_TRUE(scheduler.stop_rule("job_1", SimTime::zero()));
  // Both pending RPCs are now unthrottled.
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_EQ(scheduler.backlog(), 0u);
}

TEST(TbfScheduler, StopUnknownRuleFails) {
  TbfScheduler scheduler;
  EXPECT_FALSE(scheduler.stop_rule("nope", SimTime::zero()));
}

TEST(TbfScheduler, NewArrivalsAfterStopAreReclassified) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 10.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  (void)scheduler.dequeue(SimTime::zero());
  scheduler.stop_rule("job_1", SimTime::zero());
  scheduler.enqueue(make_rpc(1, 2), SimTime::zero());
  EXPECT_EQ(scheduler.fallback_backlog(), 1u);
}

TEST(TbfScheduler, RuleStatsCountArrivalsAndService) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 100.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  scheduler.enqueue(make_rpc(1, 2), SimTime::zero());
  (void)scheduler.dequeue(SimTime::zero());
  const RuleStats* stats = scheduler.rule_stats("job_1");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->arrived, 2u);
  EXPECT_EQ(stats->served, 1u);
}

TEST(TbfScheduler, LowerRankRuleWinsClassification) {
  TbfScheduler scheduler;
  RuleSpec wildcard;
  wildcard.name = "catch_all";
  wildcard.rate = 1.0;
  wildcard.rank = 100;
  scheduler.start_rule(wildcard);
  scheduler.start_rule(job_rule(1, 50.0, /*rank=*/-1));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());
  (void)scheduler.dequeue(SimTime::zero());
  EXPECT_EQ(scheduler.rule_stats("job_1")->arrived, 1u);
  EXPECT_EQ(scheduler.rule_stats("catch_all")->arrived, 0u);
}

TEST(TbfScheduler, ActiveRulesListsNames) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 1.0));
  scheduler.start_rule(job_rule(2, 1.0));
  const auto names = scheduler.active_rules();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "job_1");
  EXPECT_EQ(names[1], "job_2");
  EXPECT_TRUE(scheduler.has_rule("job_1"));
  EXPECT_FALSE(scheduler.has_rule("job_9"));
}

TEST(TbfScheduler, FallbackOnlyServedWhenNoRuleQueueEligible) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 100.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());   // rule queue, token ready
  scheduler.enqueue(make_rpc(9, 2), SimTime::zero());   // fallback
  auto first = scheduler.dequeue(SimTime::zero());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job, JobId(1));  // eligible rule queue preferred
  auto second = scheduler.dequeue(SimTime::zero());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->job, JobId(9));
}

TEST(TbfScheduler, TokenBlockedRuleQueueLetsFallbackProceed) {
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 1.0));
  scheduler.enqueue(make_rpc(1, 1), SimTime::zero());  // blocked ~1s
  scheduler.enqueue(make_rpc(9, 2), SimTime::zero());  // fallback
  auto rpc = scheduler.dequeue(SimTime::zero());
  ASSERT_TRUE(rpc.has_value());
  EXPECT_EQ(rpc->job, JobId(9));  // fallback never starves behind tokens
}

TEST(TbfScheduler, FallbackNotStarvedBySaturatedRules) {
  // Regression: with Σ rule rates ≈ service capacity, fallback RPCs must
  // still be served (they compete in arrival order with due rule queues).
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 1000.0));
  // Older fallback RPC (job 9, no rule), then a stream of rule traffic.
  scheduler.enqueue(make_rpc(9, 1), SimTime::zero());
  for (std::uint64_t i = 2; i < 50; ++i)
    scheduler.enqueue(make_rpc(1, i), at_ms(static_cast<std::int64_t>(i)));
  // Drain a few: the fallback RPC arrived first, so it must come out
  // within the first couple of dequeues, not after all 48 rule RPCs.
  auto first = scheduler.dequeue(at_ms(100));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job, JobId(9));
}

TEST(TbfScheduler, QueueBacklogPerJob) {
  TbfScheduler scheduler;
  scheduler.start_rule(job_rule(1, 1.0));
  EXPECT_EQ(scheduler.queue_backlog(JobId(1)), 0u);
  for (std::uint64_t i = 0; i < 5; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  EXPECT_EQ(scheduler.queue_backlog(JobId(1)), 5u);
  (void)scheduler.dequeue(SimTime::zero());
  EXPECT_EQ(scheduler.queue_backlog(JobId(1)), 4u);
  EXPECT_EQ(scheduler.queue_backlog(JobId(2)), 0u);  // unknown job
}

TEST(TbfScheduler, NextReadyTimeMaxWhenEmpty) {
  TbfScheduler scheduler;
  EXPECT_EQ(scheduler.next_ready_time(SimTime::zero()), SimTime::max());
}

TEST(TbfScheduler, PerJobQueuesIsolateRates) {
  // Two jobs under one shared-rate world: each job has its own bucket, so
  // a backlog in job 1 does not consume job 2's tokens.
  TbfScheduler::Config config;
  config.start_full = false;
  TbfScheduler scheduler(config);
  scheduler.start_rule(job_rule(1, 10.0));
  scheduler.start_rule(job_rule(2, 10.0));
  for (std::uint64_t i = 0; i < 10; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  scheduler.enqueue(make_rpc(2, 100), SimTime::zero());
  int job1 = 0, job2 = 0;
  SimTime now = SimTime::zero();
  const SimTime end = at_ms(1000);
  while (now <= end) {
    auto rpc = scheduler.dequeue(now);
    if (rpc.has_value()) {
      (rpc->job == JobId(1) ? job1 : job2)++;
      continue;
    }
    const SimTime ready = scheduler.next_ready_time(now);
    if (ready > end) break;
    now = ready;
  }
  EXPECT_EQ(job2, 1);           // served at its own pace
  EXPECT_GE(job1, 9);           // 10/s for 1s (+ rounding)
  EXPECT_LE(job1, 10);
}

}  // namespace
}  // namespace adaptbf
