#include "tbf/rule_parser.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

const StartRuleCommand& as_start(const RuleParseResult& result) {
  EXPECT_TRUE(result.ok()) << result.error;
  return std::get<StartRuleCommand>(*result.command);
}

TEST(RuleParser, StartWithFullMatcherAndParams) {
  const auto result = parse_rule_command(
      "start hog_limit jobid={17} & opcode={ost_write} rate=50 depth=4 "
      "rank=-3");
  const auto& start = as_start(result);
  EXPECT_EQ(start.spec.name, "hog_limit");
  EXPECT_DOUBLE_EQ(start.spec.rate, 50.0);
  EXPECT_DOUBLE_EQ(start.spec.depth, 4.0);
  EXPECT_EQ(start.spec.rank, -3);
  Rpc rpc;
  rpc.job = JobId(17);
  rpc.opcode = Opcode::kOstWrite;
  EXPECT_TRUE(start.spec.matcher.matches(rpc));
  rpc.opcode = Opcode::kOstRead;
  EXPECT_FALSE(start.spec.matcher.matches(rpc));
}

TEST(RuleParser, StartWithoutMatcherIsWildcard) {
  const auto result = parse_rule_command("start catch_all rate=10");
  const auto& start = as_start(result);
  EXPECT_TRUE(start.spec.matcher.is_wildcard());
  EXPECT_DOUBLE_EQ(start.spec.depth, 3.0);  // Lustre default
  EXPECT_EQ(start.spec.rank, 0);
}

TEST(RuleParser, MultiValueLists) {
  const auto result =
      parse_rule_command("start multi jobid={1,2,3} & nid={0,4} rate=5");
  const auto& start = as_start(result);
  Rpc rpc;
  rpc.job = JobId(2);
  rpc.nid = Nid(4);
  EXPECT_TRUE(start.spec.matcher.matches(rpc));
  rpc.nid = Nid(5);
  EXPECT_FALSE(start.spec.matcher.matches(rpc));
}

TEST(RuleParser, FractionalAndScientificRates) {
  EXPECT_DOUBLE_EQ(as_start(parse_rule_command("start a rate=0.5")).spec.rate,
                   0.5);
  EXPECT_DOUBLE_EQ(as_start(parse_rule_command("start b rate=1e3")).spec.rate,
                   1000.0);
}

TEST(RuleParser, ChangeCommand) {
  const auto result = parse_rule_command("change hog_limit rate=75 rank=2");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& change = std::get<ChangeRuleCommand>(*result.command);
  EXPECT_EQ(change.name, "hog_limit");
  EXPECT_DOUBLE_EQ(change.rate, 75.0);
  ASSERT_TRUE(change.rank.has_value());
  EXPECT_EQ(*change.rank, 2);
}

TEST(RuleParser, StopCommand) {
  const auto result = parse_rule_command("  stop hog_limit  ");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(std::get<StopRuleCommand>(*result.command).name, "hog_limit");
}

TEST(RuleParser, ErrorsAreDescriptive) {
  EXPECT_NE(parse_rule_command("frobnicate x rate=1").error.find("expected"),
            std::string::npos);
  EXPECT_FALSE(parse_rule_command("start x").ok());  // missing rate
  EXPECT_FALSE(parse_rule_command("start x rate=-5").ok());
  EXPECT_FALSE(parse_rule_command("start x depth=0.5 rate=1").ok());
  EXPECT_FALSE(parse_rule_command("start x jobid={zz} rate=1").ok());
  EXPECT_FALSE(parse_rule_command("start x opcode={bad_op} rate=1").ok());
  EXPECT_FALSE(parse_rule_command("start x jobid={1 rate=1").ok());
  EXPECT_FALSE(parse_rule_command("stop x trailing").ok());
  EXPECT_FALSE(parse_rule_command("change x rate=1 depth=9").ok());
  EXPECT_FALSE(parse_rule_command("").ok());
}

TEST(RuleParser, ApplyDrivesScheduler) {
  TbfScheduler scheduler;
  EXPECT_EQ(apply_rule_command(scheduler, "start r1 jobid={1} rate=100",
                               SimTime::zero()),
            "");
  EXPECT_TRUE(scheduler.has_rule("r1"));
  EXPECT_EQ(apply_rule_command(scheduler, "change r1 rate=200",
                               SimTime::zero()),
            "");
  EXPECT_EQ(apply_rule_command(scheduler, "stop r1", SimTime::zero()), "");
  EXPECT_FALSE(scheduler.has_rule("r1"));
}

TEST(RuleParser, ApplyReportsDuplicatesAndMissing) {
  TbfScheduler scheduler;
  ASSERT_EQ(apply_rule_command(scheduler, "start r1 rate=1", SimTime::zero()),
            "");
  EXPECT_NE(apply_rule_command(scheduler, "start r1 rate=2", SimTime::zero()),
            "");
  EXPECT_NE(apply_rule_command(scheduler, "change ghost rate=1",
                               SimTime::zero()),
            "");
  EXPECT_NE(apply_rule_command(scheduler, "stop ghost", SimTime::zero()), "");
  EXPECT_NE(apply_rule_command(scheduler, "not a command", SimTime::zero()),
            "");
}

TEST(RuleParser, FormatRoundTrips) {
  RuleSpec spec;
  spec.name = "rt";
  spec.matcher = RpcMatcher::for_job(JobId(3)).add_opcode(Opcode::kOstWrite);
  spec.rate = 12.5;
  spec.depth = 8.0;
  spec.rank = -7;
  const std::string text = format_rule_spec(spec);
  const auto reparsed = parse_rule_command(text);
  const auto& start = as_start(reparsed);
  EXPECT_EQ(start.spec.name, "rt");
  EXPECT_DOUBLE_EQ(start.spec.rate, 12.5);
  EXPECT_DOUBLE_EQ(start.spec.depth, 8.0);
  EXPECT_EQ(start.spec.rank, -7);
  EXPECT_EQ(start.spec.matcher.to_string(), spec.matcher.to_string());
}

TEST(RuleParser, WildcardFormatOmitsMatcher) {
  RuleSpec spec;
  spec.name = "w";
  spec.rate = 1.0;
  const auto reparsed = parse_rule_command(format_rule_spec(spec));
  EXPECT_TRUE(as_start(reparsed).spec.matcher.is_wildcard());
}

}  // namespace
}  // namespace adaptbf
