#include "tbf/rule.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

Rpc make_rpc(std::uint32_t job, std::uint32_t nid = 0,
             Opcode op = Opcode::kOstWrite) {
  Rpc rpc;
  rpc.job = JobId(job);
  rpc.nid = Nid(nid);
  rpc.opcode = op;
  return rpc;
}

TEST(RpcMatcher, WildcardMatchesEverything) {
  RpcMatcher matcher;
  EXPECT_TRUE(matcher.is_wildcard());
  EXPECT_TRUE(matcher.matches(make_rpc(1)));
  EXPECT_TRUE(matcher.matches(make_rpc(999, 5, Opcode::kOstRead)));
}

TEST(RpcMatcher, JobMatcherSelectsJob) {
  const auto matcher = RpcMatcher::for_job(JobId(7));
  EXPECT_TRUE(matcher.matches(make_rpc(7)));
  EXPECT_FALSE(matcher.matches(make_rpc(8)));
  EXPECT_FALSE(matcher.is_wildcard());
}

TEST(RpcMatcher, NidMatcherSelectsClient) {
  const auto matcher = RpcMatcher::for_nid(Nid(3));
  EXPECT_TRUE(matcher.matches(make_rpc(1, 3)));
  EXPECT_FALSE(matcher.matches(make_rpc(1, 4)));
}

TEST(RpcMatcher, OpcodeMatcherSelectsOperation) {
  const auto matcher = RpcMatcher::for_opcode(Opcode::kOstRead);
  EXPECT_TRUE(matcher.matches(make_rpc(1, 0, Opcode::kOstRead)));
  EXPECT_FALSE(matcher.matches(make_rpc(1, 0, Opcode::kOstWrite)));
}

TEST(RpcMatcher, ConjunctionOfDimensions) {
  auto matcher = RpcMatcher::for_job(JobId(1)).add_opcode(Opcode::kOstWrite);
  EXPECT_TRUE(matcher.matches(make_rpc(1, 0, Opcode::kOstWrite)));
  EXPECT_FALSE(matcher.matches(make_rpc(1, 0, Opcode::kOstRead)));
  EXPECT_FALSE(matcher.matches(make_rpc(2, 0, Opcode::kOstWrite)));
}

TEST(RpcMatcher, MultipleJobsActAsUnion) {
  auto matcher = RpcMatcher::for_job(JobId(1)).add_job(JobId(2));
  EXPECT_TRUE(matcher.matches(make_rpc(1)));
  EXPECT_TRUE(matcher.matches(make_rpc(2)));
  EXPECT_FALSE(matcher.matches(make_rpc(3)));
}

TEST(RpcMatcher, ToStringWildcard) {
  EXPECT_EQ(RpcMatcher{}.to_string(), "*");
}

TEST(RpcMatcher, ToStringExpression) {
  auto matcher = RpcMatcher::for_job(JobId(3)).add_opcode(Opcode::kOstWrite);
  EXPECT_EQ(matcher.to_string(), "jobid={3} & opcode={ost_write}");
}

TEST(Opcode, Names) {
  EXPECT_EQ(to_string(Opcode::kOstRead), "ost_read");
  EXPECT_EQ(to_string(Opcode::kOstWrite), "ost_write");
  EXPECT_EQ(to_string(Opcode::kOstPunch), "ost_punch");
  EXPECT_EQ(to_string(Opcode::kOstSync), "ost_sync");
}

}  // namespace
}  // namespace adaptbf
