// Parameterized long-run conformance sweep for the token bucket: for any
// (rate, depth) combination, a greedy consumer must extract rate*T tokens
// over horizon T, within the depth's burst allowance — the contract every
// bandwidth guarantee in the system reduces to.
#include <gtest/gtest.h>

#include <tuple>

#include "support/random.h"
#include "tbf/token_bucket.h"

namespace adaptbf {
namespace {

class TokenBucketConformance
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TokenBucketConformance, GreedyConsumptionMatchesRate) {
  const auto [rate, depth] = GetParam();
  TokenBucket bucket(rate, depth, SimTime::zero(), 0.0);
  const SimTime end = SimTime::zero() + SimDuration::seconds(20);
  SimTime now = SimTime::zero();
  std::uint64_t consumed = 0;
  while (true) {
    now = bucket.time_for_tokens(1.0, now);
    if (now > end) break;
    ASSERT_TRUE(bucket.try_consume(1.0, now));
    ++consumed;
  }
  const double expected = rate * 20.0;
  EXPECT_GE(static_cast<double>(consumed), expected - 1.0);
  EXPECT_LE(static_cast<double>(consumed), expected + depth + 1.0);
}

TEST_P(TokenBucketConformance, RandomPacedConsumerNeverExceedsEnvelope) {
  const auto [rate, depth] = GetParam();
  TokenBucket bucket(rate, depth, SimTime::zero(), depth);  // full start
  Xoshiro256 rng(static_cast<std::uint64_t>(rate * 1000 + depth));
  SimTime now = SimTime::zero();
  std::uint64_t consumed = 0;
  for (int step = 0; step < 5000; ++step) {
    now += SimDuration::micros(
        static_cast<std::int64_t>(rng.next_in(1, 20000)));
    if (bucket.try_consume(1.0, now)) ++consumed;
    // Envelope invariant at every instant: served <= rate*t + depth.
    const double envelope = rate * now.to_seconds() + depth + 1e-6;
    ASSERT_LE(static_cast<double>(consumed), envelope) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RateDepthSweep, TokenBucketConformance,
    ::testing::Combine(::testing::Values(0.5, 3.0, 17.0, 100.0, 1481.0),
                       ::testing::Values(1.0, 3.0, 16.0)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& param_info) {
      return "rate" +
             std::to_string(static_cast<int>(std::get<0>(param_info.param) * 10)) +
             "_depth" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param)));
    });

}  // namespace
}  // namespace adaptbf
