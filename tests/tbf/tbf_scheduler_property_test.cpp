// Randomized model test of the NRS-TBF scheduler: thousands of interleaved
// enqueue / dequeue / rule-management operations against invariant checks.
// The operations are driven by a seeded PRNG, so failures replay exactly.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/random.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {
namespace {

struct SchedulerFuzzParam {
  std::uint64_t seed;
  int operations;
  std::uint32_t max_jobs;
};

class TbfSchedulerPropertyTest
    : public ::testing::TestWithParam<SchedulerFuzzParam> {};

TEST_P(TbfSchedulerPropertyTest, NoRpcLostOrDuplicated) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  TbfScheduler scheduler;
  SimTime now = SimTime::zero();
  std::uint64_t next_rpc_id = 1;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::map<std::uint64_t, bool> seen;  // id -> dequeued?
  std::uint64_t rule_counter = 0;
  std::vector<std::string> live_rules;

  for (int op = 0; op < param.operations; ++op) {
    // Time moves forward in random small hops.
    now += SimDuration::micros(
        static_cast<std::int64_t>(rng.next_in(0, 2000)));
    const double dice = rng.next_double();
    if (dice < 0.45) {
      // Enqueue a random job's RPC.
      Rpc rpc;
      rpc.id = next_rpc_id++;
      rpc.job = JobId(static_cast<std::uint32_t>(
          rng.next_in(1, param.max_jobs)));
      rpc.size_bytes = 4096;
      scheduler.enqueue(rpc, now);
      seen.emplace(rpc.id, false);
      ++enqueued;
    } else if (dice < 0.80) {
      // Drain whatever is eligible right now.
      while (auto rpc = scheduler.dequeue(now)) {
        auto it = seen.find(rpc->id);
        ASSERT_NE(it, seen.end()) << "dequeued an RPC never enqueued";
        ASSERT_FALSE(it->second) << "RPC " << rpc->id << " served twice";
        it->second = true;
        ++dequeued;
      }
    } else if (dice < 0.90) {
      // Start a rule for a random job with a random rate.
      RuleSpec spec;
      spec.name = "r" + std::to_string(rule_counter++);
      spec.matcher = RpcMatcher::for_job(JobId(
          static_cast<std::uint32_t>(rng.next_in(1, param.max_jobs))));
      spec.rate = 1.0 + rng.next_double() * 10000.0;
      spec.rank = static_cast<std::int32_t>(rng.next_in(0, 100)) - 50;
      scheduler.start_rule(spec);
      live_rules.push_back(spec.name);
    } else if (dice < 0.95 && !live_rules.empty()) {
      // Re-rate a random live rule.
      const auto index = rng.next_in(0, live_rules.size() - 1);
      EXPECT_TRUE(scheduler.change_rule(live_rules[index],
                                        1.0 + rng.next_double() * 5000.0,
                                        0, now));
    } else if (!live_rules.empty()) {
      // Stop a random live rule.
      const auto index = rng.next_in(0, live_rules.size() - 1);
      EXPECT_TRUE(scheduler.stop_rule(live_rules[index], now));
      live_rules.erase(live_rules.begin() +
                       static_cast<std::ptrdiff_t>(index));
    }
    // Invariant: backlog accounting is exact.
    ASSERT_EQ(scheduler.backlog(), enqueued - dequeued) << "op " << op;
  }

  // Drain to empty: everything enqueued must eventually come out exactly
  // once. Stop all rules first so nothing is token-blocked forever.
  for (const auto& name : live_rules) scheduler.stop_rule(name, now);
  while (scheduler.backlog() > 0) {
    const SimTime ready = scheduler.next_ready_time(now);
    ASSERT_NE(ready, SimTime::max()) << "backlog with no future service";
    now = std::max(now, ready);
    auto rpc = scheduler.dequeue(now);
    if (!rpc.has_value()) {
      now += SimDuration::millis(1);
      continue;
    }
    auto it = seen.find(rpc->id);
    ASSERT_NE(it, seen.end());
    ASSERT_FALSE(it->second);
    it->second = true;
    ++dequeued;
  }
  EXPECT_EQ(dequeued, enqueued);
  for (const auto& [id, was_served] : seen) EXPECT_TRUE(was_served) << id;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, TbfSchedulerPropertyTest,
    ::testing::Values(SchedulerFuzzParam{101, 4000, 4},
                      SchedulerFuzzParam{202, 4000, 16},
                      SchedulerFuzzParam{303, 2000, 64},
                      SchedulerFuzzParam{404, 8000, 8},
                      SchedulerFuzzParam{505, 1000, 2}),
    [](const ::testing::TestParamInfo<SchedulerFuzzParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

TEST(TbfSchedulerRateConformance, ServedCountBoundedByRatePlusDepth) {
  // Under continuous backlog, a queue must never exceed rate*T + depth
  // services over any horizon T — the hard TBF guarantee.
  for (const double rate : {3.0, 17.0, 250.0}) {
    TbfScheduler scheduler;
    RuleSpec spec;
    spec.name = "limit";
    spec.matcher = RpcMatcher::for_job(JobId(1));
    spec.rate = rate;
    scheduler.start_rule(spec);
    for (std::uint64_t i = 0; i < 100000; ++i) {
      Rpc rpc;
      rpc.id = i;
      rpc.job = JobId(1);
      scheduler.enqueue(rpc, SimTime::zero());
      if (scheduler.backlog() > 50000) break;  // plenty of backlog
    }
    std::uint64_t served = 0;
    SimTime now = SimTime::zero();
    const SimTime end = SimTime::zero() + SimDuration::seconds(5);
    while (now <= end) {
      if (scheduler.dequeue(now).has_value()) {
        ++served;
        continue;
      }
      const SimTime ready = scheduler.next_ready_time(now);
      if (ready > end) break;
      now = ready;
    }
    const double bound = rate * 5.0 + 3.0 /*depth*/ + 1.0 /*edge*/;
    EXPECT_LE(static_cast<double>(served), bound) << "rate " << rate;
    EXPECT_GE(static_cast<double>(served), rate * 5.0 - 1.0) << "rate "
                                                             << rate;
  }
}

}  // namespace
}  // namespace adaptbf
