#include "tbf/fcfs_scheduler.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

Rpc make_rpc(std::uint32_t job, std::uint64_t id) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  return rpc;
}

TEST(FcfsScheduler, EmptyDequeueReturnsNothing) {
  FcfsScheduler scheduler;
  EXPECT_FALSE(scheduler.dequeue(SimTime::zero()).has_value());
  EXPECT_EQ(scheduler.backlog(), 0u);
}

TEST(FcfsScheduler, ServesInArrivalOrderAcrossJobs) {
  FcfsScheduler scheduler;
  scheduler.enqueue(make_rpc(2, 1), SimTime::zero());
  scheduler.enqueue(make_rpc(1, 2), SimTime::zero());
  scheduler.enqueue(make_rpc(2, 3), SimTime::zero());
  EXPECT_EQ(scheduler.dequeue(SimTime::zero())->id, 1u);
  EXPECT_EQ(scheduler.dequeue(SimTime::zero())->id, 2u);
  EXPECT_EQ(scheduler.dequeue(SimTime::zero())->id, 3u);
}

TEST(FcfsScheduler, AlwaysReadyWhenNonEmpty) {
  FcfsScheduler scheduler;
  EXPECT_EQ(scheduler.next_ready_time(SimTime(100)), SimTime::max());
  scheduler.enqueue(make_rpc(1, 1), SimTime(100));
  EXPECT_EQ(scheduler.next_ready_time(SimTime(100)), SimTime(100));
}

TEST(FcfsScheduler, BacklogTracksSize) {
  FcfsScheduler scheduler;
  for (std::uint64_t i = 0; i < 5; ++i)
    scheduler.enqueue(make_rpc(1, i), SimTime::zero());
  EXPECT_EQ(scheduler.backlog(), 5u);
  (void)scheduler.dequeue(SimTime::zero());
  EXPECT_EQ(scheduler.backlog(), 4u);
}

}  // namespace
}  // namespace adaptbf
