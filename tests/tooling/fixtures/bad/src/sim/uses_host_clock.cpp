// lint-fixture-expect: sim-wallclock
// The event core runs on virtual ticks; even steady_clock is forbidden in
// src/sim/ — host time observed mid-trial breaks replay determinism.
#include <chrono>

namespace adaptbf {

long long sim_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace adaptbf
