// lint-fixture-expect: wallclock
// A wall-clock stamp in the sweep layer would make journal bytes differ
// between byte-identical runs.
#include <chrono>
#include <string>

namespace adaptbf {

std::string journal_stamp() {
  const auto now = std::chrono::system_clock::now();
  return std::to_string(now.time_since_epoch().count());
}

}  // namespace adaptbf
