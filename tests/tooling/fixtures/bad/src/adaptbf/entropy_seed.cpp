// lint-fixture-expect: nondet-random
// Hardware entropy outside src/support/ bypasses the seeded generator
// chain that makes trials replayable.
#include <random>

namespace adaptbf {

unsigned controller_jitter() {
  std::random_device entropy;
  return entropy();
}

}  // namespace adaptbf
