// lint-fixture-expect: nondet-random
// libc rand/srand share hidden global state across threads — neither
// seeded nor replayable per-stream.
#include <cstdlib>

namespace adaptbf {

int noisy_choice() {
  srand(42);
  return rand();
}

}  // namespace adaptbf
