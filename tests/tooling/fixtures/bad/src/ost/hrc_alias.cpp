// lint-fixture-expect: hrc-alias
// high_resolution_clock may alias the wall clock on some stdlibs; use
// steady_clock for durations.
#include <chrono>

namespace adaptbf {

long long disk_tick() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

}  // namespace adaptbf
