// lint-fixture-expect: raw-print
// Raw stream/printf logging bypasses support/log's levels, stamps, and
// sink locking.
#include <cstdio>
#include <iostream>

namespace adaptbf {

void announce(int rows) {
  std::cout << "rows: " << rows << "\n";
  printf("rows: %d\n", rows);
}

}  // namespace adaptbf
