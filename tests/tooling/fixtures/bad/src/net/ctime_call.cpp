// lint-fixture-expect: wallclock
// The C time() entry points are the same hazard as system_clock.
#include <ctime>

namespace adaptbf {

long long frame_epoch() { return static_cast<long long>(time(nullptr)); }

}  // namespace adaptbf
