// lint-fixture-expect: unordered-output
// Iterating an unordered container in an export layer leaks hash-order
// into output bytes. Must be sorted, or annotated lookup-only.
#include <string>
#include <unordered_map>

namespace adaptbf {

std::string export_rows(const std::unordered_map<int, double>& cells) {
  std::string out;
  for (const auto& [id, v] : cells) out += std::to_string(id);
  return out;
}

}  // namespace adaptbf
