// Allowed in the sweep layer: steady_clock for runtime metrics (never
// journaled as bytes), snprintf into buffers (string formatting, not
// logging), and a suppressed membership-only hash container.
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>  // adaptbf-lint: allow(unordered-output)

namespace adaptbf {

double trial_runtime_s(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

bool key_known(const std::string& key) {
  // Membership test only — never iterated, so hash order cannot reach
  // output bytes.
  static const std::unordered_set<  // adaptbf-lint: allow(unordered-output)
      std::string>
      known{"rate", "burst"};
  return known.contains(key);
}

}  // namespace adaptbf
