// The event core computes with virtual ticks only; plain integer math and
// snprintf formatting must not trip any rule.
#include <cstdint>
#include <cstdio>
#include <string>

namespace adaptbf {

std::string format_tick(std::uint64_t tick_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs",
                static_cast<double>(tick_ns) * 1e-9);
  return buf;
}

std::uint64_t runtime_of(std::uint64_t start, std::uint64_t end) {
  return end - start;
}

}  // namespace adaptbf
