// Unordered containers are fine OUTSIDE the journaled/exported-output
// layers — simulation state that never renders in hash order.
#include <cstdint>
#include <unordered_map>

namespace adaptbf {

struct InFlight {
  std::unordered_map<std::uint64_t, std::uint64_t> bytes_by_job;
};

}  // namespace adaptbf
