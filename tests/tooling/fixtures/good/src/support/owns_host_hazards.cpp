// The support layer owns the host-facing hazards: log stamps wall time,
// random.h wraps hardware entropy behind seeded generators, and the log
// sink is the one place fprintf is allowed. None of these may trip.
#include <chrono>
#include <cstdio>
#include <random>

namespace adaptbf {

long long support_wall_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

unsigned support_entropy() {
  std::random_device entropy;
  return entropy();
}

void support_sink_write(const char* line) { std::fprintf(stderr, "%s", line); }

}  // namespace adaptbf
