#!/usr/bin/env bash
# sweep_cli surface checks (registered with CTest as tooling_cli_usage;
# run from the repo root with the built binary as $1).
#
# Covers the parts gtest binaries cannot: the usage synopsis and
# --version must advertise every subcommand including `search`, unknown
# search flags must fail with the SEARCH-specific usage (exit 2), and a
# sweep file carrying a [search] section must be bounced from the plain
# run/serve paths toward `sweep_cli search` (exit 1), by name.
set -euo pipefail

cli=${1:?usage: run_cli_usage_tests.sh <path-to-sweep_cli>}
search_ini=examples/sweeps/search_campaign.ini
fail=0

# expect <name> <want_status> <needle> -- <argv...>: run the CLI, check
# exit status and that combined output mentions the needle.
expect() {
  local name=$1 want=$2 needle=$3 status=0 output
  shift 3
  [ "$1" = "--" ] && shift
  output=$("$cli" "$@" 2>&1) || status=$?
  if [ "$status" -ne "$want" ]; then
    echo "FAIL $name: exit $status, wanted $want" >&2
    printf '%s\n' "$output" >&2
    fail=1
    return 0
  fi
  if ! printf '%s\n' "$output" | grep -qF -- "$needle"; then
    echo "FAIL $name: output does not mention '$needle'" >&2
    printf '%s\n' "$output" >&2
    fail=1
    return 0
  fi
  echo "ok   $name"
}

if [ ! -f "$search_ini" ]; then
  echo "run_cli_usage_tests: $search_ini not found (run from repo root)" >&2
  exit 2
fi

# The top-level synopsis and version banner list the search subcommand.
expect usage-lists-search        2 " search " --
expect usage-lists-slo-flag      2 "--slo" --
expect version-lists-search      0 "search step format" -- --version
expect version-lists-journal     0 "journal format" -- --version

# Unknown/invalid search flags print the SEARCH usage, not the global one.
expect search-unknown-flag       2 "unknown search option '--bogus'" \
  -- search --bogus "$search_ini"
expect search-unknown-flag-usage 2 "sweep_cli search [--threads N]" \
  -- search --bogus "$search_ini"
expect search-bad-budget         2 "--budget needs a positive integer" \
  -- search --budget nope "$search_ini"
expect search-bad-slo            2 "--slo" \
  -- search --slo "p99_ms==250" "$search_ini"
expect search-missing-file       2 "usage:" -- search

# A [search] sweep must not silently run as a plain campaign or serve as
# a plain coordinator — both redirect to the search subcommand by name.
expect plain-run-bounces-search  1 "run it with 'sweep_cli search" \
  -- "$search_ini"
expect serve-bounces-search      1 "the search IS the coordinator" \
  -- serve --listen 7999 "$search_ini"

# Unknown top-level flags/subcommands still land on the global usage.
expect global-unknown-flag       2 "usage:" -- --frobnicate

if [ "$fail" -eq 0 ]; then
  echo "run_cli_usage_tests: OK"
fi
exit "$fail"
