#!/usr/bin/env bash
# Fixture suite for scripts/lint_invariants.sh (registered with CTest as
# tooling_lint_fixtures; run from the repo root).
#
# Every fixture under tests/tooling/fixtures/bad/ declares the rule it
# must trip in a `// lint-fixture-expect: <rule>` header line; the lint
# must fail on the file, report EXACTLY the expected rule set, and name
# the offending file. Every fixture under fixtures/good/ must pass —
# including the suppression-comment path. The fixture tree mirrors src/
# so the lint's path classification is exercised as-is.
set -euo pipefail

lint=scripts/lint_invariants.sh
fixtures=tests/tooling/fixtures
fail=0

if [ ! -x "$lint" ]; then
  echo "run_lint_tests: $lint not found/executable (run from repo root)" >&2
  exit 2
fi

while IFS= read -r fixture; do
  expected=$(grep -oE '^// lint-fixture-expect: [a-z-]+' "$fixture" \
    | sed 's|^// lint-fixture-expect: ||' | sort -u || true)
  if [ -z "$expected" ]; then
    echo "FAIL $fixture: bad fixture lacks a lint-fixture-expect header" >&2
    fail=1
    continue
  fi
  if output=$("$lint" "$fixture" 2>&1); then
    echo "FAIL $fixture: lint passed but should have tripped: $expected" >&2
    fail=1
    continue
  fi
  got=$(printf '%s\n' "$output" | grep -oE '\[[a-z-]+\]' \
    | tr -d '[]' | sort -u)
  if [ "$got" != "$expected" ]; then
    echo "FAIL $fixture: expected rules '$expected', lint reported '$got'" >&2
    printf '%s\n' "$output" >&2
    fail=1
    continue
  fi
  if ! printf '%s\n' "$output" | grep -q "$fixture"; then
    echo "FAIL $fixture: finding does not name the offending file" >&2
    printf '%s\n' "$output" >&2
    fail=1
    continue
  fi
  echo "ok   $fixture ($expected)"
done < <(find "$fixtures/bad" -name '*.cpp' | sort)

while IFS= read -r fixture; do
  if ! output=$("$lint" "$fixture" 2>&1); then
    echo "FAIL $fixture: lint flagged an allowed pattern:" >&2
    printf '%s\n' "$output" >&2
    fail=1
    continue
  fi
  echo "ok   $fixture (clean)"
done < <(find "$fixtures/good" -name '*.cpp' | sort)

# The two trees together must cover every rule the lint implements, so a
# new rule cannot land without a fixture proving it fires.
rules=$(grep -oE '^  scan [a-z-]+' "$lint" | awk '{print $2}' | sort -u \
  || true)
covered=$(grep -rhoE '^// lint-fixture-expect: [a-z-]+' "$fixtures/bad" \
  | sed 's|^// lint-fixture-expect: ||' | sort -u || true)
for rule in $rules; do
  if ! printf '%s\n' "$covered" | grep -qx "$rule"; then
    echo "FAIL: lint rule '$rule' has no bad fixture covering it" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "run_lint_tests: OK"
fi
exit "$fail"
