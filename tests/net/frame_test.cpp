// Frame codec: every way a byte stream can lie — fragmentation, bad
// magic, hostile lengths, truncation — must be either reassembled
// correctly or rejected permanently, never misread as a frame.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "net/socket.h"

namespace adaptbf {
namespace {

std::string payload_of(std::string_view text) { return std::string(text); }

TEST(FrameCodec, EncodesHeaderPlusPayload) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 3);
  EXPECT_EQ(frame.substr(0, 4), "ATBF");
  // u32le length.
  EXPECT_EQ(frame[4], 3);
  EXPECT_EQ(frame[5], 0);
  EXPECT_EQ(frame[6], 0);
  EXPECT_EQ(frame[7], 0);
  EXPECT_EQ(frame.substr(8), "abc");
}

TEST(FrameCodec, RoundTripsThroughReaderWholeAndFragmented) {
  const std::string message = "{\"hello\":true}";
  const std::string frame = encode_frame(message);

  // Whole frame in one feed.
  FrameReader whole;
  whole.feed(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(whole.next(payload, error), FrameReader::Status::kFrame);
  EXPECT_EQ(payload, message);
  EXPECT_EQ(whole.next(payload, error), FrameReader::Status::kNeedMore);

  // One byte at a time: kNeedMore until the last byte lands.
  FrameReader dribble;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dribble.feed(frame.data() + i, 1);
    EXPECT_EQ(dribble.next(payload, error), FrameReader::Status::kNeedMore)
        << "byte " << i;
  }
  dribble.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(dribble.next(payload, error), FrameReader::Status::kFrame);
  EXPECT_EQ(payload, message);
}

TEST(FrameCodec, ExtractsBackToBackFramesInOrder) {
  const std::string stream =
      encode_frame("first") + encode_frame("") + encode_frame("third");
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  std::string payload, error;
  ASSERT_EQ(reader.next(payload, error), FrameReader::Status::kFrame);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(reader.next(payload, error), FrameReader::Status::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(reader.next(payload, error), FrameReader::Status::kFrame);
  EXPECT_EQ(payload, "third");
  EXPECT_EQ(reader.next(payload, error), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameCodec, BadMagicIsAPermanentError) {
  FrameReader reader;
  const std::string garbage = "HTTP/1.1 200 OK\r\n";
  reader.feed(garbage.data(), garbage.size());
  std::string payload, error;
  ASSERT_EQ(reader.next(payload, error), FrameReader::Status::kBad);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Sticky: even a valid frame fed afterwards cannot resynchronize.
  const std::string frame = encode_frame("x");
  reader.feed(frame.data(), frame.size());
  EXPECT_EQ(reader.next(payload, error), FrameReader::Status::kBad);
}

TEST(FrameCodec, OversizedLengthRejectedBeforeAllocation) {
  // Header claiming a ~4 GiB payload: must be kBad immediately, not a
  // kNeedMore that waits for 4 GiB.
  std::string header = "ATBF";
  header += '\xff';
  header += '\xff';
  header += '\xff';
  header += '\xff';
  FrameReader reader;
  reader.feed(header.data(), header.size());
  std::string payload, error;
  ASSERT_EQ(reader.next(payload, error), FrameReader::Status::kBad);
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
}

TEST(FrameCodec, TruncatedFrameNeverYields) {
  const std::string frame = encode_frame("a longer payload body");
  FrameReader reader;
  // Everything but the last byte: complete header, torn payload.
  reader.feed(frame.data(), frame.size() - 1);
  std::string payload, error;
  EXPECT_EQ(reader.next(payload, error), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.pending_bytes(), frame.size() - 1);
}

TEST(FrameCodec, RefusesToEncodeOversizedPayload) {
  const std::string too_big(kMaxFramePayload + 1, 'x');
  EXPECT_TRUE(encode_frame(too_big).empty());
  const std::string just_fits_header = encode_frame(payload_of(""));
  EXPECT_EQ(just_fits_header.size(), kFrameHeaderSize);
}

// ------------------------------------------------- loopback socket I/O

TEST(FrameSocket, WriteReadRoundTripOverLoopback) {
  auto listening = TcpListener::listen_on(0);
  ASSERT_TRUE(listening.ok()) << listening.error;
  TcpListener listener = std::move(listening.listener);

  std::string received;
  std::string server_error;
  std::thread server([&] {
    TcpSocket conn = listener.accept_one();
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(read_frame(conn, received, server_error)) << server_error;
    ASSERT_TRUE(write_frame(conn, "pong"));
  });

  auto connected = TcpSocket::connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(connected.ok()) << connected.error;
  ASSERT_TRUE(write_frame(connected.socket, "ping"));
  std::string reply, error;
  ASSERT_TRUE(read_frame(connected.socket, reply, error)) << error;
  EXPECT_EQ(reply, "pong");
  server.join();
  EXPECT_EQ(received, "ping");
}

TEST(FrameSocket, PeerClosingMidFrameIsATruncationError) {
  auto listening = TcpListener::listen_on(0);
  ASSERT_TRUE(listening.ok()) << listening.error;
  TcpListener listener = std::move(listening.listener);

  std::thread server([&] {
    TcpSocket conn = listener.accept_one();
    ASSERT_TRUE(conn.valid());
    // Header promising 100 bytes, then half the payload, then gone.
    const std::string frame = encode_frame(std::string(100, 'z'));
    ASSERT_TRUE(conn.send_all(frame.data(), frame.size() - 50));
    conn.close();
  });

  auto connected = TcpSocket::connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(connected.ok()) << connected.error;
  std::string payload, error;
  EXPECT_FALSE(read_frame(connected.socket, payload, error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  server.join();
}

TEST(FrameSocket, CleanEofBetweenFramesHasEmptyError) {
  auto listening = TcpListener::listen_on(0);
  ASSERT_TRUE(listening.ok()) << listening.error;
  TcpListener listener = std::move(listening.listener);

  std::thread server([&] {
    TcpSocket conn = listener.accept_one();
    ASSERT_TRUE(conn.valid());
    conn.close();  // No frames at all: orderly goodbye.
  });

  auto connected = TcpSocket::connect_to("127.0.0.1", listener.port());
  ASSERT_TRUE(connected.ok()) << connected.error;
  std::string payload;
  std::string error = "sentinel";
  EXPECT_FALSE(read_frame(connected.socket, payload, error));
  EXPECT_TRUE(error.empty()) << error;
  server.join();
}

}  // namespace
}  // namespace adaptbf
