#include "client/process_stream.h"

#include <gtest/gtest.h>

#include <memory>

#include "client/client_system.h"
#include "support/units.h"
#include "tbf/fcfs_scheduler.h"

namespace adaptbf {
namespace {

Ost::Config fast_ost() {
  Ost::Config config;
  config.num_threads = 4;
  config.disk.seq_bandwidth = mib_per_sec(1000);
  config.disk.per_rpc_overhead = SimDuration(0);
  return config;
}

ProcessStream::Config process_config(std::uint32_t job,
                                     std::uint32_t inflight = 4) {
  ProcessStream::Config config;
  config.job = JobId(job);
  config.nid = Nid(0);
  config.rpc_size_bytes = 1024 * 1024;
  config.max_inflight = inflight;
  return config;
}

TEST(ProcessStream, CompletesContinuousPattern) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  auto& process = clients.add_process(
      ost, process_config(1),
      std::make_unique<ContinuousPattern>(64, SimDuration(0)));
  clients.start_all();
  sim.run_to_completion();
  EXPECT_TRUE(process.finished());
  EXPECT_EQ(process.issued(), 64u);
  EXPECT_EQ(process.completed(), 64u);
  EXPECT_EQ(process.inflight(), 0u);
  // 64 MiB at 1000 MiB/s.
  EXPECT_NEAR(process.finish_time().to_seconds(), 0.064, 1e-3);
}

TEST(ProcessStream, InflightWindowNeverExceeded) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  auto& process = clients.add_process(
      ost, process_config(1, /*inflight=*/2),
      std::make_unique<ContinuousPattern>(32, SimDuration(0)));
  std::uint64_t max_seen = 0;
  ost.add_completion_hook([&](const RpcCompletion&) {
    max_seen = std::max(max_seen, process.inflight());
  });
  clients.start_all();
  sim.run_to_completion();
  EXPECT_TRUE(process.finished());
  EXPECT_LE(max_seen, 2u);
}

TEST(ProcessStream, BurstPatternIssuesAtBurstTimes) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  auto& process = clients.add_process(
      ost, process_config(1, /*inflight=*/16),
      std::make_unique<PeriodicBurstPattern>(20, 10, SimDuration::seconds(1),
                                             SimDuration(0)));
  clients.start_all();
  sim.run_until(SimTime::zero() + SimDuration::millis(500));
  EXPECT_EQ(process.issued(), 10u);  // only the first burst so far
  sim.run_to_completion();
  EXPECT_TRUE(process.finished());
  EXPECT_EQ(process.completed(), 20u);
}

TEST(ProcessStream, DelayedStartIssuesNothingEarly) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  auto& process = clients.add_process(
      ost, process_config(1),
      std::make_unique<ContinuousPattern>(8, SimDuration::seconds(10)));
  clients.start_all();
  sim.run_until(SimTime::zero() + SimDuration::seconds(9));
  EXPECT_EQ(process.issued(), 0u);
  sim.run_to_completion();
  EXPECT_TRUE(process.finished());
}

TEST(ClientSystem, RoutesCompletionsAcrossProcesses) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  auto& p1 = clients.add_process(
      ost, process_config(1),
      std::make_unique<ContinuousPattern>(16, SimDuration(0)));
  auto& p2 = clients.add_process(
      ost, process_config(2),
      std::make_unique<ContinuousPattern>(24, SimDuration(0)));
  clients.start_all();
  sim.run_to_completion();
  EXPECT_EQ(p1.completed(), 16u);
  EXPECT_EQ(p2.completed(), 24u);
  EXPECT_TRUE(clients.all_finished());
}

TEST(ClientSystem, JobFinishTimeIsLastProcess) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  clients.add_process(ost, process_config(1),
                      std::make_unique<ContinuousPattern>(8, SimDuration(0)));
  clients.add_process(
      ost, process_config(1),
      std::make_unique<ContinuousPattern>(8, SimDuration::seconds(1)));
  clients.start_all();
  sim.run_to_completion();
  EXPECT_GT(clients.job_finish_time(JobId(1)).to_seconds(), 1.0);
}

TEST(ClientSystem, AllFinishedFalseWhileRunning) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);
  clients.attach_ost(ost);
  clients.add_process(ost, process_config(1),
                      std::make_unique<ContinuousPattern>(1024, SimDuration(0)));
  clients.start_all();
  sim.run_until(SimTime::zero() + SimDuration::millis(1));
  EXPECT_FALSE(clients.all_finished());
}

}  // namespace
}  // namespace adaptbf
