#include <gtest/gtest.h>

#include "client/io_pattern.h"

namespace adaptbf {
namespace {

TEST(PoissonPattern, ReleasesExactlyTotal) {
  PoissonPattern pattern(100, 50.0, SimDuration(0), /*seed=*/7);
  std::uint64_t count = 0;
  while (auto release = pattern.next_release()) {
    EXPECT_EQ(release->count, 1u);
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(PoissonPattern, TimesAreNonDecreasingFromDelay) {
  PoissonPattern pattern(200, 100.0, SimDuration::seconds(3), /*seed=*/9);
  SimTime last = SimTime::zero() + SimDuration::seconds(3);
  while (auto release = pattern.next_release()) {
    EXPECT_GE(release->when, last);
    last = release->when;
  }
}

TEST(PoissonPattern, MeanGapMatchesRate) {
  PoissonPattern pattern(20000, 100.0, SimDuration(0), /*seed=*/11);
  SimTime last;
  std::uint64_t count = 0;
  while (auto release = pattern.next_release()) {
    last = release->when;
    ++count;
  }
  // 20000 arrivals at 100/s: elapsed ~ 200 s (+-5%).
  EXPECT_NEAR(last.to_seconds() / static_cast<double>(count), 0.01,
              0.0005);
}

TEST(PoissonPattern, DeterministicPerSeed) {
  PoissonPattern a(50, 10.0, SimDuration(0), 42);
  PoissonPattern b(50, 10.0, SimDuration(0), 42);
  PoissonPattern c(50, 10.0, SimDuration(0), 43);
  bool any_differs_from_c = false;
  while (true) {
    auto ra = a.next_release();
    auto rb = b.next_release();
    auto rc = c.next_release();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra.has_value()) break;
    EXPECT_EQ(ra->when, rb->when);
    if (rc.has_value() && rc->when != ra->when) any_differs_from_c = true;
  }
  EXPECT_TRUE(any_differs_from_c);
}

TEST(PoissonPattern, WorksEndToEndInScenario) {
  // Smoke: a Poisson job runs through the whole harness.
  PoissonPattern pattern(10, 1000.0, SimDuration(0), 1);
  EXPECT_EQ(pattern.total_rpcs(), 10u);
}

}  // namespace
}  // namespace adaptbf
