// Network latency model: closed-loop throughput must obey the
// bandwidth-delay product, and latency metrics must include wire time.
#include <gtest/gtest.h>

#include <memory>

#include "client/client_system.h"
#include "support/units.h"
#include "tbf/fcfs_scheduler.h"

namespace adaptbf {
namespace {

Ost::Config fast_ost() {
  Ost::Config config;
  config.num_threads = 8;
  config.disk.seq_bandwidth = mib_per_sec(1000);
  config.disk.per_rpc_overhead = SimDuration(0);
  return config;
}

TEST(NetworkLatency, SingleInflightIsRttBound) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  // 5 ms each way -> RTT 10 ms; service 1 ms. With window 1, each RPC
  // takes ~11 ms end to end.
  ClientSystem clients(sim, SimDuration::millis(5));
  clients.attach_ost(ost);
  ProcessStream::Config config;
  config.job = JobId(1);
  config.max_inflight = 1;
  config.network_latency = SimDuration::millis(5);
  clients.add_process(ost, config,
                      std::make_unique<ContinuousPattern>(50, SimDuration(0)));
  clients.start_all();
  sim.run_to_completion();
  EXPECT_NEAR(sim.now().to_seconds(), 50 * 0.011, 0.01);
}

TEST(NetworkLatency, LargerWindowHidesLatency) {
  auto run = [](std::uint32_t window) {
    Simulator sim;
    Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
    ClientSystem clients(sim, SimDuration::millis(5));
    clients.attach_ost(ost);
    ProcessStream::Config config;
    config.job = JobId(1);
    config.max_inflight = window;
    config.network_latency = SimDuration::millis(5);
    clients.add_process(
        ost, config, std::make_unique<ContinuousPattern>(100, SimDuration(0)));
    clients.start_all();
    sim.run_to_completion();
    return sim.now().to_seconds();
  };
  // Pipelining: a 16-deep window must be several times faster than depth 1.
  EXPECT_LT(run(16), run(1) / 4.0);
}

TEST(NetworkLatency, ZeroLatencyUnchangedFromDirectPath) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim);  // default zero latency
  clients.attach_ost(ost);
  ProcessStream::Config config;
  config.job = JobId(1);
  clients.add_process(ost, config,
                      std::make_unique<ContinuousPattern>(64, SimDuration(0)));
  clients.start_all();
  sim.run_to_completion();
  // 64 MiB at 1000 MiB/s.
  EXPECT_NEAR(sim.now().to_seconds(), 0.064, 1e-3);
}

TEST(NetworkLatency, CompletionLatencyIncludesWireTime) {
  Simulator sim;
  Ost ost(sim, fast_ost(), std::make_unique<FcfsScheduler>());
  ClientSystem clients(sim, SimDuration::millis(5));
  SimDuration observed{0};
  ost.add_completion_hook([&](const RpcCompletion& completion) {
    observed = completion.latency();
  });
  ProcessStream::Config config;
  config.job = JobId(1);
  config.network_latency = SimDuration::millis(5);
  clients.add_process(ost, config,
                      std::make_unique<ContinuousPattern>(1, SimDuration(0)));
  clients.start_all();
  sim.run_to_completion();
  // issue -> (5 ms wire) -> 1 ms service; the completion record spans both.
  EXPECT_NEAR(observed.to_seconds(), 0.006, 1e-4);
}

}  // namespace
}  // namespace adaptbf
