#include "client/io_pattern.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

TEST(ContinuousPattern, ReleasesEverythingOnce) {
  ContinuousPattern pattern(100, SimDuration(0));
  auto release = pattern.next_release();
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->when, SimTime::zero());
  EXPECT_EQ(release->count, 100u);
  EXPECT_FALSE(pattern.next_release().has_value());
}

TEST(ContinuousPattern, HonorsStartDelay) {
  ContinuousPattern pattern(10, SimDuration::seconds(20));
  auto release = pattern.next_release();
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->when, SimTime::zero() + SimDuration::seconds(20));
}

TEST(ContinuousPattern, ZeroTotalReleasesNothing) {
  ContinuousPattern pattern(0, SimDuration(0));
  EXPECT_FALSE(pattern.next_release().has_value());
  EXPECT_EQ(pattern.total_rpcs(), 0u);
}

TEST(PeriodicBurstPattern, EmitsBurstsAtPeriod) {
  PeriodicBurstPattern pattern(30, 10, SimDuration::seconds(5),
                               SimDuration(0));
  for (int burst = 0; burst < 3; ++burst) {
    auto release = pattern.next_release();
    ASSERT_TRUE(release.has_value());
    EXPECT_EQ(release->when,
              SimTime::zero() + SimDuration::seconds(5) * burst);
    EXPECT_EQ(release->count, 10u);
  }
  EXPECT_FALSE(pattern.next_release().has_value());
}

TEST(PeriodicBurstPattern, TruncatesFinalBurst) {
  PeriodicBurstPattern pattern(25, 10, SimDuration::seconds(1),
                               SimDuration(0));
  EXPECT_EQ(pattern.next_release()->count, 10u);
  EXPECT_EQ(pattern.next_release()->count, 10u);
  EXPECT_EQ(pattern.next_release()->count, 5u);
  EXPECT_FALSE(pattern.next_release().has_value());
}

TEST(PeriodicBurstPattern, StartDelayShiftsAllBursts) {
  PeriodicBurstPattern pattern(20, 10, SimDuration::seconds(2),
                               SimDuration::seconds(7));
  EXPECT_EQ(pattern.next_release()->when,
            SimTime::zero() + SimDuration::seconds(7));
  EXPECT_EQ(pattern.next_release()->when,
            SimTime::zero() + SimDuration::seconds(9));
}

TEST(PeriodicBurstPattern, TotalRpcsReported) {
  PeriodicBurstPattern pattern(123, 10, SimDuration::seconds(1),
                               SimDuration(0));
  EXPECT_EQ(pattern.total_rpcs(), 123u);
}

TEST(PeriodicBurstPattern, ReleasesAreTimeOrdered) {
  PeriodicBurstPattern pattern(1000, 7, SimDuration::millis(250),
                               SimDuration::millis(30));
  SimTime last = SimTime::zero();
  while (auto release = pattern.next_release()) {
    EXPECT_GE(release->when, last);
    last = release->when;
  }
}

}  // namespace
}  // namespace adaptbf
