#include "metrics/throughput_timeline.h"

#include <gtest/gtest.h>

#include "support/units.h"

namespace adaptbf {
namespace {

SimTime at_ms(std::int64_t ms) {
  return SimTime::zero() + SimDuration::millis(ms);
}

TEST(ThroughputTimeline, BinsBytesByCompletionTime) {
  ThroughputTimeline timeline(SimDuration::millis(100));
  timeline.record(JobId(1), 1024 * 1024, at_ms(50));    // bin 0
  timeline.record(JobId(1), 1024 * 1024, at_ms(150));   // bin 1
  timeline.record(JobId(1), 2 * 1024 * 1024, at_ms(199));  // bin 1
  const auto series = timeline.series_mibps(JobId(1), at_ms(300));
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 10.0);  // 1 MiB / 0.1 s
  EXPECT_DOUBLE_EQ(series[1], 30.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);
}

TEST(ThroughputTimeline, BinBoundaryGoesToLaterBin) {
  ThroughputTimeline timeline(SimDuration::millis(100));
  timeline.record(JobId(1), 1024, at_ms(100));
  const auto series = timeline.series_mibps(JobId(1), at_ms(200));
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_GT(series[1], 0.0);
}

TEST(ThroughputTimeline, UnknownJobIsZeroSeries) {
  ThroughputTimeline timeline;
  const auto series = timeline.series_mibps(JobId(9), at_ms(250));
  ASSERT_EQ(series.size(), 3u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(timeline.total_bytes(JobId(9)), 0u);
}

TEST(ThroughputTimeline, AggregateSumsJobs) {
  ThroughputTimeline timeline(SimDuration::millis(100));
  timeline.record(JobId(1), 1024 * 1024, at_ms(10));
  timeline.record(JobId(2), 1024 * 1024, at_ms(20));
  const auto aggregate = timeline.aggregate_mibps(at_ms(100));
  ASSERT_EQ(aggregate.size(), 1u);
  EXPECT_DOUBLE_EQ(aggregate[0], 20.0);
}

TEST(ThroughputTimeline, TotalsTrackPerJobAndGlobal) {
  ThroughputTimeline timeline;
  timeline.record(JobId(1), 100, at_ms(1));
  timeline.record(JobId(1), 200, at_ms(2));
  timeline.record(JobId(2), 50, at_ms(3));
  EXPECT_EQ(timeline.total_bytes(JobId(1)), 300u);
  EXPECT_EQ(timeline.total_bytes(JobId(2)), 50u);
  EXPECT_EQ(timeline.total_bytes(), 350u);
}

TEST(ThroughputTimeline, MeanOverHorizon) {
  ThroughputTimeline timeline;
  timeline.record(JobId(1), 10 * 1024 * 1024, at_ms(500));
  EXPECT_DOUBLE_EQ(timeline.mean_mibps(JobId(1), at_ms(2000)), 5.0);
  EXPECT_DOUBLE_EQ(timeline.aggregate_mean_mibps(at_ms(1000)), 10.0);
}

TEST(ThroughputTimeline, JobsSorted) {
  ThroughputTimeline timeline;
  timeline.record(JobId(5), 1, at_ms(1));
  timeline.record(JobId(2), 1, at_ms(1));
  const auto jobs = timeline.jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0], JobId(2));
  EXPECT_EQ(jobs[1], JobId(5));
}

TEST(ThroughputTimeline, HorizonPartialBinCounts) {
  ThroughputTimeline timeline(SimDuration::millis(100));
  timeline.record(JobId(1), 1024, at_ms(149));
  // Horizon 150 ms spans 1.5 bins -> 2 bins reported.
  EXPECT_EQ(timeline.series_mibps(JobId(1), at_ms(150)).size(), 2u);
}

}  // namespace
}  // namespace adaptbf
