#include "metrics/sweep_export.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

namespace adaptbf {
namespace {

TrialResult make_trial(std::size_t index, double mibps) {
  TrialResult trial;
  trial.index = index;
  trial.scenario = "s";
  trial.policy = BwControl::kStatic;
  trial.num_osts = 1;
  trial.max_token_rate = 1200.0;
  trial.repetition = static_cast<std::uint32_t>(index);
  trial.seed = 40 + index;
  trial.aggregate_mibps = mibps;
  trial.fairness = 0.9;
  trial.p50_ms = 1.0;
  trial.p95_ms = 2.0;
  trial.p99_ms = 3.0;
  trial.horizon_s = 30.0;
  trial.total_bytes = 1000;
  trial.events_dispatched = 10;
  return trial;
}

TEST(SweepExport, NonFiniteDoublesEmitNullNeverNanTokens) {
  // Raw nan/inf tokens are invalid JSON; every double path must render
  // them as null (and the CSV inherits the same "null" cell).
  TrialResult trial = make_trial(0, 100.0);
  trial.fairness = std::numeric_limits<double>::quiet_NaN();
  trial.p99_ms = std::numeric_limits<double>::infinity();
  trial.max_token_rate = -std::numeric_limits<double>::infinity();
  JobSummary job;
  job.id = JobId(1);
  job.name = "J1";
  job.mean_mibps = std::numeric_limits<double>::quiet_NaN();
  trial.jobs.push_back(job);
  const std::vector<TrialResult> trials{trial};
  const auto cells = aggregate_sweep(trials);

  const std::string json = sweep_to_json("x", trials, cells);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fairness\":null"), std::string::npos);
  EXPECT_NE(json.find("\"mean_mibps\":null"), std::string::npos);

  const std::string csv = sweep_trials_table(trials).to_csv();
  EXPECT_EQ(csv.find("nan"), std::string::npos) << csv;
  EXPECT_EQ(csv.find("inf"), std::string::npos) << csv;
}

TEST(SweepExport, JsonDocumentConcatenatesFragmentEmitters) {
  // sweep_to_json is exactly the fragment emitters plus skeleton — the
  // journal-streaming exporter reuses them, which is what keeps file- and
  // memory-derived documents byte-identical.
  const std::vector<TrialResult> trials{make_trial(0, 100.0),
                                        make_trial(1, 110.0)};
  const auto cells = aggregate_sweep(trials);
  std::ostringstream expected;
  expected << "{\"sweep\":\"x\",\"trials\":[";
  append_trial_json(expected, trials[0]);
  expected << ',';
  append_trial_json(expected, trials[1]);
  expected << "],\"cells\":[";
  append_cell_json(expected, cells[0]);
  expected << "]}";
  EXPECT_EQ(sweep_to_json("x", trials, cells), expected.str());
}

TEST(SweepExport, CellsTableHasOneRowPerCell) {
  const std::vector<TrialResult> trials{make_trial(0, 100.0),
                                        make_trial(1, 110.0)};
  const auto cells = aggregate_sweep(trials);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].trials, 2u);
  const Table table = sweep_cells_table(cells);
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_EQ(sweep_trials_table(trials).rows(), 2u);
}

}  // namespace
}  // namespace adaptbf
