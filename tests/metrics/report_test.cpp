#include "metrics/report.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

SimTime at_ms(std::int64_t ms) {
  return SimTime::zero() + SimDuration::millis(ms);
}

std::vector<std::pair<JobId, std::string>> two_jobs() {
  return {{JobId(1), "Job1"}, {JobId(2), "Job2"}};
}

TEST(ReportTimeline, HasRowPerChunkAndAggregateColumn) {
  ThroughputTimeline timeline(SimDuration::millis(100));
  for (int bin = 0; bin < 10; ++bin) {
    timeline.record(JobId(1), 1024 * 1024, at_ms(bin * 100 + 1));
    timeline.record(JobId(2), 2 * 1024 * 1024, at_ms(bin * 100 + 2));
  }
  const Table table = timeline_table(timeline, at_ms(1000), two_jobs(),
                                     /*points=*/5);
  EXPECT_EQ(table.cols(), 4u);  // t, Job1, Job2, Aggregate
  EXPECT_EQ(table.rows(), 5u);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("Job1 MiB/s"), std::string::npos);
  EXPECT_NE(rendered.find("Aggregate MiB/s"), std::string::npos);
  // Each bin: Job1 at 10 MiB/s, Job2 at 20, aggregate 30.
  EXPECT_NE(rendered.find("30.0"), std::string::npos);
}

TEST(ReportSummary, RowsPerJobPlusOverall) {
  PolicySummary a{"No BW", {10.0, 20.0}, 30.0};
  PolicySummary b{"AdapTBF", {12.0, 18.0}, 30.0};
  const Table table = bandwidth_summary_table(two_jobs(), {a, b});
  EXPECT_EQ(table.rows(), 3u);  // 2 jobs + Overall
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("Overall"), std::string::npos);
  EXPECT_NE(rendered.find("No BW MiB/s"), std::string::npos);
}

TEST(ReportGainLoss, ComputesSignedDeltasAndPercent) {
  PolicySummary subject{"AdapTBF", {15.0, 10.0}, 25.0};
  PolicySummary baseline{"No BW", {10.0, 20.0}, 30.0};
  const Table table = gain_loss_table(two_jobs(), subject, baseline);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("+5.0"), std::string::npos);    // Job1 gain
  EXPECT_NE(rendered.find("+50.0"), std::string::npos);   // Job1 percent
  EXPECT_NE(rendered.find("-10.0"), std::string::npos);   // Job2 loss
  EXPECT_NE(rendered.find("-50.0"), std::string::npos);
}

TEST(ReportGainLoss, ZeroBaselineGivesZeroPercent) {
  PolicySummary subject{"A", {5.0}, 5.0};
  PolicySummary baseline{"B", {0.0}, 0.0};
  const Table table =
      gain_loss_table({{JobId(1), "J"}}, subject, baseline);
  EXPECT_EQ(table.rows(), 2u);  // no crash, job + overall
}

TEST(ReportRecordTrace, CarriesRecordAcrossInactiveWindows) {
  std::vector<WindowResult> trace;
  // Window 1: job 1 active with record +40.
  WindowResult w1;
  w1.when = at_ms(100);
  JobAllocation a1;
  a1.job = JobId(1);
  a1.demand = 10.0;
  a1.record_after = 40.0;
  w1.jobs.push_back(a1);
  trace.push_back(w1);
  // Windows 2..4: job 1 inactive.
  for (int w = 2; w <= 4; ++w) {
    WindowResult inactive;
    inactive.when = at_ms(100 * w);
    trace.push_back(inactive);
  }
  const Table table = record_trace_table(trace, {{JobId(1), "Job1"}},
                                         /*points=*/4);
  const std::string rendered = table.to_string();
  // The last row (job inactive) must still show the +40 standing balance.
  const auto last_row_pos = rendered.rfind("0.4");
  ASSERT_NE(last_row_pos, std::string::npos);
  EXPECT_NE(rendered.find("40", last_row_pos), std::string::npos);
}

TEST(ReportRecordTrace, SumsDemandWithinChunks) {
  std::vector<WindowResult> trace;
  for (int w = 1; w <= 4; ++w) {
    WindowResult window;
    window.when = at_ms(100 * w);
    JobAllocation alloc;
    alloc.job = JobId(1);
    alloc.demand = 5.0;
    alloc.record_after = 0.0;
    window.jobs.push_back(alloc);
    trace.push_back(window);
  }
  // One chunk of 4 windows: demand column = 20.
  const Table table = record_trace_table(trace, {{JobId(1), "Job1"}},
                                         /*points=*/1);
  EXPECT_NE(table.to_string().find("20"), std::string::npos);
}

TEST(ReportRecordTrace, EmptyTraceYieldsHeaderOnly) {
  const Table table = record_trace_table({}, two_jobs());
  EXPECT_EQ(table.rows(), 0u);
  EXPECT_EQ(table.cols(), 5u);  // t + 2 x (record, demand)
}

}  // namespace
}  // namespace adaptbf
