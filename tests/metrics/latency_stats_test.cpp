#include "metrics/latency_stats.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

RpcCompletion completion(std::uint32_t job, std::int64_t issue_ms,
                         std::int64_t start_ms, std::int64_t end_ms) {
  RpcCompletion c;
  c.rpc.job = JobId(job);
  c.rpc.issue_time = SimTime::zero() + SimDuration::millis(issue_ms);
  c.start_service = SimTime::zero() + SimDuration::millis(start_ms);
  c.end_service = SimTime::zero() + SimDuration::millis(end_ms);
  return c;
}

TEST(LatencyStats, EmptyJobIsZeroSummary) {
  LatencyStats stats;
  const auto summary = stats.total_latency(JobId(1));
  EXPECT_EQ(summary.samples, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 0.0);
}

TEST(LatencyStats, TotalLatencyIsIssueToEnd) {
  LatencyStats stats;
  stats.record(completion(1, 0, 10, 30));
  const auto summary = stats.total_latency(JobId(1));
  EXPECT_EQ(summary.samples, 1u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 30.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 30.0);
}

TEST(LatencyStats, QueueDelayIsIssueToStart) {
  LatencyStats stats;
  stats.record(completion(1, 0, 10, 30));
  EXPECT_DOUBLE_EQ(stats.queue_delay(JobId(1)).mean_ms, 10.0);
}

TEST(LatencyStats, PercentilesOrdered) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.record(completion(1, 0, 0, i));
  const auto summary = stats.total_latency(JobId(1));
  EXPECT_EQ(summary.samples, 100u);
  EXPECT_LE(summary.p50_ms, summary.p95_ms);
  EXPECT_LE(summary.p95_ms, summary.p99_ms);
  EXPECT_LE(summary.p99_ms, summary.max_ms);
  EXPECT_NEAR(summary.p50_ms, 50.5, 1.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 100.0);
}

TEST(LatencyStats, JobsIsolated) {
  LatencyStats stats;
  stats.record(completion(1, 0, 0, 10));
  stats.record(completion(2, 0, 0, 100));
  EXPECT_DOUBLE_EQ(stats.total_latency(JobId(1)).mean_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats.total_latency(JobId(2)).mean_ms, 100.0);
  EXPECT_EQ(stats.samples(JobId(1)), 1u);
  EXPECT_EQ(stats.samples(JobId(3)), 0u);
}

TEST(LatencyStats, AllJobsSummaryPoolsSamples) {
  LatencyStats stats;
  stats.record(completion(1, 0, 0, 10));
  stats.record(completion(2, 0, 0, 30));
  const auto summary = stats.total_latency_all();
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 20.0);
}

TEST(LatencyStats, JobsListedSorted) {
  LatencyStats stats;
  stats.record(completion(7, 0, 0, 1));
  stats.record(completion(3, 0, 0, 1));
  const auto jobs = stats.jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0], JobId(3));
  EXPECT_EQ(jobs[1], JobId(7));
}

}  // namespace
}  // namespace adaptbf
