// [search] section grammar: every key, every default, and the strict
// rejections — entries arrive as raw key/value pairs in file order,
// exactly as sweep/sweep_io.h forwards them.
#include "search/search_io.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace adaptbf {
namespace {

using Entries = std::vector<std::pair<std::string, std::string>>;

TEST(SearchIo, FullSectionParsesEveryKey) {
  const auto loaded = load_search(Entries{
      {"controller", "golden"},
      {"input", "bucket_depth"},
      {"ladder", "8, 16, 32, 64"},
      {"slo", "p95_ms<=120, jain>=0.85"},
      {"objective", "jain"},
      {"pass_margin", "0.1"},
      {"budget", "24"},
      {"probe_repetitions", "2"},
      {"test_repetitions", "5"},
  });
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const SearchSpec& spec = *loaded.spec;
  EXPECT_EQ(spec.controller, SearchControllerKind::kGolden);
  EXPECT_EQ(spec.input, SearchInput::kBucketDepth);
  EXPECT_EQ(spec.ladder, (std::vector<double>{8.0, 16.0, 32.0, 64.0}));
  ASSERT_EQ(spec.slo.size(), 2u);
  EXPECT_EQ(spec.slo[0].str(), "p95_ms<=120");
  EXPECT_EQ(spec.objective.metric, SearchMetric::kFairness);
  EXPECT_EQ(spec.pass_margin, 0.1);
  EXPECT_EQ(spec.budget, 24u);
  EXPECT_EQ(spec.probe_repetitions, 2u);
  EXPECT_EQ(spec.test_repetitions, 5u);
}

TEST(SearchIo, DefaultsFillEverythingButTheLadderAndSlo) {
  const auto loaded = load_search(Entries{
      {"ladder", "400, 800"},
      {"slo", "p99_ms<=250"},
  });
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const SearchSpec& spec = *loaded.spec;
  EXPECT_EQ(spec.controller, SearchControllerKind::kBisect);
  EXPECT_EQ(spec.input, SearchInput::kTokenRate);
  EXPECT_EQ(spec.objective.metric, SearchMetric::kP99Ms);
  EXPECT_EQ(spec.pass_margin, 0.05);
  EXPECT_EQ(spec.budget, 32u);
  EXPECT_EQ(spec.probe_repetitions, 1u);
  EXPECT_EQ(spec.test_repetitions, 3u);
}

TEST(SearchIo, UniformRangeLadderParses) {
  const auto loaded = load_search(Entries{
      {"lo", "100"},
      {"hi", "900"},
      {"points", "5"},
      {"slo", "p99_ms<=250"},
  });
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.spec->inputs(),
            (std::vector<double>{100.0, 300.0, 500.0, 700.0, 900.0}));
}

TEST(SearchIo, SloRequirementIsWaivableForCliOverride) {
  const Entries entries{{"ladder", "400, 800"}};
  EXPECT_FALSE(load_search(entries).ok());
  const auto waived = load_search(entries, /*require_slo=*/false);
  ASSERT_TRUE(waived.ok()) << waived.error;
  EXPECT_TRUE(waived.spec->slo.empty());
  // Even waived, a ladder is still mandatory.
  EXPECT_FALSE(load_search(Entries{}, /*require_slo=*/false).ok());
}

TEST(SearchIo, RejectionsNameTheOffendingKey) {
  const struct {
    Entries entries;
    const char* needle;
  } cases[] = {
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"controller", "newton"}},
       "bad controller"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"input", "latency"}},
       "bad input"},
      {{{"ladder", "400,oops"}, {"slo", "p99_ms<=1"}}, "bad ladder value"},
      {{{"ladder", ","}, {"slo", "p99_ms<=1"}}, "ladder list is empty"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<<1"}}, "slo:"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"objective", "speed"}},
       "bad objective"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"pass_margin", "-0.1"}},
       "pass_margin"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"budget", "0"}},
       "budget"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"},
        {"probe_repetitions", "0"}},
       "probe_repetitions"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"points", "1"}},
       "points"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"paralellism", "4"}},
       "unknown key"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"ladder", "100"}},
       "duplicate key"},
      {{{"ladder", "400,800"}, {"slo", "p99_ms<=1"}, {"lo", "100"}},
       "mutually exclusive"},
      {{{"lo", "900"}, {"hi", "100"}, {"slo", "p99_ms<=1"}},
       "needs a ladder"},
      {{}, "section is empty"},
  };
  for (const auto& bad : cases) {
    const auto loaded = load_search(bad.entries);
    ASSERT_FALSE(loaded.ok()) << "accepted a section missing: " << bad.needle;
    EXPECT_NE(loaded.error.find(bad.needle), std::string::npos)
        << loaded.error;
  }
}

}  // namespace
}  // namespace adaptbf
