// End-to-end search driver: a real bisection over token_rate on a small
// simulated workload, plus the golden determinism property — a search
// killed at ANY byte boundary and resumed must reproduce the
// uninterrupted journal byte for byte and converge to the same answer.
#include "search/driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "search/journal.h"
#include "search/spec.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary);
  file << contents;
}

/// Continuous backlogged demand, so aggregate throughput is pinned to the
/// token-rate cap and rises monotonically along the ladder.
SweepSpec base_sweep() {
  ScenarioSpec scenario;
  scenario.name = "driver";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J";
    job.name += std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(5000));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(2);

  SweepSpec sweep;
  sweep.name = "driver_search";
  sweep.scenarios.push_back({"driver", std::move(scenario)});
  sweep.policies = {BwControl::kAdaptive};
  sweep.base_seed = 17;
  return sweep;
}

SearchSpec bisect_spec(double mibps_bound) {
  SearchSpec spec;
  spec.controller = SearchControllerKind::kBisect;
  spec.input = SearchInput::kTokenRate;
  spec.ladder = {50.0, 100.0, 200.0, 400.0};
  Threshold cap;
  cap.metric = SearchMetric::kMibps;
  cap.cmp = Threshold::Cmp::kLe;
  cap.bound = mibps_bound;
  spec.slo = {cap};
  spec.objective = MetricSpec{SearchMetric::kMibps};
  spec.budget = 16;
  spec.probe_repetitions = 1;
  spec.test_repetitions = 2;
  return spec;
}

SearchDriverOptions test_options() {
  SearchDriverOptions options;
  options.sink.fsync = false;
  return options;
}

/// Measured throughput of each ladder rung's repetition 0 — the SLO bound
/// is placed between two measured rungs so the test is robust to
/// simulator calibration changes, as long as the response is monotone.
std::vector<double> rung_mibps(const std::vector<TrialSpec>& trials,
                               std::uint32_t reps, std::size_t rungs) {
  std::vector<TrialSpec> subset;
  for (std::size_t k = 0; k < rungs; ++k) subset.push_back(trials[k * reps]);
  SweepRunner::Options options;
  options.threads = 2;
  const std::vector<TrialResult> results = SweepRunner(options).run(subset);
  std::vector<double> mibps;
  for (const TrialResult& result : results)
    mibps.push_back(result.aggregate_mibps);
  return mibps;
}

struct SearchSetup {
  SweepSpec sweep = base_sweep();
  SearchSpec spec;
  std::vector<TrialSpec> trials;

  SearchSetup() {
    // Probe grid shape does not depend on the SLO, so measure first and
    // pick the bound afterwards.
    trials = bisect_spec(0.0).probe_sweep(sweep).expand();
    const std::vector<double> mibps =
        rung_mibps(trials, bisect_spec(0.0).grid_repetitions(), 4);
    // Feasibility (mibps <= bound) must fall as the rate cap rises.
    for (std::size_t k = 1; k < mibps.size(); ++k)
      EXPECT_LT(mibps[k - 1], mibps[k])
        << "throughput is not monotone in token_rate; rung " << k;
    spec = bisect_spec((mibps[1] + mibps[2]) / 2.0);
    EXPECT_EQ(spec.validate(sweep), "");
  }

  SearchOutcome run(const std::string& path, bool resume) {
    auto executor = make_local_probe_executor(trials, 2, nullptr);
    return run_search(spec, sweep.name, trials, path, resume, *executor,
                      test_options());
  }
};

TEST(SearchDriver, BisectionConvergesToTheBoundaryRungWithMemoizedProbes) {
  SearchSetup setup;
  const std::string path = testing::TempDir() + "/driver_full.jsonl";
  std::remove(path.c_str());
  const SearchOutcome outcome = setup.run(path, /*resume=*/false);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_TRUE(outcome.converged);
  EXPECT_FALSE(outcome.resumed);
  ASSERT_TRUE(outcome.best_index.has_value());
  // Bound sits between rungs 1 and 2: rung 1 is the largest feasible.
  EXPECT_EQ(*outcome.best_index, 1u);
  EXPECT_EQ(outcome.best_input, 100.0);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_NE(outcome.test_verdict, Verdict::kLower);
  // lo, hi, two midpoints, then the testing stage.
  EXPECT_EQ(outcome.steps, 5u);
  EXPECT_EQ(outcome.steps_replayed, 0u);
  // 4 adjusting probes at 1 rep each + ONE new testing-stage repetition:
  // the test stage's first repetition is memoized from the adjust probe,
  // not re-run.
  EXPECT_EQ(outcome.trials_run, 5u);

  // The finished journal carries the testing-stage row.
  const SearchScan scan = scan_search_file(path, setup.sweep.name,
                                           setup.trials,
                                           setup.spec.search_hash());
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.test_complete());
}

TEST(SearchDriver, KillAndResumeIsByteIdenticalAtEveryTruncation) {
  SearchSetup setup;
  const std::string golden_path = testing::TempDir() + "/driver_golden.jsonl";
  std::remove(golden_path.c_str());
  const SearchOutcome golden = setup.run(golden_path, /*resume=*/false);
  ASSERT_TRUE(golden.ok()) << golden.error;
  const std::string golden_bytes = read_file(golden_path);
  ASSERT_FALSE(golden_bytes.empty());

  const std::string path = testing::TempDir() + "/driver_resume.jsonl";
  // ~13 cut points spanning torn header, mid-row, between-rows, and the
  // complete journal (a resume with nothing left to do).
  const std::size_t step = golden_bytes.size() / 12 + 1;
  for (std::size_t cut = 7; cut <= golden_bytes.size(); cut += step) {
    const std::size_t keep = std::min(cut, golden_bytes.size());
    write_file(path, golden_bytes.substr(0, keep));
    const SearchOutcome resumed = setup.run(path, /*resume=*/true);
    ASSERT_TRUE(resumed.ok()) << "cut at " << keep << ": " << resumed.error;
    EXPECT_EQ(read_file(path), golden_bytes) << "cut at " << keep;
    EXPECT_TRUE(resumed.converged);
    ASSERT_TRUE(resumed.best_index.has_value());
    EXPECT_EQ(*resumed.best_index, *golden.best_index);
    EXPECT_EQ(resumed.best_input, golden.best_input);
    EXPECT_EQ(resumed.steps, golden.steps);
  }

  // Resuming the complete journal replays every step and runs nothing.
  write_file(path, golden_bytes);
  const SearchOutcome replayed = setup.run(path, /*resume=*/true);
  ASSERT_TRUE(replayed.ok()) << replayed.error;
  EXPECT_TRUE(replayed.resumed);
  EXPECT_EQ(replayed.trials_run, 0u);
  EXPECT_EQ(replayed.steps_replayed, golden.steps);
  EXPECT_EQ(read_file(path), golden_bytes);
}

TEST(SearchDriver, RefusesStaleJournalsByName) {
  SearchSetup setup;
  const std::string path = testing::TempDir() + "/driver_refuse.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(setup.run(path, /*resume=*/false).ok());

  // Same search, no --resume: refuse rather than clobber.
  SearchOutcome outcome = setup.run(path, /*resume=*/false);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("--resume"), std::string::npos)
      << outcome.error;

  // A different SLO is a different search: the journal's recorded steps
  // would replay divergently, so the hash gate refuses it up front.
  SearchSpec changed = setup.spec;
  changed.slo[0].bound += 1.0;
  auto executor = make_local_probe_executor(setup.trials, 2, nullptr);
  outcome = run_search(changed, setup.sweep.name, setup.trials, path,
                       /*resume=*/true, *executor, test_options());
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("different search"), std::string::npos)
      << outcome.error;
}

}  // namespace
}  // namespace adaptbf
