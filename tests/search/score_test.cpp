// Scoring primitives: the SLO grammar, the verdict bands, and the
// probe-mean reduction the controllers consume.
#include "search/score.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sweep/sweep_runner.h"

namespace adaptbf {
namespace {

ProbeMetrics metrics_with(double p99, double jain, double mibps) {
  ProbeMetrics metrics;
  metrics.p99_ms = p99;
  metrics.fairness = jain;
  metrics.mibps = mibps;
  metrics.p50_ms = p99 / 4.0;
  metrics.p95_ms = p99 / 2.0;
  return metrics;
}

TEST(SloGrammar, ParsesMultiTermExpressions) {
  const SloParseResult parsed = parse_slo(" p99_ms<=250 , jain>=0.9 ");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.thresholds.size(), 2u);
  EXPECT_EQ(parsed.thresholds[0].metric, SearchMetric::kP99Ms);
  EXPECT_EQ(parsed.thresholds[0].cmp, Threshold::Cmp::kLe);
  EXPECT_EQ(parsed.thresholds[0].bound, 250.0);
  EXPECT_EQ(parsed.thresholds[1].metric, SearchMetric::kFairness);
  EXPECT_EQ(parsed.thresholds[1].cmp, Threshold::Cmp::kGe);
  EXPECT_EQ(parsed.thresholds[1].bound, 0.9);
  EXPECT_EQ(parsed.thresholds[0].str(), "p99_ms<=250");
  EXPECT_EQ(parsed.thresholds[1].str(), "jain>=0.9");
}

TEST(SloGrammar, RejectsMalformedExpressionsByName) {
  EXPECT_FALSE(parse_slo("").ok());
  EXPECT_FALSE(parse_slo("p99_ms<=250,").ok());          // Trailing term.
  EXPECT_FALSE(parse_slo("p99_ms=250").ok());            // No comparator.
  EXPECT_FALSE(parse_slo("p42_ms<=250").ok());           // Unknown metric.
  EXPECT_FALSE(parse_slo("p99_ms<=fast").ok());          // Bad bound.
  EXPECT_FALSE(parse_slo("p99_ms<=").ok());              // Empty bound.
  const SloParseResult unknown = parse_slo("p42_ms<=250");
  EXPECT_NE(unknown.error.find("p42_ms"), std::string::npos);
}

TEST(ScoreProbe, VerdictBandsFollowTheNormalizedWorstMargin) {
  const std::vector<Threshold> slo =
      parse_slo("p99_ms<=200,jain>=0.8").thresholds;
  const MetricSpec objective{SearchMetric::kP99Ms};

  // Well under both bounds: headroom beyond the margin -> raise.
  BenchmarkScore score =
      score_probe(metrics_with(100.0, 0.95, 500.0), slo, objective, 0.05);
  EXPECT_EQ(score.verdict, Verdict::kRaise);
  EXPECT_TRUE(score.feasible());

  // Just inside the p99 bound (margin 195/200 -> 0.025): pass band.
  score = score_probe(metrics_with(195.0, 0.95, 500.0), slo, objective, 0.05);
  EXPECT_EQ(score.verdict, Verdict::kPass);
  EXPECT_TRUE(score.feasible());

  // Latency over the bound: lower, regardless of fairness headroom.
  score = score_probe(metrics_with(250.0, 0.99, 500.0), slo, objective, 0.05);
  EXPECT_EQ(score.verdict, Verdict::kLower);
  EXPECT_FALSE(score.feasible());
  EXPECT_LT(score.worst_margin, 0.0);

  // Fairness below its >= bound is just as much a violation.
  score = score_probe(metrics_with(100.0, 0.5, 500.0), slo, objective, 0.05);
  EXPECT_EQ(score.verdict, Verdict::kLower);

  // The worst margin across terms is the binding one: fairness has huge
  // headroom but p99 sits exactly on its bound -> margin 0 -> pass.
  score = score_probe(metrics_with(200.0, 1.0, 500.0), slo, objective, 0.05);
  EXPECT_EQ(score.verdict, Verdict::kPass);
  EXPECT_EQ(score.worst_margin, 0.0);
}

TEST(ScoreProbe, ObjectiveNegatesHigherIsBetterMetrics) {
  const std::vector<Threshold> slo = parse_slo("p99_ms<=1000").thresholds;
  const ProbeMetrics metrics = metrics_with(100.0, 0.9, 750.0);
  EXPECT_EQ(
      score_probe(metrics, slo, MetricSpec{SearchMetric::kP99Ms}, 0.0)
          .objective,
      100.0);
  // Controllers always minimize: throughput and fairness flip sign.
  EXPECT_EQ(
      score_probe(metrics, slo, MetricSpec{SearchMetric::kMibps}, 0.0)
          .objective,
      -750.0);
  EXPECT_EQ(
      score_probe(metrics, slo, MetricSpec{SearchMetric::kFairness}, 0.0)
          .objective,
      -0.9);
}

TEST(MeanMetrics, AveragesEveryFieldOverRows) {
  TrialResult a;
  a.aggregate_mibps = 100.0;
  a.fairness = 0.8;
  a.p50_ms = 10.0;
  a.p95_ms = 20.0;
  a.p99_ms = 30.0;
  TrialResult b;
  b.aggregate_mibps = 300.0;
  b.fairness = 0.6;
  b.p50_ms = 30.0;
  b.p95_ms = 40.0;
  b.p99_ms = 50.0;
  const ProbeMetrics mean = mean_metrics({a, b});
  EXPECT_EQ(mean.mibps, 200.0);
  EXPECT_EQ(mean.fairness, 0.7);
  EXPECT_EQ(mean.p50_ms, 20.0);
  EXPECT_EQ(mean.p95_ms, 30.0);
  EXPECT_EQ(mean.p99_ms, 40.0);
  EXPECT_EQ(mean.value_of(SearchMetric::kP99Ms), 40.0);
  EXPECT_EQ(mean.value_of(SearchMetric::kFairness), 0.7);
}

TEST(MetricNames, RoundTripThroughTheGrammarNames) {
  for (const SearchMetric metric :
       {SearchMetric::kP50Ms, SearchMetric::kP95Ms, SearchMetric::kP99Ms,
        SearchMetric::kFairness, SearchMetric::kMibps}) {
    const auto parsed = search_metric_from_name(MetricSpec{metric}.name());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, metric);
  }
  EXPECT_FALSE(search_metric_from_name("latency").has_value());
  for (const Verdict verdict :
       {Verdict::kLower, Verdict::kPass, Verdict::kRaise}) {
    const auto parsed = verdict_from_name(verdict_name(verdict));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, verdict);
  }
  EXPECT_FALSE(verdict_from_name("maybe").has_value());
}

}  // namespace
}  // namespace adaptbf
