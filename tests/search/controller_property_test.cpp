// Property tests for the step controllers: 1000 randomized response
// curves per property, driven through pure-function oracles — no
// simulator. Every controller must terminate within its step budget and
// never probe outside the ladder; on clean monotone/unimodal inputs the
// answer must bracket the true boundary exactly; on noisy inputs the
// termination and bounds properties must still hold.
#include "search/controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

namespace adaptbf {
namespace {

/// SplitMix64: tiny, deterministic, seedable — the fixture PRNG. (The
/// repo-wide determinism stance bans wall clocks and ambient entropy;
/// every curve here derives from the loop index.)
struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  /// Uniform in (0, 1].
  double unit() {
    return static_cast<double>((next() >> 11) + 1) / 9007199254740992.0;
  }
};

/// A strictly ascending ladder of `n` rungs with randomized spacing.
std::vector<double> random_ladder(SplitMix64& rng, std::size_t n) {
  std::vector<double> ladder;
  ladder.reserve(n);
  double value = rng.unit() * 100.0;
  for (std::size_t i = 0; i < n; ++i) {
    ladder.push_back(value);
    value += 0.5 + rng.unit() * 50.0;
  }
  return ladder;
}

/// Index -> score oracle (pure function of the probed ladder index).
using Oracle = std::function<BenchmarkScore(const ProbeRequest&)>;

BenchmarkScore feasible_score(bool feasible, double objective) {
  BenchmarkScore score;
  score.verdict = feasible ? Verdict::kRaise : Verdict::kLower;
  score.objective = objective;
  score.worst_margin = feasible ? 1.0 : -1.0;
  return score;
}

/// Drives `controller` against `oracle` to completion, asserting the two
/// universal properties en route: every probe is on the ladder, and the
/// scored-step count never exceeds `max_steps`. Returns steps fed.
std::uint32_t drive(StepController& controller, std::uint32_t top_index,
                    std::uint32_t max_steps, const Oracle& oracle) {
  // The iteration cap is a test-side watchdog: a controller that neither
  // finishes nor exhausts its budget would otherwise hang the suite.
  for (int iteration = 0; iteration < 100000; ++iteration) {
    const std::vector<ProbeRequest> batch = controller.next_probes();
    if (batch.empty()) break;
    for (const ProbeRequest& probe : batch) {
      EXPECT_LE(probe.input_index, top_index) << "probe off the ladder";
      EXPECT_GE(probe.repetitions, 1u);
      controller.feed(probe, oracle(probe));
      EXPECT_LE(controller.steps_fed(), max_steps) << "budget overrun";
    }
  }
  EXPECT_TRUE(controller.done()) << "controller never finished";
  return controller.steps_fed();
}

TEST(BisectionProperty, MonotoneCurvesBracketTheExactThreshold) {
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0x9e3779b9ULL + 1);
    const std::size_t n = 2 + rng.below(63);
    const std::vector<double> ladder = random_ladder(rng, n);
    // threshold in [-1, n-1]; -1 = nothing feasible, n-1 = all feasible.
    const std::int64_t threshold =
        static_cast<std::int64_t>(rng.below(n + 1)) - 1;
    // 2 endpoint probes + a halving pass always fit this budget.
    const std::uint32_t budget =
        4 + 2 * static_cast<std::uint32_t>(std::ceil(std::log2(n)));
    auto controller = make_bisection_controller(ladder, 1, budget);
    drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
          [&](const ProbeRequest& probe) {
            return feasible_score(
                static_cast<std::int64_t>(probe.input_index) <= threshold,
                ladder[probe.input_index]);
          });
    EXPECT_FALSE(controller->exhausted()) << "curve " << curve;
    if (threshold < 0) {
      EXPECT_FALSE(controller->best_index().has_value()) << "curve " << curve;
    } else {
      ASSERT_TRUE(controller->best_index().has_value()) << "curve " << curve;
      EXPECT_EQ(*controller->best_index(),
                static_cast<std::uint32_t>(threshold))
          << "curve " << curve << " n " << n;
      // Converged bracket: one ladder step (or zero at the endpoints).
      const std::uint32_t hi = std::min(
          static_cast<std::uint32_t>(threshold + 1),
          static_cast<std::uint32_t>(n - 1));
      EXPECT_LE(controller->bracket_width(),
                ladder[hi] - ladder[threshold] + 1e-12)
          << "curve " << curve;
    }
  }
}

TEST(BisectionProperty, NoisyCurvesStillTerminateInBoundsWithinBudget) {
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0x51ed270bULL + 7);
    const std::size_t n = 2 + rng.below(63);
    const std::vector<double> ladder = random_ladder(rng, n);
    const std::uint32_t budget = 1 + static_cast<std::uint32_t>(rng.below(20));
    auto controller = make_bisection_controller(ladder, 1, budget);
    // Fully random feasibility: adversarial for bisection's monotonicity
    // assumption. The ANSWER may be wrong; the walk must stay legal.
    SplitMix64 noise(curve + 99);
    drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
          [&](const ProbeRequest& probe) {
            return feasible_score(noise.next() & 1, ladder[probe.input_index]);
          });
  }
}

TEST(GoldenSectionProperty, UnimodalCurvesFindTheMinimumWithinTwoRungs) {
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0xc2b2ae35ULL + 3);
    const std::size_t n = 2 + rng.below(63);
    const std::vector<double> ladder = random_ladder(rng, n);
    const std::size_t argmin = rng.below(n);
    // Strictly unimodal objective: V-shaped around argmin with randomized
    // (but strictly positive) slopes on both sides.
    const double left = 1.0 + rng.unit() * 9.0;
    const double right = 1.0 + rng.unit() * 9.0;
    std::vector<double> objective(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double distance = i < argmin
                                  ? left * static_cast<double>(argmin - i)
                                  : right * static_cast<double>(i - argmin);
      objective[i] = 10.0 + distance;
    }
    // Golden shrinks the bracket by 1/phi per probe after the first two;
    // this budget is comfortably past its worst case for n <= 64.
    const std::uint32_t budget =
        8 + 3 * static_cast<std::uint32_t>(std::ceil(std::log2(n)));
    auto controller = make_golden_section_controller(ladder, 1, budget);
    drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
          [&](const ProbeRequest& probe) {
            return feasible_score(true, objective[probe.input_index]);
          });
    EXPECT_FALSE(controller->exhausted()) << "curve " << curve;
    ASSERT_TRUE(controller->best_index().has_value()) << "curve " << curve;
    // While the two golden probes land on distinct rungs the comparison
    // is sound and the bracket keeps the argmin; once they round to the
    // SAME rung (bracket < 1/(2*rho - 1) ~ 4.24 rungs) ties shrink left
    // blind, so the answer can park up to two rungs off the discrete
    // argmin. Anything further means the bracket logic lost the minimum.
    const auto best = static_cast<std::int64_t>(*controller->best_index());
    EXPECT_LE(std::abs(best - static_cast<std::int64_t>(argmin)), 2)
        << "curve " << curve << " n " << n << " argmin " << argmin;
  }
}

TEST(GoldenSectionProperty, NoisyCurvesStillTerminateInBoundsWithinBudget) {
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0x85ebca6bULL + 11);
    const std::size_t n = 2 + rng.below(63);
    const std::vector<double> ladder = random_ladder(rng, n);
    const std::uint32_t budget = 1 + static_cast<std::uint32_t>(rng.below(24));
    auto controller = make_golden_section_controller(ladder, 1, budget);
    SplitMix64 noise(curve ^ 0xabcdefULL);
    drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
          [&](const ProbeRequest&) {
            return feasible_score(true, noise.unit() * 1000.0);
          });
  }
}

TEST(SuccessiveHalvingProperty, DistinctObjectivesCrownTheTrueMinimum) {
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0x27d4eb2fULL + 5);
    const std::size_t n = 2 + rng.below(31);
    const std::vector<double> ladder = random_ladder(rng, n);
    // A random permutation as the objective landscape: all distinct, so
    // the survivor must be the global argmin (halving keeps the better
    // half every round and the minimum is never eliminated).
    std::vector<double> objective(n);
    for (std::size_t i = 0; i < n; ++i)
      objective[i] = static_cast<double>(i) + 1.0;
    for (std::size_t i = n; i > 1; --i)
      std::swap(objective[i - 1], objective[rng.below(i)]);
    const std::size_t argmin = static_cast<std::size_t>(
        std::min_element(objective.begin(), objective.end()) -
        objective.begin());
    // Worst-case total steps: n + n/2 + n/4 + ... < 2n.
    const std::uint32_t budget = 2 * static_cast<std::uint32_t>(n) + 2;
    auto controller = make_successive_halving_controller(ladder, 1, budget);
    const std::uint32_t steps =
        drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
              [&](const ProbeRequest& probe) {
                return feasible_score(true, objective[probe.input_index]);
              });
    EXPECT_FALSE(controller->exhausted()) << "curve " << curve;
    ASSERT_TRUE(controller->best_index().has_value()) << "curve " << curve;
    EXPECT_EQ(*controller->best_index(), argmin) << "curve " << curve;
    EXPECT_LE(steps, budget);
    EXPECT_EQ(controller->bracket_width(), 0.0) << "sole survivor";
  }
}

TEST(ControllerProperty, TinyBudgetsExhaustCleanly) {
  // A budget too small to finish must flip exhausted() — never loop, never
  // probe past the cap. Halving additionally refuses to START a round it
  // cannot finish, so its step count stays a round boundary.
  for (std::uint64_t curve = 0; curve < 1000; ++curve) {
    SplitMix64 rng(curve * 0x165667b1ULL + 13);
    const std::size_t n = 4 + rng.below(61);
    const std::vector<double> ladder = random_ladder(rng, n);
    const std::uint32_t budget = static_cast<std::uint32_t>(rng.below(3));
    const auto oracle = [&](const ProbeRequest& probe) {
      return feasible_score(probe.input_index < n / 2,
                            ladder[probe.input_index]);
    };
    for (int kind = 0; kind < 3; ++kind) {
      auto controller =
          kind == 0   ? make_bisection_controller(ladder, 1, budget)
          : kind == 1 ? make_golden_section_controller(ladder, 1, budget)
                      : make_successive_halving_controller(ladder, 1, budget);
      const std::uint32_t steps =
          drive(*controller, static_cast<std::uint32_t>(n - 1), budget,
                oracle);
      EXPECT_LE(steps, budget);
      EXPECT_TRUE(controller->done());
      EXPECT_TRUE(controller->exhausted()) << "kind " << kind;
    }
  }
}

TEST(ControllerProperty, ReplayedScoreHistoryReproducesTheProbeSequence) {
  // The resume backbone: feeding an identical score history into a fresh
  // controller must reproduce the identical probe sequence, including
  // when the replay stops mid-batch and the rest is requested live.
  for (std::uint64_t curve = 0; curve < 300; ++curve) {
    SplitMix64 rng(curve * 0x9e3779b9ULL + 17);
    const std::size_t n = 3 + rng.below(30);
    const std::vector<double> ladder = random_ladder(rng, n);
    const std::uint32_t budget = 3 * static_cast<std::uint32_t>(n);
    SplitMix64 noise(curve + 4242);
    std::vector<std::pair<ProbeRequest, BenchmarkScore>> history;
    const auto record = [&](const ProbeRequest& probe) {
      const BenchmarkScore score =
          feasible_score(noise.next() & 1, noise.unit() * 100.0);
      history.emplace_back(probe, score);
      return score;
    };
    for (int kind = 0; kind < 3; ++kind) {
      history.clear();
      noise = SplitMix64(curve + 4242);
      const auto make = [&]() {
        return kind == 0 ? make_bisection_controller(ladder, 1, budget)
               : kind == 1
                   ? make_golden_section_controller(ladder, 1, budget)
                   : make_successive_halving_controller(ladder, 1, budget);
      };
      auto original = make();
      drive(*original, static_cast<std::uint32_t>(n - 1), budget, record);

      // Replay every prefix length; the next probe batch after replay
      // must match the recorded continuation exactly.
      for (std::size_t prefix = 0; prefix <= history.size(); ++prefix) {
        auto replay = make();
        for (std::size_t i = 0; i < prefix; ++i) {
          const auto batch = replay->next_probes();
          ASSERT_FALSE(batch.empty());
          ASSERT_EQ(batch.front(), history[i].first)
              << "kind " << kind << " prefix " << prefix << " step " << i;
          replay->feed(history[i].first, history[i].second);
        }
        const auto next = replay->next_probes();
        if (prefix < history.size()) {
          ASSERT_FALSE(next.empty());
          EXPECT_EQ(next.front(), history[prefix].first);
        } else {
          EXPECT_TRUE(next.empty());
          EXPECT_EQ(replay->done(), original->done());
          EXPECT_EQ(replay->best_index(), original->best_index());
        }
      }
    }
  }
}

}  // namespace
}  // namespace adaptbf
