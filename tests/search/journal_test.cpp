// Search journal format: step-row round trips, the stamped header, and
// the scanner's stricter-than-campaign crash tolerance. Journals are
// built from fabricated trial rows — no simulator runs here.
#include "search/journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "search/spec.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary);
  file << contents;
}

JsonlSinkOptions test_sink_options() {
  JsonlSinkOptions options;
  options.fsync = false;
  return options;
}

SweepSpec base_sweep() {
  ScenarioSpec scenario;
  scenario.name = "probe";
  JobSpec job;
  job.id = JobId(1);
  job.name = "J1";
  job.nodes = 1;
  job.processes.push_back(continuous_pattern(8));
  scenario.jobs.push_back(std::move(job));
  scenario.duration = SimDuration::seconds(1);
  scenario.stop_when_idle = true;

  SweepSpec sweep;
  sweep.name = "journal";
  sweep.scenarios.push_back({"probe", std::move(scenario)});
  sweep.policies = {BwControl::kAdaptive};
  sweep.base_seed = 7;
  return sweep;
}

SearchSpec search_spec() {
  SearchSpec spec;
  spec.controller = SearchControllerKind::kBisect;
  spec.input = SearchInput::kTokenRate;
  spec.ladder = {100.0, 200.0, 400.0};
  spec.slo = parse_slo("p99_ms<=100").thresholds;
  spec.probe_repetitions = 1;
  spec.test_repetitions = 2;
  return spec;
}

/// A row whose grid identity matches `trial` (seed, repetition, cell) but
/// whose metrics are fabricated — enough for the scanner, which never
/// re-runs the simulator.
TrialResult row_for(const TrialSpec& trial, double p99) {
  TrialResult row;
  row.index = trial.index;
  row.scenario = trial.scenario;
  row.policy = trial.policy;
  row.num_osts = trial.num_osts;
  row.max_token_rate = trial.max_token_rate;
  row.repetition = trial.repetition;
  row.seed = trial.seed;
  row.aggregate_mibps = 100.0 + p99;
  row.fairness = 0.9;
  row.p50_ms = p99 / 4.0;
  row.p95_ms = p99 / 2.0;
  row.p99_ms = p99;
  row.horizon_s = 1.0;
  return row;
}

SearchStepRow step_row(std::uint32_t step, std::uint32_t input_index,
                       double input, double p99) {
  SearchStepRow row;
  row.step = step;
  row.test_stage = false;
  row.input_index = input_index;
  row.input = input;
  row.repetitions = 1;
  row.metrics.mibps = 100.0 + p99;
  row.metrics.fairness = 0.9;
  row.metrics.p50_ms = p99 / 4.0;
  row.metrics.p95_ms = p99 / 2.0;
  row.metrics.p99_ms = p99;
  row.objective = p99;
  row.verdict = p99 <= 100.0 ? Verdict::kRaise : Verdict::kLower;
  row.bracket = 300.0;
  return row;
}

/// Fixture state every scanner test needs: the probe grid and a freshly
/// written journal with one trial row + one step row per visited rung.
struct JournalFixture {
  SweepSpec sweep = base_sweep();
  SearchSpec spec = search_spec();
  std::vector<TrialSpec> trials;
  std::string path;

  explicit JournalFixture(const std::string& name) {
    trials = spec.probe_sweep(sweep).expand();
    path = testing::TempDir() + "/" + name + ".jsonl";
    std::remove(path.c_str());
  }

  [[nodiscard]] CampaignHeader header() const {
    CampaignHeader header;
    header.sweep = sweep.name;
    header.grid_hash = sweep_grid_hash(trials);
    header.trials = trials.size();
    header.search_step = kSearchStepVersion;
    header.search_hash = spec.search_hash();
    return header;
  }

  /// Writes the header plus steps probing rungs 0 and 2 (one rep each).
  void write_two_steps() {
    auto opened =
        SearchJournalWriter::open_fresh(path, header(), test_sink_options());
    ASSERT_TRUE(opened.ok()) << opened.error;
    const std::uint32_t reps = spec.grid_repetitions();
    opened.writer->append_line(trial_to_jsonl(row_for(trials[0 * reps], 80.0)));
    opened.writer->append_line(
        search_step_to_jsonl(step_row(1, 0, 100.0, 80.0)));
    opened.writer->append_line(trial_to_jsonl(row_for(trials[2 * reps], 160.0)));
    opened.writer->append_line(
        search_step_to_jsonl(step_row(2, 2, 400.0, 160.0)));
    opened.writer->flush();
  }

  [[nodiscard]] SearchScan scan() const {
    return scan_search_file(path, sweep.name, trials, spec.search_hash());
  }
};

TEST(SearchStepRow, RoundTripsBitExactDoubles) {
  SearchStepRow row = step_row(3, 1, 0.1 + 0.2, 3200.0550010000002);
  row.test_stage = true;
  row.repetitions = 4;
  row.verdict = Verdict::kPass;
  row.bracket = 1.0 / 3.0;
  row.metrics.fairness = 0.78447601039703263;
  const std::string line = search_step_to_jsonl(row);
  SearchStepRow parsed;
  ASSERT_TRUE(search_step_from_jsonl(line, parsed));
  EXPECT_EQ(parsed.step, row.step);
  EXPECT_EQ(parsed.test_stage, row.test_stage);
  EXPECT_EQ(parsed.input_index, row.input_index);
  EXPECT_EQ(parsed.input, row.input);
  EXPECT_EQ(parsed.repetitions, row.repetitions);
  EXPECT_EQ(parsed.metrics.mibps, row.metrics.mibps);
  EXPECT_EQ(parsed.metrics.fairness, row.metrics.fairness);
  EXPECT_EQ(parsed.metrics.p50_ms, row.metrics.p50_ms);
  EXPECT_EQ(parsed.metrics.p95_ms, row.metrics.p95_ms);
  EXPECT_EQ(parsed.metrics.p99_ms, row.metrics.p99_ms);
  EXPECT_EQ(parsed.objective, row.objective);
  EXPECT_EQ(parsed.verdict, row.verdict);
  EXPECT_EQ(parsed.bracket, row.bracket);
  // Re-serializing the parse reproduces the exact bytes.
  EXPECT_EQ(search_step_to_jsonl(parsed), line);
}

TEST(SearchStepRow, ParserIsStrict) {
  const std::string good = search_step_to_jsonl(step_row(1, 0, 100.0, 80.0));
  SearchStepRow out;
  ASSERT_TRUE(search_step_from_jsonl(good, out));
  EXPECT_FALSE(search_step_from_jsonl(good + " ", out));   // Trailing junk.
  EXPECT_FALSE(search_step_from_jsonl(
      good.substr(0, good.size() - 1), out));              // Truncated.
  // Step numbers are 1-based; 0 is a malformed row, not "before step 1".
  std::string zero = good;
  zero.replace(zero.find("search_step\":1"), 14, "search_step\":0");
  EXPECT_FALSE(search_step_from_jsonl(zero, out));
  std::string verdict = good;
  verdict.replace(verdict.find("\"raise\""), 7, "\"maybe\"");
  EXPECT_FALSE(search_step_from_jsonl(verdict, out));
  std::string stage = good;
  stage.replace(stage.find("\"adjust\""), 8, "\"probe\"");
  EXPECT_FALSE(search_step_from_jsonl(stage, out));
  // A trial row is not a step row.
  EXPECT_FALSE(search_step_from_jsonl("{\"trial\":0}", out));
}

TEST(SearchScan, MissingAndEmptyFilesComeBackFresh) {
  JournalFixture fx("scan_fresh");
  SearchScan scan = fx.scan();
  EXPECT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.fresh);

  write_file(fx.path, "");
  scan = fx.scan();
  EXPECT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.fresh);
}

TEST(SearchScan, RoundTripsStepsRowsAndWatermark) {
  JournalFixture fx("scan_roundtrip");
  fx.write_two_steps();
  const SearchScan scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_FALSE(scan.fresh);
  ASSERT_EQ(scan.steps.size(), 2u);
  EXPECT_EQ(scan.steps[0].input_index, 0u);
  EXPECT_EQ(scan.steps[0].verdict, Verdict::kRaise);
  EXPECT_EQ(scan.steps[1].input_index, 2u);
  EXPECT_EQ(scan.steps[1].verdict, Verdict::kLower);
  EXPECT_FALSE(scan.test_complete());
  ASSERT_EQ(scan.rows.size(), 2u);
  const std::uint32_t reps = fx.spec.grid_repetitions();
  EXPECT_TRUE(scan.have[0 * reps]);
  EXPECT_TRUE(scan.have[2 * reps]);
  EXPECT_FALSE(scan.have[1 * reps]);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_FALSE(scan.missing_final_newline);
  EXPECT_EQ(scan.valid_bytes, read_file(fx.path).size());
  EXPECT_EQ(scan.header.search_step, kSearchStepVersion);
  EXPECT_EQ(scan.header.search_hash, fx.spec.search_hash());
}

TEST(SearchScan, TestStageRowMarksTheSearchComplete) {
  JournalFixture fx("scan_test_complete");
  fx.write_two_steps();
  SearchStepRow test = step_row(3, 0, 100.0, 80.0);
  test.test_stage = true;
  test.repetitions = 1;
  std::string bytes = read_file(fx.path);
  bytes += search_step_to_jsonl(test) + "\n";
  write_file(fx.path, bytes);
  const SearchScan scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.test_complete());
}

TEST(SearchScan, RefusesAPlainCampaignJournalByName) {
  JournalFixture fx("scan_plain");
  CampaignHeader plain = fx.header();
  plain.search_step = 0;
  plain.search_hash = 0;
  write_file(fx.path, campaign_header_line(plain) + "\n");
  const SearchScan scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("plain campaign journal"), std::string::npos)
      << scan.error;
}

TEST(CampaignScan, RefusesASearchJournalByName) {
  // The mirror rejection: the plain resume path must bounce a stamped
  // journal toward `sweep_cli search --resume`.
  JournalFixture fx("scan_mirror");
  fx.write_two_steps();
  const CampaignScan scan =
      scan_campaign_file(fx.path, fx.sweep.name, fx.trials);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("search journal"), std::string::npos)
      << scan.error;
}

TEST(SearchScan, RefusesHeaderMismatchesByName) {
  JournalFixture fx("scan_mismatch");
  fx.write_two_steps();

  // Different search (same grid): SLO change flips the search hash.
  SearchSpec other = fx.spec;
  other.slo = parse_slo("p99_ms<=50").thresholds;
  ASSERT_NE(other.search_hash(), fx.spec.search_hash());
  SearchScan scan = scan_search_file(fx.path, fx.sweep.name, fx.trials,
                                     other.search_hash());
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("different search"), std::string::npos)
      << scan.error;

  // Different sweep name.
  scan = scan_search_file(fx.path, "elsewhere", fx.trials,
                          fx.spec.search_hash());
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("belongs to sweep"), std::string::npos)
      << scan.error;

  // Different probe grid: a wider ladder expands to more trials.
  SearchSpec wider = fx.spec;
  wider.ladder = {100.0, 200.0, 400.0, 800.0};
  const std::vector<TrialSpec> wide_trials =
      wider.probe_sweep(fx.sweep).expand();
  scan = scan_search_file(fx.path, fx.sweep.name, wide_trials,
                          wider.search_hash());
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("different probe grid"), std::string::npos)
      << scan.error;

  // Sharded headers never belong to a search.
  CampaignHeader sharded = fx.header();
  sharded.shard = ShardRef{1, 4};
  write_file(fx.path, campaign_header_line(sharded) + "\n");
  scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("never sharded"), std::string::npos)
      << scan.error;

  // A step format from the future is refused, not misread.
  CampaignHeader newer = fx.header();
  newer.search_step = kSearchStepVersion + 1;
  write_file(fx.path, campaign_header_line(newer) + "\n");
  scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("newer than this build"), std::string::npos)
      << scan.error;
}

TEST(SearchScan, InteriorDamageIsAHardError) {
  JournalFixture fx("scan_interior");
  fx.write_two_steps();
  const std::string good = read_file(fx.path);

  // Garbage line in the middle (campaign scanner would skip + re-run it).
  std::size_t second_line = good.find('\n') + 1;
  std::string corrupt = good;
  corrupt.insert(second_line, "not json\n");
  write_file(fx.path, corrupt);
  SearchScan scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("corrupt row"), std::string::npos) << scan.error;

  // Non-dense step numbering: a step row out of sequence is damage too.
  std::string skipped = good;
  const std::string step2 = search_step_to_jsonl(step_row(2, 2, 400.0, 160.0));
  const std::string step9 = search_step_to_jsonl(step_row(9, 2, 400.0, 160.0));
  ASSERT_NE(skipped.find(step2), std::string::npos);
  skipped.replace(skipped.find(step2), step2.size(), step9);
  write_file(fx.path, skipped);
  scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("corrupt row"), std::string::npos) << scan.error;

  // Duplicate trial rows are damage here, not a benign re-run artifact:
  // journal bytes are a pure function of the step history.
  const std::uint32_t reps = fx.spec.grid_repetitions();
  std::string duplicated = good;
  duplicated += trial_to_jsonl(row_for(fx.trials[0 * reps], 80.0)) + "\n";
  write_file(fx.path, duplicated);
  scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("corrupt row"), std::string::npos) << scan.error;
}

TEST(SearchScan, PartialTailIsDiscardedAtTheWatermark) {
  JournalFixture fx("scan_tail");
  fx.write_two_steps();
  const std::string good = read_file(fx.path);
  const std::size_t last_line_start = good.rfind('\n', good.size() - 2) + 1;

  // Killed mid-write: half the final step row on disk.
  write_file(fx.path, good.substr(0, last_line_start + 10));
  SearchScan scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_bytes, last_line_start);
  EXPECT_EQ(scan.steps.size(), 1u);

  // Killed between the row bytes and the newline: row kept, flagged.
  write_file(fx.path, good.substr(0, good.size() - 1));
  scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_TRUE(scan.missing_final_newline);
  EXPECT_EQ(scan.valid_bytes, good.size() - 1);
  EXPECT_EQ(scan.steps.size(), 2u);

  // Killed during the very first header write: recognizable prefix means
  // start fresh; an unterminated unrelated file stays a hard error.
  write_file(fx.path, good.substr(0, 12));
  scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.fresh);
  write_file(fx.path, "some other file");
  scan = fx.scan();
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("not a campaign journal"), std::string::npos)
      << scan.error;
}

TEST(SearchJournalWriter, RequiresTheSearchStamp) {
  JournalFixture fx("writer_stamp");
  CampaignHeader plain = fx.header();
  plain.search_step = 0;
  const auto opened =
      SearchJournalWriter::open_fresh(fx.path, plain, test_sink_options());
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.error.find("search stamp"), std::string::npos)
      << opened.error;
}

TEST(SearchJournalWriter, AppendAtWatermarkReproducesUninterruptedBytes) {
  JournalFixture fx("writer_append");
  fx.write_two_steps();
  const std::string good = read_file(fx.path);

  // Chop mid-row, reopen at the watermark, re-append the lost lines: the
  // bytes must match the uninterrupted journal exactly.
  const std::size_t last_line_start = good.rfind('\n', good.size() - 2) + 1;
  write_file(fx.path, good.substr(0, last_line_start + 7));
  const SearchScan scan = fx.scan();
  ASSERT_TRUE(scan.ok()) << scan.error;
  auto opened = SearchJournalWriter::open_append(fx.path, scan.valid_bytes,
                                                 scan.missing_final_newline,
                                                 test_sink_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  opened.writer->append_line(
      good.substr(last_line_start, good.size() - last_line_start - 1));
  opened.writer->flush();
  EXPECT_EQ(read_file(fx.path), good);
}

}  // namespace
}  // namespace adaptbf
