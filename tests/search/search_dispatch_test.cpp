// Search over TCP workers: the adaptive dispatch executor must produce a
// journal byte-identical to the single-process run — with a healthy
// 2-worker fleet, and with one worker hard-killed mid-lease.
#include "search/driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "search/spec.h"
#include "sweep/dispatch.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

SweepSpec base_sweep() {
  ScenarioSpec scenario;
  scenario.name = "fanout";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J";
    job.name += std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(5000));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(2);

  SweepSpec sweep;
  sweep.name = "fanout_search";
  sweep.scenarios.push_back({"fanout", std::move(scenario)});
  sweep.policies = {BwControl::kAdaptive};
  sweep.base_seed = 29;
  return sweep;
}

/// Two repetitions per adjusting probe, so every controller step leases a
/// 2-trial batch — large enough for a worker to die between its rows.
SearchSpec bisect_spec(double mibps_bound) {
  SearchSpec spec;
  spec.controller = SearchControllerKind::kBisect;
  spec.input = SearchInput::kTokenRate;
  spec.ladder = {50.0, 100.0, 200.0, 400.0};
  Threshold cap;
  cap.metric = SearchMetric::kMibps;
  cap.cmp = Threshold::Cmp::kLe;
  cap.bound = mibps_bound;
  spec.slo = {cap};
  spec.objective = MetricSpec{SearchMetric::kMibps};
  spec.budget = 16;
  spec.probe_repetitions = 2;
  spec.test_repetitions = 3;
  return spec;
}

SearchDriverOptions test_options() {
  SearchDriverOptions options;
  options.sink.fsync = false;
  return options;
}

struct FanoutSetup {
  SweepSpec sweep = base_sweep();
  SearchSpec spec;
  std::vector<TrialSpec> trials;

  FanoutSetup() {
    trials = bisect_spec(0.0).probe_sweep(sweep).expand();
    // Place the SLO bound between the measured rung-1 and rung-2 means,
    // so rung 1 is the largest feasible rate whatever the calibration.
    const std::uint32_t reps = bisect_spec(0.0).grid_repetitions();
    std::vector<TrialSpec> subset;
    for (std::size_t k = 1; k <= 2; ++k) {
      subset.push_back(trials[k * reps]);
      subset.push_back(trials[k * reps + 1]);
    }
    SweepRunner::Options options;
    options.threads = 2;
    const std::vector<TrialResult> rows = SweepRunner(options).run(subset);
    const double rung1 = (rows[0].aggregate_mibps + rows[1].aggregate_mibps) / 2.0;
    const double rung2 = (rows[2].aggregate_mibps + rows[3].aggregate_mibps) / 2.0;
    EXPECT_LT(rung1, rung2);
    spec = bisect_spec((rung1 + rung2) / 2.0);
    EXPECT_EQ(spec.validate(sweep), "");
  }

  /// The single-process golden run.
  std::string local_bytes(SearchOutcome& outcome_out) {
    const std::string path = testing::TempDir() + "/fanout_local.jsonl";
    std::remove(path.c_str());
    auto executor = make_local_probe_executor(trials, 2, nullptr);
    outcome_out = run_search(spec, sweep.name, trials, path, /*resume=*/false,
                             *executor, test_options());
    EXPECT_TRUE(outcome_out.ok()) << outcome_out.error;
    return read_file(path);
  }

  /// Runs the search through an adaptive coordinator with two workers,
  /// the second optionally aborting (hard socket close) after its first
  /// streamed row of a lease.
  SearchOutcome dispatch_run(const std::string& path, bool kill_one_worker) {
    std::remove(path.c_str());
    DispatchCoordinatorOptions coord_options;
    coord_options.port = 0;
    coord_options.lease_size = 2;
    coord_options.lease_timeout_s = kill_one_worker ? 1.0 : 10.0;
    coord_options.sink.fsync = false;
    auto opened =
        DispatchCoordinator::open_adaptive(sweep.name, trials, coord_options);
    if (!opened.ok()) {
      SearchOutcome failed;
      failed.error = opened.error;
      return failed;
    }
    DispatchCoordinator& coordinator = *opened.coordinator;
    const std::uint16_t port = coordinator.port();

    DispatchWorkerOptions worker_options;
    worker_options.threads = 1;
    worker_options.heartbeat_interval_s = 0.2;
    worker_options.connect_wait_s = 10.0;
    DispatchWorkerOptions victim_options = worker_options;
    victim_options.abort_after_rows = 1;

    std::thread steady([&] {
      (void)run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                worker_options);
    });
    std::thread second([&, kill_one_worker] {
      (void)run_dispatch_worker(
          "127.0.0.1", port, sweep.name, trials,
          kill_one_worker ? victim_options : worker_options);
    });

    auto executor = make_dispatch_probe_executor(coordinator);
    SearchDriverOptions options = test_options();
    options.metrics = &coordinator.registry();
    const SearchOutcome outcome = run_search(
        spec, sweep.name, trials, path, /*resume=*/false, *executor, options);
    coordinator.finish();
    steady.join();
    second.join();

    // Live search progress rides the coordinator's stats registry.
    EXPECT_EQ(coordinator.registry().gauge(kMetricSearchConverged).value(),
              outcome.converged ? 1.0 : 0.0);
    EXPECT_EQ(coordinator.registry().counter(kMetricSearchSteps).value(),
              outcome.steps);
    return outcome;
  }
};

TEST(SearchDispatch, TwoWorkerFleetReproducesTheLocalJournalBytes) {
  FanoutSetup setup;
  SearchOutcome local;
  const std::string golden = setup.local_bytes(local);
  ASSERT_TRUE(local.ok()) << local.error;
  ASSERT_TRUE(local.best_index.has_value());
  EXPECT_EQ(*local.best_index, 1u);

  const std::string path = testing::TempDir() + "/fanout_fleet.jsonl";
  const SearchOutcome outcome = setup.dispatch_run(path, false);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_TRUE(outcome.converged);
  ASSERT_TRUE(outcome.best_index.has_value());
  EXPECT_EQ(*outcome.best_index, *local.best_index);
  EXPECT_EQ(outcome.best_input, local.best_input);
  EXPECT_EQ(outcome.steps, local.steps);
  EXPECT_EQ(outcome.trials_run, local.trials_run);
  EXPECT_EQ(read_file(path), golden);
}

TEST(SearchDispatch, WorkerKilledMidLeaseStillConvergesByteIdentically) {
  FanoutSetup setup;
  SearchOutcome local;
  const std::string golden = setup.local_bytes(local);
  ASSERT_TRUE(local.ok()) << local.error;

  const std::string path = testing::TempDir() + "/fanout_victim.jsonl";
  const SearchOutcome outcome = setup.dispatch_run(path, true);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_TRUE(outcome.converged);
  ASSERT_TRUE(outcome.best_index.has_value());
  EXPECT_EQ(*outcome.best_index, *local.best_index);
  EXPECT_EQ(outcome.best_input, local.best_input);
  EXPECT_EQ(read_file(path), golden);
}

}  // namespace
}  // namespace adaptbf
