// End-to-end runs of small scenarios through the full stack:
// clients -> OST -> scheduler -> disk -> metrics, under each policy.
#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "support/units.h"

namespace adaptbf {
namespace {

/// Two-job scenario small enough for fast tests: job 1 (1 node) and job 2
/// (3 nodes), both streaming continuously.
ScenarioSpec small_scenario(BwControl control) {
  ScenarioSpec spec;
  spec.name = "small";
  spec.control = control;
  spec.num_threads = 4;
  spec.disk.seq_bandwidth = mib_per_sec(200);
  spec.disk.per_rpc_overhead = SimDuration(0);
  spec.duration = SimDuration::seconds(20);
  spec.stop_when_idle = true;

  JobSpec job1;
  job1.id = JobId(1);
  job1.name = "Job1";
  job1.nodes = 1;
  job1.processes = {continuous_pattern(256), continuous_pattern(256)};
  JobSpec job2;
  job2.id = JobId(2);
  job2.name = "Job2";
  job2.nodes = 3;
  job2.processes = {continuous_pattern(256), continuous_pattern(256)};
  spec.jobs = {job1, job2};
  return spec;
}

TEST(Experiment, NoBwCompletesAllWork) {
  const auto result = run_experiment(small_scenario(BwControl::kNone));
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.finished) << job.name;
    EXPECT_EQ(job.rpcs_completed, 512u) << job.name;
    EXPECT_EQ(job.bytes_completed, 512ull * 1024 * 1024) << job.name;
  }
}

TEST(Experiment, TimelineTotalsMatchJobSummaries) {
  const auto result = run_experiment(small_scenario(BwControl::kAdaptive));
  for (const auto& job : result.jobs)
    EXPECT_EQ(result.timeline.total_bytes(job.id), job.bytes_completed);
  EXPECT_EQ(result.total_bytes,
            result.jobs[0].bytes_completed + result.jobs[1].bytes_completed);
}

TEST(Experiment, AllPoliciesCompleteTheWork) {
  for (BwControl control :
       {BwControl::kNone, BwControl::kStatic, BwControl::kAdaptive}) {
    const auto result = run_experiment(small_scenario(control));
    std::uint64_t total = 0;
    for (const auto& job : result.jobs) total += job.rpcs_completed;
    EXPECT_EQ(total, 1024u) << to_string(control);
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(small_scenario(BwControl::kAdaptive));
  const auto b = run_experiment(small_scenario(BwControl::kAdaptive));
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.allocation_trace.size(), b.allocation_trace.size());
  for (std::size_t w = 0; w < a.allocation_trace.size(); ++w) {
    const auto& wa = a.allocation_trace[w];
    const auto& wb = b.allocation_trace[w];
    ASSERT_EQ(wa.jobs.size(), wb.jobs.size());
    for (std::size_t j = 0; j < wa.jobs.size(); ++j) {
      EXPECT_EQ(wa.jobs[j].tokens, wb.jobs[j].tokens);
      EXPECT_DOUBLE_EQ(wa.jobs[j].record_after, wb.jobs[j].record_after);
    }
  }
}

TEST(Experiment, AdaptiveTraceCapturedOnlyWhenRequested) {
  ExperimentOptions options;
  options.capture_allocation_trace = false;
  const auto result =
      run_experiment(small_scenario(BwControl::kAdaptive), options);
  EXPECT_TRUE(result.allocation_trace.empty());
  const auto with_trace = run_experiment(small_scenario(BwControl::kAdaptive));
  EXPECT_FALSE(with_trace.allocation_trace.empty());
}

TEST(Experiment, NonAdaptivePoliciesHaveNoTrace) {
  const auto result = run_experiment(small_scenario(BwControl::kStatic));
  EXPECT_TRUE(result.allocation_trace.empty());
}

TEST(Experiment, StopWhenIdleEndsBeforeDuration) {
  const auto result = run_experiment(small_scenario(BwControl::kNone));
  // 1 GiB total at 200 MiB/s ~ 5.2 s, well under the 20 s duration.
  EXPECT_LT(result.horizon.to_seconds(), 10.0);
}

TEST(Experiment, HorizonIsFullDurationWithoutIdleStop) {
  auto spec = small_scenario(BwControl::kNone);
  spec.stop_when_idle = false;
  const auto result = run_experiment(spec);
  EXPECT_DOUBLE_EQ(result.horizon.to_seconds(), 20.0);
}

TEST(Experiment, MaxTokenRateDerivedFromDisk) {
  const auto result = run_experiment(small_scenario(BwControl::kAdaptive));
  // 200 MiB/s over 1 MiB RPCs, zero overhead => 200 tokens/s.
  EXPECT_NEAR(result.max_token_rate, 200.0, 1e-6);
}

TEST(Experiment, ExplicitTokenRateOverridesDerived) {
  auto spec = small_scenario(BwControl::kAdaptive);
  spec.max_token_rate = 50.0;
  const auto result = run_experiment(spec);
  EXPECT_DOUBLE_EQ(result.max_token_rate, 50.0);
}

TEST(Experiment, JobLabelsAscending) {
  const auto result = run_experiment(small_scenario(BwControl::kNone));
  const auto labels = result.job_labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].second, "Job1");
  EXPECT_EQ(labels[1].second, "Job2");
}

TEST(Experiment, GiftPolicyRunsEndToEnd) {
  const auto result = run_experiment(small_scenario(BwControl::kGift));
  std::uint64_t total = 0;
  for (const auto& job : result.jobs) total += job.rpcs_completed;
  EXPECT_EQ(total, 1024u);
  EXPECT_TRUE(result.allocation_trace.empty());  // GIFT keeps no trace
  // Equal shares: despite the 1:3 node ratio, both jobs progress at the
  // same rate under GIFT (priority-unaware), so they finish together.
  const auto* j1 = result.find_job(JobId(1));
  const auto* j2 = result.find_job(JobId(2));
  ASSERT_TRUE(j1->finished && j2->finished);
  EXPECT_NEAR(j1->finish_time.to_seconds(), j2->finish_time.to_seconds(),
              0.15 * j2->finish_time.to_seconds());
}

TEST(Experiment, ThrottledJobRunsSlowerThanUnthrottled) {
  // Under static control, job 1 holds 25% of tokens => it must finish
  // later than under no control where FCFS gives it ~50%.
  const auto no_bw = run_experiment(small_scenario(BwControl::kNone));
  const auto static_bw = run_experiment(small_scenario(BwControl::kStatic));
  const auto* job1_none = no_bw.find_job(JobId(1));
  const auto* job1_static = static_bw.find_job(JobId(1));
  ASSERT_NE(job1_none, nullptr);
  ASSERT_NE(job1_static, nullptr);
  ASSERT_TRUE(job1_none->finished && job1_static->finished);
  EXPECT_GT(job1_static->finish_time.to_seconds(),
            job1_none->finish_time.to_seconds());
}

}  // namespace
}  // namespace adaptbf
