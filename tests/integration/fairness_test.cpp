// Fairness-oriented integration tests: Jain's index on delivered bandwidth
// and long-run share conformance under AdapTBF.
#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "support/stats.h"
#include "support/units.h"

namespace adaptbf {
namespace {

ScenarioSpec equal_jobs_scenario(std::size_t num_jobs) {
  ScenarioSpec spec;
  spec.name = "equal-jobs";
  spec.control = BwControl::kAdaptive;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(300);
  spec.disk.per_rpc_overhead = SimDuration(0);
  spec.duration = SimDuration::seconds(20);
  spec.stop_when_idle = false;
  for (std::size_t j = 1; j <= num_jobs; ++j) {
    JobSpec job;
    job.id = JobId(static_cast<std::uint32_t>(j));
    job.name = "Job" + std::to_string(j);
    job.nodes = 1;
    for (int p = 0; p < 4; ++p)
      job.processes.push_back(continuous_pattern(1 << 20));
    spec.jobs.push_back(job);
  }
  return spec;
}

TEST(Fairness, EqualPrioritySaturatedJobsAreNearPerfectlyFair) {
  for (std::size_t num_jobs : {2u, 3u, 5u, 8u}) {
    const auto result = run_experiment(equal_jobs_scenario(num_jobs));
    std::vector<double> shares;
    for (const auto& job : result.jobs) shares.push_back(job.mean_mibps);
    EXPECT_GT(jain_fairness(shares), 0.999) << num_jobs << " jobs";
  }
}

TEST(Fairness, WeightedSharesMatchNodeRatios) {
  ScenarioSpec spec = equal_jobs_scenario(3);
  spec.jobs[0].nodes = 1;
  spec.jobs[1].nodes = 2;
  spec.jobs[2].nodes = 4;
  const auto result = run_experiment(spec);
  const double j1 = result.find_job(JobId(1))->mean_mibps;
  const double j2 = result.find_job(JobId(2))->mean_mibps;
  const double j3 = result.find_job(JobId(3))->mean_mibps;
  EXPECT_NEAR(j2 / j1, 2.0, 0.2);
  EXPECT_NEAR(j3 / j1, 4.0, 0.4);
}

TEST(Fairness, PoissonTrafficStillGetsItsShare) {
  // A Poisson job (irregular singles) competing with a saturated streamer:
  // its delivered throughput must match its offered load (it never wants
  // more than ~its share), and the streamer takes the rest.
  ScenarioSpec spec;
  spec.name = "poisson-vs-stream";
  spec.control = BwControl::kAdaptive;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(300);
  spec.disk.per_rpc_overhead = SimDuration(0);
  spec.duration = SimDuration::seconds(20);
  spec.stop_when_idle = false;

  JobSpec poisson_job;
  poisson_job.id = JobId(1);
  poisson_job.name = "poisson";
  poisson_job.nodes = 1;
  // ~60 RPC/s offered = 60 MiB/s, well under the 150 MiB/s fair share.
  poisson_job.processes.push_back(poisson_pattern(1 << 20, 60.0, /*seed=*/5));
  spec.jobs.push_back(poisson_job);

  JobSpec stream;
  stream.id = JobId(2);
  stream.name = "stream";
  stream.nodes = 1;
  for (int p = 0; p < 4; ++p)
    stream.processes.push_back(continuous_pattern(1 << 20));
  spec.jobs.push_back(stream);

  const auto result = run_experiment(spec);
  EXPECT_NEAR(result.find_job(JobId(1))->mean_mibps, 60.0, 6.0);
  // The streamer gets at least its full 50% share plus part of the
  // surplus. It does NOT absorb everything the Poisson job leaves idle:
  // re-compensation keeps returning tokens to the (positive-record)
  // Poisson job in case its demand returns — the deliberate utilization
  // sacrifice the paper describes for Fig. 5c ("we cannot simply allocate
  // all unused tokens ... as we assume no knowledge of the job's I/O
  // pattern").
  EXPECT_GT(result.find_job(JobId(2))->mean_mibps, 145.0);
  EXPECT_LT(result.find_job(JobId(2))->mean_mibps, 290.0);
}

TEST(Fairness, LongRunTokenDeliveryTracksEntitlement) {
  // Over hundreds of windows, each equal job's cumulative RPCs must stay
  // within a whisker of 1/n of the total (the eqs. 21-25 guarantee
  // composed through the full system).
  const auto result = run_experiment(equal_jobs_scenario(7));
  std::uint64_t total = 0;
  for (const auto& job : result.jobs) total += job.rpcs_completed;
  for (const auto& job : result.jobs) {
    const double share = static_cast<double>(job.rpcs_completed) /
                         static_cast<double>(total);
    EXPECT_NEAR(share, 1.0 / 7.0, 0.01) << job.name;
  }
}

}  // namespace
}  // namespace adaptbf
