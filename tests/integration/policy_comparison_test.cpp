// Scaled-down versions of the paper's §IV scenarios, asserting the
// *qualitative* claims of each evaluation: priority-ordered shares and high
// utilization (IV-D), burst protection with small low-priority loss (IV-E),
// and the lend -> re-compensate record cycle (IV-F).
#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "support/units.h"

namespace adaptbf {
namespace {

/// IV-D shrunk ~8x: 4 jobs x 4 procs x 256 RPCs, priorities 10/10/30/50.
ScenarioSpec mini_allocation(BwControl control) {
  ScenarioSpec spec;
  spec.name = "mini IV-D";
  spec.control = control;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(400);
  spec.disk.per_rpc_overhead = SimDuration::micros(50);
  spec.duration = SimDuration::seconds(40);
  spec.stop_when_idle = true;
  const std::uint32_t nodes[] = {1, 1, 3, 5};
  for (std::uint32_t j = 0; j < 4; ++j) {
    JobSpec job;
    job.id = JobId(j + 1);
    job.name = "Job" + std::to_string(j + 1);
    job.nodes = nodes[j];
    for (int p = 0; p < 4; ++p) job.processes.push_back(continuous_pattern(256));
    spec.jobs.push_back(job);
  }
  return spec;
}

/// IV-E shrunk: 3 bursty high-priority jobs + 1 continuous low-priority.
ScenarioSpec mini_redistribution(BwControl control) {
  ScenarioSpec spec;
  spec.name = "mini IV-E";
  spec.control = control;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(400);
  spec.disk.per_rpc_overhead = SimDuration::micros(50);
  spec.duration = SimDuration::seconds(30);
  spec.stop_when_idle = false;
  const std::uint64_t bursts[] = {24, 32, 40};
  for (std::uint32_t j = 0; j < 3; ++j) {
    JobSpec job;
    job.id = JobId(j + 1);
    job.name = "Job" + std::to_string(j + 1);
    job.nodes = 3;
    for (int p = 0; p < 2; ++p)
      job.processes.push_back(
          burst_pattern(bursts[j] * 12, bursts[j], SimDuration::seconds(3),
                        SimDuration::seconds(j)));
    spec.jobs.push_back(job);
  }
  JobSpec job4;
  job4.id = JobId(4);
  job4.name = "Job4";
  job4.nodes = 1;
  for (int p = 0; p < 8; ++p)
    job4.processes.push_back(continuous_pattern(100000));
  spec.jobs.push_back(job4);
  return spec;
}

/// IV-F shrunk: 4 equal-priority jobs, delayed continuous processes.
ScenarioSpec mini_recompensation(BwControl control) {
  ScenarioSpec spec;
  spec.name = "mini IV-F";
  spec.control = control;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(400);
  spec.disk.per_rpc_overhead = SimDuration::micros(50);
  spec.duration = SimDuration::seconds(30);
  spec.stop_when_idle = false;
  const std::int64_t delays[] = {5, 12, 20};
  const std::uint64_t bursts[] = {12, 16, 8};
  for (std::uint32_t j = 0; j < 3; ++j) {
    JobSpec job;
    job.id = JobId(j + 1);
    job.name = "Job" + std::to_string(j + 1);
    job.nodes = 1;
    job.processes.push_back(burst_pattern(bursts[j] * 20, bursts[j],
                                          SimDuration::seconds(2),
                                          SimDuration::millis(100)));
    job.processes.push_back(
        continuous_pattern(100000, SimDuration::seconds(delays[j])));
    spec.jobs.push_back(job);
  }
  JobSpec job4;
  job4.id = JobId(4);
  job4.name = "Job4";
  job4.nodes = 1;
  for (int p = 0; p < 8; ++p)
    job4.processes.push_back(continuous_pattern(100000));
  spec.jobs.push_back(job4);
  return spec;
}

// ---------------- IV-D claims ----------------

TEST(PolicyComparison, AdaptivePriorityOrdersBandwidth) {
  const auto result = run_experiment(mini_allocation(BwControl::kAdaptive));
  const auto* j1 = result.find_job(JobId(1));
  const auto* j3 = result.find_job(JobId(3));
  const auto* j4 = result.find_job(JobId(4));
  ASSERT_TRUE(j1 && j3 && j4);
  // Identical workloads: the higher-priority job must finish no later.
  ASSERT_TRUE(j1->finished && j3->finished && j4->finished);
  EXPECT_LE(j4->finish_time.to_seconds(), j3->finish_time.to_seconds() + 0.5);
  EXPECT_LT(j4->finish_time.to_seconds(), j1->finish_time.to_seconds());
  EXPECT_LT(j3->finish_time.to_seconds(), j1->finish_time.to_seconds());
}

TEST(PolicyComparison, NoBwIgnoresPriority) {
  const auto result = run_experiment(mini_allocation(BwControl::kNone));
  const auto* j1 = result.find_job(JobId(1));
  const auto* j4 = result.find_job(JobId(4));
  ASSERT_TRUE(j1->finished && j4->finished);
  // FCFS treats equal workloads equally: finish times within 10%.
  EXPECT_NEAR(j1->finish_time.to_seconds(), j4->finish_time.to_seconds(),
              0.1 * j4->finish_time.to_seconds());
}

TEST(PolicyComparison, AdaptiveBeatsStaticAggregate_AllocationScenario) {
  const auto adaptive = run_experiment(mini_allocation(BwControl::kAdaptive));
  const auto static_bw = run_experiment(mini_allocation(BwControl::kStatic));
  // Same total work: AdapTBF must complete it sooner (work conservation
  // reassigns tokens as jobs finish; static leaves them stranded).
  EXPECT_LT(adaptive.horizon.to_seconds(), static_bw.horizon.to_seconds());
}

TEST(PolicyComparison, AdaptiveAggregateNearNoBw_AllocationScenario) {
  const auto adaptive = run_experiment(mini_allocation(BwControl::kAdaptive));
  const auto no_bw = run_experiment(mini_allocation(BwControl::kNone));
  // Fig. 4a: AdapTBF achieves comparable (or better) overall throughput.
  EXPECT_GT(adaptive.aggregate_mibps, 0.85 * no_bw.aggregate_mibps);
}

// ---------------- IV-E claims ----------------

TEST(PolicyComparison, AdaptiveProtectsBurstyHighPriorityJobs) {
  const auto adaptive =
      run_experiment(mini_redistribution(BwControl::kAdaptive));
  const auto no_bw = run_experiment(mini_redistribution(BwControl::kNone));
  // Fig. 6b: high-priority bursty jobs 1-3 gain under AdapTBF vs No BW
  // (under FCFS the continuous job floods the queue ahead of them).
  double adaptive_high = 0.0, none_high = 0.0;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    adaptive_high += adaptive.find_job(JobId(id))->mean_mibps;
    none_high += no_bw.find_job(JobId(id))->mean_mibps;
  }
  EXPECT_GT(adaptive_high, none_high);
}

TEST(PolicyComparison, LowPriorityJobStillProgresses) {
  const auto adaptive =
      run_experiment(mini_redistribution(BwControl::kAdaptive));
  const auto* j4 = adaptive.find_job(JobId(4));
  ASSERT_NE(j4, nullptr);
  // Work conservation: J4 must absorb idle bandwidth between bursts, well
  // beyond its 10% static share (400 MiB/s x 10% = 40 MiB/s).
  EXPECT_GT(j4->mean_mibps, 60.0);
}

TEST(PolicyComparison, AdaptiveBeatsStaticForLowPriorityJob) {
  const auto adaptive =
      run_experiment(mini_redistribution(BwControl::kAdaptive));
  const auto static_bw =
      run_experiment(mini_redistribution(BwControl::kStatic));
  // Fig. 6a: Static BW strands the high-priority jobs' unused tokens; the
  // continuous low-priority job does far better under AdapTBF.
  EXPECT_GT(adaptive.find_job(JobId(4))->mean_mibps,
            static_bw.find_job(JobId(4))->mean_mibps);
}

// ---------------- IV-F claims ----------------

TEST(PolicyComparison, RecordsShowLendThenRecompensate) {
  const auto result =
      run_experiment(mini_recompensation(BwControl::kAdaptive));
  ASSERT_FALSE(result.allocation_trace.empty());
  // Job 3 (largest delay, smallest bursts) must accumulate a positive
  // record early (lending)...
  double max_early_record = 0.0;
  for (const auto& window : result.allocation_trace) {
    if (window.when.to_seconds() > 18.0) break;
    const auto* j3 = window.find(JobId(3));
    if (j3 != nullptr)
      max_early_record = std::max(max_early_record, j3->record_after);
  }
  EXPECT_GT(max_early_record, 0.0);
  // ...and once its continuous process starts (t=20), the record must fall
  // back toward (or below) zero: tokens were re-compensated.
  double late_record = max_early_record;
  for (const auto& window : result.allocation_trace) {
    if (window.when.to_seconds() < 25.0) continue;
    const auto* j3 = window.find(JobId(3));
    if (j3 != nullptr) late_record = std::min(late_record, j3->record_after);
  }
  EXPECT_LT(late_record, max_early_record * 0.5);
}

TEST(PolicyComparison, AdaptiveNearNoBwAggregate_RecompensationScenario) {
  const auto adaptive =
      run_experiment(mini_recompensation(BwControl::kAdaptive));
  const auto no_bw = run_experiment(mini_recompensation(BwControl::kNone));
  // Fig. 8a: AdapTBF on par with No BW overall.
  EXPECT_GT(adaptive.aggregate_mibps, 0.8 * no_bw.aggregate_mibps);
}

TEST(PolicyComparison, StaticDegradesAggregate_RecompensationScenario) {
  const auto adaptive =
      run_experiment(mini_recompensation(BwControl::kAdaptive));
  const auto static_bw =
      run_experiment(mini_recompensation(BwControl::kStatic));
  // Fig. 8a: Static BW suffers significant degradation.
  EXPECT_GT(adaptive.aggregate_mibps, static_bw.aggregate_mibps);
}

}  // namespace
}  // namespace adaptbf
