// Decentralization integration test: independent per-OST controllers must
// compose into globally priority-proportional shares with near-linear
// aggregate scaling (§III-A's core argument).
#include <gtest/gtest.h>

#include "cluster/experiment.h"
#include "support/units.h"

namespace adaptbf {
namespace {

ScenarioSpec striped_scenario(std::uint32_t num_osts) {
  ScenarioSpec spec;
  spec.name = "striped";
  spec.control = BwControl::kAdaptive;
  spec.num_osts = num_osts;
  spec.num_threads = 8;
  spec.disk.seq_bandwidth = mib_per_sec(200);
  spec.disk.per_rpc_overhead = SimDuration(0);
  spec.duration = SimDuration::seconds(20);
  spec.stop_when_idle = false;
  // Two saturated jobs at 1:3 priority, 8 procs each so every OST sees
  // processes of both jobs at every K in {1,2,4}.
  for (std::uint32_t id = 1; id <= 2; ++id) {
    JobSpec job;
    job.id = JobId(id);
    job.name = "Job" + std::to_string(id);
    job.nodes = id == 1 ? 1 : 3;
    for (int p = 0; p < 8; ++p)
      job.processes.push_back(continuous_pattern(1 << 20));
    spec.jobs.push_back(job);
  }
  return spec;
}

TEST(MultiOst, AggregateScalesWithTargets) {
  const auto one = run_experiment(striped_scenario(1));
  const auto four = run_experiment(striped_scenario(4));
  EXPECT_GT(four.aggregate_mibps, 3.5 * one.aggregate_mibps);
}

TEST(MultiOst, GlobalSharesTrackPriorityAtEveryScale) {
  for (std::uint32_t num_osts : {1u, 2u, 4u}) {
    const auto result = run_experiment(striped_scenario(num_osts));
    const double j1 = result.find_job(JobId(1))->mean_mibps;
    const double j2 = result.find_job(JobId(2))->mean_mibps;
    // Priority 25% / 75% => ratio 3, tolerate scheduling slack.
    EXPECT_NEAR(j2 / j1, 3.0, 0.5) << num_osts << " OSTs";
  }
}

TEST(MultiOst, AllTargetsDoWork) {
  // With round-robin process placement every OST must complete bytes —
  // byte totals only balance if placement actually spread the load.
  const auto result = run_experiment(striped_scenario(4));
  // 4 OSTs x 200 MiB/s x 20 s = 16000 MiB upper bound; require at least
  // 80% of it, impossible if any target idled.
  EXPECT_GT(to_mib(result.total_bytes), 0.8 * 16000.0);
}

TEST(MultiOst, TraceFollowsFirstTarget) {
  const auto result = run_experiment(striped_scenario(2));
  ASSERT_FALSE(result.allocation_trace.empty());
  // OST 0 serves half the processes of each job; its window budgets must
  // reflect the single-target token rate, not the doubled aggregate.
  const double budget = result.allocation_trace.front().total_tokens;
  EXPECT_NEAR(budget, result.max_token_rate * 0.1, 1.0);
}

}  // namespace
}  // namespace adaptbf
