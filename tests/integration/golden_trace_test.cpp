// Golden dispatch-order traces for the paper scenarios.
//
// Each entry pins the FNV-1a hash over the exact (fire time, schedule
// sequence) stream of every event the simulator dispatches for one
// scenario x policy run. The values were recorded with the pre-pool event
// queue (std::function + dual unordered_set + binary heap); the pooled
// slot/generation core must reproduce them bit-for-bit — this is the
// determinism contract that keeps figure benches and regression baselines
// byte-identical across event-core rewrites.
//
// If a deliberate semantic change to the simulator breaks these values,
// regenerate them from the *old* core first to prove the change is
// intended, then update the table in the same commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "cluster/experiment.h"
#include "workload/scenario.h"
#include "workload/scenarios_paper.h"

namespace adaptbf {
namespace {

struct GoldenCase {
  const char* scenario;
  const char* policy;  ///< bw_control_config_name token.
  std::uint64_t trace_hash;
};

// Recorded at PR 5 from the pre-refactor event core.
constexpr GoldenCase kGolden[] = {
    {"token_allocation", "none", 0x2af929689f36872bULL},
    {"token_allocation", "static", 0x74e42b6c348635e7ULL},
    {"token_allocation", "adaptive", 0x86b824f68c9eb647ULL},
    {"token_allocation", "gift", 0x74d8d182b4e21c1eULL},
    {"token_redistribution", "none", 0xbffead9dad0605f6ULL},
    {"token_redistribution", "static", 0x9b3c01c5343b7a9fULL},
    {"token_redistribution", "adaptive", 0x7b6d9ad42c45faefULL},
    {"token_redistribution", "gift", 0xb542ab7c738d3bc9ULL},
    {"token_recompensation", "none", 0xcd7634bdc48c3eb2ULL},
    {"token_recompensation", "static", 0x09311dbccb545120ULL},
    {"token_recompensation", "adaptive", 0xac5ba86fcf3bc1c0ULL},
    {"token_recompensation", "gift", 0xf67a1b14d62bdc38ULL},
};

ScenarioSpec make_scenario(const std::string& name, BwControl control) {
  if (name == "token_allocation") return scenario_token_allocation(control);
  if (name == "token_redistribution")
    return scenario_token_redistribution(control);
  return scenario_token_recompensation(control);
}

struct TraceRun {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  ExperimentResult result;
};

TraceRun run_with_trace(const ScenarioSpec& spec, QueueBackend backend,
                        bool batched, Simulator* reuse = nullptr) {
  TraceRun run;
  auto mix = [&run](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      run.hash ^= (v >> (8 * i)) & 0xff;
      run.hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  ExperimentOptions options;
  options.capture_allocation_trace = false;
  options.queue_backend = backend;
  options.batched_dispatch = batched;
  options.simulator = reuse;
  options.dispatch_hook = [&mix](SimTime t, std::uint64_t seq) {
    mix(static_cast<std::uint64_t>(t.ns()));
    mix(seq);
  };
  run.result = run_experiment(spec, options);
  return run;
}

struct TraceConfig {
  QueueBackend backend;
  bool batched;
};

/// Every queue backend x dispatch mode must reproduce the PR-5 golden
/// hashes bit-for-bit: the ordering structure and the batching strategy
/// are pure implementation detail, invisible in the dispatch stream.
class GoldenTrace : public ::testing::TestWithParam<TraceConfig> {};

TEST_P(GoldenTrace, PaperScenarioDispatchOrderIsPinned) {
  for (const auto& golden : kGolden) {
    const auto control = bw_control_from_name(golden.policy);
    ASSERT_TRUE(control.has_value()) << golden.policy;
    const auto run = run_with_trace(make_scenario(golden.scenario, *control),
                                    GetParam().backend, GetParam().batched);
    EXPECT_EQ(run.hash, golden.trace_hash)
        << golden.scenario << " / " << golden.policy << " on "
        << queue_backend_name(GetParam().backend)
        << (GetParam().batched ? "/batched" : "/single-pop")
        << ": dispatch order changed — the determinism contract is broken";
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendMatrix, GoldenTrace,
    ::testing::Values(TraceConfig{QueueBackend::kHeap, true},
                      TraceConfig{QueueBackend::kHeap, false},
                      TraceConfig{QueueBackend::kCalendar, true},
                      TraceConfig{QueueBackend::kCalendar, false}),
    [](const ::testing::TestParamInfo<TraceConfig>& param_info) {
      return std::string(queue_backend_name(param_info.param.backend)) +
             (param_info.param.batched ? "_batched" : "_single_pop");
    });

TEST(GoldenTraceArenaReuse, OneSimulatorAcrossAllRunsReproducesHashes) {
  // Exactly what a sweep worker does: one simulator, reset() between
  // trials, pools warm from the previous run. Every run must still hash to
  // its golden value — reuse may never leak state across trials.
  Simulator sim;
  for (const auto& golden : kGolden) {
    const auto control = bw_control_from_name(golden.policy);
    ASSERT_TRUE(control.has_value()) << golden.policy;
    const auto run = run_with_trace(make_scenario(golden.scenario, *control),
                                    QueueBackend::kHeap, true, &sim);
    EXPECT_EQ(run.hash, golden.trace_hash)
        << golden.scenario << " / " << golden.policy
        << ": reused-arena dispatch order diverged from a fresh simulator";
  }
}

TEST(GoldenTrace, JobSummariesAreSortedAndFindable) {
  for (const char* scenario :
       {"token_allocation", "token_redistribution", "token_recompensation"}) {
    const auto result =
        run_experiment(make_scenario(scenario, BwControl::kAdaptive),
                       ExperimentOptions::without_trace());
    // find_job binary-searches, so the documented "ascending JobId"
    // invariant must actually hold.
    ASSERT_TRUE(std::is_sorted(
        result.jobs.begin(), result.jobs.end(),
        [](const JobSummary& a, const JobSummary& b) { return a.id < b.id; }))
        << scenario;
    for (const auto& job : result.jobs) {
      const JobSummary* found = result.find_job(job.id);
      ASSERT_NE(found, nullptr) << scenario;
      EXPECT_EQ(found->id, job.id);
      EXPECT_EQ(found->name, job.name);
    }
    EXPECT_EQ(result.find_job(JobId(0xfffffff0u)), nullptr);
  }
}

}  // namespace
}  // namespace adaptbf
