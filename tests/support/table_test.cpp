#include "support/table.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table table({"a", "bb"});
  table.add_row({"1", "2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, TitleOnTop) {
  Table table({"x"});
  const std::string out = table.to_string("My Title");
  EXPECT_EQ(out.rfind("My Title", 0), 0u);
}

TEST(Table, ColumnsAlign) {
  Table table({"col", "x"});
  table.add_row({"verylongcell", "1"});
  table.add_row({"s", "2"});
  const std::string out = table.to_string();
  // Both data rows should have the same length after padding.
  const auto first_nl = out.find('\n');
  const auto second_nl = out.find('\n', first_nl + 1);
  const auto third_nl = out.find('\n', second_nl + 1);
  const auto fourth_nl = out.find('\n', third_nl + 1);
  EXPECT_EQ(third_nl - second_nl, fourth_nl - third_nl);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table table({"name"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table table({"v"});
  table.add_row({"plain"});
  EXPECT_NE(table.to_csv().find("plain\n"), std::string::npos);
  EXPECT_EQ(table.to_csv().find("\"plain\""), std::string::npos);
}

TEST(Table, CountsRowsAndCols) {
  Table table({"a", "b", "c"});
  EXPECT_EQ(table.cols(), 3u);
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1", "2", "3"});
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Formatting, FixedPrecision) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.0, 0), "3");
}

TEST(Formatting, CountWithSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

TEST(Formatting, SignedAlwaysShowsSign) {
  EXPECT_EQ(fmt_signed(1.5, 1), "+1.5");
  EXPECT_EQ(fmt_signed(-2.25, 2), "-2.25");
  EXPECT_EQ(fmt_signed(0.0, 1), "+0.0");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_percent(0.333, 0), "33%");
}

}  // namespace
}  // namespace adaptbf
