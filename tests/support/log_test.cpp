// Logger config surface: the --log-level vocabulary and the line
// timestamp format (wall clock + monotonic elapsed) sweep_cli promises in
// docs/sweep_cli.md.
#include "support/log.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace adaptbf {
namespace {

TEST(LogLevelName, ParsesTheCliVocabulary) {
  EXPECT_EQ(log_level_from_name("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_name("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_name("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_name("error"), LogLevel::kError);
  EXPECT_EQ(log_level_from_name("off"), LogLevel::kOff);
}

TEST(LogLevelName, RejectsEverythingElse) {
  EXPECT_FALSE(log_level_from_name("").has_value());
  EXPECT_FALSE(log_level_from_name("WARN").has_value());  // Case-sensitive.
  EXPECT_FALSE(log_level_from_name("warning").has_value());
  EXPECT_FALSE(log_level_from_name("2").has_value());
}

TEST(LogLevelEnv, AppliesAndRejects) {
  const LogLevel before = log_level();
  ASSERT_EQ(setenv("ADAPTBF_LOG_LEVEL", "debug", 1), 0);
  EXPECT_TRUE(init_log_level_from_env());
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  ASSERT_EQ(setenv("ADAPTBF_LOG_LEVEL", "loud", 1), 0);
  EXPECT_FALSE(init_log_level_from_env());
  EXPECT_EQ(log_level(), LogLevel::kDebug);  // Untouched on a bad name.

  ASSERT_EQ(unsetenv("ADAPTBF_LOG_LEVEL"), 0);
  EXPECT_TRUE(init_log_level_from_env());  // Unset: no-op, still true.
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  set_log_level(before);
}

TEST(LogTimestamp, FormatsUtcWallClockPlusElapsed) {
  // 2026-08-07T12:34:56 UTC.
  EXPECT_EQ(format_log_timestamp(1786106096, 789, 1234),
            "2026-08-07T12:34:56.789Z +1234ms");
}

TEST(LogTimestamp, PadsSubsecondAndHandlesEpoch) {
  EXPECT_EQ(format_log_timestamp(0, 7, 0),
            "1970-01-01T00:00:00.007Z +0ms");
}

}  // namespace
}  // namespace adaptbf
