// Contract-violation (death) tests: the library's preconditions must fail
// loudly, not corrupt state. One test per representative contract.
#include <gtest/gtest.h>

#include <memory>

#include "adaptbf/token_allocator.h"
#include "ost/ost.h"
#include "sim/simulator.h"
#include "support/check.h"
#include "tbf/fcfs_scheduler.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {
namespace {

TEST(CheckContract, CheckMacroAborts) {
  EXPECT_DEATH(ADAPTBF_CHECK(1 == 2), "ADAPTBF_CHECK failed");
  EXPECT_DEATH(ADAPTBF_CHECK_MSG(false, "context note"), "context note");
}

TEST(CheckContract, CheckPassesSilently) {
  ADAPTBF_CHECK(true);
  ADAPTBF_CHECK_MSG(2 + 2 == 4, "never printed");
}

// The macro evaluation contract (see check.h): the condition expands into
// the macro body exactly once, so side effects in it happen exactly once.
TEST(CheckContract, ConditionIsEvaluatedExactlyOnce) {
  int evals = 0;
  ADAPTBF_CHECK(++evals == 1);
  EXPECT_EQ(evals, 1);
  ADAPTBF_CHECK_MSG(++evals == 2, "side-effecting condition");
  EXPECT_EQ(evals, 2);
}

// And on the failure path: a condition with a side effect still runs once
// (the death message proves the failure branch was the one taken).
TEST(CheckContract, ConditionIsEvaluatedExactlyOnceOnFailure) {
  EXPECT_DEATH(
      [] {
        int evals = 0;
        ADAPTBF_CHECK(++evals == 99);
      }(),
      "\\+\\+evals == 99");
}

// The message argument is lazy: never evaluated when the check passes,
// so callers may pass expensive formatting expressions.
TEST(CheckContract, MessageIsNotEvaluatedOnSuccess) {
  int msg_evals = 0;
  const auto expensive = [&msg_evals]() -> const char* {
    ++msg_evals;
    return "built";
  };
  ADAPTBF_CHECK_MSG(true, expensive());
  EXPECT_EQ(msg_evals, 0);
}

TEST(CheckContract, SimulatorRejectsPastScheduling) {
  Simulator sim;
  sim.run_until(SimTime(100));
  EXPECT_DEATH(sim.schedule_at(SimTime(50), [] {}), "past");
}

TEST(CheckContract, SimulatorRejectsNegativeDelay) {
  Simulator sim;
  EXPECT_DEATH(sim.schedule_after(SimDuration(-1), [] {}), "negative");
}

TEST(CheckContract, TokenBucketRejectsNegativeRate) {
  EXPECT_DEATH(TokenBucket(-1.0, 3.0, SimTime::zero(), 0.0), "non-negative");
}

TEST(CheckContract, TokenBucketRejectsTimeTravel) {
  TokenBucket bucket(1.0, 3.0, SimTime(100), 0.0);
  EXPECT_DEATH(bucket.refill(SimTime(50)), "backwards");
}

TEST(CheckContract, SchedulerRejectsDuplicateRuleNames) {
  TbfScheduler scheduler;
  RuleSpec spec;
  spec.name = "dup";
  spec.rate = 1.0;
  scheduler.start_rule(spec);
  EXPECT_DEATH(scheduler.start_rule(spec), "duplicate");
}

TEST(CheckContract, SchedulerRejectsSubTokenDepth) {
  TbfScheduler scheduler;
  RuleSpec spec;
  spec.name = "shallow";
  spec.rate = 1.0;
  spec.depth = 0.5;
  EXPECT_DEATH(scheduler.start_rule(spec), "depth");
}

TEST(CheckContract, AllocatorRejectsDuplicateJobs) {
  AllocatorConfig config;
  TokenAllocator allocator(config);
  std::vector<JobWindowInput> inputs{{JobId(1), 1, 5.0}, {JobId(1), 2, 6.0}};
  EXPECT_DEATH((void)allocator.allocate(inputs, SimTime::zero()),
               "duplicate");
}

TEST(CheckContract, AllocatorRejectsZeroNodeJobs) {
  AllocatorConfig config;
  TokenAllocator allocator(config);
  std::vector<JobWindowInput> inputs{{JobId(1), 0, 5.0}};
  EXPECT_DEATH((void)allocator.allocate(inputs, SimTime::zero()),
               "compute node");
}

TEST(CheckContract, OstRequiresScheduler) {
  Simulator sim;
  Ost::Config config;
  EXPECT_DEATH(Ost(sim, config, nullptr), "scheduler");
}

TEST(CheckContract, OstRequiresThreads) {
  Simulator sim;
  Ost::Config config;
  config.num_threads = 0;
  EXPECT_DEATH(Ost(sim, config, std::make_unique<FcfsScheduler>()),
               "thread");
}

}  // namespace
}  // namespace adaptbf
