#include "support/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/random.h"

namespace adaptbf {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(StreamingStats, KnownSequence) {
  StreamingStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats left, right, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    left.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    right.add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

// Shard merging leans on merge() being a proper monoid operation over
// accumulators (within floating-point tolerance): any K-way partition of a
// campaign, merged in any grouping and order, must agree with the single
// pass. Randomized sequences, fixed seeds.
TEST(StreamingStatsMergeProperty, AssociativeAndCommutativeWithinTolerance) {
  Xoshiro256 rng(0x5eed5eed5eed5eedULL);
  for (int round = 0; round < 20; ++round) {
    StreamingStats a, b, c, sequential;
    const auto fill = [&](StreamingStats& stats, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        // Mix magnitudes so Welford actually has something to get wrong.
        const double x = (rng.next_double() - 0.5) * 1e6 + rng.next_double();
        stats.add(x);
        sequential.add(x);
      }
    };
    fill(a, 1 + rng.next() % 40);
    fill(b, 1 + rng.next() % 40);
    fill(c, 1 + rng.next() % 40);

    // (a + b) + c
    StreamingStats left_assoc = a;
    left_assoc.merge(b);
    left_assoc.merge(c);
    // a + (b + c)
    StreamingStats right_assoc = b;
    right_assoc.merge(c);
    StreamingStats right_outer = a;
    right_outer.merge(right_assoc);
    // c + a  vs  a + c (commutativity spot check)
    StreamingStats ca = c, ac = a;
    ca.merge(a);
    ac.merge(c);

    const double scale = std::max(1.0, std::abs(sequential.mean()));
    for (const StreamingStats* merged :
         {&left_assoc, &right_outer}) {
      EXPECT_EQ(merged->count(), sequential.count());
      EXPECT_NEAR(merged->mean(), sequential.mean(), 1e-9 * scale);
      EXPECT_NEAR(merged->variance(), sequential.variance(),
                  1e-6 * std::max(1.0, sequential.variance()));
      EXPECT_DOUBLE_EQ(merged->min(), sequential.min());
      EXPECT_DOUBLE_EQ(merged->max(), sequential.max());
      EXPECT_NEAR(merged->sum(), sequential.sum(), 1e-9 * scale *
                  static_cast<double>(sequential.count()));
    }
    EXPECT_EQ(ca.count(), ac.count());
    EXPECT_NEAR(ca.mean(), ac.mean(), 1e-9 * scale);
    EXPECT_NEAR(ca.variance(), ac.variance(),
                1e-6 * std::max(1.0, ac.variance()));
    EXPECT_DOUBLE_EQ(ca.min(), ac.min());
    EXPECT_DOUBLE_EQ(ca.max(), ac.max());
  }
}

TEST(StreamingStats, MergeWithEmptyIsNoop) {
  StreamingStats stats, empty;
  stats.add(1.0);
  stats.add(2.0);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.5);
}

TEST(StreamingStats, MergeIntoEmptyCopies) {
  StreamingStats stats, other;
  other.add(3.0);
  stats.merge(other);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(Percentile, MedianOfOddCount) {
  std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 20.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

TEST(Percentile, DoesNotMutateInput) {
  std::vector<double> v{5.0, 1.0, 3.0};
  (void)percentile(v, 50.0);
  EXPECT_EQ(v[0], 5.0);
  EXPECT_EQ(v[1], 1.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(JainFairness, AllEqualIsOne) {
  std::vector<double> v{4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 1.0);
}

TEST(JainFairness, SingleUserDominanceIsOneOverN) {
  std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 0.25);
}

TEST(JainFairness, AllZeroIsDegenerateEqual) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(v), 1.0);
}

TEST(JainFairness, EmptyIsDegenerateEqual) {
  // Regression: empty input used to ADAPTBF_CHECK-abort, killing any
  // campaign containing a scenario that finishes with zero jobs.
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

}  // namespace
}  // namespace adaptbf
