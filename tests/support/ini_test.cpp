#include "support/ini.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto file = IniFile::parse(
      "[alpha]\n"
      "key = value\n"
      "[beta]\n"
      "x = 1\n");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->sections(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(file->get("alpha", "key"), "value");
  EXPECT_EQ(file->get("beta", "x"), "1");
  EXPECT_FALSE(file->get("alpha", "missing").has_value());
  EXPECT_TRUE(file->has_section("alpha"));
  EXPECT_FALSE(file->has_section("gamma"));
}

TEST(Ini, TrimsWhitespaceAndKeepsInnerSpaces) {
  const auto file = IniFile::parse("[s]\n  name   =   hello world  \n");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->get("s", "name"), "hello world");
}

TEST(Ini, CommentsIgnored) {
  const auto file = IniFile::parse(
      "# full line\n"
      "[s]          ; section comment\n"
      "a = 1        # trailing\n"
      "; another\n"
      "b = 2\n");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->get("s", "a"), "1");
  EXPECT_EQ(file->get("s", "b"), "2");
}

TEST(Ini, RepeatedKeysCollectInOrder) {
  const auto file = IniFile::parse(
      "[job]\n"
      "process = first\n"
      "process = second\n"
      "process = third\n");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->get("job", "process"), "first");
  EXPECT_EQ(file->get_all("job", "process"),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(Ini, TypedAccessors) {
  const auto file = IniFile::parse(
      "[s]\n"
      "d = 2.5\n"
      "i = -42\n"
      "t = yes\n"
      "f = off\n"
      "bad = zebra\n");
  ASSERT_TRUE(file.has_value());
  EXPECT_DOUBLE_EQ(*file->get_double("s", "d"), 2.5);
  EXPECT_EQ(*file->get_int("s", "i"), -42);
  EXPECT_TRUE(*file->get_bool("s", "t"));
  EXPECT_FALSE(*file->get_bool("s", "f"));
  EXPECT_FALSE(file->get_double("s", "bad").has_value());
  EXPECT_FALSE(file->get_int("s", "d").has_value());  // 2.5 not an int
  EXPECT_FALSE(file->get_bool("s", "bad").has_value());
  EXPECT_FALSE(file->get_double("s", "missing").has_value());
}

TEST(Ini, ErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(IniFile::parse("[s]\nno equals here\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(IniFile::parse("[unterminated\n", &error).has_value());
  EXPECT_FALSE(IniFile::parse("[]\n", &error).has_value());
  EXPECT_FALSE(IniFile::parse("orphan = 1\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(Ini, EmptyFileIsValid) {
  const auto file = IniFile::parse("");
  ASSERT_TRUE(file.has_value());
  EXPECT_TRUE(file->sections().empty());
}

TEST(Ini, KeysListsDuplicates) {
  const auto file = IniFile::parse("[s]\na = 1\nb = 2\na = 3\n");
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->keys("s"), (std::vector<std::string>{"a", "b", "a"}));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(ParseDouble, AcceptsPlainDecimalAndScientific) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_double("-2e3", v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_TRUE(parse_double("+0.25", v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(parse_double(".5", v));
  EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(ParseDouble, RejectsNonFiniteHexAndGarbage) {
  // Regression: the strtod-based parser accepted nan/inf/hex, letting
  // non-finite values into configs (and from there into exports).
  double v = 123.0;
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "infinity", "0x1p4",
                          "0x10", "1e999", "-1e999", "", "+", "1.5x",
                          "++1", "+-1", "+nan"}) {
    EXPECT_FALSE(parse_double(bad, v)) << "accepted '" << bad << "'";
    EXPECT_DOUBLE_EQ(v, 123.0) << "out modified by '" << bad << "'";
  }
}

TEST(ParseDouble, GetDoubleSharesTheStrictness) {
  const auto ini = IniFile::parse("[s]\na = nan\nb = 0x1p4\nc = 2.5\n");
  ASSERT_TRUE(ini.has_value());
  EXPECT_FALSE(ini->get_double("s", "a").has_value());
  EXPECT_FALSE(ini->get_double("s", "b").has_value());
  EXPECT_DOUBLE_EQ(ini->get_double("s", "c").value(), 2.5);
}

}  // namespace
}  // namespace adaptbf
