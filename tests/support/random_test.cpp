#include "support/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace adaptbf {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, KnownFirstValueForSeedZero) {
  // Regression pin: the sequence must never silently change, or every
  // randomized experiment stops being reproducible.
  Xoshiro256 rng(0);
  const std::uint64_t first = rng.next();
  Xoshiro256 again(0);
  EXPECT_EQ(first, again.next());
  EXPECT_NE(first, rng.next());  // sequence advances
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanNearHalf) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedIntStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.next_in(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(Xoshiro256, BoundedIntCoversAllValues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_in(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BoundedIntSingleton) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.next_in(42, 42), 42u);
}

TEST(Xoshiro256, BoundedIntFullRangeDoesNotHang) {
  Xoshiro256 rng(5);
  (void)rng.next_in(0, ~0ULL);
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.05);
}

TEST(Xoshiro256, ExponentialIsNonNegative) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_exponential(1.0), 0.0);
}

TEST(Xoshiro256, NormalHasRequestedMoments) {
  Xoshiro256 rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Xoshiro256, JumpProducesDisjointStreams) {
  Xoshiro256 a(21);
  Xoshiro256 b(21);
  b.jump();
  // The jumped stream must differ from the original immediately.
  bool any_different = false;
  for (int i = 0; i < 10; ++i)
    if (a.next() != b.next()) any_different = true;
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace adaptbf
