// Network-distributed dispatch, proven equivalent by bytes: a campaign
// served to TCP workers over loopback — including workers that die
// mid-lease, go silent, or deliver duplicates — must leave a journal
// whose CSV/JSON artifacts are byte-identical to a single-process run.
// Protocol misuse (foreign version, wrong sweep, wrong grid, bad magic)
// must be rejected by name without poisoning the campaign.
#include "sweep/dispatch.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/sweep_export.h"
#include "obs/metrics.h"
#include "net/frame.h"
#include "net/socket.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"
#include "sweep/trial_sink.h"

namespace adaptbf {
namespace {

using dispatch_wire::Message;

SweepSpec small_sweep() {
  ScenarioSpec scenario;
  scenario.name = "small";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J" + std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(32));
    job.processes.push_back(poisson_pattern(32, 200.0, /*seed=*/j));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(5);
  scenario.stop_when_idle = true;

  SweepSpec sweep;
  sweep.name = "small";
  sweep.scenarios.push_back({"small", std::move(scenario)});
  sweep.policies = {BwControl::kNone, BwControl::kAdaptive};
  sweep.repetitions = 3;
  sweep.base_seed = 11;
  sweep.start_jitter = SimDuration::millis(50);
  return sweep;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

JsonlSinkOptions test_sink_options() {
  JsonlSinkOptions options;
  options.fsync = false;  // Logic tests, not disk durability tests.
  return options;
}

struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts export_artifacts(const std::string& path, const SweepSpec& sweep,
                           const std::vector<TrialSpec>& trials) {
  std::ostringstream json;
  const JsonlExportResult exported =
      export_campaign_from_jsonl(path, sweep.name, trials, &json);
  EXPECT_TRUE(exported.ok()) << exported.error;
  return {sweep_cells_table(exported.cells).to_csv(), json.str()};
}

/// Single-process golden run into `path`; returns its artifacts.
Artifacts golden_artifacts(const SweepSpec& sweep,
                           const std::vector<TrialSpec>& trials,
                           const std::string& path) {
  std::remove(path.c_str());
  CampaignHeader header{sweep.name, sweep_grid_hash(trials), trials.size(),
                        ShardRef{}};
  auto opened = JsonlTrialSink::open_fresh(path, header, test_sink_options());
  EXPECT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = 1;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(trials);
  opened.sink.reset();
  return export_artifacts(path, sweep, trials);
}

/// Golden journal rows keyed by trial index — the EXACT bytes a correct
/// worker would stream, for raw protocol clients.
std::map<std::size_t, std::string> golden_rows(const std::string& path) {
  std::map<std::size_t, std::string> rows;
  std::ifstream file(path, std::ios::binary);
  std::string line;
  std::getline(file, line);  // header
  while (std::getline(file, line)) {
    TrialResult row;
    if (trial_scalars_from_jsonl(line, row)) rows[row.index] = line;
  }
  return rows;
}

DispatchCoordinatorOptions coordinator_options() {
  DispatchCoordinatorOptions options;
  options.port = 0;  // Ephemeral; tests read port() back.
  options.lease_size = 2;
  options.lease_timeout_s = 30.0;
  options.sink = test_sink_options();
  return options;
}

DispatchWorkerOptions worker_options() {
  DispatchWorkerOptions options;
  options.threads = 2;
  options.heartbeat_interval_s = 0.05;
  options.sink = test_sink_options();
  return options;
}

/// Runs serve() on a thread with a watchdog that force-stops a hung
/// coordinator so a logic bug fails the test instead of wedging CI.
class ServeThread {
 public:
  explicit ServeThread(DispatchCoordinator& coordinator)
      : coordinator_(coordinator), thread_([this] {
          result_ = coordinator_.serve();
          done_.store(true);
        }),
        watchdog_([this] {
          for (int i = 0; i < 600 && !done_.load(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          coordinator_.request_stop();
        }) {}

  DispatchServeResult join() {
    thread_.join();
    done_.store(true);
    watchdog_.join();
    return result_;
  }

 private:
  DispatchCoordinator& coordinator_;
  std::atomic<bool> done_{false};
  DispatchServeResult result_;
  std::thread thread_;
  std::thread watchdog_;
};

/// Minimal hand-driven protocol client for misuse/duplicate tests.
struct RawClient {
  TcpSocket socket;

  bool connect(std::uint16_t port) {
    auto connected = TcpSocket::connect_to("127.0.0.1", port);
    if (!connected.ok()) return false;
    socket = std::move(connected.socket);
    return true;
  }
  bool send(std::string_view payload) {
    return write_frame(socket, payload);
  }
  bool read(Message& msg) {
    std::string payload, error;
    if (!read_frame(socket, payload, error)) return false;
    return dispatch_wire::parse(payload, msg);
  }
};

// -------------------------------------------------------- wire round trip

TEST(DispatchWire, BuildersParseBackExactly) {
  Message msg;
  ASSERT_TRUE(dispatch_wire::parse(
      dispatch_wire::hello("camp", 0xdeadbeefcafef00dull, 24), msg));
  EXPECT_EQ(msg.type, Message::Type::kHello);
  EXPECT_EQ(msg.version, kDispatchProtocolVersion);
  EXPECT_EQ(msg.sweep, "camp");
  EXPECT_EQ(msg.grid_hash, 0xdeadbeefcafef00dull);
  EXPECT_EQ(msg.trials, 24u);

  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::welcome(7), msg));
  EXPECT_EQ(msg.type, Message::Type::kWelcome);
  EXPECT_EQ(msg.worker, 7u);

  ASSERT_TRUE(
      dispatch_wire::parse(dispatch_wire::error_msg("no \"thanks\""), msg));
  EXPECT_EQ(msg.type, Message::Type::kError);
  EXPECT_EQ(msg.message, "no \"thanks\"");

  const std::vector<std::uint64_t> indices{3, 5, 8};
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::lease(42, indices), msg));
  EXPECT_EQ(msg.type, Message::Type::kLease);
  EXPECT_EQ(msg.lease, 42u);
  EXPECT_EQ(msg.indices, indices);

  const std::string row = "{\"trial\":3,\"fake\":true}";
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::result(42, row), msg));
  EXPECT_EQ(msg.type, Message::Type::kResult);
  EXPECT_EQ(msg.lease, 42u);
  EXPECT_EQ(msg.row, row) << "row bytes must survive verbatim";

  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::request(), msg));
  EXPECT_EQ(msg.type, Message::Type::kRequest);
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::wait(), msg));
  EXPECT_EQ(msg.type, Message::Type::kWait);
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::heartbeat(), msg));
  EXPECT_EQ(msg.type, Message::Type::kHeartbeat);
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::done(), msg));
  EXPECT_EQ(msg.type, Message::Type::kDone);
}

TEST(DispatchWire, ForeignVersionParsesToItsOwnType) {
  Message msg;
  ASSERT_TRUE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":2,\"type\":\"hello\",\"future\":1}", msg));
  EXPECT_EQ(msg.type, Message::Type::kForeignVersion);
  EXPECT_EQ(msg.version, 2u);
}

TEST(DispatchWire, MalformedPayloadsRejectedWhole) {
  Message msg;
  EXPECT_FALSE(dispatch_wire::parse("", msg));
  EXPECT_FALSE(dispatch_wire::parse("{}", msg));
  EXPECT_FALSE(dispatch_wire::parse("{\"adaptbf_dispatch\":", msg));
  EXPECT_FALSE(
      dispatch_wire::parse("{\"adaptbf_dispatch\":1,\"type\":\"nope\"}", msg));
  // Truncated mid-structure.
  const std::string lease = dispatch_wire::lease(1, std::vector<std::uint64_t>{1, 2});
  EXPECT_FALSE(dispatch_wire::parse(
      std::string_view(lease).substr(0, lease.size() - 3), msg));
  // Trailing garbage.
  EXPECT_FALSE(dispatch_wire::parse(dispatch_wire::done() + "x", msg));
  // Result whose row isn't an object.
  EXPECT_FALSE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":1,\"type\":\"result\",\"lease\":1,\"row\":42}",
      msg));
}

TEST(DispatchWire, TelemetryFramesRoundTrip) {
  Message msg;
  // Heartbeat with counters attached...
  ASSERT_TRUE(dispatch_wire::parse(
      dispatch_wire::heartbeat_counters(7, 123.5), msg));
  EXPECT_EQ(msg.type, Message::Type::kHeartbeat);
  EXPECT_TRUE(msg.has_counters);
  EXPECT_EQ(msg.trials_done, 7u);
  EXPECT_EQ(msg.runtime_ewma_ms, 123.5);
  // ...while the bare pre-telemetry form still parses, counters absent.
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::heartbeat(), msg));
  EXPECT_EQ(msg.type, Message::Type::kHeartbeat);
  EXPECT_FALSE(msg.has_counters);

  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::stats_request("json"), msg));
  EXPECT_EQ(msg.type, Message::Type::kStats);
  EXPECT_EQ(msg.stats_version, kStatsVersion);
  EXPECT_EQ(msg.format, "json");
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::stats_request("prom"), msg));
  EXPECT_EQ(msg.format, "prom");

  const std::string body = "{\"adaptbf_stats\":1,\"rows_done\":3}";
  ASSERT_TRUE(dispatch_wire::parse(dispatch_wire::stats_reply(body), msg));
  EXPECT_EQ(msg.type, Message::Type::kStatsReply);
  EXPECT_EQ(msg.stats_version, kStatsVersion);
  EXPECT_EQ(msg.body, body) << "body must survive quoting verbatim";
}

TEST(DispatchWire, ForeignStatsVersionParsesToVersionOnly) {
  // A foreign stats generation mirrors kForeignVersion: the envelope and
  // version parse, the rest is not ours to interpret, and the receiver
  // rejects the stats VERSION by name.
  Message msg;
  ASSERT_TRUE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":1,\"type\":\"stats\",\"stats_version\":99,"
      "\"mystery\":true}",
      msg));
  EXPECT_EQ(msg.type, Message::Type::kStats);
  EXPECT_EQ(msg.stats_version, 99u);
  EXPECT_TRUE(msg.format.empty());

  ASSERT_TRUE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":1,\"type\":\"stats_reply\",\"stats_version\":7,"
      "\"whatever\":0}",
      msg));
  EXPECT_EQ(msg.type, Message::Type::kStatsReply);
  EXPECT_EQ(msg.stats_version, 7u);
  EXPECT_TRUE(msg.body.empty());

  // OUR generation with missing fields is still malformed, whole.
  EXPECT_FALSE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":1,\"type\":\"stats\"}", msg));
  EXPECT_FALSE(dispatch_wire::parse(
      "{\"adaptbf_dispatch\":1,\"type\":\"stats\",\"stats_version\":1}", msg));
}

// ------------------------------------------- loopback byte equivalence

TEST(DispatchEquivalence, TwoWorkersMatchSingleProcessByteForByte) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_golden.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  const std::string journal = testing::TempDir() + "dispatch_2w.jsonl";
  std::remove(journal.c_str());
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false,
                                          coordinator_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  const std::string worker_journal =
      testing::TempDir() + "dispatch_2w.worker0.jsonl";
  std::remove(worker_journal.c_str());
  DispatchWorkResult results[2];
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([&, w] {
      DispatchWorkerOptions options = worker_options();
      if (w == 0) options.journal_path = worker_journal;  // local cache
      results[w] = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                       options);
    });
  }
  for (auto& worker : workers) worker.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_EQ(served.rows_received, trials.size());
  EXPECT_EQ(served.workers_seen, 2u);
  EXPECT_EQ(served.duplicate_rows, 0u);
  std::size_t total_run = 0;
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok()) << result.error;
    total_run += result.trials_run;
  }
  EXPECT_EQ(total_run, trials.size());

  // The coordinator journal is a first-class unsharded journal...
  const CampaignScan scan = scan_campaign_file(journal, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.duplicate_rows, 0u);

  // ...byte-equivalent to the single-process run.
  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);

  // Worker 0's local journal is itself a valid (partial) journal whose
  // rows all check out against the grid.
  if (results[0].trials_run > 0) {
    const CampaignScan local =
        scan_campaign_file(worker_journal, sweep.name, trials);
    ASSERT_TRUE(local.ok()) << local.error;
    EXPECT_EQ(local.rows, results[0].trials_run);
  }
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
  std::remove(worker_journal.c_str());
}

TEST(DispatchEquivalence, WorkerKilledMidLeaseIsReleasedAndRecovered) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_kg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  const std::string journal = testing::TempDir() + "dispatch_kill.jsonl";
  std::remove(journal.c_str());
  DispatchCoordinatorOptions options = coordinator_options();
  options.lease_size = 3;
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  // Victim: streams one row of its first lease, then hard-closes the
  // socket — no goodbye, exactly like SIGKILL.
  DispatchWorkerOptions victim_options = worker_options();
  victim_options.abort_after_rows = 1;
  DispatchWorkResult victim;
  std::thread victim_thread([&] {
    victim = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 victim_options);
  });
  victim_thread.join();
  EXPECT_FALSE(victim.ok());
  EXPECT_EQ(victim.trials_run, 1u);

  // Survivor finishes the campaign, re-leased remainder included.
  DispatchWorkResult survivor;
  std::thread survivor_thread([&] {
    survivor = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                   worker_options());
  });
  survivor_thread.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_TRUE(survivor.ok()) << survivor.error;
  EXPECT_GE(served.leases_reclaimed, 1u);
  EXPECT_EQ(victim.trials_run + survivor.trials_run, trials.size());

  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

TEST(DispatchEquivalence, SilentWorkerTimesOutAndItsLeaseIsRecovered) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_sg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  const std::string journal = testing::TempDir() + "dispatch_silent.jsonl";
  std::remove(journal.c_str());
  DispatchCoordinatorOptions options = coordinator_options();
  options.lease_timeout_s = 0.3;  // Workers heartbeat at 0.05 s.
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  // The silent client takes a lease, then sends nothing — socket open,
  // no heartbeats. Only the timeout can recover its trials.
  RawClient silent;
  ASSERT_TRUE(silent.connect(port));
  ASSERT_TRUE(silent.send(dispatch_wire::hello(
      sweep.name, sweep_grid_hash(trials), trials.size())));
  Message msg;
  ASSERT_TRUE(silent.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  ASSERT_TRUE(silent.send(dispatch_wire::request()));
  ASSERT_TRUE(silent.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kLease);
  ASSERT_FALSE(msg.indices.empty());

  DispatchWorkResult worker;
  std::thread worker_thread([&] {
    worker = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 worker_options());
  });
  worker_thread.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_TRUE(worker.ok()) << worker.error;
  EXPECT_GE(served.leases_reclaimed, 1u);
  EXPECT_EQ(worker.trials_run, trials.size());

  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

TEST(DispatchEquivalence, DuplicateDeliveryIsIdempotent) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_dg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);
  const std::map<std::size_t, std::string> rows = golden_rows(golden_path);
  ASSERT_EQ(rows.size(), trials.size());

  const std::string journal = testing::TempDir() + "dispatch_dupe.jsonl";
  std::remove(journal.c_str());
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false,
                                          coordinator_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  // The raw client takes one lease and delivers every row TWICE — the
  // retransmit a flaky network or an over-eager retry layer would send.
  RawClient client;
  ASSERT_TRUE(client.connect(port));
  ASSERT_TRUE(client.send(dispatch_wire::hello(
      sweep.name, sweep_grid_hash(trials), trials.size())));
  Message msg;
  ASSERT_TRUE(client.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  ASSERT_TRUE(client.send(dispatch_wire::request()));
  ASSERT_TRUE(client.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kLease);
  const std::uint64_t lease_id = msg.lease;
  const std::vector<std::uint64_t> leased = msg.indices;
  ASSERT_FALSE(leased.empty());
  for (const std::uint64_t index : leased) {
    const std::string& row = rows.at(index);
    ASSERT_TRUE(client.send(dispatch_wire::result(lease_id, row)));
    ASSERT_TRUE(client.send(dispatch_wire::result(lease_id, row)));
  }

  // A real worker completes the remainder while the client idles.
  DispatchWorkResult worker;
  std::thread worker_thread([&] {
    worker = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 worker_options());
  });
  worker_thread.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_TRUE(worker.ok()) << worker.error;
  EXPECT_EQ(served.duplicate_rows, leased.size());
  EXPECT_EQ(served.rows_received, trials.size());

  // The duplicates never reached the journal.
  const CampaignScan scan = scan_campaign_file(journal, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.duplicate_rows, 0u);

  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

TEST(DispatchEquivalence, ServeResumesAPartialJournal) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_rg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  // A coordinator killed mid-campaign leaves a partial journal; simulate
  // with a mid-line truncation of the golden journal, PR 2 style.
  const std::string journal = testing::TempDir() + "dispatch_resume.jsonl";
  const std::string full = read_file(golden_path);
  {
    std::ofstream partial(journal, std::ios::binary);
    partial << full.substr(0, full.size() * 2 / 3 + 3);
  }
  const CampaignScan before = scan_campaign_file(journal, sweep.name, trials);
  ASSERT_TRUE(before.ok()) << before.error;
  ASSERT_GT(before.rows, 0u);
  ASSERT_LT(before.rows, trials.size());

  // Without resume the journal must be refused, same stance as the CLI.
  auto refused = DispatchCoordinator::open(journal, sweep.name, trials,
                                           /*resume=*/false,
                                           coordinator_options());
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error.find("already exists"), std::string::npos)
      << refused.error;

  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/true,
                                          coordinator_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  DispatchWorkResult worker;
  std::thread worker_thread([&] {
    worker = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 worker_options());
  });
  worker_thread.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_TRUE(worker.ok()) << worker.error;
  // Only the missing trials were leased out and re-run.
  EXPECT_EQ(served.rows_received, trials.size() - before.rows);
  EXPECT_EQ(worker.trials_run, trials.size() - before.rows);

  const Artifacts resumed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, resumed.csv);
  EXPECT_EQ(golden.json, resumed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

TEST(DispatchEquivalence, SilentStrangerConnectionIsEvicted) {
  // A connection that never even hellos (port scanner, health probe)
  // must not hold an fd and a poll slot for the campaign's lifetime:
  // the silence timeout applies to every connection, lease or not.
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string journal = testing::TempDir() + "dispatch_stranger.jsonl";
  std::remove(journal.c_str());
  DispatchCoordinatorOptions options = coordinator_options();
  options.lease_timeout_s = 0.2;
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  ServeThread serving(*opened.coordinator);

  RawClient stranger;
  ASSERT_TRUE(stranger.connect(opened.coordinator->port()));
  // Blocking read: returns false at EOF once the coordinator evicts us.
  std::string payload, error;
  EXPECT_FALSE(read_frame(stranger.socket, payload, error));

  // Heartbeating anonymously must not dodge the sweep either: liveness
  // only counts after hello, so this is rejected outright.
  RawClient pulse;
  ASSERT_TRUE(pulse.connect(opened.coordinator->port()));
  ASSERT_TRUE(pulse.send(dispatch_wire::heartbeat()));
  Message msg;
  ASSERT_TRUE(pulse.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kError);
  EXPECT_NE(msg.message.find("before hello"), std::string::npos)
      << msg.message;

  opened.coordinator->request_stop();
  const DispatchServeResult served = serving.join();
  EXPECT_TRUE(served.ok()) << served.error;
  std::remove(journal.c_str());
}

// ------------------------------------------------------- live telemetry

/// Pulls the integer value of `"key":N` out of a stats JSON body.
std::uint64_t stats_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << body;
  if (at == std::string::npos) return ~0ull;
  return std::strtoull(body.c_str() + at + needle.size(), nullptr, 10);
}

/// One stats poll over an open connection; returns the rendered body.
std::string poll_stats(RawClient& client, const std::string& format) {
  EXPECT_TRUE(client.send(dispatch_wire::stats_request(format)));
  Message msg;
  EXPECT_TRUE(client.read(msg));
  EXPECT_EQ(msg.type, Message::Type::kStatsReply);
  EXPECT_EQ(msg.stats_version, kStatsVersion);
  return msg.body;
}

TEST(DispatchStats, LivePollsTrackTheJournalThroughCompletion) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_tg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);
  const std::map<std::size_t, std::string> rows = golden_rows(golden_path);

  const std::string journal = testing::TempDir() + "dispatch_stats.jsonl";
  std::remove(journal.c_str());
  DispatchCoordinatorOptions options = coordinator_options();
  options.linger_s = 30.0;  // Final poll races coordinator exit otherwise.
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  // An anonymous monitor: stats polls need no hello (a scraper never
  // joins the campaign) and repeat on one connection.
  RawClient monitor;
  ASSERT_TRUE(monitor.connect(port));
  const std::string empty = poll_stats(monitor, "json");
  EXPECT_EQ(empty.rfind("{\"adaptbf_stats\":1,", 0), 0u) << empty;
  EXPECT_EQ(stats_field(empty, "trials"), trials.size());
  EXPECT_EQ(stats_field(empty, "rows_done"), 0u);
  EXPECT_NE(empty.find("\"complete\":false"), std::string::npos) << empty;

  // A raw client runs one lease, then polls on ITS OWN connection —
  // per-connection ordering makes the mid-campaign count deterministic.
  RawClient deliverer;
  ASSERT_TRUE(deliverer.connect(port));
  ASSERT_TRUE(deliverer.send(dispatch_wire::hello(
      sweep.name, sweep_grid_hash(trials), trials.size())));
  Message msg;
  ASSERT_TRUE(deliverer.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  ASSERT_TRUE(deliverer.send(dispatch_wire::request()));
  ASSERT_TRUE(deliverer.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kLease);
  const std::uint64_t lease_id = msg.lease;
  const std::vector<std::uint64_t> leased = msg.indices;
  ASSERT_FALSE(leased.empty());
  ASSERT_LT(leased.size(), trials.size());
  for (const std::uint64_t index : leased)
    ASSERT_TRUE(deliverer.send(dispatch_wire::result(lease_id, rows.at(index))));
  const std::string mid = poll_stats(deliverer, "json");
  EXPECT_EQ(stats_field(mid, "rows_done"), leased.size());
  EXPECT_EQ(stats_field(mid, "rows_received"), leased.size());
  EXPECT_NE(mid.find("\"complete\":false"), std::string::npos) << mid;
  // The body's registry is a parseable metrics document whose journal
  // counter agrees with the summary.
  const std::size_t reg = mid.find("\"registry\":");
  ASSERT_NE(reg, std::string::npos) << mid;
  MetricsSnapshot snap;
  ASSERT_TRUE(metrics_from_json(
      std::string_view(mid).substr(reg + 11, mid.size() - reg - 12), snap));
  const MetricSample* journaled = snap.find(kMetricDispatchRowsJournaled);
  ASSERT_NE(journaled, nullptr);
  EXPECT_EQ(journaled->counter, leased.size());
  deliverer.socket.close();  // Lease retired; nothing left to reclaim.

  // A real worker finishes the campaign; the coordinator lingers.
  DispatchWorkResult worker;
  std::thread worker_thread([&] {
    worker = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 worker_options());
  });
  worker_thread.join();
  EXPECT_TRUE(worker.ok()) << worker.error;

  // Same monitor connection, after completion: final fleet totals.
  const std::string final_body = poll_stats(monitor, "json");
  EXPECT_NE(final_body.find("\"complete\":true"), std::string::npos)
      << final_body;
  EXPECT_EQ(stats_field(final_body, "rows_done"), trials.size());
  EXPECT_EQ(stats_field(final_body, "duplicate_rows"), 0u);
  EXPECT_EQ(stats_field(final_body, "workers_seen"), 2u);
  EXPECT_EQ(stats_field(final_body, "leases_outstanding"), 0u);

  // The prom rendering of the same registry scrapes the same total.
  const std::string prom = poll_stats(monitor, "prom");
  EXPECT_NE(prom.find("# TYPE adaptbf_dispatch_rows_journaled_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("adaptbf_dispatch_rows_journaled_total " +
                      std::to_string(trials.size()) + "\n"),
            std::string::npos)
      << prom;

  opened.coordinator->request_stop();
  const DispatchServeResult served = serving.join();
  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);

  // The reported totals are the journal's totals.
  const CampaignScan scan = scan_campaign_file(journal, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.rows, stats_field(final_body, "rows_done"));
  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

TEST(DispatchStats, ReclaimedButCompletedLeaseIsNotCountedReclaimed) {
  // Regression: a lease whose trials were ALL journaled by other
  // connections before its silent owner timed out used to count as a
  // reclaim and requeue an already-done chunk. It must do neither.
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "dispatch_rcg.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);
  const std::map<std::size_t, std::string> rows = golden_rows(golden_path);

  const std::string journal = testing::TempDir() + "dispatch_reclaim.jsonl";
  std::remove(journal.c_str());
  DispatchCoordinatorOptions options = coordinator_options();
  options.lease_timeout_s = 0.4;
  auto opened = DispatchCoordinator::open(journal, sweep.name, trials,
                                          /*resume=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint16_t port = opened.coordinator->port();
  ServeThread serving(*opened.coordinator);

  // The victim takes a lease and goes silent.
  RawClient victim;
  ASSERT_TRUE(victim.connect(port));
  ASSERT_TRUE(victim.send(dispatch_wire::hello(
      sweep.name, sweep_grid_hash(trials), trials.size())));
  Message msg;
  ASSERT_TRUE(victim.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  ASSERT_TRUE(victim.send(dispatch_wire::request()));
  ASSERT_TRUE(victim.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kLease);
  const std::uint64_t victim_lease = msg.lease;
  const std::vector<std::uint64_t> victim_indices = msg.indices;
  ASSERT_FALSE(victim_indices.empty());

  // A second connection delivers the victim's whole lease. Non-owner
  // rows are journaled but never retire someone else's lease, so the
  // victim's lease stays outstanding with every trial already done.
  RawClient helper;
  ASSERT_TRUE(helper.connect(port));
  ASSERT_TRUE(helper.send(dispatch_wire::hello(
      sweep.name, sweep_grid_hash(trials), trials.size())));
  ASSERT_TRUE(helper.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  for (const std::uint64_t index : victim_indices)
    ASSERT_TRUE(
        helper.send(dispatch_wire::result(victim_lease, rows.at(index))));
  const std::string mid = poll_stats(helper, "json");
  EXPECT_EQ(stats_field(mid, "rows_done"), victim_indices.size());
  EXPECT_EQ(stats_field(mid, "leases_outstanding"), 1u);
  helper.socket.close();

  // Block until the timeout sweep evicts the victim (EOF on its socket):
  // reclaim() ran on a lease with nothing left to re-run.
  std::string payload, error;
  EXPECT_FALSE(read_frame(victim.socket, payload, error));

  // A real worker finishes the remainder.
  DispatchWorkResult worker;
  std::thread worker_thread([&] {
    worker = run_dispatch_worker("127.0.0.1", port, sweep.name, trials,
                                 worker_options());
  });
  worker_thread.join();
  const DispatchServeResult served = serving.join();

  ASSERT_TRUE(served.ok()) << served.error;
  EXPECT_TRUE(served.complete);
  EXPECT_TRUE(worker.ok()) << worker.error;
  // The heart of the regression: no reclaim was counted, no chunk was
  // requeued, so nothing was re-run or double-journaled.
  EXPECT_EQ(served.leases_reclaimed, 0u);
  EXPECT_EQ(served.duplicate_rows, 0u);
  EXPECT_EQ(served.rows_received, trials.size());
  EXPECT_EQ(worker.trials_run, trials.size() - victim_indices.size());

  const CampaignScan scan = scan_campaign_file(journal, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.duplicate_rows, 0u);
  const Artifacts distributed = export_artifacts(journal, sweep, trials);
  EXPECT_EQ(golden.csv, distributed.csv);
  EXPECT_EQ(golden.json, distributed.json);
  std::remove(golden_path.c_str());
  std::remove(journal.c_str());
}

// ------------------------------------------------- protocol misuse, named

class DispatchNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    sweep_ = small_sweep();
    trials_ = sweep_.expand();
    journal_ = testing::TempDir() + "dispatch_neg.jsonl";
    std::remove(journal_.c_str());
    auto opened = DispatchCoordinator::open(journal_, sweep_.name, trials_,
                                            /*resume=*/false,
                                            coordinator_options());
    ASSERT_TRUE(opened.ok()) << opened.error;
    coordinator_ = std::move(opened.coordinator);
    serving_ = std::make_unique<ServeThread>(*coordinator_);
  }
  void TearDown() override {
    coordinator_->request_stop();
    const DispatchServeResult served = serving_->join();
    EXPECT_TRUE(served.ok()) << served.error;
    EXPECT_FALSE(served.complete);  // Negative clients run no trials.
    std::remove(journal_.c_str());
  }

  /// Expects the coordinator to answer `payload` with an error frame
  /// whose text contains `needle`, then close the connection.
  void expect_rejection(const std::string& payload,
                        const std::string& needle) {
    RawClient client;
    ASSERT_TRUE(client.connect(coordinator_->port()));
    ASSERT_TRUE(client.send(payload));
    Message msg;
    ASSERT_TRUE(client.read(msg));
    ASSERT_EQ(msg.type, Message::Type::kError);
    EXPECT_NE(msg.message.find(needle), std::string::npos) << msg.message;
    // The connection is dropped after the error frame.
    std::string extra, error;
    EXPECT_FALSE(read_frame(client.socket, extra, error));
  }

  SweepSpec sweep_;
  std::vector<TrialSpec> trials_;
  std::string journal_;
  std::unique_ptr<DispatchCoordinator> coordinator_;
  std::unique_ptr<ServeThread> serving_;
};

TEST_F(DispatchNegative, ForeignProtocolVersionRejectedByName) {
  expect_rejection("{\"adaptbf_dispatch\":2,\"type\":\"hello\"}",
                   "version mismatch");
}

TEST_F(DispatchNegative, WrongSweepNameRejected) {
  expect_rejection(
      dispatch_wire::hello("other_sweep", sweep_grid_hash(trials_),
                           trials_.size()),
      "serves sweep");
}

TEST_F(DispatchNegative, WrongGridHashRejected) {
  expect_rejection(
      dispatch_wire::hello(sweep_.name, sweep_grid_hash(trials_) ^ 1,
                           trials_.size()),
      "different campaign grid");
}

TEST_F(DispatchNegative, MalformedMessageRejected) {
  expect_rejection("this is not json", "malformed");
}

TEST_F(DispatchNegative, RequestBeforeHelloRejected) {
  expect_rejection(dispatch_wire::request(), "before hello");
}

TEST_F(DispatchNegative, BadFrameMagicDropsTheConnection) {
  RawClient client;
  ASSERT_TRUE(client.connect(coordinator_->port()));
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(client.socket.send_all(garbage.data(), garbage.size()));
  Message msg;
  ASSERT_TRUE(client.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kError);
  EXPECT_NE(msg.message.find("magic"), std::string::npos) << msg.message;
  std::string extra, error;
  EXPECT_FALSE(read_frame(client.socket, extra, error));
}

TEST_F(DispatchNegative, ForeignStatsVersionRejectedByName) {
  expect_rejection(
      "{\"adaptbf_dispatch\":1,\"type\":\"stats\",\"stats_version\":99}",
      "stats version mismatch");
}

TEST_F(DispatchNegative, UnknownStatsFormatRejected) {
  expect_rejection(dispatch_wire::stats_request("xml"), "unknown stats format");
}

TEST_F(DispatchNegative, StatsReplySentToCoordinatorRejected) {
  expect_rejection(dispatch_wire::stats_reply("{}"),
                   "coordinator-only message");
}

TEST_F(DispatchNegative, ForgedResultRowRejected) {
  RawClient client;
  ASSERT_TRUE(client.connect(coordinator_->port()));
  ASSERT_TRUE(client.send(dispatch_wire::hello(
      sweep_.name, sweep_grid_hash(trials_), trials_.size())));
  Message msg;
  ASSERT_TRUE(client.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kWelcome);
  // A syntactically valid row for a trial the grid doesn't contain.
  TrialResult forged;
  forged.index = trials_.size() + 100;
  forged.scenario = "small";
  ASSERT_TRUE(client.send(
      dispatch_wire::result(1, trial_to_jsonl(forged))));
  ASSERT_TRUE(client.read(msg));
  ASSERT_EQ(msg.type, Message::Type::kError);
  EXPECT_NE(msg.message.find("does not match the campaign grid"),
            std::string::npos)
      << msg.message;
}

}  // namespace
}  // namespace adaptbf
