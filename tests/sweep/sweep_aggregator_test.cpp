#include "sweep/sweep_aggregator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/random.h"

namespace adaptbf {
namespace {

TEST(SummarizeSamples, EmptyIsAllZero) {
  const SampleSummary s = summarize_samples({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(SummarizeSamples, SingleSampleHasNoSpread) {
  const std::vector<double> v{42.0};
  const SampleSummary s = summarize_samples(v);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(SummarizeSamples, HandComputedClassicSequence) {
  // The classic sequence: mean 5, sample variance 32/7.
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SampleSummary s = summarize_samples(v);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  const double stddev = std::sqrt(32.0 / 7.0);
  EXPECT_NEAR(s.stddev, stddev, 1e-12);
  // 95% CI half-width with df=7: t=2.365.
  EXPECT_NEAR(s.ci95_half, 2.365 * stddev / std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummarizeSamples, TwoSamplesHandComputed) {
  // n=2: mean 15, stddev sqrt(50) = 7.0710678...; df=1 -> t=12.706.
  const std::vector<double> v{10.0, 20.0};
  const SampleSummary s = summarize_samples(v);
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
  EXPECT_NEAR(s.stddev, std::sqrt(50.0), 1e-12);
  EXPECT_NEAR(s.ci95_half, 12.706 * std::sqrt(50.0) / std::sqrt(2.0), 1e-9);
}

TEST(StudentT95, TableValuesAndAsymptote) {
  EXPECT_DOUBLE_EQ(student_t95(0), 0.0);
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t95(7), 2.365);
  EXPECT_DOUBLE_EQ(student_t95(30), 2.042);
  // Between rows the next LOWER df's larger value applies (conservative).
  EXPECT_DOUBLE_EQ(student_t95(35), 2.042);
  EXPECT_DOUBLE_EQ(student_t95(40), 2.021);
  EXPECT_DOUBLE_EQ(student_t95(119), 2.000);
  EXPECT_DOUBLE_EQ(student_t95(120), 1.980);
  EXPECT_DOUBLE_EQ(student_t95(1000), 1.962);
  // Never below the true value at any df (the normal limit is 1.9600).
  EXPECT_GT(student_t95(100000), 1.9599);
}

TEST(StudentT95, MonotonicallyNonIncreasing) {
  for (std::size_t df = 1; df < 200; ++df)
    EXPECT_GE(student_t95(df), student_t95(df + 1)) << "df=" << df;
}

TrialResult make_trial(std::size_t index, const std::string& scenario,
                       BwControl policy, std::uint32_t rep, double mibps,
                       double fairness, double p99,
                       std::uint64_t bytes) {
  TrialResult t;
  t.index = index;
  t.scenario = scenario;
  t.policy = policy;
  t.num_osts = 1;
  t.max_token_rate = -1.0;
  t.repetition = rep;
  t.aggregate_mibps = mibps;
  t.fairness = fairness;
  t.p99_ms = p99;
  t.horizon_s = 10.0;
  t.total_bytes = bytes;
  return t;
}

TEST(AggregateSweep, GroupsByCellInFirstAppearanceOrder) {
  std::vector<TrialResult> trials;
  trials.push_back(make_trial(0, "s1", BwControl::kNone, 0, 100.0, 0.9,
                              5.0, 1000));
  trials.push_back(make_trial(1, "s1", BwControl::kNone, 1, 110.0, 0.8,
                              7.0, 1200));
  trials.push_back(make_trial(2, "s1", BwControl::kAdaptive, 0, 200.0, 0.95,
                              3.0, 2000));
  trials.push_back(make_trial(3, "s1", BwControl::kAdaptive, 1, 220.0, 0.85,
                              4.0, 2400));

  const auto cells = aggregate_sweep(trials);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].policy, BwControl::kNone);
  EXPECT_EQ(cells[1].policy, BwControl::kAdaptive);

  EXPECT_EQ(cells[0].trials, 2u);
  EXPECT_DOUBLE_EQ(cells[0].aggregate_mibps.mean, 105.0);
  // stddev of {100, 110} = sqrt(50); CI with df=1.
  EXPECT_NEAR(cells[0].aggregate_mibps.stddev, std::sqrt(50.0), 1e-12);
  EXPECT_NEAR(cells[0].aggregate_mibps.ci95_half,
              12.706 * std::sqrt(50.0) / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(cells[0].fairness.mean, 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(cells[0].p99_ms.mean, 6.0);
  EXPECT_EQ(cells[0].total_bytes, 2200u);
  EXPECT_DOUBLE_EQ(cells[0].mean_horizon_s, 10.0);

  EXPECT_DOUBLE_EQ(cells[1].aggregate_mibps.mean, 210.0);
  EXPECT_EQ(cells[1].total_bytes, 4400u);
}

TEST(AggregateSweep, SingleTrialCellHasZeroSpread) {
  std::vector<TrialResult> trials;
  trials.push_back(make_trial(0, "s", BwControl::kGift, 0, 50.0, 1.0, 2.0,
                              500));
  const auto cells = aggregate_sweep(trials);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].trials, 1u);
  EXPECT_DOUBLE_EQ(cells[0].aggregate_mibps.stddev, 0.0);
  EXPECT_DOUBLE_EQ(cells[0].aggregate_mibps.ci95_half, 0.0);
}

TEST(AggregateSweep, EmptyInputGivesNoCells) {
  EXPECT_TRUE(aggregate_sweep({}).empty());
}

TEST(AggregateSweep, DistinctTokenRatesAreDistinctCells) {
  std::vector<TrialResult> trials;
  auto a = make_trial(0, "s", BwControl::kNone, 0, 10.0, 1.0, 1.0, 1);
  auto b = make_trial(1, "s", BwControl::kNone, 0, 20.0, 1.0, 1.0, 1);
  b.max_token_rate = 1000.0;
  trials.push_back(a);
  trials.push_back(b);
  EXPECT_EQ(aggregate_sweep(trials).size(), 2u);
}

// The shard merge path's core claim: splitting a campaign's trials into
// ANY random disjoint partition, aggregating each part independently, and
// merging the parts equals the single-pass aggregation — same cells, same
// order, same counts, and statistics within floating-point tolerance.
// Randomized partitions over a 240-trial synthetic campaign, fixed seeds.
TEST(StreamingCellAggregatorProperty, RandomShardPartitionsEqualSinglePass) {
  // 8 cells (2 scenarios x 2 policies x 2 token rates), 30 reps each.
  std::vector<TrialResult> trials;
  Xoshiro256 values(0xfeedfacefeedfaceULL);
  std::size_t index = 0;
  for (std::uint32_t rep = 0; rep < 30; ++rep) {
    for (const char* scenario : {"s1", "s2"}) {
      for (const BwControl policy :
           {BwControl::kStatic, BwControl::kAdaptive}) {
        for (const double rate : {-1.0, 1500.0}) {
          TrialResult t = make_trial(index++, scenario, policy, rep,
                                     50.0 + values.next_double() * 900.0,
                                     values.next_double(),
                                     1.0 + values.next_double() * 40.0,
                                     1000 + values.next() % 100000);
          t.max_token_rate = rate;
          t.horizon_s = 5.0 + values.next_double();
          trials.push_back(std::move(t));
        }
      }
    }
  }
  ASSERT_GE(trials.size(), 200u);
  const std::vector<CellStats> single_pass = aggregate_sweep(trials);

  Xoshiro256 partitioner(0x0a0b0c0d0e0f1011ULL);
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t parts = 2 + static_cast<std::uint32_t>(
                                        partitioner.next() % 6);
    std::vector<StreamingCellAggregator> shards(parts);
    for (const TrialResult& trial : trials)
      shards[partitioner.next() % parts].add(trial);

    StreamingCellAggregator merged;
    for (const StreamingCellAggregator& shard : shards) merged.merge(shard);
    EXPECT_EQ(merged.trials_added(), trials.size());

    const std::vector<CellStats> cells = merged.cells();
    ASSERT_EQ(cells.size(), single_pass.size()) << "round " << round;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(cells[i].cell_id(), single_pass[i].cell_id());
      EXPECT_EQ(cells[i].trials, single_pass[i].trials);
      EXPECT_EQ(cells[i].total_bytes, single_pass[i].total_bytes);
      const auto near = [&](const SampleSummary& got,
                            const SampleSummary& want) {
        EXPECT_EQ(got.n, want.n);
        EXPECT_NEAR(got.mean, want.mean, 1e-9 * std::max(1.0, want.mean));
        EXPECT_NEAR(got.stddev, want.stddev,
                    1e-7 * std::max(1.0, want.stddev));
        EXPECT_NEAR(got.ci95_half, want.ci95_half,
                    1e-7 * std::max(1.0, want.ci95_half));
        EXPECT_DOUBLE_EQ(got.min, want.min);
        EXPECT_DOUBLE_EQ(got.max, want.max);
      };
      near(cells[i].aggregate_mibps, single_pass[i].aggregate_mibps);
      near(cells[i].fairness, single_pass[i].fairness);
      near(cells[i].p99_ms, single_pass[i].p99_ms);
      EXPECT_NEAR(cells[i].mean_horizon_s, single_pass[i].mean_horizon_s,
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace adaptbf
