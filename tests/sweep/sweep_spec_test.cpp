#include "sweep/sweep_spec.h"

#include <gtest/gtest.h>

#include "support/random.h"
#include "workload/scenario.h"

namespace adaptbf {
namespace {

ScenarioSpec tiny_scenario() {
  ScenarioSpec spec;
  spec.name = "tiny";
  JobSpec job;
  job.id = JobId(1);
  job.name = "J1";
  job.nodes = 2;
  job.processes.push_back(continuous_pattern(8));
  job.processes.push_back(poisson_pattern(8, 50.0, /*seed=*/99));
  spec.jobs.push_back(std::move(job));
  spec.duration = SimDuration::seconds(2);
  return spec;
}

SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.scenarios.push_back({"a", tiny_scenario()});
  sweep.scenarios.push_back({"b", tiny_scenario()});
  sweep.policies = {BwControl::kNone, BwControl::kAdaptive};
  sweep.ost_counts = {1, 2};
  sweep.repetitions = 3;
  sweep.base_seed = 5;
  return sweep;
}

TEST(SweepSpec, TrialCountIsGridProduct) {
  const SweepSpec sweep = tiny_sweep();
  // 2 scenarios x 2 policies x 2 ost counts x (1 token rate) x 3 reps.
  EXPECT_EQ(sweep.trial_count(), 24u);
  EXPECT_EQ(sweep.expand().size(), 24u);
}

TEST(SweepSpec, EmptyAxesCountAsOne) {
  SweepSpec sweep;
  sweep.scenarios.push_back({"a", tiny_scenario()});
  sweep.policies = {BwControl::kNone};
  EXPECT_EQ(sweep.trial_count(), 1u);
}

TEST(SweepSpec, IndicesAreDenseAndRowMajor) {
  const auto trials = tiny_sweep().expand();
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(trials[i].index, i);
  // Row-major: repetition varies fastest, then OST count, then policy.
  EXPECT_EQ(trials[0].repetition, 0u);
  EXPECT_EQ(trials[1].repetition, 1u);
  EXPECT_EQ(trials[2].repetition, 2u);
  EXPECT_EQ(trials[0].num_osts, 1u);
  EXPECT_EQ(trials[3].num_osts, 2u);
  EXPECT_EQ(trials[0].policy, BwControl::kNone);
  EXPECT_EQ(trials[6].policy, BwControl::kAdaptive);
  EXPECT_EQ(trials[0].scenario, "a");
  EXPECT_EQ(trials[12].scenario, "b");
}

TEST(SweepSpec, GridCoordinatesAreApplied) {
  SweepSpec sweep = tiny_sweep();
  sweep.token_rates = {800.0};
  sweep.duration_override = SimDuration::seconds(1);
  const auto trials = sweep.expand();
  for (const auto& trial : trials) {
    EXPECT_EQ(trial.spec.control, trial.policy);
    EXPECT_EQ(trial.spec.num_osts, trial.num_osts);
    EXPECT_DOUBLE_EQ(trial.spec.max_token_rate, 800.0);
    EXPECT_EQ(trial.spec.duration, SimDuration::seconds(1));
    EXPECT_EQ(trial.spec.name, trial.scenario);
  }
}

TEST(SweepSpec, SeedsArePairedAcrossPoliciesAndDistinctAcrossReps) {
  const auto trials = tiny_sweep().expand();
  // Repetition r has the same seed in every cell (paired comparisons).
  for (const auto& a : trials)
    for (const auto& b : trials)
      if (a.repetition == b.repetition) {
        EXPECT_EQ(a.seed, b.seed);
      }
  EXPECT_NE(trials[0].seed, trials[1].seed);
  EXPECT_NE(trials[1].seed, trials[2].seed);
  // And the seed is exactly the derived per-repetition stream.
  EXPECT_EQ(trials[0].seed, derive_stream_seed(5, 0));
  EXPECT_EQ(trials[1].seed, derive_stream_seed(5, 1));
}

TEST(SweepSpec, PoissonPatternsAreReseededPerRepetition) {
  const auto trials = tiny_sweep().expand();
  const auto& pattern_rep0 = trials[0].spec.jobs[0].processes[1];
  const auto& pattern_rep1 = trials[1].spec.jobs[0].processes[1];
  EXPECT_NE(pattern_rep0.seed, 99u);  // Original seed replaced.
  EXPECT_NE(pattern_rep0.seed, pattern_rep1.seed);
  // Paired: the adaptive run of rep 0 sees the same Poisson stream.
  const auto& pattern_adaptive = trials[6].spec.jobs[0].processes[1];
  EXPECT_EQ(pattern_rep0.seed, pattern_adaptive.seed);
}

TEST(SweepSpec, StartJitterIsDeterministicPerSeedAndBounded) {
  SweepSpec sweep = tiny_sweep();
  sweep.start_jitter = SimDuration::millis(100);
  const auto trials = sweep.expand();
  const auto trials_again = sweep.expand();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    for (std::size_t p = 0; p < 2; ++p) {
      const SimDuration delay =
          trials[i].spec.jobs[0].processes[p].start_delay;
      EXPECT_EQ(delay, trials_again[i].spec.jobs[0].processes[p].start_delay);
      EXPECT_GE(delay, SimDuration(0));
      EXPECT_LT(delay, SimDuration::millis(100));
    }
  }
  // Different repetitions draw different jitter.
  EXPECT_NE(trials[0].spec.jobs[0].processes[0].start_delay,
            trials[1].spec.jobs[0].processes[0].start_delay);
}

TEST(SweepSpec, NoJitterKeepsOriginalDelays) {
  const auto trials = tiny_sweep().expand();
  EXPECT_EQ(trials[0].spec.jobs[0].processes[0].start_delay, SimDuration(0));
}

TEST(SweepSpec, CellIdIgnoresRepetition) {
  const auto trials = tiny_sweep().expand();
  EXPECT_EQ(trials[0].cell_id(), trials[1].cell_id());
  EXPECT_NE(trials[0].cell_id(), trials[3].cell_id());  // Different osts.
  EXPECT_NE(trials[0].cell_id(), trials[6].cell_id());  // Different policy.
  EXPECT_NE(trials[0].cell_id(), trials[12].cell_id()); // Different scenario.
}

TEST(DeriveStreamSeed, IsPureAndSpreadsAdjacentIndices) {
  EXPECT_EQ(derive_stream_seed(1, 0), derive_stream_seed(1, 0));
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(1, 1));
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
  // Adjacent indices must differ in many bits, not just the low ones.
  const std::uint64_t diff =
      derive_stream_seed(7, 10) ^ derive_stream_seed(7, 11);
  EXPECT_GT(__builtin_popcountll(diff), 16);
}

}  // namespace
}  // namespace adaptbf
