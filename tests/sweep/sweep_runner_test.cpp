#include "sweep/sweep_runner.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "metrics/sweep_export.h"
#include "sweep/sweep_aggregator.h"
#include "sweep/trial_sink.h"

namespace adaptbf {
namespace {

/// Small but non-trivial campaign: two policies, Poisson + continuous
/// processes, jitter on, two repetitions. Runs in well under a second.
SweepSpec small_sweep() {
  ScenarioSpec scenario;
  scenario.name = "small";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J" + std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(32));
    job.processes.push_back(poisson_pattern(32, 200.0, /*seed=*/j));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(5);
  scenario.stop_when_idle = true;

  SweepSpec sweep;
  sweep.name = "small";
  sweep.scenarios.push_back({"small", std::move(scenario)});
  sweep.policies = {BwControl::kNone, BwControl::kAdaptive};
  sweep.repetitions = 2;
  sweep.base_seed = 11;
  sweep.start_jitter = SimDuration::millis(50);
  return sweep;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.seed, b.seed);
  // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
  EXPECT_EQ(a.aggregate_mibps, b.aggregate_mibps);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p95_ms, b.p95_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].mean_mibps, b.jobs[j].mean_mibps);
    EXPECT_EQ(a.jobs[j].bytes_completed, b.jobs[j].bytes_completed);
  }
}

TEST(SweepRunner, ResultsAreBitIdenticalAcrossThreadCounts) {
  const SweepSpec sweep = small_sweep();

  SweepRunner::Options serial;
  serial.threads = 1;
  const auto one = SweepRunner(serial).run(sweep);

  SweepRunner::Options parallel;
  parallel.threads = 4;
  const auto four = SweepRunner(parallel).run(sweep);

  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), sweep.trial_count());
  for (std::size_t i = 0; i < one.size(); ++i) expect_identical(one[i], four[i]);

  // And the full export pipeline is byte-identical too.
  const auto cells_one = aggregate_sweep(one);
  const auto cells_four = aggregate_sweep(four);
  EXPECT_EQ(sweep_to_json(sweep.name, one, cells_one),
            sweep_to_json(sweep.name, four, cells_four));
  EXPECT_EQ(sweep_cells_table(cells_one).to_csv(),
            sweep_cells_table(cells_four).to_csv());
  EXPECT_EQ(sweep_trials_table(one).to_csv(),
            sweep_trials_table(four).to_csv());
}

TEST(SweepRunner, ResultsOrderedByTrialIndex) {
  SweepRunner::Options options;
  options.threads = 3;
  const auto results = SweepRunner(options).run(small_sweep());
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i].index, i);
}

TEST(SweepRunner, TrialsProduceNonTrivialMetrics) {
  const auto results = SweepRunner().run(small_sweep());
  for (const auto& trial : results) {
    EXPECT_GT(trial.aggregate_mibps, 0.0) << "trial " << trial.index;
    EXPECT_GT(trial.fairness, 0.0);
    EXPECT_LE(trial.fairness, 1.0);
    EXPECT_GT(trial.total_bytes, 0u);
    EXPECT_EQ(trial.jobs.size(), 2u);
  }
}

TEST(SweepRunner, SeededRepetitionsDiffer) {
  const auto results = SweepRunner().run(small_sweep());
  // Jitter + Poisson reseeding: repetition 0 and 1 of the same cell must
  // not be byte-equal (otherwise the seed axis is dead).
  EXPECT_NE(results[0].events_dispatched, results[1].events_dispatched);
}

TEST(SweepRunner, ProgressCallbackSeesEveryTrialExactlyOnce) {
  SweepRunner::Options options;
  options.threads = 2;
  std::vector<bool> seen(small_sweep().trial_count(), false);
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  options.on_trial_done = [&](std::size_t completed, std::size_t total,
                              const TrialResult& result) {
    // Serialized by the runner's mutex: safe to touch locals.
    ++calls;
    EXPECT_EQ(total, seen.size());
    // Strictly increasing 1..total: the counter ticks under the same
    // lock that serializes the callbacks.
    EXPECT_EQ(completed, calls);
    EXPECT_FALSE(seen[result.index]);
    seen[result.index] = true;
    last_completed = completed;
  };
  (void)SweepRunner(options).run(small_sweep());
  EXPECT_EQ(calls, seen.size());
  EXPECT_EQ(last_completed, seen.size());
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(SweepRunner, AllocationTraceDefaultsOffForSweeps) {
  // Campaign memory stays bounded: the per-window allocation trace is
  // opt-in for sweeps even though single experiments default it on.
  EXPECT_FALSE(SweepRunner::Options{}.experiment.capture_allocation_trace);
  EXPECT_TRUE(ExperimentOptions{}.capture_allocation_trace);
}

/// In-memory sink that counts appends and can be told to throw.
class RecordingSink : public TrialSink {
 public:
  std::vector<TrialResult> rows;
  std::size_t throw_on_append = 0;  ///< 1-based; 0 = never throw.
  std::size_t flushes = 0;

  void append(const TrialResult& result) override {
    if (throw_on_append != 0 && rows.size() + 1 == throw_on_append)
      throw std::runtime_error("sink full");
    rows.push_back(result);
  }
  void flush() override { ++flushes; }
};

TEST(SweepRunner, WorkerExceptionRethrownOnCallerThread) {
  // Regression: a throw inside the worker loop used to escape the worker
  // thread and std::terminate the whole campaign. Now the first exception
  // is captured, the pool drains, and the caller sees the throw.
  SweepRunner::Options options;
  options.threads = 4;
  std::size_t calls = 0;
  options.on_trial_done = [&](std::size_t, std::size_t,
                              const TrialResult&) {
    if (++calls == 2) throw std::runtime_error("boom");
  };
  EXPECT_THROW((void)SweepRunner(options).run(small_sweep()),
               std::runtime_error);
}

TEST(SweepRunner, ThrowingSinkStopsCampaignAndRethrows) {
  RecordingSink sink;
  sink.throw_on_append = 3;
  SweepRunner::Options options;
  options.threads = 2;
  options.sink = &sink;
  EXPECT_THROW((void)SweepRunner(options).run(small_sweep()),
               std::runtime_error);
  // The campaign stopped early but already-sunk rows survived, and the
  // runner still hit its final flush (durability point for the tail).
  // Trials already in flight on other workers may land after the throw,
  // so the bound is "the 2 before the throw, plus at most one straggler
  // per other worker" — never the full campaign.
  EXPECT_GE(sink.rows.size(), 2u);
  EXPECT_LT(sink.rows.size(), small_sweep().trial_count());
  EXPECT_GE(sink.flushes, 1u);
}

TEST(SweepRunner, SinkModeSinksFullRowsAndReleasesJobsPayloads) {
  const SweepSpec sweep = small_sweep();
  RecordingSink sink;
  SweepRunner::Options options;
  options.threads = 2;
  options.sink = &sink;
  const auto results = SweepRunner(options).run(sweep);

  ASSERT_EQ(sink.rows.size(), sweep.trial_count());
  for (const auto& row : sink.rows)
    EXPECT_EQ(row.jobs.size(), 2u) << "sink must see the full payload";
  EXPECT_GE(sink.flushes, 1u);
  // Returned results keep scalars (progress/debug) but not the per-trial
  // jobs vectors — that's the bounded-memory contract of sink mode.
  for (const auto& trial : results) {
    EXPECT_TRUE(trial.jobs.empty());
    EXPECT_EQ(trial.jobs.capacity(), 0u);
    EXPECT_GT(trial.aggregate_mibps, 0.0);
  }

  // Scalars are bit-identical to a sink-less run.
  const auto plain = SweepRunner().run(sweep);
  ASSERT_EQ(plain.size(), results.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].aggregate_mibps, results[i].aggregate_mibps);
    EXPECT_EQ(plain[i].events_dispatched, results[i].events_dispatched);
  }
}

TEST(SummarizeTrial, ZeroJobScenarioYieldsValidResult) {
  // Regression: jain_fairness(per_job) used to ADAPTBF_CHECK-abort on a
  // trial that completed with zero jobs. Empty is defined as fairness 1.
  TrialSpec trial;
  trial.index = 5;
  trial.scenario = "empty";
  trial.policy = BwControl::kStatic;
  ExperimentResult result;
  result.scenario_name = "empty";
  result.horizon = SimTime(0);
  const TrialResult summary = summarize_trial(trial, result);
  EXPECT_EQ(summary.index, 5u);
  EXPECT_EQ(summary.fairness, 1.0);
  EXPECT_EQ(summary.aggregate_mibps, 0.0);
  EXPECT_TRUE(summary.jobs.empty());
}

TEST(SweepRunner, ZeroThreadsAutoDetects) {
  SweepRunner::Options options;
  options.threads = 0;
  const auto results = SweepRunner(options).run(small_sweep());
  EXPECT_EQ(results.size(), small_sweep().trial_count());
}

}  // namespace
}  // namespace adaptbf
