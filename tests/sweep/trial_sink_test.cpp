#include "sweep/trial_sink.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace adaptbf {
namespace {

/// A trial with awkward values: non-round doubles (round-trip stress),
/// escapes in names, sentinel token rate, multiple jobs.
TrialResult sample_trial() {
  TrialResult trial;
  trial.index = 7;
  trial.scenario = "noisy \"neighbor\"\tA";
  trial.policy = BwControl::kAdaptive;
  trial.num_osts = 4;
  trial.max_token_rate = -1.0;
  trial.repetition = 3;
  trial.seed = 0xdeadbeefcafef00dULL;
  trial.aggregate_mibps = 1234.5678901234567;
  trial.fairness = 1.0 / 3.0;
  trial.p50_ms = 0.1;
  trial.p95_ms = 95.000000001;
  trial.p99_ms = 1e-300;
  trial.horizon_s = 30.000000000000004;
  trial.total_bytes = 1ull << 40;
  trial.events_dispatched = 987654321;
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSummary job;
    job.id = JobId(j);
    job.name = "J\\" + std::to_string(j);
    job.nodes = j * 3;
    job.rpcs_completed = 1000 + j;
    job.bytes_completed = (1ull << 30) + j;
    job.mean_mibps = 0.1 + static_cast<double>(j) / 7.0;
    job.finish_time = SimTime(123456789 * j);
    job.finished = (j == 1);
    trial.jobs.push_back(std::move(job));
  }
  return trial;
}

void expect_bit_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.num_osts, b.num_osts);
  EXPECT_EQ(a.max_token_rate, b.max_token_rate);
  EXPECT_EQ(a.repetition, b.repetition);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.aggregate_mibps, b.aggregate_mibps);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p95_ms, b.p95_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].id, b.jobs[j].id);
    EXPECT_EQ(a.jobs[j].name, b.jobs[j].name);
    EXPECT_EQ(a.jobs[j].nodes, b.jobs[j].nodes);
    EXPECT_EQ(a.jobs[j].rpcs_completed, b.jobs[j].rpcs_completed);
    EXPECT_EQ(a.jobs[j].bytes_completed, b.jobs[j].bytes_completed);
    EXPECT_EQ(a.jobs[j].mean_mibps, b.jobs[j].mean_mibps);
    EXPECT_EQ(a.jobs[j].finish_time, b.jobs[j].finish_time);
    EXPECT_EQ(a.jobs[j].finished, b.jobs[j].finished);
  }
}

TEST(TrialJsonl, RoundTripIsBitExact) {
  const TrialResult original = sample_trial();
  const std::string line = trial_to_jsonl(original);
  TrialResult parsed;
  ASSERT_TRUE(trial_from_jsonl(line, parsed)) << line;
  expect_bit_identical(original, parsed);
  // And serializing the parse reproduces the identical line: the journal
  // is a fixed point, so resumed rows re-export byte-identically.
  EXPECT_EQ(trial_to_jsonl(parsed), line);
}

TEST(TrialJsonl, EmptyJobsRoundTrips) {
  TrialResult trial = sample_trial();
  trial.jobs.clear();
  TrialResult parsed;
  ASSERT_TRUE(trial_from_jsonl(trial_to_jsonl(trial), parsed));
  EXPECT_TRUE(parsed.jobs.empty());
  expect_bit_identical(trial, parsed);
}

TEST(TrialJsonl, NonFiniteDoublesWriteNullAndParseToNaN) {
  TrialResult trial = sample_trial();
  trial.fairness = std::numeric_limits<double>::quiet_NaN();
  trial.p99_ms = std::numeric_limits<double>::infinity();
  const std::string line = trial_to_jsonl(trial);
  EXPECT_NE(line.find("\"fairness\":null"), std::string::npos);
  EXPECT_NE(line.find("\"p99_ms\":null"), std::string::npos);
  EXPECT_EQ(line.find("nan"), std::string::npos);
  EXPECT_EQ(line.find("inf"), std::string::npos);
  TrialResult parsed;
  ASSERT_TRUE(trial_from_jsonl(line, parsed));
  EXPECT_TRUE(std::isnan(parsed.fairness));
  EXPECT_TRUE(std::isnan(parsed.p99_ms));
}

TEST(TrialJsonl, EveryStrictPrefixFailsToParse) {
  // Crash-safety core: a line truncated at ANY byte must be rejected, not
  // partially accepted — the scanner counts it missing and re-runs it.
  const std::string line = trial_to_jsonl(sample_trial());
  TrialResult parsed;
  for (std::size_t len = 0; len < line.size(); ++len)
    EXPECT_FALSE(trial_from_jsonl(std::string_view(line).substr(0, len),
                                  parsed))
        << "prefix length " << len;
  EXPECT_FALSE(trial_from_jsonl(line + "x", parsed));  // Trailing garbage.
  EXPECT_TRUE(trial_from_jsonl(line, parsed));
}

TEST(TrialJsonl, ScalarParseValidatesJobsButDiscardsThem) {
  const std::string line = trial_to_jsonl(sample_trial());
  TrialResult parsed;
  ASSERT_TRUE(trial_scalars_from_jsonl(line, parsed));
  EXPECT_TRUE(parsed.jobs.empty());
  EXPECT_EQ(parsed.seed, sample_trial().seed);
  // Same strictness as the full parse: truncation inside jobs still fails.
  EXPECT_FALSE(trial_scalars_from_jsonl(
      std::string_view(line).substr(0, line.size() - 2), parsed));
}

TEST(CampaignHeaderLine, RoundTripsAndRejectsGarbage) {
  CampaignHeader header;
  header.sweep = "paper \"q\"";
  header.grid_hash = 0x0123456789abcdefULL;
  header.trials = 144;
  const std::string line = campaign_header_line(header);
  CampaignHeader parsed;
  ASSERT_TRUE(parse_campaign_header(line, parsed)) << line;
  EXPECT_EQ(parsed.sweep, header.sweep);
  EXPECT_EQ(parsed.grid_hash, header.grid_hash);
  EXPECT_EQ(parsed.trials, header.trials);
  for (std::size_t len = 0; len < line.size(); ++len)
    EXPECT_FALSE(parse_campaign_header(
        std::string_view(line).substr(0, len), parsed));
  EXPECT_FALSE(parse_campaign_header("{\"other\":1}", parsed));
}

TEST(JsonlTrialSink, WritesHeaderThenDurableRows) {
  const std::string path = testing::TempDir() + "sink_basic.jsonl";
  std::remove(path.c_str());
  CampaignHeader header{"unit", 42, 3, ShardRef{}};
  JsonlSinkOptions options;
  options.flush_every = 2;
  options.fsync = false;  // tmpfs; keep the test fast.
  auto opened = JsonlTrialSink::open_fresh(path, header, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  for (std::size_t i = 0; i < 3; ++i) {
    TrialResult trial = sample_trial();
    trial.index = i;
    opened.sink->append(trial);
  }
  EXPECT_EQ(opened.sink->rows_appended(), 3u);
  opened.sink.reset();  // Close flushes the odd tail row.

  std::ifstream file(path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));
  CampaignHeader parsed_header;
  EXPECT_TRUE(parse_campaign_header(line, parsed_header));
  EXPECT_EQ(parsed_header.sweep, "unit");
  std::vector<TrialResult> rows;
  TrialResult row;
  while (std::getline(file, line)) {
    ASSERT_TRUE(trial_from_jsonl(line, row));
    rows.push_back(row);
  }
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(rows[i].index, i);
  std::remove(path.c_str());
}

TEST(JsonlTrialSink, OpenAppendTruncatesPartialTail) {
  const std::string path = testing::TempDir() + "sink_truncate.jsonl";
  std::remove(path.c_str());
  CampaignHeader header{"unit", 42, 2, ShardRef{}};
  JsonlSinkOptions options;
  options.fsync = false;
  {
    auto opened = JsonlTrialSink::open_fresh(path, header, options);
    ASSERT_TRUE(opened.ok()) << opened.error;
    TrialResult trial = sample_trial();
    trial.index = 0;
    opened.sink->append(trial);
  }
  // Simulate a crash mid-write: append half a row with no newline.
  std::uint64_t good_size = 0;
  {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    good_size = static_cast<std::uint64_t>(file.tellg());
  }
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file << trial_to_jsonl(sample_trial()).substr(0, 40);
  }
  auto opened = JsonlTrialSink::open_append(path, good_size,
                                            /*add_newline=*/false, options);
  ASSERT_TRUE(opened.ok()) << opened.error;
  TrialResult trial = sample_trial();
  trial.index = 1;
  opened.sink->append(trial);
  opened.sink.reset();

  std::ifstream file(path);
  std::string line;
  ASSERT_TRUE(std::getline(file, line));  // Header.
  TrialResult row;
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_TRUE(trial_from_jsonl(line, row));
  EXPECT_EQ(row.index, 0u);
  ASSERT_TRUE(std::getline(file, line));
  EXPECT_TRUE(trial_from_jsonl(line, row));  // No torn concatenation.
  EXPECT_EQ(row.index, 1u);
  EXPECT_FALSE(std::getline(file, line));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adaptbf
