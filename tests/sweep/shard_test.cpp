// Sharded campaign fan-out, proven equivalent by construction AND by
// bytes: K shards run through the real journal/merge path must produce
// CSV/JSON artifacts byte-identical to the single-process run, survive a
// killed-and-resumed shard, and every merge misuse (wrong grid,
// overlapping shards, missing shard, a trial duplicated across shards)
// must fail with a distinct, actionable error — never a silent
// double-count.
#include "sweep/shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/sweep_export.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"
#include "sweep/trial_sink.h"

namespace adaptbf {
namespace {

SweepSpec small_sweep() {
  ScenarioSpec scenario;
  scenario.name = "small";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J" + std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(32));
    job.processes.push_back(poisson_pattern(32, 200.0, /*seed=*/j));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(5);
  scenario.stop_when_idle = true;

  SweepSpec sweep;
  sweep.name = "small";
  sweep.scenarios.push_back({"small", std::move(scenario)});
  sweep.policies = {BwControl::kNone, BwControl::kAdaptive};
  sweep.repetitions = 3;
  sweep.base_seed = 11;
  sweep.start_jitter = SimDuration::millis(50);
  return sweep;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary);
  file << contents;
}

JsonlSinkOptions test_sink_options() {
  JsonlSinkOptions options;
  options.fsync = false;  // Unit tests exercise logic, not disk durability.
  return options;
}

/// Runs one shard's slice of the campaign into a fresh shard journal,
/// exactly as one `sweep_cli --shard-index I --shard-count K` process
/// would. Returns the shard journal path.
std::string run_shard(const SweepSpec& sweep,
                      const std::vector<TrialSpec>& all_trials,
                      const std::string& base, ShardRef shard,
                      std::uint32_t threads) {
  const std::string path = shard_journal_path(base, shard);
  std::remove(path.c_str());
  CampaignHeader header{sweep.name, sweep_grid_hash(all_trials),
                        all_trials.size(), shard};
  auto opened = JsonlTrialSink::open_fresh(path, header, test_sink_options());
  EXPECT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = threads;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(plan_shard(all_trials, shard).trials);
  return path;
}

/// Runs every shard of a K-way split; returns the K journal paths.
std::vector<std::string> run_all_shards(
    const SweepSpec& sweep, const std::vector<TrialSpec>& all_trials,
    const std::string& base, std::uint32_t shard_count) {
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < shard_count; ++i)
    paths.push_back(
        run_shard(sweep, all_trials, base, ShardRef{i, shard_count},
                  /*threads=*/1 + i % 3));
  return paths;
}

/// CSV + JSON artifacts derived from a complete unsharded journal.
struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts export_artifacts(const std::string& path, const SweepSpec& sweep,
                           const std::vector<TrialSpec>& trials) {
  std::ostringstream json;
  const JsonlExportResult exported =
      export_campaign_from_jsonl(path, sweep.name, trials, &json);
  EXPECT_TRUE(exported.ok()) << exported.error;
  return {sweep_cells_table(exported.cells).to_csv(), json.str()};
}

/// The single-process golden artifacts: full campaign into one journal.
Artifacts golden_artifacts(const SweepSpec& sweep,
                           const std::vector<TrialSpec>& trials,
                           const std::string& path) {
  std::remove(path.c_str());
  CampaignHeader header{sweep.name, sweep_grid_hash(trials), trials.size(),
                        ShardRef{}};
  auto opened = JsonlTrialSink::open_fresh(path, header, test_sink_options());
  EXPECT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = 1;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(trials);
  opened.sink.reset();
  return export_artifacts(path, sweep, trials);
}

void remove_all(const std::vector<std::string>& paths) {
  for (const auto& path : paths) std::remove(path.c_str());
}

// ------------------------------------------------------------- plan shape

TEST(ShardRefChecks, ValidatesIndexAgainstCount) {
  EXPECT_TRUE(shard_ref_error(ShardRef{}).empty());
  EXPECT_TRUE(shard_ref_error(ShardRef{0, 1}).empty());
  EXPECT_TRUE(shard_ref_error(ShardRef{3, 4}).empty());
  EXPECT_FALSE(shard_ref_error(ShardRef{0, 0}).empty());
  EXPECT_FALSE(shard_ref_error(ShardRef{4, 4}).empty());
  EXPECT_FALSE(shard_ref_error(ShardRef{7, 3}).empty());
}

TEST(ShardPlan, StridePartitionIsDisjointCompleteAndBalanced) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  for (std::uint32_t count = 1; count <= 5; ++count) {
    std::set<std::size_t> seen;
    std::size_t smallest = trials.size(), largest = 0;
    for (std::uint32_t index = 0; index < count; ++index) {
      const ShardPlan plan = plan_shard(trials, ShardRef{index, count});
      EXPECT_EQ(plan.shard, (ShardRef{index, count}));
      smallest = std::min(smallest, plan.trials.size());
      largest = std::max(largest, plan.trials.size());
      for (const TrialSpec& trial : plan.trials) {
        EXPECT_EQ(shard_owner(trial.index, count), index);
        // Disjoint: no trial appears in two shards.
        EXPECT_TRUE(seen.insert(trial.index).second)
            << "trial " << trial.index << " in two shards at K=" << count;
      }
    }
    // Complete: the K slices cover the whole grid...
    EXPECT_EQ(seen.size(), trials.size()) << "K=" << count;
    // ...and the stride keeps them balanced within one trial.
    EXPECT_LE(largest - smallest, 1u) << "K=" << count;
  }
}

TEST(ShardPlan, JournalPathNamesTheSlice) {
  EXPECT_EQ(shard_journal_path("c.jsonl", ShardRef{}), "c.jsonl");
  EXPECT_EQ(shard_journal_path("c.jsonl", ShardRef{2, 5}),
            "c.jsonl.shard-2-of-5");
}

// ------------------------------------------------------ header round trip

TEST(ShardHeader, RoundTripsAndKeepsUnshardedBytesStable) {
  CampaignHeader header{"camp", 0xdeadbeefcafef00dull, 12, ShardRef{2, 3}};
  CampaignHeader parsed;
  ASSERT_TRUE(parse_campaign_header(campaign_header_line(header), parsed));
  EXPECT_EQ(parsed.sweep, "camp");
  EXPECT_EQ(parsed.grid_hash, header.grid_hash);
  EXPECT_EQ(parsed.trials, 12u);
  EXPECT_EQ(parsed.shard, (ShardRef{2, 3}));

  // The unsharded header must keep the exact PR 2 wire format: no shard
  // keys at all, so pre-shard journals and merged journals are the same
  // dialect.
  header.shard = ShardRef{};
  const std::string line = campaign_header_line(header);
  EXPECT_EQ(line.find("shard"), std::string::npos) << line;
  ASSERT_TRUE(parse_campaign_header(line, parsed));
  EXPECT_EQ(parsed.shard, ShardRef{});

  // A stamped shard must be a real slice; index >= count never parses.
  EXPECT_FALSE(parse_campaign_header(
      "{\"adaptbf_sweep\":1,\"name\":\"x\",\"grid_hash\":"
      "\"0000000000000001\",\"trials\":4,\"shard\":3,\"shard_count\":3}",
      parsed));
  EXPECT_FALSE(parse_campaign_header(
      "{\"adaptbf_sweep\":1,\"name\":\"x\",\"grid_hash\":"
      "\"0000000000000001\",\"trials\":4,\"shard\":0,\"shard_count\":1}",
      parsed));
}

// --------------------------------------------------------- shard-aware scan

TEST(ShardScan, RejectsWrongShardIdentityWithDistinctErrors) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string base = testing::TempDir() + "scan_shard.jsonl";
  const std::string path =
      run_shard(sweep, trials, base, ShardRef{1, 3}, /*threads=*/1);

  // The right shard scans clean and is complete.
  CampaignScan scan = scan_campaign_file(path, sweep.name, trials,
                                         ShardRef{1, 3});
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.header.shard, (ShardRef{1, 3}));
  EXPECT_EQ(scan.expected_rows, plan_shard(trials, ShardRef{1, 3}).trials.size());
  EXPECT_TRUE(missing_trials(scan, plan_shard(trials, ShardRef{1, 3}).trials)
                  .empty());

  // A different shard index: "mixed up", not "count changed".
  scan = scan_campaign_file(path, sweep.name, trials, ShardRef{0, 3});
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("belongs to shard 1/3"), std::string::npos)
      << scan.error;
  EXPECT_NE(scan.error.find("mixed up"), std::string::npos) << scan.error;

  // A different shard count is its own story.
  scan = scan_campaign_file(path, sweep.name, trials, ShardRef{1, 4});
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("shard count changed"), std::string::npos)
      << scan.error;

  // An unsharded reader must not consume a slice...
  scan = scan_campaign_file(path, sweep.name, trials);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("merge"), std::string::npos) << scan.error;

  // ...and export (which scans unsharded) refuses it the same way.
  const JsonlExportResult exported =
      export_campaign_from_jsonl(path, sweep.name, trials, nullptr);
  EXPECT_FALSE(exported.ok());
  EXPECT_NE(exported.error.find("merge"), std::string::npos)
      << exported.error;
  std::remove(path.c_str());
}

TEST(ShardScan, ForeignRowIsAHardErrorWithItsLineNumber) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string base = testing::TempDir() + "scan_foreign.jsonl";
  const std::string path0 =
      run_shard(sweep, trials, base, ShardRef{0, 2}, /*threads=*/1);
  const std::string path1 =
      run_shard(sweep, trials, base, ShardRef{1, 2}, /*threads=*/1);

  // Splice a shard-1 row into shard 0's journal: parses fine, owned by
  // the other shard — exactly the row a merge would double-count.
  std::string journal0 = read_file(path0);
  const std::string journal1 = read_file(path1);
  const std::size_t row_start = journal1.find('\n') + 1;
  const std::size_t row_end = journal1.find('\n', row_start) + 1;
  journal0 += journal1.substr(row_start, row_end - row_start);
  write_file(path0, journal0);

  const CampaignScan scan =
      scan_campaign_file(path0, sweep.name, trials, ShardRef{0, 2});
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("double-count"), std::string::npos) << scan.error;
  // The spliced row landed on line 5 (header + shard 0's three rows).
  EXPECT_NE(scan.error.find("line 5"), std::string::npos) << scan.error;
  std::remove(path0.c_str());
  std::remove(path1.c_str());
}

// --------------------------------------- equivalence: shards == one process

TEST(ShardEquivalence, MergedShardsMatchSingleProcessByteForByte) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "eq_golden.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  for (std::uint32_t count = 2; count <= 4; ++count) {
    const std::string base =
        testing::TempDir() + "eq_k" + std::to_string(count) + ".jsonl";
    const std::vector<std::string> shards =
        run_all_shards(sweep, trials, base, count);
    const std::string merged = base + ".merged";
    const ShardMergeResult result =
        merge_shard_journals(shards, sweep.name, trials, merged);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.rows, trials.size());
    EXPECT_EQ(result.shard_count, count);

    // The merged journal is a first-class unsharded journal...
    const CampaignScan scan =
        scan_campaign_file(merged, sweep.name, trials);
    ASSERT_TRUE(scan.ok()) << scan.error;
    EXPECT_TRUE(scan.complete());
    EXPECT_EQ(scan.header.shard, ShardRef{});

    // ...whose artifacts are byte-identical to the single-process run's.
    const Artifacts sharded = export_artifacts(merged, sweep, trials);
    EXPECT_EQ(golden.csv, sharded.csv) << "K=" << count;
    EXPECT_EQ(golden.json, sharded.json) << "K=" << count;
    remove_all(shards);
    std::remove(merged.c_str());
  }
  std::remove(golden_path.c_str());
}

TEST(ShardEquivalence, KilledShardResumesThenMergesByteIdentical) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string golden_path = testing::TempDir() + "kill_golden.jsonl";
  const Artifacts golden = golden_artifacts(sweep, trials, golden_path);

  const std::string base = testing::TempDir() + "kill_k3.jsonl";
  const std::vector<std::string> shards = run_all_shards(sweep, trials, base, 3);

  // "Kill" shard 1 mid-write: chop its journal mid-line, PR 2 style.
  const std::string victim = shards[1];
  const std::string full = read_file(victim);
  write_file(victim, full.substr(0, full.size() * 2 / 3 + 3));

  // Merging with a wounded shard must refuse and name the fix.
  const std::string merged = base + ".merged";
  ShardMergeResult result =
      merge_shard_journals(shards, sweep.name, trials, merged);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("incomplete"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("--shard-index 1"), std::string::npos)
      << result.error;

  // Resume only the victim, against only its own slice.
  const ShardRef shard{1, 3};
  const std::vector<TrialSpec> slice = plan_shard(trials, shard).trials;
  const CampaignScan scan =
      scan_campaign_file(victim, sweep.name, trials, shard);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.truncated_tail);
  const std::vector<TrialSpec> todo = missing_trials(scan, slice);
  ASSERT_FALSE(todo.empty());
  for (const TrialSpec& trial : todo)
    EXPECT_EQ(shard_owner(trial.index, 3), 1u);
  auto opened = JsonlTrialSink::open_append(
      victim, scan.valid_bytes, scan.missing_final_newline,
      test_sink_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = 2;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(todo);
  opened.sink.reset();

  result = merge_shard_journals(shards, sweep.name, trials, merged);
  ASSERT_TRUE(result.ok()) << result.error;
  const Artifacts resumed = export_artifacts(merged, sweep, trials);
  EXPECT_EQ(golden.csv, resumed.csv);
  EXPECT_EQ(golden.json, resumed.json);
  remove_all(shards);
  std::remove(merged.c_str());
  std::remove(golden_path.c_str());
}

// ------------------------------------------------- merge misuse, each named

class ShardMergeNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    sweep_ = small_sweep();
    trials_ = sweep_.expand();
    base_ = testing::TempDir() + "neg.jsonl";
    shards_ = run_all_shards(sweep_, trials_, base_, 3);
    merged_ = base_ + ".merged";
  }
  void TearDown() override {
    remove_all(shards_);
    std::remove(merged_.c_str());
  }

  SweepSpec sweep_;
  std::vector<TrialSpec> trials_;
  std::string base_;
  std::vector<std::string> shards_;
  std::string merged_;
};

TEST_F(ShardMergeNegative, MismatchedGridHash) {
  SweepSpec reseeded = small_sweep();
  reseeded.base_seed = 12;
  const ShardMergeResult result = merge_shard_journals(
      shards_, sweep_.name, reseeded.expand(), merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("different campaign grid"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("line 1"), std::string::npos) << result.error;
}

TEST_F(ShardMergeNegative, OverlappingShards) {
  // The same slice twice (plus the others): both files claim shard 0/3.
  std::vector<std::string> paths = shards_;
  paths.push_back(shards_[0]);
  const ShardMergeResult result =
      merge_shard_journals(paths, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("overlapping shards"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("both claim shard 0/3"), std::string::npos)
      << result.error;
}

TEST_F(ShardMergeNegative, MissingShard) {
  const std::vector<std::string> partial{shards_[0], shards_[2]};
  const ShardMergeResult result =
      merge_shard_journals(partial, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("missing shard 1/3"), std::string::npos)
      << result.error;
}

TEST_F(ShardMergeNegative, DuplicatedTrialAcrossShards) {
  // Copy one of shard 0's rows into shard 1's journal: without the
  // ownership check the trial would be counted twice after merge.
  const std::string journal0 = read_file(shards_[0]);
  const std::size_t row_start = journal0.find('\n') + 1;
  const std::size_t row_end = journal0.find('\n', row_start) + 1;
  write_file(shards_[1], read_file(shards_[1]) +
                             journal0.substr(row_start, row_end - row_start));
  const ShardMergeResult result =
      merge_shard_journals(shards_, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("double-count"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("line "), std::string::npos) << result.error;
}

TEST_F(ShardMergeNegative, DisagreeingShardCounts) {
  const std::string alien =
      run_shard(sweep_, trials_, base_ + ".alien", ShardRef{1, 4},
                /*threads=*/1);
  const std::vector<std::string> paths{shards_[0], alien};
  const ShardMergeResult result =
      merge_shard_journals(paths, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("disagree on the shard count"),
            std::string::npos)
      << result.error;
  std::remove(alien.c_str());
}

TEST_F(ShardMergeNegative, UnshardedJournalIsNotAShard) {
  const std::string golden_path = testing::TempDir() + "neg_unsharded.jsonl";
  (void)golden_artifacts(sweep_, trials_, golden_path);
  const std::vector<std::string> paths{golden_path};
  const ShardMergeResult result =
      merge_shard_journals(paths, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unsharded"), std::string::npos)
      << result.error;
  std::remove(golden_path.c_str());
}

TEST_F(ShardMergeNegative, OutputAliasingAnInputShardIsRefused) {
  // Writing the merge over one of its own inputs would truncate that
  // shard's rows before they are read; a complete shard set must still
  // refuse, before any byte is written.
  const std::string before = read_file(shards_[0]);
  const ShardMergeResult result =
      merge_shard_journals(shards_, sweep_.name, trials_, shards_[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("destroy"), std::string::npos) << result.error;
  EXPECT_EQ(read_file(shards_[0]), before) << "input shard was clobbered";
}

TEST_F(ShardMergeNegative, ExistingOutputFileIsNotClobbered) {
  write_file(merged_, "precious bytes\n");
  const ShardMergeResult result =
      merge_shard_journals(shards_, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("already exists"), std::string::npos)
      << result.error;
  EXPECT_EQ(read_file(merged_), "precious bytes\n");
}

TEST_F(ShardMergeNegative, EmptyShardListAndUnreadableFile) {
  ShardMergeResult result =
      merge_shard_journals({}, sweep_.name, trials_, merged_);
  EXPECT_FALSE(result.ok());

  const std::vector<std::string> paths{base_ + ".does-not-exist"};
  result = merge_shard_journals(paths, sweep_.name, trials_, merged_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot open"), std::string::npos)
      << result.error;
}

}  // namespace
}  // namespace adaptbf
