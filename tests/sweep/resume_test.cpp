// Kill-and-resume round trips: a campaign interrupted at an arbitrary
// byte boundary must resume to byte-identical CSV/JSON artifacts vs. an
// uninterrupted single-threaded run, at any thread count.
#include "sweep/resume.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/sweep_export.h"
#include "sweep/sweep_aggregator.h"
#include "sweep/sweep_runner.h"
#include "sweep/trial_sink.h"

namespace adaptbf {
namespace {

SweepSpec small_sweep() {
  ScenarioSpec scenario;
  scenario.name = "small";
  for (std::uint32_t j = 1; j <= 2; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.name = "J" + std::to_string(j);
    job.nodes = j;
    job.processes.push_back(continuous_pattern(32));
    job.processes.push_back(poisson_pattern(32, 200.0, /*seed=*/j));
    scenario.jobs.push_back(std::move(job));
  }
  scenario.duration = SimDuration::seconds(5);
  scenario.stop_when_idle = true;

  SweepSpec sweep;
  sweep.name = "small";
  sweep.scenarios.push_back({"small", std::move(scenario)});
  sweep.policies = {BwControl::kNone, BwControl::kAdaptive};
  sweep.repetitions = 3;
  sweep.base_seed = 11;
  sweep.start_jitter = SimDuration::millis(50);
  return sweep;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary);
  file << contents;
}

JsonlSinkOptions test_sink_options() {
  JsonlSinkOptions options;
  options.fsync = false;  // Unit tests exercise logic, not disk durability.
  return options;
}

/// Runs the full campaign into a fresh journal at `path`.
void run_journaled(const SweepSpec& sweep,
                   const std::vector<TrialSpec>& trials,
                   const std::string& path, std::uint32_t threads) {
  std::remove(path.c_str());
  CampaignHeader header{sweep.name, sweep_grid_hash(trials), trials.size(),
                        ShardRef{}};
  auto opened = JsonlTrialSink::open_fresh(path, header, test_sink_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = threads;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(trials);
}

/// CSV + JSON artifacts derived from a journal.
struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts export_artifacts(const std::string& path, const SweepSpec& sweep,
                           const std::vector<TrialSpec>& trials) {
  std::ostringstream json;
  const JsonlExportResult exported =
      export_campaign_from_jsonl(path, sweep.name, trials, &json);
  EXPECT_TRUE(exported.ok()) << exported.error;
  return {sweep_cells_table(exported.cells).to_csv(), json.str()};
}

/// Resumes whatever is missing from `path` with `threads` workers.
void resume_journaled(const SweepSpec& sweep,
                      const std::vector<TrialSpec>& trials,
                      const std::string& path, std::uint32_t threads) {
  const CampaignScan scan = scan_campaign_file(path, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_FALSE(scan.fresh);
  auto opened =
      JsonlTrialSink::open_append(path, scan.valid_bytes,
                                  scan.missing_final_newline,
                                  test_sink_options());
  ASSERT_TRUE(opened.ok()) << opened.error;
  SweepRunner::Options options;
  options.threads = threads;
  options.sink = opened.sink.get();
  (void)SweepRunner(options).run(missing_trials(scan, trials));
}

TEST(SweepGridHash, StableAndSensitive) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  EXPECT_EQ(sweep_grid_hash(trials), sweep_grid_hash(sweep.expand()));

  SweepSpec reseeded = small_sweep();
  reseeded.base_seed = 12;
  EXPECT_NE(sweep_grid_hash(trials), sweep_grid_hash(reseeded.expand()));

  SweepSpec longer = small_sweep();
  longer.duration_override = SimDuration::seconds(3);
  EXPECT_NE(sweep_grid_hash(trials), sweep_grid_hash(longer.expand()));

  SweepSpec fewer = small_sweep();
  fewer.repetitions = 2;
  EXPECT_NE(sweep_grid_hash(trials), sweep_grid_hash(fewer.expand()));
}

TEST(CampaignScan, MissingFileIsFreshStart) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const CampaignScan scan = scan_campaign_file(
      testing::TempDir() + "does_not_exist.jsonl", sweep.name, trials);
  EXPECT_TRUE(scan.ok());
  EXPECT_TRUE(scan.fresh);
  EXPECT_EQ(scan.rows, 0u);
  EXPECT_EQ(missing_trials(scan, trials).size(), trials.size());
}

TEST(CampaignScan, RejectsForeignAndRegriddedJournals) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string path = testing::TempDir() + "scan_reject.jsonl";
  run_journaled(sweep, trials, path, 1);

  // Wrong sweep name.
  CampaignScan scan = scan_campaign_file(path, "other_sweep", trials);
  EXPECT_FALSE(scan.ok());

  // Same name, different grid (seed change): hash mismatch.
  SweepSpec reseeded = small_sweep();
  reseeded.base_seed = 12;
  scan = scan_campaign_file(path, sweep.name, reseeded.expand());
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("different campaign grid"), std::string::npos);

  // Not a journal at all.
  write_file(path, "scenario,policy\n1,2\n");
  scan = scan_campaign_file(path, sweep.name, trials);
  EXPECT_FALSE(scan.ok());
  std::remove(path.c_str());
}

TEST(CampaignScan, TornHeaderStartsFreshButForeignFilesStillError) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string path = testing::TempDir() + "torn_header.jsonl";

  // A crash during the very first writeout leaves a header prefix with no
  // newline; every such prefix must scan as a fresh start, never as a
  // permanently unresumable journal.
  CampaignHeader header{sweep.name, sweep_grid_hash(trials), trials.size(),
                        ShardRef{}};
  const std::string full = campaign_header_line(header);
  for (const std::size_t cut : {std::size_t{1}, std::size_t{10},
                                full.size() / 2, full.size() - 1}) {
    write_file(path, full.substr(0, cut));
    const CampaignScan scan = scan_campaign_file(path, sweep.name, trials);
    EXPECT_TRUE(scan.ok()) << "cut " << cut << ": " << scan.error;
    EXPECT_TRUE(scan.fresh) << "cut " << cut;
  }

  // But an unterminated line of some unrelated file is NOT a torn header:
  // keep the hard error so --output never clobbers foreign data.
  write_file(path, "definitely not a journal");
  EXPECT_FALSE(scan_campaign_file(path, sweep.name, trials).ok());
  std::remove(path.c_str());
}

TEST(CampaignScan, CompleteJournalHasNoMissingTrials) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string path = testing::TempDir() + "scan_complete.jsonl";
  run_journaled(sweep, trials, path, 4);
  const CampaignScan scan = scan_campaign_file(path, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.complete());
  EXPECT_EQ(scan.rows, trials.size());
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.corrupt_lines, 0u);
  EXPECT_TRUE(missing_trials(scan, trials).empty());
  std::remove(path.c_str());
}

TEST(ResumeRoundTrip, TruncationAtArbitraryBytesResumesByteIdentical) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string base = testing::TempDir() + "resume_base.jsonl";
  run_journaled(sweep, trials, base, 1);
  const Artifacts golden = export_artifacts(base, sweep, trials);
  const std::string journal = read_file(base);

  // Interrupt at ~40 byte positions spread over the journal — trial
  // boundaries and mid-line alike (an odd step keeps the cuts from
  // syncing to line structure) — and resume with multiple workers.
  const std::string crashed = testing::TempDir() + "resume_crashed.jsonl";
  const std::size_t header_end = journal.find('\n') + 1;
  const std::size_t step =
      std::max<std::size_t>(1, (journal.size() - header_end) / 40) | 1;
  for (std::size_t cut = header_end; cut < journal.size(); cut += step) {
    write_file(crashed, journal.substr(0, cut));
    resume_journaled(sweep, trials, crashed, 4);
    const Artifacts resumed = export_artifacts(crashed, sweep, trials);
    ASSERT_EQ(golden.csv, resumed.csv) << "cut at byte " << cut;
    ASSERT_EQ(golden.json, resumed.json) << "cut at byte " << cut;
  }
  std::remove(base.c_str());
  std::remove(crashed.c_str());
}

TEST(ResumeRoundTrip, CorruptInteriorLineIsReRun) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string base = testing::TempDir() + "resume_corrupt.jsonl";
  run_journaled(sweep, trials, base, 1);
  const Artifacts golden = export_artifacts(base, sweep, trials);

  // Flip bytes in the middle of the third line (second trial row).
  std::string journal = read_file(base);
  std::size_t pos = 0;
  for (int skip = 0; skip < 2; ++skip) pos = journal.find('\n', pos) + 1;
  journal[pos + 10] = '#';
  journal[pos + 11] = '#';
  write_file(base, journal);

  CampaignScan scan = scan_campaign_file(base, sweep.name, trials);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_EQ(scan.corrupt_lines, 1u);
  EXPECT_EQ(missing_trials(scan, trials).size(), 1u);

  resume_journaled(sweep, trials, base, 2);
  const Artifacts resumed = export_artifacts(base, sweep, trials);
  EXPECT_EQ(golden.csv, resumed.csv);
  EXPECT_EQ(golden.json, resumed.json);
  std::remove(base.c_str());
}

TEST(ResumeRoundTrip, JournalArtifactsMatchInMemoryPipeline) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();

  SweepRunner::Options options;
  options.threads = 1;
  const auto results = SweepRunner(options).run(trials);
  const auto cells = aggregate_sweep(results);
  const std::string memory_json = sweep_to_json(sweep.name, results, cells);
  const std::string memory_csv = sweep_cells_table(cells).to_csv();

  const std::string path = testing::TempDir() + "vs_memory.jsonl";
  run_journaled(sweep, trials, path, 8);
  const Artifacts journal = export_artifacts(path, sweep, trials);
  EXPECT_EQ(memory_csv, journal.csv);
  EXPECT_EQ(memory_json, journal.json);
  std::remove(path.c_str());
}

TEST(ResumeRoundTrip, ExportRefusesIncompleteJournal) {
  const SweepSpec sweep = small_sweep();
  const auto trials = sweep.expand();
  const std::string path = testing::TempDir() + "incomplete.jsonl";
  run_journaled(sweep, trials, path, 1);
  std::string journal = read_file(path);
  journal.resize(journal.size() / 2);
  write_file(path, journal);
  const JsonlExportResult exported =
      export_campaign_from_jsonl(path, sweep.name, trials, nullptr);
  EXPECT_FALSE(exported.ok());
  EXPECT_NE(exported.error.find("incomplete"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StreamingCellAggregator, OrderIndependentCellsAndMergedShards) {
  const SweepSpec sweep = small_sweep();
  const auto results = SweepRunner().run(sweep);
  const auto direct = aggregate_sweep(results);

  // Adding in reverse completion order still yields grid-ordered cells.
  StreamingCellAggregator reversed;
  for (auto it = results.rbegin(); it != results.rend(); ++it)
    reversed.add(*it);
  const auto reversed_cells = reversed.cells();
  ASSERT_EQ(direct.size(), reversed_cells.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].cell_id(), reversed_cells[i].cell_id());
    EXPECT_EQ(direct[i].trials, reversed_cells[i].trials);
    EXPECT_NEAR(direct[i].aggregate_mibps.mean,
                reversed_cells[i].aggregate_mibps.mean, 1e-9);
  }

  // Sharded accumulation + StreamingStats::merge matches the single pass.
  StreamingCellAggregator front, back;
  for (std::size_t i = 0; i < results.size(); ++i)
    (i < results.size() / 2 ? front : back).add(results[i]);
  front.merge(back);
  EXPECT_EQ(front.trials_added(), results.size());
  const auto merged = front.cells();
  ASSERT_EQ(direct.size(), merged.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].cell_id(), merged[i].cell_id());
    EXPECT_EQ(direct[i].trials, merged[i].trials);
    EXPECT_EQ(direct[i].total_bytes, merged[i].total_bytes);
    EXPECT_NEAR(direct[i].aggregate_mibps.mean,
                merged[i].aggregate_mibps.mean, 1e-9);
    EXPECT_NEAR(direct[i].aggregate_mibps.stddev,
                merged[i].aggregate_mibps.stddev, 1e-9);
    EXPECT_EQ(direct[i].aggregate_mibps.min, merged[i].aggregate_mibps.min);
    EXPECT_EQ(direct[i].aggregate_mibps.max, merged[i].aggregate_mibps.max);
  }
}

}  // namespace
}  // namespace adaptbf
