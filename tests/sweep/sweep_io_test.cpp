#include "sweep/sweep_io.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

constexpr const char* kMinimal = R"(
[sweep]
policies = static, adaptive
scenario = token_allocation
)";

TEST(SweepIo, MinimalSweepParses) {
  const auto loaded = load_sweep(kMinimal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const SweepSpec& spec = *loaded.spec;
  EXPECT_EQ(spec.name, "sweep");  // Default.
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[0], BwControl::kStatic);
  EXPECT_EQ(spec.policies[1], BwControl::kAdaptive);
  ASSERT_EQ(spec.scenarios.size(), 1u);
  EXPECT_EQ(spec.scenarios[0].label, "token_allocation");
  EXPECT_FALSE(spec.scenarios[0].spec.jobs.empty());
  EXPECT_EQ(spec.repetitions, 1u);
  EXPECT_TRUE(loaded.csv_path.empty());
}

TEST(SweepIo, FullSweepParses) {
  const auto loaded = load_sweep(R"(
[sweep]
name = campaign
policies = none, gift
scenario = token_allocation
scenario = redistribution
scenario = recompensation
repetitions = 4
base_seed = 42
start_jitter_ms = 250
duration_s = 30

[grid]
osts = 1, 2, 4
token_rate = 1200, 1600

[output]
csv = out.csv
json = out.json
)");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const SweepSpec& spec = *loaded.spec;
  EXPECT_EQ(spec.name, "campaign");
  EXPECT_EQ(spec.scenarios.size(), 3u);
  EXPECT_EQ(spec.repetitions, 4u);
  EXPECT_EQ(spec.base_seed, 42u);
  EXPECT_EQ(spec.start_jitter, SimDuration::millis(250));
  EXPECT_EQ(spec.duration_override, SimDuration::seconds(30));
  ASSERT_EQ(spec.ost_counts.size(), 3u);
  EXPECT_EQ(spec.ost_counts[2], 4u);
  ASSERT_EQ(spec.token_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.token_rates[1], 1600.0);
  EXPECT_EQ(loaded.csv_path, "out.csv");
  EXPECT_EQ(loaded.json_path, "out.json");
  // 3 scenarios x 2 policies x 3 osts x 2 rates x 4 reps.
  EXPECT_EQ(spec.trial_count(), 144u);
}

TEST(SweepIo, MissingPoliciesFails) {
  const auto loaded = load_sweep("[sweep]\nscenario = token_allocation\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("policies"), std::string::npos);
}

TEST(SweepIo, MissingScenarioFails) {
  const auto loaded = load_sweep("[sweep]\npolicies = none\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("scenario"), std::string::npos);
}

TEST(SweepIo, BadPolicyNameFails) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none, bogus\nscenario = token_allocation\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("bogus"), std::string::npos);
}

TEST(SweepIo, UnknownKeyFails) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = token_allocation\ntypo = 1\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("typo"), std::string::npos);
}

TEST(SweepIo, UnknownSectionFails) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = token_allocation\n[extra]\nx = "
      "1\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("extra"), std::string::npos);
}

TEST(SweepIo, ZeroRepetitionsFails) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = token_allocation\nrepetitions = "
      "0\n");
  EXPECT_FALSE(loaded.ok());
}

TEST(SweepIo, BadGridValueFails) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = token_allocation\n[grid]\nosts = "
      "1, zero\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("zero"), std::string::npos);
}

TEST(SweepIo, EmptyScenarioValueFails) {
  const auto loaded = load_sweep("[sweep]\npolicies = none\nscenario =\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("empty scenario"), std::string::npos);
}

TEST(SweepIo, MissingScenarioFileReportsPath) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = does/not/exist.ini\n");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("does/not/exist.ini"), std::string::npos);
}

TEST(SweepIo, LoadSweepFileMissingFails) {
  const auto loaded = load_sweep_file("/nonexistent/sweep.ini");
  EXPECT_FALSE(loaded.ok());
}

TEST(SweepIo, JsonlOutputKeyParses) {
  const auto loaded = load_sweep(
      "[sweep]\npolicies = none\nscenario = token_allocation\n"
      "[output]\njsonl = campaign.jsonl\n");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.jsonl_path, "campaign.jsonl");
  EXPECT_TRUE(loaded.csv_path.empty());
}

TEST(SweepIo, NonFiniteTokenRateFails) {
  // Regression: strtod-based parsing accepted nan/inf/hex token rates,
  // which then flowed into trial specs and exports.
  for (const char* bad : {"nan", "inf", "-inf", "0x1p4", "1e999"}) {
    const auto loaded = load_sweep(
        std::string("[sweep]\npolicies = none\nscenario = token_allocation\n"
                    "[grid]\ntoken_rate = ") +
        bad + "\n");
    EXPECT_FALSE(loaded.ok()) << "accepted token_rate = " << bad;
  }
}

TEST(SweepIo, SearchSectionEntriesForwardedInFileOrder) {
  // [search] keys are not interpreted here — they are forwarded verbatim
  // and positionally to search/search_io.h, duplicates included (the
  // search loader owns rejecting them, with a key-specific message).
  const auto loaded = load_sweep(R"(
[sweep]
policies = adaptive
scenario = token_allocation

[search]
controller = bisect
ladder = 400, 800
controller = golden
)");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_TRUE(loaded.has_search());
  ASSERT_EQ(loaded.search_entries.size(), 3u);
  EXPECT_EQ(loaded.search_entries[0],
            (std::pair<std::string, std::string>{"controller", "bisect"}));
  EXPECT_EQ(loaded.search_entries[1],
            (std::pair<std::string, std::string>{"ladder", "400, 800"}));
  EXPECT_EQ(loaded.search_entries[2],
            (std::pair<std::string, std::string>{"controller", "golden"}));
}

TEST(SweepIo, EmptySearchSectionStillMarksTheSweepAsASearch) {
  // The CLI routes on has_search(): an empty [search] heading must still
  // steer the file to `sweep_cli search` (where the loader will demand
  // its required keys), not silently run as a plain sweep.
  const auto loaded = load_sweep(
      "[sweep]\npolicies = adaptive\nscenario = token_allocation\n"
      "[search]\n");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_TRUE(loaded.has_search());
  EXPECT_TRUE(loaded.search_entries.empty());
}

TEST(SweepIo, SweepWithoutSearchSectionHasNoSearch) {
  const auto loaded = load_sweep(kMinimal);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_FALSE(loaded.has_search());
}

}  // namespace
}  // namespace adaptbf
