#include "ost/job_stats.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

Rpc make_rpc(std::uint32_t job, std::uint32_t bytes = 1024) {
  Rpc rpc;
  rpc.job = JobId(job);
  rpc.size_bytes = bytes;
  return rpc;
}

TEST(JobStatsTracker, EmptySnapshot) {
  JobStatsTracker tracker;
  EXPECT_TRUE(tracker.window_snapshot().empty());
}

TEST(JobStatsTracker, CountsArrivalsPerJob) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(1));
  tracker.record_arrival(make_rpc(1));
  tracker.record_arrival(make_rpc(2, 4096));
  const auto snapshot = tracker.window_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].job, JobId(1));
  EXPECT_EQ(snapshot[0].rpcs, 2u);
  EXPECT_EQ(snapshot[0].bytes, 2048u);
  EXPECT_EQ(snapshot[1].job, JobId(2));
  EXPECT_EQ(snapshot[1].rpcs, 1u);
  EXPECT_EQ(snapshot[1].bytes, 4096u);
}

TEST(JobStatsTracker, SnapshotSortedByJobId) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(9));
  tracker.record_arrival(make_rpc(3));
  tracker.record_arrival(make_rpc(7));
  const auto snapshot = tracker.window_snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].job, JobId(3));
  EXPECT_EQ(snapshot[1].job, JobId(7));
  EXPECT_EQ(snapshot[2].job, JobId(9));
}

TEST(JobStatsTracker, ClearWindowResetsOnlyWindow) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(1));
  tracker.record_completion(make_rpc(1));
  tracker.clear_window();
  EXPECT_TRUE(tracker.window_snapshot().empty());
  const auto* cumulative = tracker.cumulative(JobId(1));
  ASSERT_NE(cumulative, nullptr);
  EXPECT_EQ(cumulative->rpcs_issued, 1u);
  EXPECT_EQ(cumulative->rpcs_completed, 1u);
}

TEST(JobStatsTracker, SnapshotDoesNotClear) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(1));
  (void)tracker.window_snapshot();
  EXPECT_EQ(tracker.window_snapshot().size(), 1u);
}

TEST(JobStatsTracker, CumulativeUnknownJobIsNull) {
  JobStatsTracker tracker;
  EXPECT_EQ(tracker.cumulative(JobId(42)), nullptr);
}

TEST(JobStatsTracker, JobsEverSeenPersistsAcrossWindows) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(5));
  tracker.clear_window();
  tracker.record_arrival(make_rpc(2));
  const auto jobs = tracker.jobs_ever_seen();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0], JobId(2));
  EXPECT_EQ(jobs[1], JobId(5));
}

TEST(JobStatsTracker, BytesAccumulateInCumulative) {
  JobStatsTracker tracker;
  tracker.record_arrival(make_rpc(1, 100));
  tracker.record_arrival(make_rpc(1, 200));
  tracker.record_completion(make_rpc(1, 100));
  const auto* c = tracker.cumulative(JobId(1));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->bytes_issued, 300u);
  EXPECT_EQ(c->bytes_completed, 100u);
}

}  // namespace
}  // namespace adaptbf
