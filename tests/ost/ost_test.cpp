#include "ost/ost.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/units.h"
#include "tbf/fcfs_scheduler.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {
namespace {

Rpc make_rpc(std::uint64_t id, std::uint32_t job,
             std::uint32_t bytes = 1024 * 1024) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  rpc.size_bytes = bytes;
  return rpc;
}

Ost::Config small_config() {
  Ost::Config config;
  config.num_threads = 4;
  config.disk.seq_bandwidth = mib_per_sec(100);
  config.disk.rand_bandwidth = mib_per_sec(25);
  config.disk.per_rpc_overhead = SimDuration(0);
  return config;
}

TEST(Ost, CompletesSubmittedRpc) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  std::vector<RpcCompletion> completions;
  ost.add_completion_hook(
      [&](const RpcCompletion& c) { completions.push_back(c); });
  ost.submit(make_rpc(1, 1));
  sim.run_to_completion();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].rpc.id, 1u);
  // 1 MiB at 100 MiB/s = 10 ms.
  EXPECT_NEAR(completions[0].latency().to_seconds(), 0.01, 1e-6);
  EXPECT_EQ(ost.completed_rpcs(), 1u);
  EXPECT_EQ(ost.completed_bytes(), 1024u * 1024u);
}

TEST(Ost, ThreadLimitBoundsConcurrency) {
  Simulator sim;
  auto config = small_config();
  config.num_threads = 2;
  Ost ost(sim, config, std::make_unique<FcfsScheduler>());
  std::uint32_t max_busy = 0;
  ost.add_completion_hook([&](const RpcCompletion&) {
    max_busy = std::max(max_busy, ost.busy_threads() + 1);  // before decrement
  });
  for (std::uint64_t i = 1; i <= 8; ++i) ost.submit(make_rpc(i, 1));
  sim.run_to_completion();
  EXPECT_EQ(ost.completed_rpcs(), 8u);
  EXPECT_LE(max_busy, 2u);
}

TEST(Ost, AggregateBandwidthMatchesDisk) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  // 50 MiB total at 100 MiB/s => 0.5 s regardless of concurrency.
  for (std::uint64_t i = 1; i <= 50; ++i) ost.submit(make_rpc(i, 1));
  sim.run_to_completion();
  EXPECT_EQ(ost.completed_rpcs(), 50u);
  EXPECT_NEAR(sim.now().to_seconds(), 0.5, 1e-3);
}

TEST(Ost, TbfRuleThrottlesJob) {
  Simulator sim;
  auto scheduler = std::make_unique<TbfScheduler>();
  TbfScheduler* tbf = scheduler.get();
  Ost ost(sim, small_config(), std::move(scheduler));
  RuleSpec rule;
  rule.name = "job_1";
  rule.matcher = RpcMatcher::for_job(JobId(1));
  rule.rate = 10.0;  // 10 RPC/s while the disk could do ~100
  tbf->start_rule(rule);
  for (std::uint64_t i = 1; i <= 23; ++i) ost.submit(make_rpc(i, 1));
  sim.run_to_completion();
  EXPECT_EQ(ost.completed_rpcs(), 23u);
  // Initial burst of 3, then 20 more at 10/s => ~2 s total.
  EXPECT_NEAR(sim.now().to_seconds(), 2.0, 0.1);
}

TEST(Ost, WakeupFiresWhenTokensAccrue) {
  // Regression: an RPC arriving into an empty, token-dry queue must be
  // served without any further external stimulus.
  Simulator sim;
  TbfScheduler::Config sched_config;
  sched_config.start_full = false;
  auto scheduler = std::make_unique<TbfScheduler>(sched_config);
  TbfScheduler* tbf = scheduler.get();
  Ost ost(sim, small_config(), std::move(scheduler));
  RuleSpec rule;
  rule.name = "job_1";
  rule.matcher = RpcMatcher::for_job(JobId(1));
  rule.rate = 2.0;
  tbf->start_rule(rule);
  ost.submit(make_rpc(1, 1));
  sim.run_to_completion();
  EXPECT_EQ(ost.completed_rpcs(), 1u);
  // Token at 0.5 s + 10 ms service.
  EXPECT_NEAR(sim.now().to_seconds(), 0.51, 1e-3);
}

TEST(Ost, JobStatsSeeArrivalsImmediately) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  ost.submit(make_rpc(1, 7));
  const auto snapshot = ost.job_stats().window_snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].job, JobId(7));
  EXPECT_EQ(snapshot[0].rpcs, 1u);
}

TEST(Ost, MaxTokenRateReflectsDiskCapacity) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  // 100 MiB/s over 1 MiB RPCs, zero overhead => 100 RPC/s.
  EXPECT_NEAR(ost.max_token_rate(1024 * 1024), 100.0, 1e-6);
}

TEST(Ost, MultipleHooksAllFire) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  int first = 0, second = 0;
  ost.add_completion_hook([&](const RpcCompletion&) { ++first; });
  ost.add_completion_hook([&](const RpcCompletion&) { ++second; });
  ost.submit(make_rpc(1, 1));
  sim.run_to_completion();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Ost, CompletionTimesOrderedWithinQueue) {
  Simulator sim;
  Ost ost(sim, small_config(), std::make_unique<FcfsScheduler>());
  std::vector<std::uint64_t> completion_order;
  ost.add_completion_hook([&](const RpcCompletion& c) {
    completion_order.push_back(c.rpc.id);
  });
  for (std::uint64_t i = 1; i <= 4; ++i) ost.submit(make_rpc(i, 1));
  sim.run_to_completion();
  // Equal-size transfers admitted together finish in admission order.
  EXPECT_EQ(completion_order, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace adaptbf
