// Parameterized property sweep for the processor-sharing device: random
// admission schedules must conserve work exactly and never let the device
// idle while transfers are pending.
#include <gtest/gtest.h>

#include <vector>

#include "ost/ps_disk.h"
#include "support/random.h"

namespace adaptbf {
namespace {

struct PsDiskFuzzParam {
  std::uint64_t seed;
  int transfers;
  double bandwidth;
};

class PsDiskPropertyTest : public ::testing::TestWithParam<PsDiskFuzzParam> {};

TEST_P(PsDiskPropertyTest, WorkConservationUnderRandomAdmissions) {
  const auto param = GetParam();
  Simulator sim;
  PsDisk disk(sim, param.bandwidth);
  Xoshiro256 rng(param.seed);

  double total_work = 0.0;
  int completions = 0;
  SimTime first_admit = SimTime::max();
  // Admit transfers at random times with random sizes.
  for (int i = 0; i < param.transfers; ++i) {
    const SimTime when =
        SimTime::zero() +
        SimDuration::micros(static_cast<std::int64_t>(rng.next_in(0, 500000)));
    const double work = 1.0 + rng.next_double() * 5000.0;
    total_work += work;
    first_admit = std::min(first_admit, when);
    sim.schedule_at(when, [&disk, &completions, i, work] {
      disk.admit(static_cast<std::uint64_t>(i), work,
                 [&completions](std::uint64_t) { ++completions; });
    });
  }
  sim.run_to_completion();

  EXPECT_EQ(completions, param.transfers);
  EXPECT_EQ(disk.active(), 0u);
  EXPECT_NEAR(disk.work_completed(), total_work,
              1e-3 * param.transfers + 1.0);
  // Lower bound on finish time: the device can never beat
  // first_admit + total_work / bandwidth. (It may be later: admissions
  // can arrive after the device idles.)
  EXPECT_GE(sim.now().to_seconds() + 1e-6,
            first_admit.to_seconds() + total_work / param.bandwidth -
                // slack for the final transfer's completion rounding
                1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, PsDiskPropertyTest,
    ::testing::Values(PsDiskFuzzParam{11, 50, 1000.0},
                      PsDiskFuzzParam{22, 200, 1e6},
                      PsDiskFuzzParam{33, 500, 12345.0},
                      PsDiskFuzzParam{44, 10, 3.5},
                      PsDiskFuzzParam{55, 100, 1e9}),
    [](const ::testing::TestParamInfo<PsDiskFuzzParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace adaptbf
