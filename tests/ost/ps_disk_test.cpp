#include "ost/ps_disk.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaptbf {
namespace {

TEST(PsDisk, SingleTransferAtFullBandwidth) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);  // 1000 work-bytes/s
  SimTime done_at;
  disk.admit(1, 500.0, [&](std::uint64_t) { done_at = sim.now(); });
  sim.run_to_completion();
  EXPECT_NEAR(done_at.to_seconds(), 0.5, 1e-6);
}

TEST(PsDisk, TwoEqualTransfersShareBandwidth) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);
  std::vector<double> done_times;
  for (std::uint64_t tag = 1; tag <= 2; ++tag)
    disk.admit(tag, 500.0,
               [&](std::uint64_t) { done_times.push_back(sim.now().to_seconds()); });
  sim.run_to_completion();
  ASSERT_EQ(done_times.size(), 2u);
  // Each proceeds at 500 B/s: both finish at t=1.0.
  EXPECT_NEAR(done_times[0], 1.0, 1e-6);
  EXPECT_NEAR(done_times[1], 1.0, 1e-6);
}

TEST(PsDisk, UnequalTransfersFinishInSizeOrder) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);
  double small_done = 0.0, big_done = 0.0;
  disk.admit(1, 200.0, [&](std::uint64_t) { small_done = sim.now().to_seconds(); });
  disk.admit(2, 800.0, [&](std::uint64_t) { big_done = sim.now().to_seconds(); });
  sim.run_to_completion();
  // Shared until small finishes at t=0.4 (200/(1000/2)); big then has
  // 600 left at full rate: t = 0.4 + 0.6 = 1.0.
  EXPECT_NEAR(small_done, 0.4, 1e-6);
  EXPECT_NEAR(big_done, 1.0, 1e-6);
}

TEST(PsDisk, LateArrivalSharesRemainder) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);
  double first_done = 0.0, second_done = 0.0;
  disk.admit(1, 1000.0, [&](std::uint64_t) { first_done = sim.now().to_seconds(); });
  sim.schedule_at(SimTime::zero() + SimDuration::millis(500), [&] {
    disk.admit(2, 250.0,
               [&](std::uint64_t) { second_done = sim.now().to_seconds(); });
  });
  sim.run_to_completion();
  // First runs alone 0..0.5 (500 done). Then shares: each gets 500 B/s.
  // Second finishes 250/500 = 0.5s later at t=1.0; first then has 250
  // left at full rate: t = 1.0 + 0.25.
  EXPECT_NEAR(second_done, 1.0, 1e-6);
  EXPECT_NEAR(first_done, 1.25, 1e-6);
}

TEST(PsDisk, TiesCompleteInAdmissionOrder) {
  Simulator sim;
  PsDisk disk(sim, 100.0);
  std::vector<std::uint64_t> order;
  for (std::uint64_t tag = 10; tag >= 1; --tag)
    disk.admit(tag, 50.0, [&order](std::uint64_t t) { order.push_back(t); });
  sim.run_to_completion();
  ASSERT_EQ(order.size(), 10u);
  // Admission went 10, 9, ..., 1 — completions must match that order.
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], 10 - i);
}

TEST(PsDisk, WorkConservation) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);
  int completions = 0;
  double total_work = 0.0;
  for (std::uint64_t tag = 0; tag < 20; ++tag) {
    const double work = 100.0 + static_cast<double>(tag) * 37.0;
    total_work += work;
    disk.admit(tag, work, [&](std::uint64_t) { ++completions; });
  }
  sim.run_to_completion();
  EXPECT_EQ(completions, 20);
  EXPECT_NEAR(disk.work_completed(), total_work, 1.0);
  // 20 transfers totalling `total_work` at 1000 B/s must take exactly
  // total_work/1000 seconds — processor sharing never idles the device.
  EXPECT_NEAR(sim.now().to_seconds(), total_work / 1000.0, 1e-3);
}

TEST(PsDisk, CompletionCallbackCanAdmitMore) {
  Simulator sim;
  PsDisk disk(sim, 1000.0);
  double chained_done = 0.0;
  disk.admit(1, 500.0, [&](std::uint64_t) {
    disk.admit(2, 500.0,
               [&](std::uint64_t) { chained_done = sim.now().to_seconds(); });
  });
  sim.run_to_completion();
  EXPECT_NEAR(chained_done, 1.0, 1e-6);
}

TEST(PsDisk, ManySmallTransfersDrainCompletely) {
  Simulator sim;
  PsDisk disk(sim, 1e6);
  int completions = 0;
  for (std::uint64_t tag = 0; tag < 500; ++tag)
    disk.admit(tag, 1.0 + static_cast<double>(tag % 7),
               [&](std::uint64_t) { ++completions; });
  sim.run_to_completion();
  EXPECT_EQ(completions, 500);
  EXPECT_EQ(disk.active(), 0u);
}

}  // namespace
}  // namespace adaptbf
