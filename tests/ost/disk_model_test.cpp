#include "ost/disk_model.h"

#include <gtest/gtest.h>

#include "support/units.h"

namespace adaptbf {
namespace {

Rpc make_rpc(std::uint32_t size, Locality locality = Locality::kSequential) {
  Rpc rpc;
  rpc.size_bytes = size;
  rpc.locality = locality;
  return rpc;
}

TEST(DiskModel, SequentialWorkIsSizePlusOverhead) {
  DiskModel::Config config;
  config.seq_bandwidth = mib_per_sec(1000);
  config.rand_bandwidth = mib_per_sec(250);
  config.per_rpc_overhead = SimDuration::micros(100);
  DiskModel disk(config);
  const double overhead_bytes = 100e-6 * mib_per_sec(1000);
  EXPECT_NEAR(disk.work_bytes(make_rpc(1024 * 1024)),
              1024.0 * 1024.0 + overhead_bytes, 1.0);
}

TEST(DiskModel, RandomWorkInflatedByBandwidthRatio) {
  DiskModel::Config config;
  config.seq_bandwidth = mib_per_sec(1000);
  config.rand_bandwidth = mib_per_sec(250);
  config.per_rpc_overhead = SimDuration(0);
  DiskModel disk(config);
  EXPECT_NEAR(disk.work_bytes(make_rpc(1000, Locality::kRandom)), 4000.0, 1e-6);
}

TEST(DiskModel, IsolatedServiceTimeMatchesBandwidth) {
  DiskModel::Config config;
  config.seq_bandwidth = 1e9;  // 1 GB/s
  config.per_rpc_overhead = SimDuration(0);
  DiskModel disk(config);
  const auto t = disk.isolated_service_time(make_rpc(1'000'000));
  EXPECT_NEAR(t.to_seconds(), 1e-3, 1e-9);
}

TEST(DiskModel, RpcsPerSecondInvertsServiceTime) {
  DiskModel disk;  // defaults
  const double rate = disk.rpcs_per_second(1024 * 1024, Locality::kSequential);
  Rpc probe = make_rpc(1024 * 1024);
  EXPECT_NEAR(rate * disk.isolated_service_time(probe).to_seconds(), 1.0,
              1e-6);
}

TEST(DiskModel, RandomCapacityLowerThanSequential) {
  DiskModel disk;
  EXPECT_LT(disk.rpcs_per_second(1024 * 1024, Locality::kRandom),
            disk.rpcs_per_second(1024 * 1024, Locality::kSequential));
}

TEST(DiskModel, SmallRpcsCostMoreBandwidthPerByte) {
  // The motivating pathology: many small RPCs waste device time on
  // overhead, so their byte throughput is far below streaming bandwidth.
  DiskModel disk;  // 50us overhead default
  const double small_rate = disk.rpcs_per_second(4096, Locality::kSequential);
  const double big_rate =
      disk.rpcs_per_second(1024 * 1024, Locality::kSequential);
  const double small_bytes_per_sec = small_rate * 4096;
  const double big_bytes_per_sec = big_rate * 1024 * 1024;
  EXPECT_LT(small_bytes_per_sec, big_bytes_per_sec / 10.0);
}

}  // namespace
}  // namespace adaptbf
