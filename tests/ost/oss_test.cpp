#include "ost/oss.h"

#include <gtest/gtest.h>

#include <memory>

#include "support/units.h"
#include "tbf/fcfs_scheduler.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {
namespace {

Oss::Config small_oss(std::uint32_t num_osts) {
  Oss::Config config;
  config.num_osts = num_osts;
  config.ost.num_threads = 2;
  config.ost.disk.seq_bandwidth = mib_per_sec(100);
  config.ost.disk.per_rpc_overhead = SimDuration(0);
  return config;
}

Rpc make_rpc(std::uint64_t id, std::uint32_t job) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  rpc.size_bytes = 1024 * 1024;
  return rpc;
}

TEST(Oss, CreatesRequestedTargets) {
  Simulator sim;
  Oss oss(sim, small_oss(3),
          [](std::uint32_t) { return std::make_unique<FcfsScheduler>(); });
  EXPECT_EQ(oss.num_osts(), 3u);
  EXPECT_EQ(oss.ost(0).config().id, 0u);
  EXPECT_EQ(oss.ost(2).config().id, 2u);
}

TEST(Oss, TargetsAreIndependentDevices) {
  Simulator sim;
  Oss oss(sim, small_oss(2),
          [](std::uint32_t) { return std::make_unique<FcfsScheduler>(); });
  // 10 MiB to each OST: with independent 100 MiB/s devices both finish in
  // 0.1 s. A shared device would need 0.2 s.
  for (std::uint64_t i = 0; i < 10; ++i) {
    oss.ost(0).submit(make_rpc(i, 1));
    oss.ost(1).submit(make_rpc(100 + i, 2));
  }
  sim.run_to_completion();
  EXPECT_NEAR(sim.now().to_seconds(), 0.1, 1e-3);
  EXPECT_EQ(oss.completed_rpcs(), 20u);
  EXPECT_EQ(oss.completed_bytes(), 20ull * 1024 * 1024);
}

TEST(Oss, SchedulerFactoryPerTarget) {
  Simulator sim;
  int calls = 0;
  Oss oss(sim, small_oss(4), [&](std::uint32_t index) {
    EXPECT_EQ(index, static_cast<std::uint32_t>(calls));
    ++calls;
    return std::make_unique<TbfScheduler>();
  });
  EXPECT_EQ(calls, 4);
}

TEST(Oss, CompletionHookSeesAllTargets) {
  Simulator sim;
  Oss oss(sim, small_oss(2),
          [](std::uint32_t) { return std::make_unique<FcfsScheduler>(); });
  int completions = 0;
  oss.add_completion_hook([&](const RpcCompletion&) { ++completions; });
  oss.ost(0).submit(make_rpc(1, 1));
  oss.ost(1).submit(make_rpc(2, 1));
  sim.run_to_completion();
  EXPECT_EQ(completions, 2);
}

TEST(Oss, PerTargetJobStatsAreSeparate) {
  Simulator sim;
  Oss oss(sim, small_oss(2),
          [](std::uint32_t) { return std::make_unique<FcfsScheduler>(); });
  oss.ost(0).submit(make_rpc(1, 7));
  sim.run_to_completion();
  EXPECT_NE(oss.ost(0).job_stats().cumulative(JobId(7)), nullptr);
  EXPECT_EQ(oss.ost(1).job_stats().cumulative(JobId(7)), nullptr);
}

}  // namespace
}  // namespace adaptbf
