#include "adaptbf/token_allocator.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaptbf {
namespace {

AllocatorConfig config_1000() {
  AllocatorConfig config;
  config.total_rate = 1000.0;                 // T_i = 1000 tokens/s
  config.dt = SimDuration::millis(100);       // Δt = 100 ms => 100 tokens
  return config;
}

JobWindowInput job(std::uint32_t id, std::uint32_t nodes, double demand) {
  return JobWindowInput{JobId(id), nodes, demand};
}

SimTime t(int window) {
  return SimTime::zero() + SimDuration::millis(100) * window;
}

TEST(TokenAllocator, EmptyWindowReturnsNoJobs) {
  TokenAllocator allocator(config_1000());
  const auto result = allocator.allocate({}, t(1));
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_DOUBLE_EQ(result.total_tokens, 100.0);
}

TEST(TokenAllocator, SingleJobGetsWholeBudget) {
  TokenAllocator allocator(config_1000());
  const std::vector<JobWindowInput> inputs{job(1, 4, 500.0)};
  const auto result = allocator.allocate(inputs, t(1));
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].priority, 1.0);
  EXPECT_EQ(result.jobs[0].tokens, 100);
  EXPECT_DOUBLE_EQ(result.jobs[0].rate, 1000.0);
}

TEST(TokenAllocator, InitialAllocationIsPriorityProportional) {
  // Eq. 1-2: p = n_x / Σn, α = T·p·Δt. All jobs saturated (no surplus),
  // so redistribution/re-compensation are no-ops.
  TokenAllocator allocator(config_1000());
  const std::vector<JobWindowInput> inputs{
      job(1, 1, 1000.0), job(2, 1, 1000.0), job(3, 3, 1000.0),
      job(4, 5, 1000.0)};
  const auto result = allocator.allocate(inputs, t(1));
  ASSERT_EQ(result.jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(result.jobs[0].priority, 0.1);
  EXPECT_DOUBLE_EQ(result.jobs[1].priority, 0.1);
  EXPECT_DOUBLE_EQ(result.jobs[2].priority, 0.3);
  EXPECT_DOUBLE_EQ(result.jobs[3].priority, 0.5);
  EXPECT_EQ(result.jobs[0].tokens, 10);
  EXPECT_EQ(result.jobs[1].tokens, 10);
  EXPECT_EQ(result.jobs[2].tokens, 30);
  EXPECT_EQ(result.jobs[3].tokens, 50);
}

TEST(TokenAllocator, ResultsSortedByJobId) {
  TokenAllocator allocator(config_1000());
  const std::vector<JobWindowInput> inputs{job(9, 1, 10), job(2, 1, 10),
                                           job(5, 1, 10)};
  const auto result = allocator.allocate(inputs, t(1));
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_EQ(result.jobs[0].job, JobId(2));
  EXPECT_EQ(result.jobs[1].job, JobId(5));
  EXPECT_EQ(result.jobs[2].job, JobId(9));
}

TEST(TokenAllocator, FirstWindowUtilizationIsNeutral) {
  TokenAllocator allocator(config_1000());
  const std::vector<JobWindowInput> inputs{job(1, 1, 42.0)};
  const auto result = allocator.allocate(inputs, t(1));
  EXPECT_DOUBLE_EQ(result.jobs[0].utilization, 1.0);  // no α_{t-1} yet
}

TEST(TokenAllocator, UtilizationIsDemandOverPreviousAllocation) {
  TokenAllocator allocator(config_1000());
  const std::vector<JobWindowInput> first{job(1, 1, 100.0)};
  (void)allocator.allocate(first, t(1));  // α_prev becomes 100
  const std::vector<JobWindowInput> second{job(1, 1, 50.0)};
  const auto result = allocator.allocate(second, t(2));
  EXPECT_DOUBLE_EQ(result.jobs[0].utilization, 0.5);  // eq. 3
}

TEST(TokenAllocator, SurplusFlowsToDeficitJob) {
  // Window 1 establishes α_prev = 50/50. Window 2: job 1 idles (demand 5),
  // job 2 wants far more than its 50 => surplus moves 1 -> 2 (eqs. 4-7).
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 5), job(2, 1, 120)}, t(2));
  const auto* j1 = result.find(JobId(1));
  const auto* j2 = result.find(JobId(2));
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  EXPECT_DOUBLE_EQ(j1->initial, 50.0);
  EXPECT_DOUBLE_EQ(j1->surplus, 45.0);  // α=50, d=5
  EXPECT_GT(j2->after_redistribution, 90.0);  // most of the 45 surplus
  EXPECT_LT(j1->after_redistribution, 10.0);
}

TEST(TokenAllocator, LendingCreatesPositiveRecord) {
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 5), job(2, 1, 120)}, t(2));
  // Job 1 lent => r > 0; job 2 borrowed => r < 0 (eq. 8).
  EXPECT_GT(result.find(JobId(1))->record_after, 0.0);
  EXPECT_LT(result.find(JobId(2))->record_after, 0.0);
}

TEST(TokenAllocator, RecordDeltasAreZeroSum) {
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 2, 100), job(2, 1, 100),
                                  job(3, 1, 100)},
      t(1));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 2, 3), job(2, 1, 200),
                                  job(3, 1, 40)},
      t(2));
  double sum = 0.0;
  for (const auto& j : result.jobs) sum += j.record_after;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(TokenAllocator, DeficitJobPrioritizedInRedistribution) {
  // Eq. 6: u > 1 jobs get DF = u + u·p, far larger than u·p of
  // same-utilization fractions. The deficit job must receive the larger
  // share of surplus.
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100),
                                  job(3, 2, 100)},
      t(1));
  // Job 1 idle (surplus source); job 2 deficit (u=150/25 — wait: α_prev
  // from window 1 was 25/25/50). Job 2: d=100 vs α_prev=25 => u=4.
  // Job 3: d=40 vs α_prev=50 => u=0.8 (no deficit).
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 2), job(2, 1, 100),
                                  job(3, 2, 40)},
      t(2));
  const auto* j2 = result.find(JobId(2));
  const auto* j3 = result.find(JobId(3));
  const double j2_received = j2->after_redistribution - (j2->initial - j2->surplus);
  const double j3_received = j3->after_redistribution - (j3->initial - j3->surplus);
  EXPECT_GT(j2_received, j3_received);
}

TEST(TokenAllocator, RecompensationReturnsTokensToLender) {
  // Three windows: (1) establish, (2) job 1 lends to job 2,
  // (3) job 1's demand surges => tokens reclaimed from job 2 (eqs. 9-20).
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 5), job(2, 1, 120)}, t(2));
  const double record_before = allocator.record(JobId(1));
  EXPECT_GT(record_before, 0.0);
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 150), job(2, 1, 120)}, t(3));
  const auto* j1 = result.find(JobId(1));
  const auto* j2 = result.find(JobId(2));
  EXPECT_GT(j1->compensated, 0.0);
  EXPECT_GT(j2->reclaimed, 0.0);
  // Lender's record shrinks toward zero; borrower's rises toward zero.
  EXPECT_LT(j1->record_after, record_before);
  EXPECT_GT(j2->record_after, allocator.record(JobId(2)) - 1e12);  // defined
}

TEST(TokenAllocator, ReclaimBoundedByBorrowRecord) {
  // Eq. 14: T_R <= |r|. The borrower can never be charged more than it
  // borrowed, no matter how large C·α_RD is.
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 45), job(2, 1, 120)}, t(2));
  const double borrowed = -allocator.record(JobId(2));
  ASSERT_GT(borrowed, 0.0);
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 500), job(2, 1, 120)}, t(3));
  const auto* j2 = result.find(JobId(2));
  EXPECT_LE(j2->reclaimed, borrowed + 1e-9);
  EXPECT_GE(j2->after_recompensation, 0.0);
}

TEST(TokenAllocator, NoRecompensationWithoutBothSides) {
  // A lender with no borrowers (or vice versa) reclaims nothing.
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 100)}, t(1));
  const auto result =
      allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 100)}, t(2));
  EXPECT_DOUBLE_EQ(result.reclaim_total, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].reclaimed, 0.0);
}

TEST(TokenAllocator, IntegerTokensConserveBudget) {
  // Σ tokens must equal ⌊budget⌋ despite awkward fractions (eq. 21-25).
  AllocatorConfig config;
  config.total_rate = 997.0;  // prime => fractional everything
  config.dt = SimDuration::millis(100);
  TokenAllocator allocator(config);
  const std::vector<JobWindowInput> inputs{job(1, 1, 1000), job(2, 1, 1000),
                                           job(3, 1, 1000)};
  const auto result = allocator.allocate(inputs, t(1));
  std::int64_t total = 0;
  for (const auto& j : result.jobs) total += j.tokens;
  EXPECT_EQ(total, 99);  // ⌊99.7⌋
}

TEST(TokenAllocator, RemaindersAccumulateToFairShare) {
  // 100 tokens across 3 equal saturated jobs = 33.33 each. Over 3 windows
  // each job must receive 100 +- 1 tokens, not 99 (the naive floor).
  TokenAllocator allocator(config_1000());
  std::int64_t totals[3] = {0, 0, 0};
  for (int window = 1; window <= 3; ++window) {
    const std::vector<JobWindowInput> inputs{
        job(1, 1, 1000), job(2, 1, 1000), job(3, 1, 1000)};
    const auto result = allocator.allocate(inputs, t(window));
    for (int i = 0; i < 3; ++i) totals[i] += result.jobs[static_cast<size_t>(i)].tokens;
  }
  for (const auto total : totals) {
    EXPECT_GE(total, 99);
    EXPECT_LE(total, 101);
  }
  EXPECT_EQ(totals[0] + totals[1] + totals[2], 300);
}

TEST(TokenAllocator, RemainderStaysBounded) {
  TokenAllocator allocator(config_1000());
  for (int window = 1; window <= 50; ++window) {
    const std::vector<JobWindowInput> inputs{
        job(1, 1, 500), job(2, 2, 30), job(3, 4, 700)};
    (void)allocator.allocate(inputs, t(window));
    for (std::uint32_t id = 1; id <= 3; ++id) {
      // Cumulative fair-share drift never exceeds ~2 tokens (see the
      // property suite for the bound's derivation).
      EXPECT_GT(allocator.remainder(JobId(id)), -1.0);
      EXPECT_LT(allocator.remainder(JobId(id)), 2.0);
    }
  }
}

TEST(TokenAllocator, RedistributionDisabledKeepsInitial) {
  auto config = config_1000();
  config.enable_redistribution = false;
  TokenAllocator allocator(config);
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 0), job(2, 1, 500)}, t(2));
  // Without redistribution the idle job keeps its full static share.
  EXPECT_DOUBLE_EQ(result.find(JobId(1))->after_redistribution, 50.0);
  EXPECT_DOUBLE_EQ(result.find(JobId(2))->after_redistribution, 50.0);
  EXPECT_DOUBLE_EQ(result.find(JobId(1))->record_after, 0.0);
}

TEST(TokenAllocator, RecompensationDisabledNeverReclaims) {
  auto config = config_1000();
  config.enable_recompensation = false;
  TokenAllocator allocator(config);
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 5), job(2, 1, 120)}, t(2));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 500), job(2, 1, 120)}, t(3));
  EXPECT_DOUBLE_EQ(result.reclaim_total, 0.0);
  EXPECT_DOUBLE_EQ(result.find(JobId(2))->reclaimed, 0.0);
}

TEST(TokenAllocator, GarbageCollectionDropsIdleRecords) {
  AllocatorConfig config = config_1000();
  config.record_gc_horizon = SimDuration::seconds(1);
  TokenAllocator allocator(config);
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 100)}, t(1));
  EXPECT_EQ(allocator.tracked_jobs(), 1u);
  allocator.collect_garbage(t(1) + SimDuration::seconds(2));
  EXPECT_EQ(allocator.tracked_jobs(), 0u);
}

TEST(TokenAllocator, GarbageCollectionKeepsRecentJobs) {
  AllocatorConfig config = config_1000();
  config.record_gc_horizon = SimDuration::seconds(10);
  TokenAllocator allocator(config);
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 100)}, t(1));
  allocator.collect_garbage(t(2));
  EXPECT_EQ(allocator.tracked_jobs(), 1u);
}

TEST(TokenAllocator, ZeroDemandJobYieldsItsTokens) {
  // A job listed active but with zero demand this window surrenders its
  // entire initial allocation as surplus.
  TokenAllocator allocator(config_1000());
  (void)allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
  const auto result = allocator.allocate(
      std::vector<JobWindowInput>{job(1, 1, 0), job(2, 1, 200)}, t(2));
  const auto* j1 = result.find(JobId(1));
  EXPECT_DOUBLE_EQ(j1->surplus, 50.0);
  EXPECT_EQ(j1->tokens, 0);
  EXPECT_EQ(result.find(JobId(2))->tokens, 100);
}

TEST(TokenAllocator, RatesDeriveFromTokensAndDt) {
  AllocatorConfig config;
  config.total_rate = 500.0;
  config.dt = SimDuration::millis(200);  // budget 100 tokens
  TokenAllocator allocator(config);
  const auto result =
      allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 1000)}, t(1));
  EXPECT_EQ(result.jobs[0].tokens, 100);
  EXPECT_DOUBLE_EQ(result.jobs[0].rate, 500.0);
}

TEST(TokenAllocator, ReclaimCoefficientClampedToUnitInterval) {
  TokenAllocator allocator(config_1000());
  // Build extreme lender pressure: many high-priority lenders.
  std::vector<JobWindowInput> first;
  for (std::uint32_t id = 1; id <= 6; ++id) first.push_back(job(id, 5, 100));
  (void)allocator.allocate(first, t(1));
  std::vector<JobWindowInput> second;
  for (std::uint32_t id = 1; id <= 5; ++id) second.push_back(job(id, 5, 1));
  second.push_back(job(6, 5, 500));
  (void)allocator.allocate(second, t(2));
  std::vector<JobWindowInput> third;
  for (std::uint32_t id = 1; id <= 5; ++id) third.push_back(job(id, 5, 500));
  third.push_back(job(6, 5, 500));
  const auto result = allocator.allocate(third, t(3));
  EXPECT_GE(result.reclaim_coefficient, 0.0);
  EXPECT_LE(result.reclaim_coefficient, 1.0);
}

}  // namespace
}  // namespace adaptbf
