#include "adaptbf/rule_daemon.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

WindowResult window_with(std::vector<std::pair<std::uint32_t, double>> jobs) {
  WindowResult window;
  for (auto [id, rate] : jobs) {
    JobAllocation alloc;
    alloc.job = JobId(id);
    alloc.rate = rate;
    alloc.priority = 1.0 / static_cast<double>(jobs.size());
    alloc.tokens = static_cast<std::int64_t>(rate / 10.0);
    window.jobs.push_back(alloc);
  }
  return window;
}

TEST(RuleDaemon, CreatesRulesForNewJobs) {
  TbfScheduler scheduler;
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 100.0}, {2, 200.0}}), SimTime::zero());
  EXPECT_TRUE(scheduler.has_rule("job_1"));
  EXPECT_TRUE(scheduler.has_rule("job_2"));
  EXPECT_EQ(daemon.rules_started(), 2u);
  EXPECT_EQ(daemon.rules_stopped(), 0u);
}

TEST(RuleDaemon, ReRatesExistingRules) {
  TbfScheduler scheduler;
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 100.0}}), SimTime::zero());
  daemon.apply(window_with({{1, 300.0}}),
               SimTime::zero() + SimDuration::millis(100));
  EXPECT_EQ(daemon.rules_started(), 1u);
  EXPECT_EQ(daemon.rules_changed(), 1u);
  const RuleStats* stats = scheduler.rule_stats("job_1");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rate_changes, 1u);
}

TEST(RuleDaemon, StopsRulesForInactiveJobs) {
  TbfScheduler scheduler;
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 100.0}, {2, 200.0}}), SimTime::zero());
  daemon.apply(window_with({{2, 200.0}}),
               SimTime::zero() + SimDuration::millis(100));
  EXPECT_FALSE(scheduler.has_rule("job_1"));
  EXPECT_TRUE(scheduler.has_rule("job_2"));
  EXPECT_EQ(daemon.rules_stopped(), 1u);
}

TEST(RuleDaemon, MinRateFloorsZeroAllocations) {
  TbfScheduler scheduler;
  RuleDaemonConfig config;
  config.min_rate = 5.0;
  RuleDaemon daemon(scheduler, config);
  daemon.apply(window_with({{1, 0.0}}), SimTime::zero());
  // The rule exists and a queued RPC becomes serviceable within 1/5 s —
  // i.e. the rate actually applied is the floor, not zero.
  Rpc rpc;
  rpc.job = JobId(1);
  TbfScheduler::Config probe_config;
  // (enqueue through the same scheduler; bucket starts full so consume one
  // token immediately, the *next* is paced at min_rate)
  scheduler.enqueue(rpc, SimTime::zero());
  EXPECT_TRUE(scheduler.dequeue(SimTime::zero()).has_value());
}

TEST(RuleDaemon, DoesNotTouchForeignRules) {
  TbfScheduler scheduler;
  RuleSpec foreign;
  foreign.name = "admin_rule";
  foreign.rate = 1.0;
  scheduler.start_rule(foreign);
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 100.0}}), SimTime::zero());
  daemon.apply(window_with({{2, 100.0}}),
               SimTime::zero() + SimDuration::millis(100));
  EXPECT_TRUE(scheduler.has_rule("admin_rule"));
}

TEST(RuleDaemon, RuleNameUsesPrefix) {
  TbfScheduler scheduler;
  RuleDaemonConfig config;
  config.rule_prefix = "adaptbf_";
  RuleDaemon daemon(scheduler, config);
  EXPECT_EQ(daemon.rule_name(JobId(9)), "adaptbf_9");
  daemon.apply(window_with({{9, 10.0}}), SimTime::zero());
  EXPECT_TRUE(scheduler.has_rule("adaptbf_9"));
}

TEST(RuleDaemon, KeepsRuleWhileQueueHasBacklog) {
  // Regression: a job with no arrivals this window but RPCs still queued
  // must keep its rule — stopping it would dump the backlog unthrottled
  // through the fallback path and invert the enforced priorities.
  TbfScheduler scheduler;
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 5.0}}), SimTime::zero());  // slow rule
  // Queue several RPCs; at 5/s almost all remain after one window.
  for (std::uint64_t i = 0; i < 20; ++i) {
    Rpc rpc;
    rpc.id = i;
    rpc.job = JobId(1);
    scheduler.enqueue(rpc, SimTime::zero());
  }
  (void)scheduler.dequeue(SimTime::zero());  // serve what the burst allows
  ASSERT_GT(scheduler.queue_backlog(JobId(1)), 0u);
  // Next window: job inactive (no arrivals) — rule must survive.
  daemon.apply(WindowResult{}, SimTime::zero() + SimDuration::millis(100));
  EXPECT_TRUE(scheduler.has_rule("job_1"));
  EXPECT_EQ(daemon.rules_stopped(), 0u);
  // Once the queue drains, an inactive window does stop the rule.
  SimTime now = SimTime::zero();
  while (scheduler.queue_backlog(JobId(1)) > 0) {
    now = scheduler.next_ready_time(now);
    ASSERT_NE(now, SimTime::max());
    (void)scheduler.dequeue(now);
  }
  daemon.apply(WindowResult{}, now + SimDuration::millis(100));
  EXPECT_FALSE(scheduler.has_rule("job_1"));
  EXPECT_EQ(daemon.rules_stopped(), 1u);
}

TEST(RuleDaemon, EmptyWindowStopsEverything) {
  TbfScheduler scheduler;
  RuleDaemon daemon(scheduler, RuleDaemonConfig{});
  daemon.apply(window_with({{1, 10.0}, {2, 10.0}}), SimTime::zero());
  daemon.apply(WindowResult{}, SimTime::zero() + SimDuration::millis(100));
  EXPECT_TRUE(scheduler.active_rules().empty());
  EXPECT_EQ(daemon.rules_stopped(), 2u);
}

}  // namespace
}  // namespace adaptbf
