#include "adaptbf/controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "adaptbf/static_controller.h"
#include "client/client_system.h"
#include "support/units.h"

namespace adaptbf {
namespace {

struct Testbed {
  Simulator sim;
  std::unique_ptr<Ost> ost;
  TbfScheduler* tbf = nullptr;

  explicit Testbed(double mib_per_s = 100.0) {
    Ost::Config config;
    config.num_threads = 4;
    config.disk.seq_bandwidth = mib_per_sec(mib_per_s);
    config.disk.per_rpc_overhead = SimDuration(0);
    auto scheduler = std::make_unique<TbfScheduler>();
    tbf = scheduler.get();
    ost = std::make_unique<Ost>(sim, config, std::move(scheduler));
  }
};

AdaptbfController::Config controller_config(double total_rate = 100.0) {
  AdaptbfController::Config config;
  config.allocator.total_rate = total_rate;
  config.allocator.dt = SimDuration::millis(100);
  return config;
}

Rpc make_rpc(std::uint64_t id, std::uint32_t job) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  rpc.size_bytes = 1024 * 1024;
  return rpc;
}

TEST(AdaptbfController, RunsOneWindowPerPeriod) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  controller.start();
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(1000));
  EXPECT_EQ(controller.windows_run(), 10u);
}

TEST(AdaptbfController, CreatesRuleForActiveJob) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  controller.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(150));
  EXPECT_TRUE(bed.tbf->has_rule("job_1"));
}

TEST(AdaptbfController, StopsRuleWhenJobGoesIdle) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  controller.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(150));
  ASSERT_TRUE(bed.tbf->has_rule("job_1"));
  // No further I/O: the next window sees the job inactive.
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(350));
  EXPECT_FALSE(bed.tbf->has_rule("job_1"));
}

TEST(AdaptbfController, ClearsWindowStatsEachTick) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  controller.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(150));
  EXPECT_TRUE(bed.ost->job_stats().window_snapshot().empty());
}

TEST(AdaptbfController, ObserverSeesDemand) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  std::vector<WindowResult> windows;
  controller.add_observer(
      [&](const WindowResult& w) { windows.push_back(w); });
  controller.start();
  for (std::uint64_t i = 0; i < 5; ++i) bed.ost->submit(make_rpc(i, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].jobs[0].demand, 5.0);
}

TEST(AdaptbfController, UsesConfiguredNodeCounts) {
  Testbed bed;
  auto config = controller_config();
  config.job_nodes[JobId(1)] = 1;
  config.job_nodes[JobId(2)] = 3;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf, config);
  std::vector<WindowResult> windows;
  controller.add_observer(
      [&](const WindowResult& w) { windows.push_back(w); });
  controller.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.ost->submit(make_rpc(2, 2));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].find(JobId(1))->priority, 0.25);
  EXPECT_DOUBLE_EQ(windows[0].find(JobId(2))->priority, 0.75);
}

TEST(AdaptbfController, UnknownJobDefaultsToOneNode) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  std::vector<WindowResult> windows;
  controller.add_observer(
      [&](const WindowResult& w) { windows.push_back(w); });
  controller.start();
  bed.ost->submit(make_rpc(1, 77));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].jobs[0].priority, 1.0);
}

TEST(AdaptbfController, StopHaltsTheLoop) {
  Testbed bed;
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf,
                               controller_config());
  controller.start();
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(300));
  controller.stop();
  const auto windows = controller.windows_run();
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(1000));
  EXPECT_EQ(controller.windows_run(), windows);
}

TEST(AdaptbfController, ApplyLatencyDefersRuleCreation) {
  Testbed bed;
  auto config = controller_config();
  config.apply_latency = SimDuration::millis(25);
  AdaptbfController controller(bed.sim, *bed.ost, *bed.tbf, config);
  controller.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(110));
  EXPECT_FALSE(bed.tbf->has_rule("job_1"));  // window closed at 100ms
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(130));
  EXPECT_TRUE(bed.tbf->has_rule("job_1"));  // applied at 125ms
}

TEST(StaticBwControllerTest, InstallsPriorityProportionalRules) {
  Testbed bed;
  StaticBwController::Config config;
  config.total_rate = 100.0;
  config.jobs = {{JobId(1), 1}, {JobId(2), 3}};
  StaticBwController controller(*bed.tbf, config);
  controller.install(SimTime::zero());
  EXPECT_TRUE(bed.tbf->has_rule("static_job_1"));
  EXPECT_TRUE(bed.tbf->has_rule("static_job_2"));
  // Throughput check: drain both for 2s; job2 must get ~3x job1's service.
  for (std::uint64_t i = 0; i < 200; ++i) {
    bed.ost->submit(make_rpc(2 * i, 1));
    bed.ost->submit(make_rpc(2 * i + 1, 2));
  }
  bed.sim.run_until(SimTime::zero() + SimDuration::seconds(2));
  const auto* s1 = bed.tbf->rule_stats("static_job_1");
  const auto* s2 = bed.tbf->rule_stats("static_job_2");
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_NEAR(static_cast<double>(s2->served) /
                  static_cast<double>(s1->served),
              3.0, 0.5);
}

}  // namespace
}  // namespace adaptbf
