// Property-based sweeps over randomized workload traces: the invariants in
// DESIGN.md §2 must hold for *every* demand pattern, job mix and budget,
// not just the hand-picked unit-test cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "adaptbf/token_allocator.h"
#include "support/random.h"

namespace adaptbf {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  std::size_t num_jobs;
  double total_rate;
  int windows;
};

class AllocatorPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  /// Generates a demand trace where jobs randomly idle, trickle, saturate
  /// or burst — the full range of behaviours the paper's scenarios mix.
  std::vector<JobWindowInput> random_window(Xoshiro256& rng,
                                            std::size_t num_jobs,
                                            double budget) {
    std::vector<JobWindowInput> inputs;
    for (std::size_t i = 0; i < num_jobs; ++i) {
      // ~20% of jobs sit a window out entirely (inactive: not listed).
      if (rng.next_double() < 0.2) continue;
      JobWindowInput input;
      input.job = JobId(static_cast<std::uint32_t>(i + 1));
      input.nodes = static_cast<std::uint32_t>(rng.next_in(1, 16));
      const double mode = rng.next_double();
      if (mode < 0.25) {
        input.demand = 0.0;  // active but demandless (e.g. metadata only)
      } else if (mode < 0.5) {
        input.demand = std::floor(rng.next_double() * budget * 0.2);
      } else if (mode < 0.75) {
        input.demand = std::floor(budget * (0.8 + rng.next_double() * 0.4));
      } else {
        input.demand = std::floor(budget * (2.0 + rng.next_double() * 8.0));
      }
      inputs.push_back(input);
    }
    return inputs;
  }
};

TEST_P(AllocatorPropertyTest, InvariantsHoldOverRandomTraces) {
  const auto param = GetParam();
  AllocatorConfig config;
  config.total_rate = param.total_rate;
  config.dt = SimDuration::millis(100);
  TokenAllocator allocator(config);
  Xoshiro256 rng(param.seed);
  const double budget = config.total_rate * config.dt.to_seconds();

  double previous_record_sum = 0.0;
  for (int w = 1; w <= param.windows; ++w) {
    const SimTime now = SimTime::zero() + SimDuration::millis(100) * w;
    const auto inputs = random_window(rng, param.num_jobs, budget);
    const auto result = allocator.allocate(inputs, now);

    if (inputs.empty()) {
      EXPECT_TRUE(result.jobs.empty());
      continue;
    }

    // --- Invariant 1: token conservation / budget respected ---
    std::int64_t total_tokens = 0;
    double exact_total = 0.0;
    for (const auto& j : result.jobs) {
      total_tokens += j.tokens;
      exact_total += j.after_recompensation;
      EXPECT_GE(j.tokens, 0) << "window " << w;
    }
    EXPECT_NEAR(exact_total, budget, 1e-6) << "window " << w;
    // Integer total within +-1 of the exact budget (the carry's slack).
    EXPECT_LE(std::abs(static_cast<double>(total_tokens) - budget), 1.0 + 1e-9)
        << "window " << w;

    // --- Invariant 2: record deltas zero-sum within the window ---
    double record_delta_sum = 0.0;
    double record_sum_now = 0.0;
    for (const auto& j : result.jobs) record_delta_sum += j.record_after;
    // Records of *inactive* jobs are untouched, so the sum over all jobs
    // changes only by the active jobs' deltas; track the global sum.
    record_sum_now = record_delta_sum;
    for (std::size_t i = 1; i <= param.num_jobs; ++i) {
      const JobId id(static_cast<std::uint32_t>(i));
      if (result.find(id) == nullptr)
        record_sum_now += allocator.record(id);
    }
    EXPECT_NEAR(record_sum_now, previous_record_sum, 1e-6)
        << "lending != borrowing in window " << w;
    previous_record_sum = record_sum_now;

    // --- Invariant 3: remainders bounded in (-1, 2) ---
    // ρ is exactly the job's cumulative entitlement minus delivered
    // tokens; flooring keeps it in [0,1) and the ±1 largest-remainder
    // repair can push it one token either way — but never further, so
    // no job ever drifts more than ~2 tokens from its exact fair share.
    for (const auto& j : result.jobs) {
      EXPECT_GT(j.remainder_after, -1.0 - 1e-9) << "window " << w;
      EXPECT_LT(j.remainder_after, 2.0 + 1e-9) << "window " << w;
    }

    // --- Invariant 4: reclaim bounds ---
    for (const auto& j : result.jobs) {
      EXPECT_GE(j.reclaimed, 0.0);
      EXPECT_GE(j.after_recompensation, -1e-9) << "window " << w;
      if (j.reclaimed > 0.0) {
        EXPECT_LE(j.reclaimed,
                  std::abs(j.record_after_redistribution) + 1e-9)
            << "window " << w;
      }
    }

    // --- Structural: priorities form a distribution ---
    double priority_sum = 0.0;
    for (const auto& j : result.jobs) priority_sum += j.priority;
    EXPECT_NEAR(priority_sum, 1.0, 1e-9);

    // --- Reclaim coefficient clamped ---
    EXPECT_GE(result.reclaim_coefficient, 0.0);
    EXPECT_LE(result.reclaim_coefficient, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorPropertyTest,
    ::testing::Values(
        PropertyParam{1, 2, 1000.0, 200}, PropertyParam{2, 4, 1000.0, 200},
        PropertyParam{3, 8, 1000.0, 200}, PropertyParam{4, 16, 1000.0, 100},
        PropertyParam{5, 4, 100.0, 200}, PropertyParam{6, 4, 17.0, 200},
        PropertyParam{7, 32, 5000.0, 50}, PropertyParam{8, 3, 999.5, 200},
        PropertyParam{9, 64, 10000.0, 30}, PropertyParam{10, 1, 1000.0, 50}),
    [](const ::testing::TestParamInfo<PropertyParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_jobs" +
             std::to_string(param_info.param.num_jobs);
    });

class AblationEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(AblationEquivalenceTest, DisabledStepsStillConserveBudget) {
  // Every combination of disabled steps must still never exceed the token
  // budget — disabling borrowing must degrade utilization, not correctness.
  auto [redistribution, recompensation, remainders] = GetParam();
  AllocatorConfig config;
  config.total_rate = 1000.0;
  config.dt = SimDuration::millis(100);
  config.enable_redistribution = redistribution;
  config.enable_recompensation = recompensation;
  config.enable_remainders = remainders;
  TokenAllocator allocator(config);
  Xoshiro256 rng(12345);
  for (int w = 1; w <= 100; ++w) {
    std::vector<JobWindowInput> inputs;
    for (std::uint32_t id = 1; id <= 5; ++id) {
      inputs.push_back(JobWindowInput{
          JobId(id), static_cast<std::uint32_t>(rng.next_in(1, 8)),
          std::floor(rng.next_double() * 300.0)});
    }
    const auto result = allocator.allocate(
        inputs, SimTime::zero() + SimDuration::millis(100) * w);
    std::int64_t total = 0;
    for (const auto& j : result.jobs) {
      EXPECT_GE(j.tokens, 0);
      total += j.tokens;
    }
    EXPECT_LE(static_cast<double>(total), 100.0 + 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, AblationEquivalenceTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(AllocatorDeterminism, IdenticalTracesGiveIdenticalResults) {
  auto run = [](std::uint64_t seed) {
    AllocatorConfig config;
    config.total_rate = 1234.0;
    config.dt = SimDuration::millis(100);
    TokenAllocator allocator(config);
    Xoshiro256 rng(seed);
    std::vector<std::int64_t> tokens;
    for (int w = 1; w <= 100; ++w) {
      std::vector<JobWindowInput> inputs;
      for (std::uint32_t id = 1; id <= 6; ++id)
        inputs.push_back(JobWindowInput{
            JobId(id), static_cast<std::uint32_t>(1 + id % 3),
            std::floor(rng.next_double() * 200.0)});
      const auto result = allocator.allocate(
          inputs, SimTime::zero() + SimDuration::millis(100) * w);
      for (const auto& j : result.jobs) tokens.push_back(j.tokens);
    }
    return tokens;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace adaptbf
