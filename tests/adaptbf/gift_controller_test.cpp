#include "adaptbf/gift_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "support/units.h"

namespace adaptbf {
namespace {

struct GiftBed {
  Simulator sim;
  std::unique_ptr<Ost> ost;
  TbfScheduler* tbf = nullptr;

  GiftBed() {
    Ost::Config config;
    config.num_threads = 4;
    config.disk.seq_bandwidth = mib_per_sec(100);
    config.disk.per_rpc_overhead = SimDuration(0);
    auto scheduler = std::make_unique<TbfScheduler>();
    tbf = scheduler.get();
    ost = std::make_unique<Ost>(sim, config, std::move(scheduler));
  }
};

GiftController::Config gift_config(double total_rate = 100.0) {
  GiftController::Config config;
  config.total_rate = total_rate;
  config.dt = SimDuration::millis(100);
  config.per_ost_latency = SimDuration(0);
  return config;
}

Rpc make_rpc(std::uint64_t id, std::uint32_t job) {
  Rpc rpc;
  rpc.id = id;
  rpc.job = JobId(job);
  rpc.size_bytes = 1024 * 1024;
  return rpc;
}

TEST(GiftController, EqualSharesIgnorePriority) {
  GiftBed bed;
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, gift_config());
  gift.start();
  // Two jobs, both saturated with more work than the run can drain: GIFT
  // has no notion of compute nodes, so both progress at the same rate.
  for (std::uint64_t i = 0; i < 200; ++i) {
    bed.ost->submit(make_rpc(2 * i, 1));
    bed.ost->submit(make_rpc(2 * i + 1, 2));
  }
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(2000));
  const auto* c1 = bed.ost->job_stats().cumulative(JobId(1));
  const auto* c2 = bed.ost->job_stats().cumulative(JobId(2));
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_GT(c1->rpcs_completed, 50u);  // both made real progress
  EXPECT_NEAR(static_cast<double>(c1->rpcs_completed),
              static_cast<double>(c2->rpcs_completed), 8.0);
}

TEST(GiftController, UnusedShareEarnsCoupons) {
  GiftBed bed;
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, gift_config());
  gift.start();
  // One light job: equal share = full budget (10 tokens/window); using 1
  // earns ~9 coupons per window.
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  EXPECT_NEAR(gift.coupons(JobId(1)), 9.0, 0.5);
}

TEST(GiftController, CouponsRedeemedWhenDemandRises) {
  GiftBed bed;
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, gift_config());
  gift.start();
  // Window 1: job 1 light (earns coupons), job 2 heavy.
  bed.ost->submit(make_rpc(1, 1));
  for (std::uint64_t i = 0; i < 30; ++i) bed.ost->submit(make_rpc(10 + i, 2));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  const double earned = gift.coupons(JobId(1));
  EXPECT_GT(earned, 0.0);
  // Window 2: job 1 turns heavy; its deficit redeems coupons.
  for (std::uint64_t i = 0; i < 30; ++i)
    bed.ost->submit(make_rpc(1000 + i, 1));
  bed.ost->submit(make_rpc(2000, 2));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(200));
  EXPECT_LT(gift.coupons(JobId(1)), earned);
}

TEST(GiftController, CouponsExpire) {
  GiftBed bed;
  auto config = gift_config();
  config.coupon_expiry = SimDuration::seconds(1);
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, config);
  gift.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  EXPECT_GT(gift.coupons(JobId(1)), 0.0);
  // No further activity: the account expires.
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(1300));
  EXPECT_DOUBLE_EQ(gift.coupons(JobId(1)), 0.0);
}

TEST(GiftController, CentralBankSharedAcrossTargets) {
  Simulator sim;
  Ost::Config ost_config;
  ost_config.num_threads = 4;
  ost_config.disk.seq_bandwidth = mib_per_sec(100);
  ost_config.disk.per_rpc_overhead = SimDuration(0);
  auto s0 = std::make_unique<TbfScheduler>();
  auto s1 = std::make_unique<TbfScheduler>();
  TbfScheduler* tbf0 = s0.get();
  TbfScheduler* tbf1 = s1.get();
  Ost ost0(sim, ost_config, std::move(s0));
  Ost ost1(sim, ost_config, std::move(s1));
  GiftController gift(sim, {{&ost0, tbf0}, {&ost1, tbf1}}, gift_config());
  gift.start();
  // The job earns coupons on BOTH targets; one shared balance grows twice
  // as fast as the single-target case (~9 x 2).
  ost0.submit(make_rpc(1, 1));
  ost1.submit(make_rpc(2, 1));
  sim.run_until(SimTime::zero() + SimDuration::millis(100));
  EXPECT_NEAR(gift.coupons(JobId(1)), 18.0, 1.0);
}

TEST(GiftController, StopsRulesWhenIdle) {
  GiftBed bed;
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, gift_config());
  gift.start();
  bed.ost->submit(make_rpc(1, 1));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(100));
  EXPECT_TRUE(bed.tbf->has_rule("job_1"));
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(300));
  EXPECT_FALSE(bed.tbf->has_rule("job_1"));
}

TEST(GiftController, StopHaltsLoop) {
  GiftBed bed;
  GiftController gift(bed.sim, {{bed.ost.get(), bed.tbf}}, gift_config());
  gift.start();
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(300));
  gift.stop();
  const auto windows = gift.windows_run();
  bed.sim.run_until(SimTime::zero() + SimDuration::millis(800));
  EXPECT_EQ(gift.windows_run(), windows);
}

}  // namespace
}  // namespace adaptbf
