// Tests for the §IV-E extension: informed demand estimation (EWMA) in the
// re-compensation step, replacing the paper's d̄ = d assumption.
#include <gtest/gtest.h>

#include <vector>

#include "adaptbf/token_allocator.h"

namespace adaptbf {
namespace {

JobWindowInput job(std::uint32_t id, std::uint32_t nodes, double demand) {
  return JobWindowInput{JobId(id), nodes, demand};
}

SimTime t(int window) {
  return SimTime::zero() + SimDuration::millis(100) * window;
}

AllocatorConfig ewma_config(double alpha) {
  AllocatorConfig config;
  config.total_rate = 1000.0;
  config.dt = SimDuration::millis(100);
  config.demand_estimator = DemandEstimator::kEwma;
  config.ewma_alpha = alpha;
  return config;
}

TEST(DemandEstimator, LastWindowTracksDemandExactly) {
  AllocatorConfig config;
  config.total_rate = 1000.0;
  config.dt = SimDuration::millis(100);
  TokenAllocator allocator(config);
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 40)}, t(1));
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(1)), 40.0);
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 200)}, t(2));
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(1)), 200.0);
}

TEST(DemandEstimator, EwmaInitializesToFirstObservation) {
  TokenAllocator allocator(ewma_config(0.5));
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 80)}, t(1));
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(1)), 80.0);
}

TEST(DemandEstimator, EwmaSmoothsSpikes) {
  TokenAllocator allocator(ewma_config(0.5));
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 100)}, t(1));
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 0)}, t(2));
  // 0.5*0 + 0.5*100 = 50: a one-window dropout halves, not zeroes, the
  // estimate.
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(1)), 50.0);
  (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 0)}, t(3));
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(1)), 25.0);
}

TEST(DemandEstimator, EwmaConvergesToSteadyDemand) {
  TokenAllocator allocator(ewma_config(0.3));
  for (int w = 1; w <= 60; ++w)
    (void)allocator.allocate(std::vector<JobWindowInput>{job(1, 1, 70)},
                             t(w));
  EXPECT_NEAR(allocator.estimated_demand(JobId(1)), 70.0, 1e-6);
}

TEST(DemandEstimator, UnknownJobEstimateIsZero) {
  TokenAllocator allocator(ewma_config(0.3));
  EXPECT_DOUBLE_EQ(allocator.estimated_demand(JobId(42)), 0.0);
}

TEST(DemandEstimator, EstimatorChangesReclaimAmount) {
  // Construct a lender whose demand was high and just dropped to zero.
  // Under d̄ = d (last window), ū = 0 so max(0, 1-ū) = 1 pushes C up;
  // under EWMA the estimate stays high, ū stays high, C is smaller and
  // the borrower keeps more of its allocation.
  auto run = [&](DemandEstimator estimator) {
    AllocatorConfig config;
    config.total_rate = 1000.0;
    config.dt = SimDuration::millis(100);
    config.demand_estimator = estimator;
    config.ewma_alpha = 0.2;
    TokenAllocator allocator(config);
    // Window 1: establish; window 2: job 1 lends while busy elsewhere...
    (void)allocator.allocate(
        std::vector<JobWindowInput>{job(1, 1, 100), job(2, 1, 100)}, t(1));
    (void)allocator.allocate(
        std::vector<JobWindowInput>{job(1, 1, 10), job(2, 1, 150)}, t(2));
    // Window 3: lender active with a small demand, far below its EWMA
    // history — the two estimators now disagree about ū.
    const auto result = allocator.allocate(
        std::vector<JobWindowInput>{job(1, 1, 8), job(2, 1, 150)}, t(3));
    return result.reclaim_coefficient;
  };
  const double c_last = run(DemandEstimator::kLastWindow);
  const double c_ewma = run(DemandEstimator::kEwma);
  // Under last-window the lender's future utilization looks low (demand
  // 8 against its allocation), adding a max(0, 1-ū) boost; under EWMA the
  // remembered high demand suppresses that term, giving a smaller C.
  EXPECT_GT(c_last, 0.0);
  EXPECT_GT(c_ewma, 0.0);
  EXPECT_LT(c_last, 1.0);  // neither saturates at the clamp
  EXPECT_LT(c_ewma, c_last);
}

TEST(DemandEstimator, BadAlphaRejected) {
  AllocatorConfig config;
  config.ewma_alpha = 0.0;
  EXPECT_DEATH(TokenAllocator{config}, "ewma_alpha");
}

}  // namespace
}  // namespace adaptbf
