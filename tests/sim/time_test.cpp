#include "sim/time.h"

#include <gtest/gtest.h>

namespace adaptbf {
namespace {

TEST(SimDuration, FactoryUnits) {
  EXPECT_EQ(SimDuration::nanos(1).ns(), 1);
  EXPECT_EQ(SimDuration::micros(1).ns(), 1'000);
  EXPECT_EQ(SimDuration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(SimDuration::seconds(1).ns(), 1'000'000'000);
}

TEST(SimDuration, FromSecondsRounds) {
  EXPECT_EQ(SimDuration::from_seconds(0.1).ns(), 100'000'000);
  EXPECT_EQ(SimDuration::from_seconds(1e-9).ns(), 1);
  // Half-nanosecond rounds up.
  EXPECT_EQ(SimDuration::from_seconds(1.5e-9).ns(), 2);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::millis(100);
  const auto b = SimDuration::millis(50);
  EXPECT_EQ((a + b).ns(), SimDuration::millis(150).ns());
  EXPECT_EQ((a - b).ns(), SimDuration::millis(50).ns());
  EXPECT_EQ((a * 3).ns(), SimDuration::millis(300).ns());
  EXPECT_EQ((a / 4).ns(), SimDuration::millis(25).ns());
}

TEST(SimDuration, Comparisons) {
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
  EXPECT_EQ(SimDuration::seconds(1), SimDuration::millis(1000));
}

TEST(SimTime, ZeroAndMax) {
  EXPECT_EQ(SimTime::zero().ns(), 0);
  EXPECT_GT(SimTime::max(), SimTime(1'000'000'000'000'000LL));
}

TEST(SimTime, PlusDurationAndDifference) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + SimDuration::seconds(2);
  EXPECT_EQ((t1 - t0).ns(), SimDuration::seconds(2).ns());
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t1.to_millis(), 2000.0);
}

TEST(SimTime, ToStringFormat) {
  EXPECT_EQ(to_string(SimTime::zero() + SimDuration::millis(12345)),
            "12.345s");
}

}  // namespace
}  // namespace adaptbf
