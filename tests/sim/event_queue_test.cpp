// EventQueue API tests, run over both ordering backends: every observable
// behavior (fire order, cancel verdicts, handle staleness, counts) must be
// identical whether the structure underneath is the 4-ary heap or the
// calendar queue. Batch staging and reset()-reuse get their own sections.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/random.h"

namespace adaptbf {
namespace {

class EventQueueTest : public ::testing::TestWithParam<QueueBackend> {
 protected:
  [[nodiscard]] EventQueue make() const { return EventQueue(GetParam()); }
};

TEST_P(EventQueueTest, EmptyAtStart) {
  EventQueue queue = make();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), SimTime::max());
  EXPECT_EQ(queue.backend(), GetParam());
}

TEST_P(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue = make();
  std::vector<int> fired;
  queue.schedule(SimTime(30), [&] { fired.push_back(3); });
  queue.schedule(SimTime(10), [&] { fired.push_back(1); });
  queue.schedule(SimTime(20), [&] { fired.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue = make();
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    queue.schedule(SimTime(5), [&fired, i] { fired.push_back(i); });
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST_P(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue = make();
  bool fired = false;
  const EventHandle handle = queue.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST_P(EventQueueTest, CancelTwiceFails) {
  EventQueue queue = make();
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST_P(EventQueueTest, CancelAfterFireFails) {
  EventQueue queue = make();
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  queue.pop().fn();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST_P(EventQueueTest, CancelMiddleKeepsOrder) {
  EventQueue queue = make();
  std::vector<int> fired;
  queue.schedule(SimTime(1), [&] { fired.push_back(1); });
  const EventHandle handle =
      queue.schedule(SimTime(2), [&] { fired.push_back(2); });
  queue.schedule(SimTime(3), [&] { fired.push_back(3); });
  queue.cancel(handle);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST_P(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue queue = make();
  const EventHandle handle = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(5), [] {});
  queue.cancel(handle);
  EXPECT_EQ(queue.next_time(), SimTime(5));
}

TEST_P(EventQueueTest, LiveCountTracksCancellations) {
  EventQueue queue = make();
  const EventHandle a = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(2), [] {});
  EXPECT_EQ(queue.live(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.live(), 1u);
}

TEST_P(EventQueueTest, DefaultHandleIsInvalid) {
  EventQueue queue = make();
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(queue.pending(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST_P(EventQueueTest, PendingTracksLifecycle) {
  EventQueue queue = make();
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  EXPECT_TRUE(queue.pending(handle));
  queue.pop().fn();
  EXPECT_FALSE(queue.pending(handle));
}

TEST_P(EventQueueTest, StaleHandleAgainstReusedSlotFails) {
  EventQueue queue = make();
  const EventHandle first = queue.schedule(SimTime(10), [] {});
  queue.pop().fn();
  // The pool reuses the released slot; the old handle's generation is
  // behind, so it must not cancel the new occupant.
  const EventHandle second = queue.schedule(SimTime(20), [] {});
  ASSERT_EQ(second.index, first.index);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(queue.pending(first));
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_TRUE(queue.pending(second));
  EXPECT_TRUE(queue.cancel(second));
}

TEST_P(EventQueueTest, SequencesAssignedInScheduleOrder) {
  EventQueue queue = make();
  queue.schedule(SimTime(30), [] {});
  queue.schedule(SimTime(10), [] {});
  queue.schedule(SimTime(20), [] {});
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 2u);
  EXPECT_EQ(queue.pop().seq, 0u);
}

TEST_P(EventQueueTest, StatsCountOperations) {
  EventQueue queue = make();
  const EventHandle handle = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(2), [] {});
  queue.cancel(handle);
  queue.pop().fn();
  EXPECT_EQ(queue.stats().scheduled, 2u);
  EXPECT_EQ(queue.stats().cancelled, 1u);
  EXPECT_EQ(queue.stats().fired, 1u);
}

TEST_P(EventQueueTest, ReserveMakesSteadyStateAllocationFree) {
  EventQueue queue = make();
  queue.reserve(64);
  // One warm-up round first: the calendar's per-bucket vectors size
  // themselves to the workload's tie pattern on first contact, which is
  // expected one-time growth, not steady-state churn.
  const auto churn_round = [&queue] {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 64; ++i)
      handles.push_back(queue.schedule(SimTime(i), [] {}));
    for (int i = 0; i < 32; ++i) queue.cancel(handles[static_cast<size_t>(i)]);
    while (!queue.empty()) queue.pop().fn();
  };
  churn_round();
  const std::uint64_t reallocations_before = queue.stats().pool_reallocations;
  // Churn far more events than the reservation, never exceeding 64 live.
  for (int round = 0; round < 100; ++round) churn_round();
  EXPECT_EQ(queue.stats().pool_reallocations, reallocations_before);
  EXPECT_LE(queue.pool_slots(), 64u);
}

TEST_P(EventQueueTest, OversizedCaptureStillWorksViaHeapFallback) {
  EventQueue queue = make();
  // > kInlineCapacity bytes of captured state must still fire correctly.
  std::array<std::uint64_t, 32> big{};
  big[0] = 7;
  big[31] = 9;
  std::uint64_t sum = 0;
  queue.schedule(SimTime(1), [big, &sum] { sum = big[0] + big[31]; });
  queue.pop().fn();
  EXPECT_EQ(sum, 16u);
}

TEST_P(EventQueueTest, HeapSpillsCountedPerQueue) {
  // The per-queue spill counter sees only this queue's oversized captures
  // (unlike the deprecated process-wide EventCallback::heap_fallbacks()).
  EventQueue queue = make();
  EventQueue other(GetParam());
  std::array<std::uint64_t, 32> big{};
  queue.schedule(SimTime(1), [] {});  // inline: no spill
  EXPECT_EQ(queue.stats().callback_heap_spills, 0u);
  queue.schedule(SimTime(2), [big] { (void)big; });
  EXPECT_EQ(queue.stats().callback_heap_spills, 1u);
  EXPECT_EQ(other.stats().callback_heap_spills, 0u);
}

TEST_P(EventQueueTest, CancelledCallbackStateIsReleased) {
  EventQueue queue = make();
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventHandle handle = queue.schedule(SimTime(1), [token] {});
  token.reset();
  EXPECT_FALSE(watch.expired());  // kept alive by the pending event
  queue.cancel(handle);
  EXPECT_TRUE(watch.expired());  // cancel destroys the captured state
}

TEST_P(EventQueueTest, StressManyRandomOrderings) {
  EventQueue queue = make();
  std::vector<std::int64_t> fired;
  // Insert with a scrambled deterministic pattern.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    queue.schedule(SimTime(t), [&fired, t] { fired.push_back(t); });
  }
  SimTime last = SimTime::zero();
  while (!queue.empty()) {
    auto event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
    event.fn();
  }
  EXPECT_EQ(fired.size(), 1000u);
}

// ---------------------------------------------------------- batch staging

TEST_P(EventQueueTest, PopBatchDrainsExactlyTheEarliestCohort) {
  EventQueue queue = make();
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    queue.schedule(SimTime(10), [&fired, i] { fired.push_back(i); });
  queue.schedule(SimTime(20), [&fired] { fired.push_back(99); });
  ASSERT_EQ(queue.pop_batch(), 5u);
  EXPECT_EQ(queue.live(), 6u);  // staged events are still pending
  EventQueue::Fired out;
  while (queue.collect_staged(out)) out.fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.live(), 1u);
  EXPECT_EQ(queue.next_time(), SimTime(20));
}

TEST_P(EventQueueTest, PopBatchOfOneMatchesPop) {
  EventQueue queue = make();
  queue.schedule(SimTime(7), [] {});
  ASSERT_EQ(queue.pop_batch(), 1u);
  EventQueue::Fired out;
  ASSERT_TRUE(queue.collect_staged(out));
  EXPECT_EQ(out.time, SimTime(7));
  EXPECT_EQ(out.seq, 0u);
  EXPECT_FALSE(queue.collect_staged(out));
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueTest, CancelDuringBatchPreventsStagedEventFromFiring) {
  // An event dispatched early in a batch cancels a same-timestamp event
  // staged behind it — the staged event must not fire, exactly as under
  // single pops.
  EventQueue queue = make();
  std::vector<int> fired;
  EventHandle second;
  queue.schedule(SimTime(10), [&] {
    fired.push_back(0);
    EXPECT_TRUE(queue.cancel(second));
  });
  second = queue.schedule(SimTime(10), [&] { fired.push_back(1); });
  queue.schedule(SimTime(10), [&] { fired.push_back(2); });
  ASSERT_EQ(queue.pop_batch(), 3u);
  EventQueue::Fired out;
  while (queue.collect_staged(out)) out.fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
  EXPECT_EQ(queue.stats().cancelled, 1u);
  EXPECT_EQ(queue.stats().fired, 2u);
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueTest, ScheduleDuringBatchJoinsTheStructureNotTheBatch) {
  // A same-time event scheduled while collecting lands in the ordering
  // structure (it has a later sequence number than everything staged), so
  // it fires in the NEXT batch — the same order single pops produce.
  EventQueue queue = make();
  std::vector<int> fired;
  queue.schedule(SimTime(10), [&] {
    fired.push_back(0);
    queue.schedule(SimTime(10), [&] { fired.push_back(9); });
  });
  queue.schedule(SimTime(10), [&] { fired.push_back(1); });
  ASSERT_EQ(queue.pop_batch(), 2u);
  EventQueue::Fired out;
  while (queue.collect_staged(out)) out.fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  ASSERT_EQ(queue.pop_batch(), 1u);
  while (queue.collect_staged(out)) out.fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 9}));
}

TEST_P(EventQueueTest, CancelledStagedCallbackStateIsReleased) {
  EventQueue queue = make();
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventHandle handle = queue.schedule(SimTime(1), [token] {});
  token.reset();
  ASSERT_EQ(queue.pop_batch(), 1u);
  EXPECT_TRUE(queue.pending(handle));  // staged, not yet collected
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(watch.expired());  // cancel destroys the staged state
  EventQueue::Fired out;
  EXPECT_FALSE(queue.collect_staged(out));
  EXPECT_TRUE(queue.empty());
}

// ----------------------------------------------------------- reset reuse

TEST_P(EventQueueTest, ResetDropsPendingAndRewindsSequences) {
  EventQueue queue = make();
  bool fired = false;
  const EventHandle handle = queue.schedule(SimTime(5), [&] { fired = true; });
  queue.schedule(SimTime(6), [] {});
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pending(handle));
  EXPECT_FALSE(queue.cancel(handle));  // stale, not aliased
  EXPECT_FALSE(fired);
  EXPECT_EQ(queue.stats().scheduled, 0u);
  // Sequences restart at zero, exactly like a fresh queue.
  queue.schedule(SimTime(1), [] {});
  EXPECT_EQ(queue.pop().seq, 0u);
}

TEST_P(EventQueueTest, ResetReleasesPendingCallbackState) {
  EventQueue queue = make();
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  queue.schedule(SimTime(5), [token] {});
  token.reset();
  ASSERT_FALSE(watch.expired());
  queue.reset();
  EXPECT_TRUE(watch.expired());
}

TEST_P(EventQueueTest, ResetReleasesUncollectedStagedEvents) {
  EventQueue queue = make();
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  queue.schedule(SimTime(5), [token] {});
  queue.schedule(SimTime(5), [] {});
  token.reset();
  ASSERT_EQ(queue.pop_batch(), 2u);
  queue.reset();  // mid-batch reset: staged events are dropped too
  EXPECT_TRUE(watch.expired());
  EXPECT_TRUE(queue.empty());
  EventQueue::Fired out;
  EXPECT_FALSE(queue.collect_staged(out));
}

TEST_P(EventQueueTest, ResetKeepsStorageWarm) {
  EventQueue queue = make();
  const auto fill_and_drain = [&queue] {
    for (int i = 0; i < 200; ++i) queue.schedule(SimTime(i % 17), [] {});
    while (!queue.empty()) queue.pop().fn();
  };
  fill_and_drain();
  queue.reset();
  // The second identical round must not grow any storage: the slab, the
  // ordering structure, and the staging scratch all survived the reset.
  fill_and_drain();
  EXPECT_EQ(queue.stats().pool_reallocations, 0u);
}

/// Randomized property: a reset queue is observationally identical to a
/// fresh one — the same operation sequence produces the same (time, seq)
/// fire trace, cancel verdicts, and counts, no matter what ran before the
/// reset.
TEST_P(EventQueueTest, ResetQueueTracesIdenticallyToFreshQueue) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EventQueue reused = make();
    // Arbitrary pre-history, abandoned mid-flight (pending events left).
    Xoshiro256 pre(seed * 977);
    std::vector<EventHandle> pre_handles;
    for (int i = 0; i < 300; ++i) {
      pre_handles.push_back(reused.schedule(
          SimTime(static_cast<std::int64_t>(pre.next_in(0, 99))), [] {}));
      if (pre.next_in(0, 2) == 0) reused.pop().fn();
      if (pre.next_in(0, 3) == 0)
        reused.cancel(pre_handles[pre.next_in(0, pre_handles.size() - 1)]);
    }
    reused.reset();

    EventQueue fresh = make();
    const auto run_ops = [](EventQueue& queue, std::uint64_t op_seed) {
      // (time, seq) trace plus verdict/count observations.
      std::vector<std::pair<std::int64_t, std::uint64_t>> trace;
      Xoshiro256 rng(op_seed);
      std::vector<EventHandle> handles;
      for (int op = 0; op < 500; ++op) {
        const std::uint64_t roll = rng.next_in(0, 9);
        if (roll < 6 || queue.empty()) {
          handles.push_back(queue.schedule(
              SimTime(static_cast<std::int64_t>(rng.next_in(0, 49))), [] {}));
        } else if (roll < 8) {
          const bool verdict =
              queue.cancel(handles[rng.next_in(0, handles.size() - 1)]);
          trace.emplace_back(-1, verdict ? 1 : 0);
        } else {
          const auto fired = queue.pop();
          trace.emplace_back(fired.time.ns(), fired.seq);
        }
        trace.emplace_back(-2, queue.live());
      }
      while (!queue.empty()) {
        const auto fired = queue.pop();
        trace.emplace_back(fired.time.ns(), fired.seq);
      }
      return trace;
    };
    EXPECT_EQ(run_ops(reused, seed), run_ops(fresh, seed))
        << "reset()-reuse trace diverged from fresh queue, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueTest,
                         ::testing::Values(QueueBackend::kHeap,
                                           QueueBackend::kCalendar),
                         [](const ::testing::TestParamInfo<QueueBackend>& param_info) {
                           return queue_backend_name(param_info.param);
                         });

TEST(QueueBackendName, Tokens) {
  EXPECT_STREQ(queue_backend_name(QueueBackend::kHeap), "heap");
  EXPECT_STREQ(queue_backend_name(QueueBackend::kCalendar), "calendar");
}

}  // namespace
}  // namespace adaptbf
