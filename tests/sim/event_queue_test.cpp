#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace adaptbf {
namespace {

TEST(EventQueue, EmptyAtStart) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime(30), [&] { fired.push_back(3); });
  queue.schedule(SimTime(10), [&] { fired.push_back(1); });
  queue.schedule(SimTime(20), [&] { fired.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    queue.schedule(SimTime(5), [&fired, i] { fired.push_back(i); });
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventHandle handle = queue.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  queue.pop().fn();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime(1), [&] { fired.push_back(1); });
  const EventHandle handle =
      queue.schedule(SimTime(2), [&] { fired.push_back(2); });
  queue.schedule(SimTime(3), [&] { fired.push_back(3); });
  queue.cancel(handle);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(5), [] {});
  queue.cancel(handle);
  EXPECT_EQ(queue.next_time(), SimTime(5));
}

TEST(EventQueue, LiveCountTracksCancellations) {
  EventQueue queue;
  const EventHandle a = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(2), [] {});
  EXPECT_EQ(queue.live(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.live(), 1u);
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventQueue queue;
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(queue.pending(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueue, PendingTracksLifecycle) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime(10), [] {});
  EXPECT_TRUE(queue.pending(handle));
  queue.pop().fn();
  EXPECT_FALSE(queue.pending(handle));
}

TEST(EventQueue, StaleHandleAgainstReusedSlotFails) {
  EventQueue queue;
  const EventHandle first = queue.schedule(SimTime(10), [] {});
  queue.pop().fn();
  // The pool reuses the released slot; the old handle's generation is
  // behind, so it must not cancel the new occupant.
  const EventHandle second = queue.schedule(SimTime(20), [] {});
  ASSERT_EQ(second.index, first.index);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(queue.pending(first));
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_TRUE(queue.pending(second));
  EXPECT_TRUE(queue.cancel(second));
}

TEST(EventQueue, SequencesAssignedInScheduleOrder) {
  EventQueue queue;
  queue.schedule(SimTime(30), [] {});
  queue.schedule(SimTime(10), [] {});
  queue.schedule(SimTime(20), [] {});
  EXPECT_EQ(queue.pop().seq, 1u);
  EXPECT_EQ(queue.pop().seq, 2u);
  EXPECT_EQ(queue.pop().seq, 0u);
}

TEST(EventQueue, StatsCountOperations) {
  EventQueue queue;
  const EventHandle handle = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(2), [] {});
  queue.cancel(handle);
  queue.pop().fn();
  EXPECT_EQ(queue.stats().scheduled, 2u);
  EXPECT_EQ(queue.stats().cancelled, 1u);
  EXPECT_EQ(queue.stats().fired, 1u);
}

TEST(EventQueue, ReserveMakesSteadyStateAllocationFree) {
  EventQueue queue;
  queue.reserve(64);
  const std::uint64_t reallocations_before = queue.stats().pool_reallocations;
  // Churn far more events than the reservation, never exceeding 64 live.
  for (int round = 0; round < 100; ++round) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 64; ++i)
      handles.push_back(queue.schedule(SimTime(round * 100 + i), [] {}));
    for (int i = 0; i < 32; ++i) queue.cancel(handles[static_cast<size_t>(i)]);
    while (!queue.empty()) queue.pop().fn();
  }
  EXPECT_EQ(queue.stats().pool_reallocations, reallocations_before);
  EXPECT_LE(queue.pool_slots(), 64u);
}

TEST(EventQueue, OversizedCaptureStillWorksViaHeapFallback) {
  EventQueue queue;
  // > kInlineCapacity bytes of captured state must still fire correctly.
  std::array<std::uint64_t, 32> big{};
  big[0] = 7;
  big[31] = 9;
  std::uint64_t sum = 0;
  queue.schedule(SimTime(1), [big, &sum] { sum = big[0] + big[31]; });
  queue.pop().fn();
  EXPECT_EQ(sum, 16u);
}

TEST(EventQueue, CancelledCallbackStateIsReleased) {
  EventQueue queue;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventHandle handle = queue.schedule(SimTime(1), [token] {});
  token.reset();
  EXPECT_FALSE(watch.expired());  // kept alive by the pending event
  queue.cancel(handle);
  EXPECT_TRUE(watch.expired());  // cancel destroys the captured state
}

TEST(EventQueue, StressManyRandomOrderings) {
  EventQueue queue;
  std::vector<std::int64_t> fired;
  // Insert with a scrambled deterministic pattern.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    queue.schedule(SimTime(t), [&fired, t] { fired.push_back(t); });
  }
  SimTime last = SimTime::zero();
  while (!queue.empty()) {
    auto event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
    event.fn();
  }
  EXPECT_EQ(fired.size(), 1000u);
}

}  // namespace
}  // namespace adaptbf
