#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace adaptbf {
namespace {

TEST(EventQueue, EmptyAtStart) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime(30), [&] { fired.push_back(3); });
  queue.schedule(SimTime(10), [&] { fired.push_back(1); });
  queue.schedule(SimTime(20), [&] { fired.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    queue.schedule(SimTime(5), [&fired, i] { fired.push_back(i); });
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.schedule(SimTime(10), [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue queue;
  const EventId id = queue.schedule(SimTime(10), [] {});
  queue.pop().fn();
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(SimTime(1), [&] { fired.push_back(1); });
  const EventId id = queue.schedule(SimTime(2), [&] { fired.push_back(2); });
  queue.schedule(SimTime(3), [&] { fired.push_back(3); });
  queue.cancel(id);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId id = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(5), [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), SimTime(5));
}

TEST(EventQueue, LiveCountTracksCancellations) {
  EventQueue queue;
  const EventId a = queue.schedule(SimTime(1), [] {});
  queue.schedule(SimTime(2), [] {});
  EXPECT_EQ(queue.live(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.live(), 1u);
}

TEST(EventQueue, StressManyRandomOrderings) {
  EventQueue queue;
  std::vector<std::int64_t> fired;
  // Insert with a scrambled deterministic pattern.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    queue.schedule(SimTime(t), [&fired, t] { fired.push_back(t); });
  }
  SimTime last = SimTime::zero();
  while (!queue.empty()) {
    auto event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
    event.fn();
  }
  EXPECT_EQ(fired.size(), 1000u);
}

}  // namespace
}  // namespace adaptbf
