// Randomized model test: the pooled/generation-tagged EventQueue must be
// observationally identical to a trivial reference implementation — a
// std::multimap keyed on fire time, which (since C++11) preserves insertion
// order among equal keys, i.e. exactly the (time, sequence) contract.
//
// 10k mixed schedule/cancel/pop operations per seed, asserting identical
// fire order, live() counts, and cancel() verdicts throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "support/random.h"

namespace adaptbf {
namespace {

struct ModelEvent {
  EventHandle handle;
  std::multimap<std::int64_t, std::uint64_t>::iterator oracle_it;
  bool alive = false;
};

void run_model(std::uint64_t seed, int operations) {
  Xoshiro256 rng(seed);
  EventQueue queue;
  std::multimap<std::int64_t, std::uint64_t> oracle;  // time -> token
  std::vector<ModelEvent> events;  // every event ever scheduled
  std::vector<std::uint64_t> fired;
  std::uint64_t next_token = 0;

  for (int op = 0; op < operations; ++op) {
    const std::uint64_t roll = rng.next_in(0, 99);
    if (roll < 50 || queue.empty()) {
      // Schedule at a clustered time so ties are frequent.
      const auto when = static_cast<std::int64_t>(rng.next_in(0, 499));
      const std::uint64_t token = next_token++;
      ModelEvent event;
      event.handle =
          queue.schedule(SimTime(when), [&fired, token] { fired.push_back(token); });
      event.oracle_it = oracle.emplace(when, token);
      event.alive = true;
      events.push_back(event);
    } else if (roll < 75) {
      // Cancel a random historical event — often already fired or already
      // cancelled, so stale-handle rejection is exercised constantly.
      ModelEvent& event =
          events[rng.next_in(0, events.size() - 1)];
      const bool cancelled = queue.cancel(event.handle);
      ASSERT_EQ(cancelled, event.alive) << "cancel verdict diverged at op " << op;
      if (event.alive) {
        oracle.erase(event.oracle_it);
        event.alive = false;
      }
    } else {
      // Pop: compare against the oracle's front (begin() of the multimap).
      ASSERT_FALSE(oracle.empty());
      const auto expected = oracle.begin();
      auto popped = queue.pop();
      ASSERT_EQ(popped.time.ns(), expected->first)
          << "fire time diverged at op " << op;
      const std::size_t before = fired.size();
      popped.fn();
      ASSERT_EQ(fired.size(), before + 1);
      ASSERT_EQ(fired.back(), expected->second)
          << "fire order diverged at op " << op;
      // The popped event's entry is dead now.
      for (auto& event : events) {
        if (event.alive && event.oracle_it == expected) {
          event.alive = false;
          ASSERT_FALSE(queue.pending(event.handle));
          break;
        }
      }
      oracle.erase(expected);
    }
    ASSERT_EQ(queue.live(), oracle.size()) << "live() diverged at op " << op;
    ASSERT_EQ(queue.empty(), oracle.empty());
    ASSERT_EQ(queue.next_time(),
              oracle.empty() ? SimTime::max() : SimTime(oracle.begin()->first));
  }

  // Drain: the remaining fire order must match the oracle exactly.
  while (!oracle.empty()) {
    const auto expected = oracle.begin();
    auto popped = queue.pop();
    ASSERT_EQ(popped.time.ns(), expected->first);
    popped.fn();
    ASSERT_EQ(fired.back(), expected->second);
    oracle.erase(expected);
  }
  ASSERT_TRUE(queue.empty());
}

TEST(EventQueueModel, TenThousandMixedOperations) { run_model(0x5eed, 10000); }

TEST(EventQueueModel, MoreSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) run_model(seed, 2000);
}

}  // namespace
}  // namespace adaptbf
