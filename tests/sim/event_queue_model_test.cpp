// Randomized model test: the pooled/generation-tagged EventQueue must be
// observationally identical to a trivial reference implementation — a
// std::multimap keyed on fire time, which (since C++11) preserves insertion
// order among equal keys, i.e. exactly the (time, sequence) contract.
//
// 10k mixed schedule/cancel/pop operations per seed, asserting identical
// fire order, live() counts, and cancel() verdicts throughout. The whole
// suite runs over the {heap, calendar} x {single-pop, batched} matrix: the
// ordering backend and the dispatch mode must both be invisible to the
// model. Batched rounds exercise the staged-cohort semantics, including
// cancels and same-time schedules issued mid-batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "support/random.h"

namespace adaptbf {
namespace {

struct ModelEvent {
  EventHandle handle;
  std::multimap<std::int64_t, std::uint64_t>::iterator oracle_it;
  bool alive = false;
};

struct ModelConfig {
  QueueBackend backend = QueueBackend::kHeap;
  bool use_batch = false;
};

void run_model(std::uint64_t seed, int operations, const ModelConfig& config) {
  Xoshiro256 rng(seed);
  EventQueue queue(config.backend);
  std::multimap<std::int64_t, std::uint64_t> oracle;  // time -> token
  std::vector<ModelEvent> events;  // every event ever scheduled
  std::vector<std::uint64_t> fired;
  std::uint64_t next_token = 0;

  const auto schedule_one = [&](std::int64_t when) {
    const std::uint64_t token = next_token++;
    ModelEvent event;
    event.handle = queue.schedule(SimTime(when),
                                  [&fired, token] { fired.push_back(token); });
    event.oracle_it = oracle.emplace(when, token);
    event.alive = true;
    events.push_back(event);
  };

  const auto cancel_random = [&](int op) {
    ModelEvent& event = events[rng.next_in(0, events.size() - 1)];
    const bool cancelled = queue.cancel(event.handle);
    ASSERT_EQ(cancelled, event.alive) << "cancel verdict diverged at op " << op;
    if (event.alive) {
      oracle.erase(event.oracle_it);
      event.alive = false;
    }
  };

  const auto check_fired_front = [&](EventQueue::Fired& popped, int op) {
    const auto expected = oracle.begin();
    ASSERT_EQ(popped.time.ns(), expected->first)
        << "fire time diverged at op " << op;
    const std::size_t before = fired.size();
    popped.fn();
    ASSERT_EQ(fired.size(), before + 1);
    ASSERT_EQ(fired.back(), expected->second)
        << "fire order diverged at op " << op;
    for (auto& event : events) {
      if (event.alive && event.oracle_it == expected) {
        event.alive = false;
        ASSERT_FALSE(queue.pending(event.handle));
        break;
      }
    }
    oracle.erase(expected);
  };

  for (int op = 0; op < operations; ++op) {
    const std::uint64_t roll = rng.next_in(0, 99);
    if (roll < 50 || queue.empty()) {
      // Schedule at a clustered time so ties are frequent.
      schedule_one(static_cast<std::int64_t>(rng.next_in(0, 499)));
    } else if (roll < 75) {
      // Cancel a random historical event — often already fired or already
      // cancelled, so stale-handle rejection is exercised constantly.
      cancel_random(op);
      if (::testing::Test::HasFatalFailure()) return;
    } else if (config.use_batch && roll >= 90) {
      // Batched drain of the earliest-time cohort. The staged batch must
      // fire exactly the oracle's equal-key run, in insertion order, while
      // cancels and same-time schedules issued mid-batch behave exactly as
      // they would under single pops (the simulator forbids scheduling
      // before the current dispatch time, so mid-batch times are >= t).
      ASSERT_FALSE(oracle.empty());
      const std::int64_t t = oracle.begin()->first;
      ASSERT_EQ(queue.pop_batch(), oracle.count(t))
          << "cohort size diverged at op " << op;
      ASSERT_EQ(queue.live(), oracle.size());  // staged events still pending
      EventQueue::Fired out;
      while (queue.collect_staged(out)) {
        check_fired_front(out, op);
        if (::testing::Test::HasFatalFailure()) return;
        const std::uint64_t mid = rng.next_in(0, 3);
        if (mid == 0) {
          cancel_random(op);
          if (::testing::Test::HasFatalFailure()) return;
        } else if (mid == 1) {
          schedule_one(t + static_cast<std::int64_t>(rng.next_in(0, 499)));
        }
      }
    } else {
      // Pop: compare against the oracle's front (begin() of the multimap).
      ASSERT_FALSE(oracle.empty());
      auto popped = queue.pop();
      check_fired_front(popped, op);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(queue.live(), oracle.size()) << "live() diverged at op " << op;
    ASSERT_EQ(queue.empty(), oracle.empty());
    ASSERT_EQ(queue.next_time(),
              oracle.empty() ? SimTime::max() : SimTime(oracle.begin()->first));
  }

  // Drain: the remaining fire order must match the oracle exactly.
  while (!oracle.empty()) {
    const auto expected = oracle.begin();
    auto popped = queue.pop();
    ASSERT_EQ(popped.time.ns(), expected->first);
    popped.fn();
    ASSERT_EQ(fired.back(), expected->second);
    oracle.erase(expected);
  }
  ASSERT_TRUE(queue.empty());
}

class EventQueueModel : public ::testing::TestWithParam<ModelConfig> {};

TEST_P(EventQueueModel, TenThousandMixedOperations) {
  run_model(0x5eed, 10000, GetParam());
}

TEST_P(EventQueueModel, MoreSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    run_model(seed, 2000, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    BackendMatrix, EventQueueModel,
    ::testing::Values(ModelConfig{QueueBackend::kHeap, false},
                      ModelConfig{QueueBackend::kHeap, true},
                      ModelConfig{QueueBackend::kCalendar, false},
                      ModelConfig{QueueBackend::kCalendar, true}),
    [](const ::testing::TestParamInfo<ModelConfig>& param_info) {
      return std::string(queue_backend_name(param_info.param.backend)) +
             (param_info.param.use_batch ? "_batched" : "_single_pop");
    });

}  // namespace
}  // namespace adaptbf
