#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace adaptbf {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  sim.run_until(SimTime(500));
  EXPECT_EQ(sim.now(), SimTime(500));
}

TEST(Simulator, EventSeesItsOwnTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime(100), [&] { seen = sim.now(); });
  sim.run_until(SimTime(200));
  EXPECT_EQ(seen, SimTime(100));
  EXPECT_EQ(sim.now(), SimTime(200));
}

TEST(Simulator, ScheduleAfterUsesRelativeDelay) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime(100), [&] {
    sim.schedule_after(SimDuration(50), [&] { seen = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_EQ(seen, SimTime(150));
}

TEST(Simulator, RunUntilDoesNotFireLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTime(1000), [&] { fired = true; });
  sim.run_until(SimTime(999));
  EXPECT_FALSE(fired);
  sim.run_until(SimTime(1000));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCascade) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime(10), [&] {
    order.push_back(1);
    sim.schedule_after(SimDuration(5), [&] { order.push_back(2); });
  });
  sim.schedule_at(SimTime(12), [&] { order.push_back(3); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  const EventHandle handle = sim.schedule_at(SimTime(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicFiresAtMultiples) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.schedule_periodic(SimDuration(100), [&] { fires.push_back(sim.now()); });
  sim.run_until(SimTime(350));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], SimTime(100));
  EXPECT_EQ(fires[1], SimTime(200));
  EXPECT_EQ(fires[2], SimTime(300));
}

TEST(Simulator, PeriodicCancelStopsFutureFires) {
  Simulator sim;
  int count = 0;
  auto handle = sim.schedule_periodic(SimDuration(10), [&] { ++count; });
  sim.run_until(SimTime(35));
  EXPECT_EQ(count, 3);
  sim.cancel_periodic(handle);
  sim.run_until(SimTime(100));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCanCancelItself) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle{};
  handle = sim.schedule_periodic(SimDuration(10), [&] {
    ++count;
    if (count == 2) sim.cancel_periodic(handle);
  });
  sim.run_until(SimTime(100));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, TwoPeriodicsInterleave) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_periodic(SimDuration(30), [&] { order.push_back(30); });
  sim.schedule_periodic(SimDuration(20), [&] { order.push_back(20); });
  sim.run_until(SimTime(60));
  // At t=60 both fire; the 30-periodic's event was armed earlier (t=30 vs
  // t=40), so insertion order puts it first.
  EXPECT_EQ(order, (std::vector<int>{20, 30, 20, 30, 20}));
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) sim.schedule_at(SimTime(i), [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_dispatched(), 5u);
}

TEST(SimulatorDeathTest, ZeroPeriodIsRejected) {
  // A zero period would re-arm at the same timestamp forever; the guard
  // must fail fast instead of spinning the clock in place.
  Simulator sim;
  EXPECT_DEATH(sim.schedule_periodic(SimDuration(0), [] {}),
               "period must be positive");
}

TEST(SimulatorDeathTest, NegativePeriodIsRejected) {
  Simulator sim;
  EXPECT_DEATH(sim.schedule_periodic(SimDuration(-5), [] {}),
               "period must be positive");
}

TEST(Simulator, PendingReflectsEventLifecycle) {
  Simulator sim;
  const EventHandle handle = sim.schedule_at(SimTime(10), [] {});
  EXPECT_TRUE(sim.pending(handle));
  sim.run_until(SimTime(10));
  EXPECT_FALSE(sim.pending(handle));
  EXPECT_FALSE(sim.cancel(handle));  // stale: safely rejected
}

TEST(Simulator, CancelPeriodicWithStaleHandleIsNoOp) {
  Simulator sim;
  int count = 0;
  const auto handle = sim.schedule_periodic(SimDuration(10), [&] { ++count; });
  sim.cancel_periodic(handle);
  sim.cancel_periodic(handle);  // second cancel must not disturb the pool
  // A new periodic reuses the released slot; the stale handle must not be
  // able to cancel it.
  const auto reused = sim.schedule_periodic(SimDuration(10), [&] { ++count; });
  ASSERT_EQ(reused.index, handle.index);
  sim.cancel_periodic(handle);
  sim.run_until(SimTime(35));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicSteadyStateIsAllocationFree) {
  Simulator sim;
  std::uint64_t ticks = 0;
  sim.schedule_periodic(SimDuration(10), [&] { ++ticks; });
  sim.run_until(SimTime(100));  // warm up the pools
  const auto warm = sim.queue_stats().pool_reallocations;
  const auto warm_spills = EventCallback::heap_fallbacks();
  sim.run_until(SimTime(100000));
  EXPECT_EQ(ticks, 10000u);
  EXPECT_EQ(sim.queue_stats().pool_reallocations, warm);
  EXPECT_EQ(EventCallback::heap_fallbacks(), warm_spills);
  EXPECT_LE(sim.event_pool_slots(), 2u);
}

TEST(Simulator, ManyPeriodicsReuseSlots) {
  Simulator sim;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    const auto handle =
        sim.schedule_periodic(SimDuration(7), [&] { ++fired; });
    sim.run_until(sim.now() + SimDuration(21));
    sim.cancel_periodic(handle);
  }
  EXPECT_EQ(fired, 150);
}

// ----------------------------------------------- dispatch modes & backends

/// Runs a tie-heavy workload (periodics with a common divisor plus bursts
/// of same-time one-shots, some self-cancelling) and records the (time,
/// seq) dispatch trace via the hook.
std::vector<std::pair<std::int64_t, std::uint64_t>> run_traced(
    Simulator::Config config) {
  Simulator sim(config);
  std::vector<std::pair<std::int64_t, std::uint64_t>> trace;
  sim.set_dispatch_hook([&trace](SimTime time, std::uint64_t seq) {
    trace.emplace_back(time.ns(), seq);
  });
  sim.schedule_periodic(SimDuration(10), [] {});
  sim.schedule_periodic(SimDuration(20), [] {});
  EventHandle victim;
  sim.schedule_at(SimTime(40), [&] {
    // Cancels a same-timestamp event scheduled behind it.
    EXPECT_TRUE(sim.cancel(victim));
    sim.schedule_after(SimDuration(0), [] {});  // same-time re-schedule
  });
  victim = sim.schedule_at(SimTime(40), [] {});
  for (int i = 0; i < 8; ++i) sim.schedule_at(SimTime(60), [] {});
  sim.run_until(SimTime(100));
  EXPECT_EQ(sim.events_dispatched(), trace.size());
  return trace;
}

TEST(Simulator, DispatchTraceIdenticalAcrossModesAndBackends) {
  const auto reference = run_traced(
      Simulator::Config{QueueBackend::kHeap, /*batched_dispatch=*/false});
  EXPECT_EQ(run_traced(Simulator::Config{QueueBackend::kHeap, true}),
            reference);
  EXPECT_EQ(run_traced(Simulator::Config{QueueBackend::kCalendar, false}),
            reference);
  EXPECT_EQ(run_traced(Simulator::Config{QueueBackend::kCalendar, true}),
            reference);
}

TEST(Simulator, BatchedCancelOfSameTimestampEventIsHonored) {
  Simulator sim;  // batched by default
  ASSERT_TRUE(sim.config().batched_dispatch);
  bool victim_fired = false;
  EventHandle victim;
  sim.schedule_at(SimTime(10), [&] { ASSERT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(SimTime(10), [&] { victim_fired = true; });
  sim.run_to_completion();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.events_dispatched(), 1u);
}

TEST(Simulator, ResetRestoresFreshObservableState) {
  Simulator sim;
  bool stale_fired = false;
  sim.schedule_at(SimTime(50), [&] { stale_fired = true; });
  const auto periodic = sim.schedule_periodic(SimDuration(10), [] {});
  sim.run_until(SimTime(25));
  sim.reset();
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_dispatched(), 0u);
  EXPECT_TRUE(sim.idle());
  sim.cancel_periodic(periodic);  // stale: must be a harmless no-op
  sim.run_until(SimTime(200));
  EXPECT_FALSE(stale_fired);
  EXPECT_EQ(sim.events_dispatched(), 0u);
}

TEST(Simulator, ReusedSimulatorTracesIdenticallyToFreshOne) {
  const auto workload = [](Simulator& sim) {
    std::vector<std::pair<std::int64_t, std::uint64_t>> trace;
    sim.set_dispatch_hook([&trace](SimTime time, std::uint64_t seq) {
      trace.emplace_back(time.ns(), seq);
    });
    const auto periodic =
        sim.schedule_periodic(SimDuration(7), [] {});
    for (int i = 0; i < 20; ++i)
      sim.schedule_at(SimTime(3 * (i % 5) + 1), [] {});
    sim.run_until(SimTime(90));
    sim.cancel_periodic(periodic);
    sim.run_to_completion();
    return trace;
  };
  Simulator reused;
  // Pre-history: abandoned mid-run with events and a periodic pending.
  reused.schedule_periodic(SimDuration(3), [] {});
  for (int i = 0; i < 40; ++i) reused.schedule_at(SimTime(100 + i), [] {});
  reused.run_until(SimTime(80));
  reused.reset();

  Simulator fresh;
  EXPECT_EQ(workload(reused), workload(fresh));
}

}  // namespace
}  // namespace adaptbf
