// Typed scoring/feedback primitives for closed-loop adaptive campaigns.
//
// A search probe runs a handful of seeded repetitions at one input value
// and reduces them to a ProbeMetrics (per-metric means). score_probe()
// evaluates that against the campaign's SLO thresholds and produces a
// BenchmarkScore: a pass/lower/raise verdict plus a scalar objective the
// controllers optimize. The verdict vocabulary follows the adaptive-load
// convention: `lower` means the SLO is violated and the input must come
// down, `raise` means it is met with more headroom than the pass margin
// allows, `pass` means the probe sits inside the margin band around the
// SLO boundary — the operating point the adjusting stage is hunting.
//
// SLO expression grammar (sweep_cli --slo, [search] slo = ...):
//
//   expr      := term (',' term)*
//   term      := metric cmp number
//   metric    := p50_ms | p95_ms | p99_ms | jain | mibps
//   cmp       := '<=' | '>='
//
// e.g. "p99_ms<=250,jain>=0.9". Whitespace around terms is trimmed;
// anything else is a parse error (strict, like every config surface).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaptbf {

struct TrialResult;

/// Scalar metrics a search can threshold or optimize. All are campaign
/// aggregates the trial rows already carry (sweep/sweep_runner.h).
enum class SearchMetric {
  kP50Ms,
  kP95Ms,
  kP99Ms,
  kFairness,  ///< Jain's index, SLO name "jain".
  kMibps,
};

/// One metric with its optimization direction baked in: latencies are
/// lower-is-better; fairness and throughput are higher-is-better (their
/// objective is negated so controllers always minimize).
struct MetricSpec {
  SearchMetric metric = SearchMetric::kP99Ms;

  /// SLO-grammar name ("p99_ms", "jain", ...).
  [[nodiscard]] const char* name() const;
  [[nodiscard]] bool lower_is_better() const;
};

/// Name -> metric ("p99_ms", "jain", ...); nullopt for anything else.
[[nodiscard]] std::optional<SearchMetric> search_metric_from_name(
    std::string_view name);

/// One SLO term: `metric cmp bound`.
struct Threshold {
  enum class Cmp { kLe, kGe };
  SearchMetric metric = SearchMetric::kP99Ms;
  Cmp cmp = Cmp::kLe;
  double bound = 0.0;

  /// Canonical text form ("p99_ms<=250"), display precision.
  [[nodiscard]] std::string str() const;
};

/// Parsed --slo expression; `error` names the offending term on failure.
struct SloParseResult {
  std::vector<Threshold> thresholds;
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Strict parse of the SLO grammar above. Empty input is an error (a
/// search without thresholds has no boundary to find).
[[nodiscard]] SloParseResult parse_slo(std::string_view text);

/// Per-metric means over one probe's repetitions.
struct ProbeMetrics {
  double mibps = 0.0;
  double fairness = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  [[nodiscard]] double value_of(SearchMetric metric) const;
};

/// Mean metrics over a probe's trial rows (repetitions of one input).
/// Requires a non-empty span.
[[nodiscard]] ProbeMetrics mean_metrics(const std::vector<TrialResult>& rows);

enum class Verdict {
  kLower,  ///< An SLO is violated: the input must come down.
  kPass,   ///< All SLOs met, inside the margin band around the boundary.
  kRaise,  ///< All SLOs met with headroom beyond the margin: push harder.
};

[[nodiscard]] const char* verdict_name(Verdict verdict);
[[nodiscard]] std::optional<Verdict> verdict_from_name(std::string_view name);

/// One scored probe: the controllers' entire feedback signal.
struct BenchmarkScore {
  Verdict verdict = Verdict::kLower;
  /// Objective value (lower is better; higher-is-better metrics are
  /// negated). What golden-section and successive-halving minimize.
  double objective = 0.0;
  /// Tightest normalized SLO headroom across thresholds: negative iff
  /// some threshold is violated; pass iff 0 <= worst_margin <= margin.
  double worst_margin = 0.0;

  /// Feasible = no SLO violated (pass or raise).
  [[nodiscard]] bool feasible() const { return verdict != Verdict::kLower; }
};

/// Evaluates one probe's mean metrics against the SLO set. `pass_margin`
/// is the normalized headroom band that separates kPass from kRaise
/// (margin as a fraction of the bound). `thresholds` must be non-empty.
[[nodiscard]] BenchmarkScore score_probe(const ProbeMetrics& metrics,
                                         const std::vector<Threshold>& slo,
                                         MetricSpec objective,
                                         double pass_margin);

}  // namespace adaptbf
