#include "search/journal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "sweep/resume.h"
#include "support/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace adaptbf {

namespace {

/// Step rows and trial rows interleave; the scanner dispatches on the
/// first key, which is unambiguous because both dialects are
/// machine-written with fixed key order.
constexpr std::string_view kStepPrefix = "{\"search_step\":";

void sync_to_disk(std::FILE* file) {
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(fileno(file));
#else
  (void)file;
#endif
}

}  // namespace

std::string search_step_to_jsonl(const SearchStepRow& row) {
  std::string out;
  out.reserve(256);
  out += "{\"search_step\":";
  out += std::to_string(row.step);
  out += ",\"stage\":\"";
  out += row.test_stage ? "test" : "adjust";
  out += "\",\"input_index\":";
  out += std::to_string(row.input_index);
  out += ",\"input\":";
  out += json_num_exact(row.input);
  out += ",\"repetitions\":";
  out += std::to_string(row.repetitions);
  out += ",\"mibps\":";
  out += json_num_exact(row.metrics.mibps);
  out += ",\"fairness\":";
  out += json_num_exact(row.metrics.fairness);
  out += ",\"p50_ms\":";
  out += json_num_exact(row.metrics.p50_ms);
  out += ",\"p95_ms\":";
  out += json_num_exact(row.metrics.p95_ms);
  out += ",\"p99_ms\":";
  out += json_num_exact(row.metrics.p99_ms);
  out += ",\"objective\":";
  out += json_num_exact(row.objective);
  out += ",\"verdict\":\"";
  out += verdict_name(row.verdict);
  out += "\",\"bracket\":";
  out += json_num_exact(row.bracket);
  out += '}';
  return out;
}

bool search_step_from_jsonl(std::string_view line, SearchStepRow& out) {
  JsonCursor c(line);
  out = SearchStepRow{};
  if (!json_lit(c, "{\"search_step\":") || !json_parse_u32(c, out.step) ||
      out.step == 0)
    return false;
  if (!json_lit(c, ",\"stage\":\"")) return false;
  if (json_lit(c, "test\"")) {
    out.test_stage = true;
  } else if (json_lit(c, "adjust\"")) {
    out.test_stage = false;
  } else {
    return false;
  }
  if (!json_lit(c, ",\"input_index\":") ||
      !json_parse_u32(c, out.input_index))
    return false;
  if (!json_lit(c, ",\"input\":") || !json_parse_double_or_null(c, out.input))
    return false;
  if (!json_lit(c, ",\"repetitions\":") ||
      !json_parse_u32(c, out.repetitions) || out.repetitions == 0)
    return false;
  if (!json_lit(c, ",\"mibps\":") ||
      !json_parse_double_or_null(c, out.metrics.mibps))
    return false;
  if (!json_lit(c, ",\"fairness\":") ||
      !json_parse_double_or_null(c, out.metrics.fairness))
    return false;
  if (!json_lit(c, ",\"p50_ms\":") ||
      !json_parse_double_or_null(c, out.metrics.p50_ms))
    return false;
  if (!json_lit(c, ",\"p95_ms\":") ||
      !json_parse_double_or_null(c, out.metrics.p95_ms))
    return false;
  if (!json_lit(c, ",\"p99_ms\":") ||
      !json_parse_double_or_null(c, out.metrics.p99_ms))
    return false;
  if (!json_lit(c, ",\"objective\":") ||
      !json_parse_double_or_null(c, out.objective))
    return false;
  if (!json_lit(c, ",\"verdict\":\"")) return false;
  std::string verdict;
  while (c.p != c.end && *c.p != '"') verdict += *c.p++;
  const auto parsed = verdict_from_name(verdict);
  if (!parsed.has_value()) return false;
  out.verdict = *parsed;
  if (!json_lit(c, "\"") || !json_lit(c, ",\"bracket\":") ||
      !json_parse_double_or_null(c, out.bracket))
    return false;
  if (!json_lit(c, "}")) return false;
  return c.done();
}

// ----------------------------------------------------- SearchJournalWriter

SearchJournalWriter::SearchJournalWriter(std::FILE* file, Options options)
    : file_(file), options_(options) {
  if (options_.flush_every == 0) options_.flush_every = 1;
}

SearchJournalWriter::OpenResult SearchJournalWriter::open_fresh(
    const std::string& path, const CampaignHeader& header, Options options) {
  OpenResult result;
  if (header.search_step == 0) {
    result.error = "search journal header must carry the search stamp";
    return result;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    result.error = "cannot create '" + path + "'";
    return result;
  }
  const std::string line = campaign_header_line(header) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    result.error = "cannot write header to '" + path + "'";
    return result;
  }
  if (options.fsync) sync_to_disk(file);
  result.writer.reset(new SearchJournalWriter(file, options));
  return result;
}

SearchJournalWriter::OpenResult SearchJournalWriter::open_append(
    const std::string& path, std::uint64_t keep_bytes, bool add_newline,
    Options options) {
  OpenResult result;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    result.error = "cannot stat '" + path + "': " + ec.message();
    return result;
  }
  if (keep_bytes > size) {
    result.error = "journal '" + path + "' shrank since it was scanned";
    return result;
  }
  if (keep_bytes < size) {
    // Drop a crash's partial tail so the next append starts a clean line.
    std::filesystem::resize_file(path, keep_bytes, ec);
    if (ec) {
      result.error = "cannot truncate '" + path + "': " + ec.message();
      return result;
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    result.error = "cannot append to '" + path + "'";
    return result;
  }
  if (add_newline && std::fputc('\n', file) == EOF) {
    std::fclose(file);
    result.error = "cannot write to '" + path + "'";
    return result;
  }
  result.writer.reset(new SearchJournalWriter(file, options));
  return result;
}

SearchJournalWriter::~SearchJournalWriter() {
  if (file_ != nullptr) {
    // Destructor cannot throw; best-effort final durability point.
    if (std::fflush(file_) == 0 && options_.fsync) sync_to_disk(file_);
    std::fclose(file_);
  }
}

void SearchJournalWriter::append_line(std::string_view line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF)
    throw std::runtime_error("search journal: short write");
  if (++pending_ >= options_.flush_every) flush();
}

void SearchJournalWriter::flush() {
  if (std::fflush(file_) != 0)
    throw std::runtime_error("search journal: flush failed");
  if (options_.fsync) sync_to_disk(file_);
  pending_ = 0;
}

// ----------------------------------------------------------------- scanner

SearchScan scan_search_file(const std::string& path,
                            const std::string& sweep_name,
                            std::span<const TrialSpec> trials,
                            std::uint64_t search_hash) {
  SearchScan scan;
  scan.have.assign(trials.size(), false);

  std::ifstream file(path, std::ios::binary);
  if (!file) {
    scan.fresh = true;
    return scan;
  }

  const std::uint64_t expected_hash = sweep_grid_hash(trials);
  std::uint64_t offset = 0;
  std::uint64_t line_no = 0;
  std::string line;
  bool saw_header = false;
  while (std::getline(file, line)) {
    // getline sets eofbit only when the final line lacks its '\n'.
    const bool has_newline = !file.eof();
    const std::uint64_t line_end = offset + line.size() + (has_newline ? 1 : 0);
    ++line_no;

    if (!saw_header) {
      CampaignHeader header;
      if (!parse_campaign_header(line, header)) {
        // Torn header: crash during the very first writeout. Only a
        // recognizable header prefix may start fresh — an unterminated
        // line of some unrelated file keeps the hard error.
        constexpr std::string_view kMagic = "{\"adaptbf_sweep\":1,\"name\":";
        const std::string_view head(line);
        const bool header_prefix =
            head.size() < kMagic.size()
                ? kMagic.substr(0, head.size()) == head
                : head.substr(0, kMagic.size()) == kMagic;
        if (!has_newline && header_prefix) {
          scan.fresh = true;
          return scan;
        }
        scan.error = "'" + path + "' line 1: not a campaign journal";
        return scan;
      }
      if (header.sweep != sweep_name) {
        scan.error = "journal '" + path + "' line 1: belongs to sweep '" +
                     header.sweep + "', not '" + sweep_name + "'";
        return scan;
      }
      if (header.trials != trials.size() ||
          header.grid_hash != expected_hash) {
        scan.error = "journal '" + path +
                     "' line 1: written for a different probe grid "
                     "(sweep file or search ladder changed since the "
                     "journal started?)";
        return scan;
      }
      if (header.search_step == 0) {
        scan.error = "journal '" + path +
                     "' line 1: is a plain campaign journal, not a search "
                     "journal; resume it with 'sweep_cli --resume'";
        return scan;
      }
      if (header.search_step != kSearchStepVersion) {
        scan.error = "journal '" + path + "' line 1: search_step format " +
                     std::to_string(header.search_step) +
                     " is newer than this build understands (" +
                     std::to_string(kSearchStepVersion) + ")";
        return scan;
      }
      if (header.search_hash != search_hash) {
        scan.error = "journal '" + path +
                     "' line 1: written for a different search "
                     "(controller/ladder/SLO changed since the journal "
                     "started?)";
        return scan;
      }
      if (header.shard.sharded()) {
        scan.error = "journal '" + path +
                     "' line 1: search journals are never sharded";
        return scan;
      }
      scan.header = header;
      saw_header = true;
      if (!has_newline) scan.missing_final_newline = true;
      scan.valid_bytes = line_end;
      offset = line_end;
      continue;
    }

    const bool is_step =
        std::string_view(line).substr(0, kStepPrefix.size()) == kStepPrefix;
    bool valid = false;
    if (is_step) {
      SearchStepRow step;
      // Step rows are dense and 1-based: the replay feeds them to the
      // controller in order, so a gap or repeat means the history itself
      // is damaged (unlike a campaign journal, where any row subset is a
      // valid resume point).
      valid = search_step_from_jsonl(line, step) &&
              step.step == scan.steps.size() + 1;
      if (valid) scan.steps.push_back(step);
    } else {
      TrialResult row;
      valid = trial_scalars_from_jsonl(line, row) &&
              trial_row_matches(row, trials) && !scan.have[row.index];
      if (valid) {
        scan.have[row.index] = true;
        scan.rows.push_back(std::move(row));
      }
    }
    if (valid) {
      if (!has_newline) scan.missing_final_newline = true;
      scan.valid_bytes = line_end;
    } else if (!has_newline) {
      // Partial tail from a mid-write crash: discard; valid_bytes stays
      // at the end of the last good line so open_append truncates it.
      scan.truncated_tail = true;
    } else {
      // Interior garbage is unrecoverable here: the journal's byte layout
      // is a pure function of the step history, so resuming past a torn
      // interior line could never reproduce the uninterrupted bytes.
      scan.error = "journal '" + path + "' line " + std::to_string(line_no) +
                   ": corrupt row in a search journal (cannot resume; "
                   "delete the journal to restart the search)";
      return scan;
    }
    offset = line_end;
  }

  if (!saw_header) {
    // Zero-byte file: treat like a missing one and start fresh.
    scan.fresh = true;
  }
  return scan;
}

}  // namespace adaptbf
