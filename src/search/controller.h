// Step controllers: the adjusting-stage decision logic of a search.
//
// A controller walks a fixed ascending ladder of candidate input values
// (the probe grid's search axis, search/spec.h) by ladder INDEX — never
// by raw value — so every probe it can ever request is a point the
// workers' expanded grid already contains. Three strategies behind one
// interface:
//
//   bisection           largest feasible input on a monotone-feasibility
//                       ladder (max sustainable token rate)
//   golden-section      minimize the objective over a unimodal ladder
//                       (one controller gain)
//   successive halving  race a candidate set, doubling the repetition
//                       budget of the survivors each round (gain configs)
//
// The protocol is deliberately replay-friendly (search/driver.h resumes
// a journal by replaying scored steps through a fresh controller):
// next_probes() returns the UNFED remainder of the current batch, and
// feed() consumes exactly its front. A resume that stopped mid-batch
// re-requests only what was never scored, so the journal's step sequence
// is a pure function of the score history.
//
// Controllers are pure decision logic: no simulator, no clock, no RNG.
// tests/search/controller_property_test.cpp drives them against
// function oracles over 1k randomized response curves.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "search/score.h"

namespace adaptbf {

/// One requested probe: run `repetitions` seeded repetitions at ladder
/// point `input_index` and feed back the score of their mean metrics.
struct ProbeRequest {
  std::uint32_t input_index = 0;
  std::uint32_t repetitions = 1;

  [[nodiscard]] bool operator==(const ProbeRequest&) const = default;
};

class StepController {
 public:
  virtual ~StepController() = default;

  /// Strategy name ("bisect", "golden", "halving") — journal/CLI label.
  [[nodiscard]] virtual const char* name() const = 0;

  /// The pending batch, front-first. Empty iff done(). Requests already
  /// fed are not repeated; a mid-batch resume sees only the remainder.
  [[nodiscard]] virtual std::vector<ProbeRequest> next_probes() = 0;

  /// Scores the FRONT of the pending batch. `probe` must equal it
  /// (defensive cross-check for the replay path).
  virtual void feed(const ProbeRequest& probe, const BenchmarkScore& score) = 0;

  /// No more probes: converged or out of budget.
  [[nodiscard]] virtual bool done() const = 0;

  /// done() because the step budget ran out, not because the bracket
  /// closed — the answer is best-so-far, not converged.
  [[nodiscard]] virtual bool exhausted() const = 0;

  /// Ladder index of the current best answer; nullopt when no feasible
  /// point was found (bisection with an infeasible lowest rung).
  [[nodiscard]] virtual std::optional<std::uint32_t> best_index() const = 0;

  /// Current uncertainty, in input units: the unresolved ladder span
  /// (bisection/golden brackets, the alive-set span for halving).
  [[nodiscard]] virtual double bracket_width() const = 0;

  /// Scored steps so far (== journal step rows).
  [[nodiscard]] virtual std::uint32_t steps_fed() const = 0;
};

/// Bisection for the LARGEST feasible ladder index, assuming feasibility
/// is monotone non-increasing in the index. Probes the bottom rung first
/// (infeasible => no answer), then the top (feasible => the top is the
/// answer), then halves the bracket. Each probe runs `repetitions` reps.
[[nodiscard]] std::unique_ptr<StepController> make_bisection_controller(
    std::vector<double> ladder, std::uint32_t repetitions,
    std::uint32_t max_steps);

/// Golden-section minimization of the objective over ladder indices,
/// assuming a unimodal response. Interior points are continuous and
/// rounded to the nearest ladder index for probing; repeated rounds may
/// re-request an index (the driver's memo answers without re-running
/// trials). Stops when the continuous bracket narrows to one ladder
/// step. Best = lowest objective probed (ties to the lowest index).
[[nodiscard]] std::unique_ptr<StepController> make_golden_section_controller(
    std::vector<double> ladder, std::uint32_t repetitions,
    std::uint32_t max_steps);

/// Successive halving over the whole ladder: round r scores every alive
/// candidate at `base_repetitions << r` repetitions, keeps the better
/// half (objective ascending, ties to the lowest index), and stops at a
/// sole survivor. A round that would overrun `max_steps` is not started.
[[nodiscard]] std::unique_ptr<StepController> make_successive_halving_controller(
    std::vector<double> ladder, std::uint32_t base_repetitions,
    std::uint32_t max_steps);

}  // namespace adaptbf
