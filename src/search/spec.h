// Declarative search configuration: what to vary, what to promise, how
// to look.
//
// A search is layered ON a sweep file: the [sweep]/[grid] sections give
// the base workload (exactly one scenario, one policy), and the [search]
// section (search/search_io.h) — or CLI flags — pick an input variable,
// a candidate ladder, SLO thresholds, and a step controller. The probe
// grid is the key trick: probe_sweep() materializes the ladder into an
// ordinary SweepSpec axis, so every probe the controller can ever
// request is a trial in a pre-expanded grid. Dispatch workers expand
// that same grid from the same file and prove it with the ordinary grid
// hash — the wire protocol, the journal row format, and the worker
// binary are all completely unchanged by search.
//
// search_hash() fingerprints everything that shapes the step SEQUENCE
// (controller, ladder, SLOs, budget, repetitions). A resumed search
// journal must carry the same hash: replaying a bisection under a
// different SLO would silently diverge from the recorded steps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "search/controller.h"
#include "search/score.h"
#include "sweep/sweep_spec.h"

namespace adaptbf {

enum class SearchControllerKind {
  kBisect,   ///< Largest feasible input (monotone feasibility).
  kGolden,   ///< Golden-section objective minimization (unimodal).
  kHalving,  ///< Successive halving over the whole ladder.
};

[[nodiscard]] const char* search_controller_name(SearchControllerKind kind);

/// Scenario fields a search can drive. The token rate rides the sweep
/// grid's own token_rate axis; the controller gains become scenario
/// variants labeled `<base>@<input>=<value>`.
enum class SearchInput {
  kTokenRate,
  kEwmaAlpha,
  kBucketDepth,
};

[[nodiscard]] const char* search_input_name(SearchInput input);

struct SearchSpec {
  SearchControllerKind controller = SearchControllerKind::kBisect;
  SearchInput input = SearchInput::kTokenRate;

  /// Explicit candidate ladder (ascending after normalization). When
  /// empty, a uniform ladder of `points` values over [lo, hi] is used.
  std::vector<double> ladder;
  double lo = 0.0;
  double hi = 0.0;
  std::uint32_t points = 9;

  std::vector<Threshold> slo;
  MetricSpec objective{SearchMetric::kP99Ms};
  /// Normalized headroom band separating pass from raise (score.h).
  double pass_margin = 0.05;

  /// Max adjusting-stage steps (scored probes).
  std::uint32_t budget = 32;
  /// Repetitions per adjusting-stage probe (halving: round-0 base,
  /// doubled each round).
  std::uint32_t probe_repetitions = 1;
  /// Testing-stage repetitions at the converged input.
  std::uint32_t test_repetitions = 3;

  /// The resolved ascending candidate ladder (explicit or generated).
  [[nodiscard]] std::vector<double> inputs() const;

  /// Validates the spec against its base sweep. Returns an error message
  /// ("" = ok): the base must be a single scenario x single policy, the
  /// searched axis must not already be swept, ladder values must be
  /// legal for the input variable, and the SLO must be non-empty.
  [[nodiscard]] std::string validate(const SweepSpec& base) const;

  /// Repetitions per ladder point the probe grid must hold: enough for
  /// the deepest adjusting round and for the testing stage.
  [[nodiscard]] std::uint32_t grid_repetitions() const;

  /// The probe grid: `base` with the ladder materialized as a sweep axis
  /// and repetitions = grid_repetitions(). Trial index of (ladder point
  /// k, repetition j) is k * grid_repetitions() + j — the driver checks
  /// this invariant against the expanded grid at startup.
  [[nodiscard]] SweepSpec probe_sweep(const SweepSpec& base) const;

  /// Fingerprint of everything that shapes the step sequence.
  [[nodiscard]] std::uint64_t search_hash() const;

  /// The configured step controller over the resolved ladder.
  [[nodiscard]] std::unique_ptr<StepController> make_controller() const;
};

}  // namespace adaptbf
