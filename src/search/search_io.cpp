#include "search/search_io.h"

#include <string_view>

#include "support/ini.h"

namespace adaptbf {

namespace {

SearchLoadResult fail(std::string message) {
  SearchLoadResult result;
  result.error = "[search] " + std::move(message);
  return result;
}

/// Splits a comma list, trimming each element (sweep_io.h idiom).
std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view raw =
        text.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    const std::string_view item = trim(raw);
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return items;
}

}  // namespace

SearchLoadResult load_search(
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool require_slo) {
  if (entries.empty() && require_slo)
    return fail("section is empty (needs slo = at least)");

  SearchSpec spec;
  bool saw_slo = false;
  bool saw_range = false;
  std::vector<std::string> seen;
  for (const auto& [key, value] : entries) {
    for (const std::string& earlier : seen)
      if (earlier == key) return fail("duplicate key '" + key + "'");
    seen.push_back(key);

    if (key == "controller") {
      if (value == "bisect") spec.controller = SearchControllerKind::kBisect;
      else if (value == "golden")
        spec.controller = SearchControllerKind::kGolden;
      else if (value == "halving")
        spec.controller = SearchControllerKind::kHalving;
      else
        return fail("bad controller '" + value +
                    "' (bisect|golden|halving)");
    } else if (key == "input") {
      if (value == "token_rate") spec.input = SearchInput::kTokenRate;
      else if (value == "ewma_alpha") spec.input = SearchInput::kEwmaAlpha;
      else if (value == "bucket_depth")
        spec.input = SearchInput::kBucketDepth;
      else
        return fail("bad input '" + value +
                    "' (token_rate|ewma_alpha|bucket_depth)");
    } else if (key == "ladder") {
      for (const auto& item : split_list(value)) {
        double rung = 0.0;
        if (!parse_double(item, rung))
          return fail("bad ladder value '" + item + "'");
        spec.ladder.push_back(rung);
      }
      if (spec.ladder.empty()) return fail("ladder list is empty");
    } else if (key == "lo") {
      if (!parse_double(value, spec.lo)) return fail("bad lo");
      saw_range = true;
    } else if (key == "hi") {
      if (!parse_double(value, spec.hi)) return fail("bad hi");
      saw_range = true;
    } else if (key == "points") {
      std::uint64_t points = 0;
      if (!parse_u64(value, points) || points < 2 || points > 10000)
        return fail("points must be an integer in [2, 10000]");
      spec.points = static_cast<std::uint32_t>(points);
      saw_range = true;
    } else if (key == "slo") {
      const SloParseResult slo = parse_slo(value);
      if (!slo.ok()) return fail("slo: " + slo.error);
      spec.slo = slo.thresholds;
      saw_slo = true;
    } else if (key == "objective") {
      const auto metric = search_metric_from_name(value);
      if (!metric.has_value())
        return fail("bad objective '" + value +
                    "' (p50_ms|p95_ms|p99_ms|jain|mibps)");
      spec.objective = MetricSpec{*metric};
    } else if (key == "pass_margin") {
      if (!parse_double(value, spec.pass_margin) || spec.pass_margin < 0.0)
        return fail("pass_margin must be a number >= 0");
    } else if (key == "budget") {
      std::uint64_t budget = 0;
      if (!parse_u64(value, budget) || budget == 0 || budget > 100000)
        return fail("budget must be an integer in [1, 100000]");
      spec.budget = static_cast<std::uint32_t>(budget);
    } else if (key == "probe_repetitions") {
      std::uint64_t reps = 0;
      if (!parse_u64(value, reps) || reps == 0 || reps > 1000)
        return fail("probe_repetitions must be an integer in [1, 1000]");
      spec.probe_repetitions = static_cast<std::uint32_t>(reps);
    } else if (key == "test_repetitions") {
      std::uint64_t reps = 0;
      if (!parse_u64(value, reps) || reps == 0 || reps > 1000)
        return fail("test_repetitions must be an integer in [1, 1000]");
      spec.test_repetitions = static_cast<std::uint32_t>(reps);
    } else {
      return fail("unknown key '" + key + "'");
    }
  }

  if (!spec.ladder.empty() && saw_range)
    return fail("ladder and lo/hi/points are mutually exclusive");
  if (spec.ladder.empty() && !(spec.hi > spec.lo))
    return fail("needs a ladder (ladder = <comma list>, or lo < hi)");
  if (!saw_slo && require_slo)
    return fail("needs an SLO (slo = p99_ms<=N, ...)");

  SearchLoadResult result;
  result.spec = std::move(spec);
  return result;
}

}  // namespace adaptbf
