// [search] section grammar: declarative search configuration in a sweep
// file (sweep/sweep_io.h forwards the raw entries here untouched).
//
//   [search]
//   controller = bisect             ; bisect | golden | halving
//   input = token_rate              ; token_rate | ewma_alpha | bucket_depth
//   ladder = 800, 1200, 1600, 2400  ; explicit candidate values, OR:
//   lo = 800                        ; uniform ladder over [lo, hi]
//   hi = 2400
//   points = 9                      ;   (default 9)
//   slo = p99_ms<=250, jain>=0.9    ; score.h grammar (CLI --slo overrides)
//   objective = p99_ms              ; metric the controller optimizes
//   pass_margin = 0.05              ; normalized pass band around the SLO
//   budget = 32                     ; max adjusting-stage steps
//   probe_repetitions = 1
//   test_repetitions = 3
//
// Unknown or duplicate keys are errors, same stance as every other
// config surface. `ladder` and `lo`/`hi`/`points` are mutually
// exclusive; everything except `slo` has a default.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "search/spec.h"

namespace adaptbf {

struct SearchLoadResult {
  std::optional<SearchSpec> spec;
  std::string error;  ///< Empty on success.
  [[nodiscard]] bool ok() const { return spec.has_value(); }
};

/// Parses raw `[search]` entries (key/value, file order) into a
/// SearchSpec. Validation against the base sweep (single scenario, free
/// axis, ...) is SearchSpec::validate's job — this layer only owns the
/// key grammar. `require_slo` = false when the caller supplies the SLO
/// another way (sweep_cli search --slo overrides the file's).
[[nodiscard]] SearchLoadResult load_search(
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool require_slo = true);

}  // namespace adaptbf
