#include "search/score.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/ini.h"
#include "support/json.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {

const char* MetricSpec::name() const {
  switch (metric) {
    case SearchMetric::kP50Ms: return "p50_ms";
    case SearchMetric::kP95Ms: return "p95_ms";
    case SearchMetric::kP99Ms: return "p99_ms";
    case SearchMetric::kFairness: return "jain";
    case SearchMetric::kMibps: return "mibps";
  }
  return "?";
}

bool MetricSpec::lower_is_better() const {
  switch (metric) {
    case SearchMetric::kP50Ms:
    case SearchMetric::kP95Ms:
    case SearchMetric::kP99Ms:
      return true;
    case SearchMetric::kFairness:
    case SearchMetric::kMibps:
      return false;
  }
  return true;
}

std::optional<SearchMetric> search_metric_from_name(std::string_view name) {
  if (name == "p50_ms") return SearchMetric::kP50Ms;
  if (name == "p95_ms") return SearchMetric::kP95Ms;
  if (name == "p99_ms") return SearchMetric::kP99Ms;
  if (name == "jain") return SearchMetric::kFairness;
  if (name == "mibps") return SearchMetric::kMibps;
  return std::nullopt;
}

std::string Threshold::str() const {
  std::string out = MetricSpec{metric}.name();
  out += cmp == Cmp::kLe ? "<=" : ">=";
  out += json_num(bound);
  return out;
}

SloParseResult parse_slo(std::string_view text) {
  SloParseResult result;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view raw = text.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    const std::string_view term = trim(raw);
    if (term.empty()) {
      result.error = "empty SLO term (expected metric<=N or metric>=N)";
      return result;
    }
    std::size_t op = term.find("<=");
    Threshold threshold;
    if (op != std::string_view::npos) {
      threshold.cmp = Threshold::Cmp::kLe;
    } else {
      op = term.find(">=");
      if (op == std::string_view::npos) {
        result.error = "SLO term '" + std::string(term) +
                       "' has no <= or >= comparator";
        return result;
      }
      threshold.cmp = Threshold::Cmp::kGe;
    }
    const std::string_view name = trim(term.substr(0, op));
    const auto metric = search_metric_from_name(name);
    if (!metric.has_value()) {
      result.error = "unknown SLO metric '" + std::string(name) +
                     "' (p50_ms|p95_ms|p99_ms|jain|mibps)";
      return result;
    }
    threshold.metric = *metric;
    const std::string_view bound_text = trim(term.substr(op + 2));
    if (!parse_double(bound_text, threshold.bound)) {
      result.error = "bad SLO bound '" + std::string(bound_text) + "' in '" +
                     std::string(term) + "'";
      return result;
    }
    result.thresholds.push_back(threshold);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (result.thresholds.empty())
    result.error = "empty SLO expression (expected e.g. p99_ms<=250)";
  return result;
}

double ProbeMetrics::value_of(SearchMetric metric) const {
  switch (metric) {
    case SearchMetric::kP50Ms: return p50_ms;
    case SearchMetric::kP95Ms: return p95_ms;
    case SearchMetric::kP99Ms: return p99_ms;
    case SearchMetric::kFairness: return fairness;
    case SearchMetric::kMibps: return mibps;
  }
  return 0.0;
}

ProbeMetrics mean_metrics(const std::vector<TrialResult>& rows) {
  ADAPTBF_CHECK_MSG(!rows.empty(), "mean_metrics needs at least one row");
  ProbeMetrics mean;
  for (const TrialResult& row : rows) {
    mean.mibps += row.aggregate_mibps;
    mean.fairness += row.fairness;
    mean.p50_ms += row.p50_ms;
    mean.p95_ms += row.p95_ms;
    mean.p99_ms += row.p99_ms;
  }
  const double n = static_cast<double>(rows.size());
  mean.mibps /= n;
  mean.fairness /= n;
  mean.p50_ms /= n;
  mean.p95_ms /= n;
  mean.p99_ms /= n;
  return mean;
}

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kLower: return "lower";
    case Verdict::kPass: return "pass";
    case Verdict::kRaise: return "raise";
  }
  return "?";
}

std::optional<Verdict> verdict_from_name(std::string_view name) {
  if (name == "lower") return Verdict::kLower;
  if (name == "pass") return Verdict::kPass;
  if (name == "raise") return Verdict::kRaise;
  return std::nullopt;
}

BenchmarkScore score_probe(const ProbeMetrics& metrics,
                           const std::vector<Threshold>& slo,
                           MetricSpec objective, double pass_margin) {
  ADAPTBF_CHECK_MSG(!slo.empty(), "score_probe needs at least one threshold");
  BenchmarkScore score;
  // Normalized headroom per threshold: positive = met with that fraction
  // of the bound to spare, negative = violated. Normalizing by the bound
  // makes one pass_margin meaningful across metrics of different scales
  // (250 ms vs a 0.9 fairness index).
  double worst = std::numeric_limits<double>::infinity();
  for (const Threshold& threshold : slo) {
    const double value = metrics.value_of(threshold.metric);
    const double denom = std::max(std::fabs(threshold.bound), 1e-12);
    const double margin = threshold.cmp == Threshold::Cmp::kLe
                              ? (threshold.bound - value) / denom
                              : (value - threshold.bound) / denom;
    worst = std::min(worst, margin);
  }
  score.worst_margin = worst;
  if (worst < 0.0)
    score.verdict = Verdict::kLower;
  else if (worst <= pass_margin)
    score.verdict = Verdict::kPass;
  else
    score.verdict = Verdict::kRaise;
  const double value = metrics.value_of(objective.metric);
  score.objective = objective.lower_is_better() ? value : -value;
  return score;
}

}  // namespace adaptbf
