#include "search/controller.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "support/check.h"

namespace adaptbf {

namespace {

/// Shared bookkeeping: the ladder, the step budget, and the pending-batch
/// protocol (next_probes returns the unfed remainder; feed pops the
/// front after cross-checking it).
class LadderController : public StepController {
 public:
  LadderController(std::vector<double> ladder, std::uint32_t max_steps)
      : ladder_(std::move(ladder)), max_steps_(max_steps) {
    ADAPTBF_CHECK_MSG(!ladder_.empty(), "search ladder is empty");
    ADAPTBF_CHECK_MSG(
        std::is_sorted(ladder_.begin(), ladder_.end()),
        "search ladder must be ascending");
  }

  [[nodiscard]] std::vector<ProbeRequest> next_probes() final {
    if (done_) return {};
    if (pending_.empty()) refill();
    return {pending_.begin(), pending_.end()};
  }

  void feed(const ProbeRequest& probe, const BenchmarkScore& score) final {
    if (pending_.empty()) refill();
    ADAPTBF_CHECK_MSG(!pending_.empty() && probe == pending_.front(),
                      "feed() does not match the pending probe");
    pending_.pop_front();
    ++steps_fed_;
    on_score(probe, score);
  }

  [[nodiscard]] bool done() const final {
    return done_ && pending_.empty();
  }
  [[nodiscard]] bool exhausted() const final { return exhausted_; }
  [[nodiscard]] std::optional<std::uint32_t> best_index() const final {
    return best_;
  }
  [[nodiscard]] std::uint32_t steps_fed() const final { return steps_fed_; }

 protected:
  /// True when `count` more probes fit the budget; otherwise flips the
  /// controller into the exhausted-done state.
  [[nodiscard]] bool budget_allows(std::size_t count) {
    if (steps_fed_ + count <= max_steps_) return true;
    done_ = true;
    exhausted_ = true;
    return false;
  }

  void finish() { done_ = true; }

  /// Called with the pending batch empty and the controller not done:
  /// push the next batch (pending_) or finish()/exhaust.
  virtual void refill_batch() = 0;
  /// Consumes one score (the popped front request).
  virtual void on_score(const ProbeRequest& probe,
                        const BenchmarkScore& score) = 0;

  [[nodiscard]] std::uint32_t top() const {
    return static_cast<std::uint32_t>(ladder_.size() - 1);
  }
  [[nodiscard]] double rung(std::uint32_t index) const {
    return ladder_[index];
  }

  std::deque<ProbeRequest> pending_;
  std::optional<std::uint32_t> best_;

 private:
  void refill() {
    if (!done_) refill_batch();
  }

  std::vector<double> ladder_;
  std::uint32_t max_steps_;
  std::uint32_t steps_fed_ = 0;
  bool done_ = false;
  bool exhausted_ = false;
};

// -------------------------------------------------------------- bisection

class BisectionController final : public LadderController {
 public:
  BisectionController(std::vector<double> ladder, std::uint32_t repetitions,
                      std::uint32_t max_steps)
      : LadderController(std::move(ladder), max_steps),
        repetitions_(repetitions) {
    hi_ = top();
  }

  [[nodiscard]] const char* name() const override { return "bisect"; }

  [[nodiscard]] double bracket_width() const override {
    return rung(hi_) - rung(lo_);
  }

 private:
  enum class Phase { kProbeLo, kProbeHi, kBracket };

  void refill_batch() override {
    if (!budget_allows(1)) return;
    switch (phase_) {
      case Phase::kProbeLo:
        pending_.push_back({lo_, repetitions_});
        return;
      case Phase::kProbeHi:
        pending_.push_back({hi_, repetitions_});
        return;
      case Phase::kBracket:
        pending_.push_back({(lo_ + hi_) / 2, repetitions_});
        return;
    }
  }

  void on_score(const ProbeRequest& probe,
                const BenchmarkScore& score) override {
    switch (phase_) {
      case Phase::kProbeLo:
        if (!score.feasible()) {
          // The lowest rung already violates the SLO: there is no
          // feasible input. A converged "no" — not a budget stop.
          hi_ = lo_;
          finish();
          return;
        }
        best_ = lo_;
        if (hi_ == lo_) {
          finish();
          return;
        }
        phase_ = Phase::kProbeHi;
        return;
      case Phase::kProbeHi:
        if (score.feasible()) {
          best_ = hi_;
          lo_ = hi_;
          finish();
          return;
        }
        phase_ = Phase::kBracket;
        if (hi_ - lo_ <= 1) finish();
        return;
      case Phase::kBracket:
        if (score.feasible()) {
          lo_ = probe.input_index;
          best_ = lo_;
        } else {
          hi_ = probe.input_index;
        }
        if (hi_ - lo_ <= 1) finish();
        return;
    }
  }

  std::uint32_t repetitions_;
  std::uint32_t lo_ = 0;
  std::uint32_t hi_ = 0;
  Phase phase_ = Phase::kProbeLo;
};

// --------------------------------------------------------- golden section

class GoldenSectionController final : public LadderController {
 public:
  GoldenSectionController(std::vector<double> ladder,
                          std::uint32_t repetitions, std::uint32_t max_steps)
      : LadderController(std::move(ladder), max_steps),
        repetitions_(repetitions) {
    b_ = static_cast<double>(top());
    if (top() <= 1) {
      // One or two rungs: the golden bracket is already narrower than a
      // ladder step. Enumerate instead.
      phase_ = Phase::kEnumerate;
    } else {
      c_ = b_ - (b_ - a_) * kRho;
      d_ = a_ + (b_ - a_) * kRho;
    }
  }

  [[nodiscard]] const char* name() const override { return "golden"; }

  [[nodiscard]] double bracket_width() const override {
    const auto lo = static_cast<std::uint32_t>(std::floor(a_));
    const auto hi = std::min(
        top(), static_cast<std::uint32_t>(std::ceil(b_)));
    return rung(hi) - rung(lo);
  }

 private:
  static constexpr double kRho = 0.6180339887498949;  // 1/phi

  enum class Phase { kEvalC, kEvalD, kEnumerate };

  [[nodiscard]] std::uint32_t round_index(double point) const {
    const double clamped =
        std::clamp(point, 0.0, static_cast<double>(top()));
    return static_cast<std::uint32_t>(std::lround(clamped));
  }

  void refill_batch() override {
    if (phase_ == Phase::kEnumerate) {
      if (enum_next_ > top()) {
        finish();
        return;
      }
      if (!budget_allows(1)) return;
      pending_.push_back({enum_next_, repetitions_});
      return;
    }
    if (b_ - a_ <= 1.0) {
      finish();
      return;
    }
    if (!budget_allows(1)) return;
    pending_.push_back(
        {round_index(phase_ == Phase::kEvalC ? c_ : d_), repetitions_});
  }

  void note_best(std::uint32_t index, double objective) {
    if (!best_.has_value() || objective < best_objective_ ||
        (objective == best_objective_ && index < *best_)) {
      best_ = index;
      best_objective_ = objective;
    }
  }

  void on_score(const ProbeRequest& probe,
                const BenchmarkScore& score) override {
    note_best(probe.input_index, score.objective);
    switch (phase_) {
      case Phase::kEnumerate:
        ++enum_next_;
        if (enum_next_ > top()) finish();
        return;
      case Phase::kEvalC:
        fc_ = score.objective;
        if (!have_fd_) {
          phase_ = Phase::kEvalD;
          return;
        }
        break;
      case Phase::kEvalD:
        fd_ = score.objective;
        have_fd_ = true;
        break;
    }
    // Both interior points scored: shrink toward the lower objective.
    // fc <= fd keeps the left bracket on ties, matching the tie-to-the-
    // lowest-index stance of note_best.
    if (fc_ <= fd_) {
      b_ = d_;
      d_ = c_;
      fd_ = fc_;
      c_ = b_ - (b_ - a_) * kRho;
      phase_ = Phase::kEvalC;
    } else {
      a_ = c_;
      c_ = d_;
      fc_ = fd_;
      d_ = a_ + (b_ - a_) * kRho;
      phase_ = Phase::kEvalD;
    }
  }

  std::uint32_t repetitions_;
  double a_ = 0.0;
  double b_ = 0.0;
  double c_ = 0.0;
  double d_ = 0.0;
  double fc_ = 0.0;
  double fd_ = 0.0;
  bool have_fd_ = false;
  double best_objective_ = std::numeric_limits<double>::infinity();
  Phase phase_ = Phase::kEvalC;
  std::uint32_t enum_next_ = 0;
};

// ------------------------------------------------------ successive halving

class SuccessiveHalvingController final : public LadderController {
 public:
  SuccessiveHalvingController(std::vector<double> ladder,
                              std::uint32_t base_repetitions,
                              std::uint32_t max_steps)
      : LadderController(std::move(ladder), max_steps),
        base_repetitions_(std::max(base_repetitions, 1u)) {
    alive_.resize(top() + 1);
    for (std::uint32_t i = 0; i <= top(); ++i) alive_[i] = i;
  }

  [[nodiscard]] const char* name() const override { return "halving"; }

  [[nodiscard]] double bracket_width() const override {
    if (alive_.empty()) return 0.0;
    return rung(alive_.back()) - rung(alive_.front());
  }

 private:
  [[nodiscard]] std::uint32_t round_repetitions() const {
    // Doubling per round; the shift can't overflow for any real ladder
    // (rounds <= log2(ladder size)).
    return base_repetitions_ << std::min<std::uint32_t>(round_, 20);
  }

  void refill_batch() override {
    if (alive_.size() <= 1) {
      if (!alive_.empty()) best_ = alive_.front();
      finish();
      return;
    }
    // A round is scored as a unit; don't start one the budget can't
    // finish (a half-scored round decides nothing).
    if (!budget_allows(alive_.size())) return;
    const std::uint32_t reps = round_repetitions();
    for (const std::uint32_t index : alive_) pending_.push_back({index, reps});
    round_scores_.clear();
  }

  void on_score(const ProbeRequest& probe,
                const BenchmarkScore& score) override {
    round_scores_.emplace_back(score.objective, probe.input_index);
    if (!pending_.empty()) return;
    // Round complete: keep the better half, objective ascending with ties
    // to the lowest index (a total, deterministic order).
    std::sort(round_scores_.begin(), round_scores_.end());
    const std::size_t keep = (round_scores_.size() + 1) / 2;
    alive_.clear();
    for (std::size_t i = 0; i < keep; ++i)
      alive_.push_back(round_scores_[i].second);
    std::sort(alive_.begin(), alive_.end());
    best_ = round_scores_.front().second;
    ++round_;
    if (alive_.size() <= 1) finish();
  }

  std::uint32_t base_repetitions_;
  std::uint32_t round_ = 0;
  std::vector<std::uint32_t> alive_;
  std::vector<std::pair<double, std::uint32_t>> round_scores_;
};

}  // namespace

std::unique_ptr<StepController> make_bisection_controller(
    std::vector<double> ladder, std::uint32_t repetitions,
    std::uint32_t max_steps) {
  return std::make_unique<BisectionController>(std::move(ladder),
                                               std::max(repetitions, 1u),
                                               max_steps);
}

std::unique_ptr<StepController> make_golden_section_controller(
    std::vector<double> ladder, std::uint32_t repetitions,
    std::uint32_t max_steps) {
  return std::make_unique<GoldenSectionController>(std::move(ladder),
                                                   std::max(repetitions, 1u),
                                                   max_steps);
}

std::unique_ptr<StepController> make_successive_halving_controller(
    std::vector<double> ladder, std::uint32_t base_repetitions,
    std::uint32_t max_steps) {
  return std::make_unique<SuccessiveHalvingController>(
      std::move(ladder), base_repetitions, max_steps);
}

}  // namespace adaptbf
