#include "search/driver.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "support/log.h"
#include "sweep/dispatch.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

namespace {

// -------------------------------------------------------------- executors

class LocalProbeExecutor final : public ProbeExecutor {
 public:
  LocalProbeExecutor(std::span<const TrialSpec> trials, std::uint32_t threads,
                     MetricRegistry* metrics)
      : trials_(trials) {
    SweepRunner::Options options;
    options.threads = threads;
    options.metrics = metrics;
    runner_ = std::make_unique<SweepRunner>(options);
  }

  std::string run(const std::vector<std::size_t>& indices,
                  std::vector<std::string>& rows_out) override {
    rows_out.clear();
    std::vector<TrialSpec> subset;
    subset.reserve(indices.size());
    for (const std::size_t index : indices) {
      if (index >= trials_.size())
        return "probe index " + std::to_string(index) +
               " outside the probe grid";
      subset.push_back(trials_[index]);
    }
    std::vector<TrialResult> results;
    try {
      results = runner_->run(subset);
    } catch (const std::exception& e) {
      return e.what();
    }
    rows_out.reserve(results.size());
    for (const TrialResult& result : results)
      rows_out.push_back(trial_to_jsonl(result));
    return "";
  }

 private:
  std::span<const TrialSpec> trials_;
  std::unique_ptr<SweepRunner> runner_;
};

class DispatchProbeExecutor final : public ProbeExecutor {
 public:
  explicit DispatchProbeExecutor(DispatchCoordinator& coordinator)
      : coordinator_(coordinator) {}

  std::string run(const std::vector<std::size_t>& indices,
                  std::vector<std::string>& rows_out) override {
    return coordinator_.serve_trials(indices, rows_out);
  }

 private:
  DispatchCoordinator& coordinator_;
};

// ------------------------------------------------------------ driver state

/// Everything run_search threads through its phases.
struct Driver {
  Driver(const SearchSpec& spec_in, std::span<const TrialSpec> trials_in,
         ProbeExecutor& executor_in, SearchDriverOptions& options_in)
      : spec(spec_in),
        trials(trials_in),
        ladder(spec_in.inputs()),
        reps_per_point(spec_in.grid_repetitions()),
        executor(executor_in),
        options(options_in) {}

  const SearchSpec& spec;
  std::span<const TrialSpec> trials;
  std::vector<double> ladder;
  std::uint32_t reps_per_point = 0;  ///< R: grid repetitions per rung.
  ProbeExecutor& executor;
  SearchDriverOptions& options;

  std::unique_ptr<SearchJournalWriter> writer;
  std::vector<bool> rows_have;
  std::vector<TrialResult> memo;  ///< Scalars, indexed by grid index.
  std::uint32_t step_no = 0;      ///< Journaled step rows so far.
  std::uint64_t trials_run = 0;

  Counter* steps_metric = nullptr;
  Counter* probe_trials_metric = nullptr;
  Gauge* bracket_metric = nullptr;
  Gauge* best_input_metric = nullptr;
  Gauge* converged_metric = nullptr;

  [[nodiscard]] std::size_t grid_index(std::uint32_t point,
                                       std::uint32_t rep) const {
    return static_cast<std::size_t>(point) * reps_per_point + rep;
  }

  /// Mean metrics of rung `point` over its first `reps` repetitions.
  /// Requires every row present (the caller schedules them first).
  [[nodiscard]] ProbeMetrics probe_metrics(std::uint32_t point,
                                           std::uint32_t reps) const {
    std::vector<TrialResult> rows;
    rows.reserve(reps);
    for (std::uint32_t rep = 0; rep < reps; ++rep)
      rows.push_back(memo[grid_index(point, rep)]);
    return mean_metrics(rows);
  }

  [[nodiscard]] bool rows_ready(std::uint32_t point, std::uint32_t reps) const {
    for (std::uint32_t rep = 0; rep < reps; ++rep)
      if (!rows_have[grid_index(point, rep)]) return false;
    return true;
  }

  /// Runs every missing row among the requests' repetitions as ONE
  /// executor call and journals the returned rows in index order.
  /// Returns "" or an error.
  [[nodiscard]] std::string run_missing(
      const std::vector<ProbeRequest>& batch) {
    std::vector<std::size_t> needed;
    for (const ProbeRequest& request : batch) {
      if (request.input_index >= ladder.size() ||
          request.repetitions > reps_per_point)
        return "probe request outside the grid (controller asked for " +
               std::to_string(request.repetitions) + " repetitions, grid "
               "holds " + std::to_string(reps_per_point) + ")";
      for (std::uint32_t rep = 0; rep < request.repetitions; ++rep) {
        const std::size_t index = grid_index(request.input_index, rep);
        if (!rows_have[index]) needed.push_back(index);
      }
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    if (needed.empty()) return "";
    std::vector<std::string> rows;
    const std::string error = executor.run(needed, rows);
    if (!error.empty()) return error;
    if (rows.size() != needed.size())
      return "executor returned " + std::to_string(rows.size()) +
             " rows for " + std::to_string(needed.size()) + " trials";
    for (std::size_t i = 0; i < needed.size(); ++i) {
      TrialResult row;
      if (!trial_scalars_from_jsonl(rows[i], row) ||
          !trial_row_matches(row, trials) || row.index != needed[i])
        return "executor returned a row that does not match trial " +
               std::to_string(needed[i]);
      writer->append_line(rows[i]);
      rows_have[row.index] = true;
      memo[row.index] = std::move(row);
      ++trials_run;
      if (probe_trials_metric != nullptr) probe_trials_metric->inc();
    }
    return "";
  }

  /// Journals one step row and fires telemetry + the progress callback.
  void emit_step(const SearchStepRow& row, bool replayed) {
    if (!replayed) {
      writer->append_line(search_step_to_jsonl(row));
      if (steps_metric != nullptr) steps_metric->inc();
    }
    if (bracket_metric != nullptr) bracket_metric->set(row.bracket);
    if (options.on_step) options.on_step(row);
  }
};

std::string step_label(std::uint32_t step) {
  return "journal step " + std::to_string(step);
}

}  // namespace

std::unique_ptr<ProbeExecutor> make_local_probe_executor(
    std::span<const TrialSpec> trials, std::uint32_t threads,
    MetricRegistry* metrics) {
  return std::make_unique<LocalProbeExecutor>(trials, threads, metrics);
}

std::unique_ptr<ProbeExecutor> make_dispatch_probe_executor(
    DispatchCoordinator& coordinator) {
  return std::make_unique<DispatchProbeExecutor>(coordinator);
}

SearchOutcome run_search(const SearchSpec& spec, const std::string& sweep_name,
                         std::span<const TrialSpec> trials,
                         const std::string& journal_path, bool resume,
                         ProbeExecutor& executor,
                         SearchDriverOptions options) {
  SearchOutcome outcome;
  Driver driver(spec, trials, executor, options);

  // The k * R + j layout is what makes ladder indices addressable as grid
  // indices; verify it against the expanded grid before trusting it.
  if (driver.ladder.size() < 2) {
    outcome.error = "search ladder needs at least 2 distinct values";
    return outcome;
  }
  if (trials.size() !=
      driver.ladder.size() * static_cast<std::size_t>(driver.reps_per_point)) {
    outcome.error =
        "probe grid size does not match ladder x repetitions (grid not "
        "built by SearchSpec::probe_sweep?)";
    return outcome;
  }
  for (std::size_t index = 0; index < trials.size(); ++index) {
    if (trials[index].index != index ||
        trials[index].repetition != index % driver.reps_per_point) {
      outcome.error = "probe grid trial " + std::to_string(index) +
                      " breaks the ladder x repetition layout";
      return outcome;
    }
  }

  if (options.metrics != nullptr) {
    driver.steps_metric = &options.metrics->counter(kMetricSearchSteps);
    driver.probe_trials_metric =
        &options.metrics->counter(kMetricSearchProbeTrials);
    driver.bracket_metric = &options.metrics->gauge(kMetricSearchBracketWidth);
    driver.best_input_metric = &options.metrics->gauge(kMetricSearchBestInput);
    driver.converged_metric = &options.metrics->gauge(kMetricSearchConverged);
  }

  // ---------------------------------------------------- journal open/scan
  const std::uint64_t search_hash = spec.search_hash();
  const SearchScan scan =
      scan_search_file(journal_path, sweep_name, trials, search_hash);
  if (!scan.ok()) {
    outcome.error = scan.error;
    return outcome;
  }
  if (!resume && !scan.fresh) {
    outcome.error = "journal '" + journal_path +
                    "' already exists; pass --resume to continue the search "
                    "or remove it to restart";
    return outcome;
  }
  SearchJournalWriter::OpenResult opened;
  if (scan.fresh) {
    CampaignHeader header;
    header.sweep = sweep_name;
    header.grid_hash = sweep_grid_hash(trials);
    header.trials = trials.size();
    header.search_step = kSearchStepVersion;
    header.search_hash = search_hash;
    opened = SearchJournalWriter::open_fresh(journal_path, header,
                                             options.sink);
    driver.rows_have.assign(trials.size(), false);
    driver.memo.assign(trials.size(), TrialResult{});
  } else {
    outcome.resumed = true;
    opened = SearchJournalWriter::open_append(journal_path, scan.valid_bytes,
                                              scan.missing_final_newline,
                                              options.sink);
    driver.rows_have = scan.have;
    driver.memo.assign(trials.size(), TrialResult{});
    for (const TrialResult& row : scan.rows)
      driver.memo[row.index] = row;
  }
  if (!opened.ok()) {
    outcome.error = opened.error;
    return outcome;
  }
  driver.writer = std::move(opened.writer);

  // ------------------------------------------------------------- replay
  std::unique_ptr<StepController> controller = spec.make_controller();
  bool test_done = false;
  ProbeMetrics test_metrics;
  Verdict test_verdict = Verdict::kLower;
  for (const SearchStepRow& step : scan.steps) {
    if (test_done) {
      outcome.error = step_label(step.step) +
                      ": step row after the testing stage (journal edited?)";
      return outcome;
    }
    if (step.input_index >= driver.ladder.size() ||
        step.input != driver.ladder[step.input_index]) {
      outcome.error = step_label(step.step) +
                      ": input does not sit on the search ladder";
      return outcome;
    }
    if (step.repetitions > driver.reps_per_point) {
      outcome.error = step_label(step.step) +
                      ": claims more repetitions than the probe grid holds";
      return outcome;
    }
    if (!driver.rows_ready(step.input_index, step.repetitions)) {
      outcome.error = step_label(step.step) +
                      ": its scored trial rows are missing from the journal";
      return outcome;
    }
    const ProbeMetrics metrics =
        driver.probe_metrics(step.input_index, step.repetitions);
    const BenchmarkScore score =
        score_probe(metrics, spec.slo, spec.objective, spec.pass_margin);
    if (score.verdict != step.verdict) {
      outcome.error = step_label(step.step) + ": recorded verdict '" +
                      verdict_name(step.verdict) +
                      "' diverges from the replayed score '" +
                      verdict_name(score.verdict) +
                      "' (journal edited, or simulator behavior changed?)";
      return outcome;
    }
    if (step.test_stage) {
      if (!controller->done()) {
        outcome.error = step_label(step.step) +
                        ": testing-stage row before the adjusting stage "
                        "finished";
        return outcome;
      }
      const auto best = controller->best_index();
      if (!best.has_value() || *best != step.input_index) {
        outcome.error = step_label(step.step) +
                        ": testing-stage input is not the controller's "
                        "answer";
        return outcome;
      }
      test_done = true;
      test_metrics = metrics;
      test_verdict = score.verdict;
    } else {
      if (controller->done()) {
        outcome.error = step_label(step.step) +
                        ": adjusting-stage row after the controller "
                        "finished";
        return outcome;
      }
      const std::vector<ProbeRequest> batch = controller->next_probes();
      const ProbeRequest expected{step.input_index, step.repetitions};
      if (batch.empty() || !(batch.front() == expected)) {
        outcome.error = step_label(step.step) +
                        ": does not match the controller replay (search "
                        "config changed since the journal started?)";
        return outcome;
      }
      controller->feed(expected, score);
    }
    ++driver.step_no;
    ++outcome.steps_replayed;
    driver.emit_step(step, /*replayed=*/true);
  }

  // ---------------------------------------------------- live adjust loop
  while (!controller->done()) {
    const std::vector<ProbeRequest> batch = controller->next_probes();
    if (batch.empty()) break;
    const std::string error = driver.run_missing(batch);
    if (!error.empty()) {
      outcome.error = error;
      return outcome;
    }
    for (const ProbeRequest& request : batch) {
      const ProbeMetrics metrics =
          driver.probe_metrics(request.input_index, request.repetitions);
      const BenchmarkScore score =
          score_probe(metrics, spec.slo, spec.objective, spec.pass_margin);
      controller->feed(request, score);
      SearchStepRow row;
      row.step = ++driver.step_no;
      row.test_stage = false;
      row.input_index = request.input_index;
      row.input = driver.ladder[request.input_index];
      row.repetitions = request.repetitions;
      row.metrics = metrics;
      row.objective = score.objective;
      row.verdict = score.verdict;
      row.bracket = controller->bracket_width();
      driver.emit_step(row, /*replayed=*/false);
    }
    driver.writer->flush();
  }

  // -------------------------------------------------------- testing stage
  const auto best = controller->best_index();
  if (best.has_value() && !test_done) {
    const ProbeRequest request{*best, spec.test_repetitions};
    const std::string error = driver.run_missing({request});
    if (!error.empty()) {
      outcome.error = error;
      return outcome;
    }
    test_metrics = driver.probe_metrics(*best, spec.test_repetitions);
    const BenchmarkScore score =
        score_probe(test_metrics, spec.slo, spec.objective, spec.pass_margin);
    test_verdict = score.verdict;
    SearchStepRow row;
    row.step = ++driver.step_no;
    row.test_stage = true;
    row.input_index = *best;
    row.input = driver.ladder[*best];
    row.repetitions = spec.test_repetitions;
    row.metrics = test_metrics;
    row.objective = score.objective;
    row.verdict = score.verdict;
    row.bracket = controller->bracket_width();
    driver.emit_step(row, /*replayed=*/false);
    test_done = true;
  }
  driver.writer->flush();

  // -------------------------------------------------------------- outcome
  outcome.converged = controller->done() && !controller->exhausted();
  outcome.best_index = best;
  if (best.has_value()) {
    outcome.best_input = driver.ladder[*best];
    outcome.feasible = test_verdict != Verdict::kLower;
    outcome.test_metrics = test_metrics;
    outcome.test_verdict = test_verdict;
    if (driver.best_input_metric != nullptr)
      driver.best_input_metric->set(outcome.best_input);
  }
  outcome.steps = driver.step_no;
  outcome.trials_run = driver.trials_run;
  outcome.bracket = controller->bracket_width();
  if (driver.converged_metric != nullptr)
    driver.converged_metric->set(outcome.converged ? 1.0 : 0.0);
  const std::string best_text =
      best.has_value() ? std::to_string(outcome.best_input) : "none";
  ADAPTBF_LOG_INFO(
      "search", "%s after %u steps (%llu new trials): best %s",
      outcome.converged ? "converged" : "budget exhausted", outcome.steps,
      static_cast<unsigned long long>(outcome.trials_run), best_text.c_str());
  return outcome;
}

}  // namespace adaptbf
