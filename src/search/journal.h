// Search journals: the resumable record of a closed-loop campaign.
//
// A search journal IS a campaign journal (sweep/trial_sink.h) — same
// header line, same trial-row bytes — plus two extensions:
//
//   1. the header carries a search stamp: `"search_step":1` (step-row
//      format generation) and `"search_hash"` (the SearchSpec
//      fingerprint, search/spec.h). The plain campaign scanner refuses
//      stamped journals by name; this scanner requires the stamp.
//   2. `search_step` rows interleave with trial rows: one per scored
//      controller step, written AFTER the trial rows its score was
//      computed from. Resume replays the step rows through a fresh
//      controller — controller state is never serialized, it is
//      re-derived — and the trial rows seed the driver's result memo so
//      replayed scores are bit-identical to the originals.
//
// Crash tolerance is STRICTER than the campaign scanner's: a partial
// tail line is discarded (and a final unterminated row kept), exactly as
// there, but interior garbage is a hard error instead of a re-runnable
// gap — a search journal's byte layout is a pure function of the step
// history, so a torn interior line means the history itself is damaged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "search/controller.h"
#include "search/score.h"
#include "sweep/sweep_spec.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

/// Step-row format generation: the header's "search_step" stamp value.
inline constexpr std::uint32_t kSearchStepVersion = 1;

/// One journaled controller step: the scored probe plus the bracket
/// state after feeding it. `step` is 1-based and dense.
struct SearchStepRow {
  std::uint32_t step = 0;
  bool test_stage = false;  ///< "test" (fixed-budget stage) vs "adjust".
  std::uint32_t input_index = 0;  ///< Ladder index probed.
  double input = 0.0;             ///< Ladder value (round-trip exact).
  std::uint32_t repetitions = 0;  ///< Repetitions averaged into the score.
  ProbeMetrics metrics;           ///< Per-metric means over those reps.
  double objective = 0.0;
  Verdict verdict = Verdict::kLower;
  double bracket = 0.0;  ///< bracket_width() after the feed.
};

/// One-row serialization (no trailing newline); round-trip exact.
[[nodiscard]] std::string search_step_to_jsonl(const SearchStepRow& row);
/// Strict mirror parse; false on any malformation.
[[nodiscard]] bool search_step_from_jsonl(std::string_view line,
                                          SearchStepRow& out);

/// Append-only raw-line journal writer with the same batched-fsync
/// durability contract as JsonlTrialSink. Lines are appended as exact
/// bytes (the driver owns row ordering), newline added here.
class SearchJournalWriter {
 public:
  using Options = JsonlSinkOptions;
  struct OpenResult {
    std::unique_ptr<SearchJournalWriter> writer;
    std::string error;
    [[nodiscard]] bool ok() const { return writer != nullptr; }
  };

  /// Starts a new journal: truncates/creates `path`, writes the stamped
  /// header (header.search_step must be non-zero).
  [[nodiscard]] static OpenResult open_fresh(const std::string& path,
                                             const CampaignHeader& header,
                                             Options options = {});
  /// Reopens for appending at the scan's valid-bytes watermark.
  [[nodiscard]] static OpenResult open_append(const std::string& path,
                                              std::uint64_t keep_bytes,
                                              bool add_newline,
                                              Options options = {});

  ~SearchJournalWriter();
  SearchJournalWriter(const SearchJournalWriter&) = delete;
  SearchJournalWriter& operator=(const SearchJournalWriter&) = delete;

  /// Appends `line` + '\n'. Throws on I/O failure.
  void append_line(std::string_view line);
  void flush();

 private:
  SearchJournalWriter(std::FILE* file, Options options);
  std::FILE* file_;
  Options options_;
  std::size_t pending_ = 0;
};

/// Result of scanning a search journal against its probe grid + spec.
struct SearchScan {
  std::string error;   ///< Non-empty: journal unusable for this search.
  bool fresh = false;  ///< File absent — start a new journal.

  CampaignHeader header;
  /// Step rows in journal order (the replay input).
  std::vector<SearchStepRow> steps;
  /// Scalars of every kept trial row (the driver's memo seed).
  std::vector<TrialResult> rows;
  std::vector<bool> have;  ///< Per probe-grid index: row present.

  bool truncated_tail = false;
  bool missing_final_newline = false;
  /// Watermark for SearchJournalWriter::open_append.
  std::uint64_t valid_bytes = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
  /// A testing-stage step row was journaled: the search finished.
  [[nodiscard]] bool test_complete() const {
    return !steps.empty() && steps.back().test_stage;
  }
};

/// Scans `path` against the expanded probe grid `trials` of the sweep
/// named `sweep_name`, requiring the search stamp (`search_hash`) to
/// match. A missing file comes back `fresh`.
[[nodiscard]] SearchScan scan_search_file(const std::string& path,
                                          const std::string& sweep_name,
                                          std::span<const TrialSpec> trials,
                                          std::uint64_t search_hash);

}  // namespace adaptbf
