#include "search/spec.h"

#include <algorithm>
#include <cmath>

#include "support/fnv.h"
#include "support/json.h"

namespace adaptbf {

namespace {

/// Halving rounds from `n` candidates to a sole survivor.
std::uint32_t halving_rounds(std::size_t n) {
  std::uint32_t rounds = 0;
  while (n > 1) {
    n = (n + 1) / 2;
    ++rounds;
  }
  return rounds;
}

/// Ladder value rendered for scenario-variant labels. Round-trip exact so
/// two distinct ladder values can never collide into one label (labels
/// are grid-cell identity).
std::string input_label(double value) { return json_num_exact(value); }

}  // namespace

const char* search_controller_name(SearchControllerKind kind) {
  switch (kind) {
    case SearchControllerKind::kBisect: return "bisect";
    case SearchControllerKind::kGolden: return "golden";
    case SearchControllerKind::kHalving: return "halving";
  }
  return "?";
}

const char* search_input_name(SearchInput input) {
  switch (input) {
    case SearchInput::kTokenRate: return "token_rate";
    case SearchInput::kEwmaAlpha: return "ewma_alpha";
    case SearchInput::kBucketDepth: return "bucket_depth";
  }
  return "?";
}

std::vector<double> SearchSpec::inputs() const {
  std::vector<double> values = ladder;
  if (values.empty() && points >= 2 && hi > lo) {
    values.reserve(points);
    for (std::uint32_t i = 0; i < points; ++i)
      values.push_back(lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(points - 1));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::string SearchSpec::validate(const SweepSpec& base) const {
  if (base.scenarios.size() != 1)
    return "search needs exactly one base scenario (got " +
           std::to_string(base.scenarios.size()) + ")";
  if (base.policies.size() != 1)
    return "search needs exactly one policy (got " +
           std::to_string(base.policies.size()) + ")";
  if (base.ost_counts.size() > 1)
    return "search cannot ride a multi-valued osts axis";
  if (input == SearchInput::kTokenRate) {
    if (!base.token_rates.empty())
      return "searching token_rate: drop the [grid] token_rate axis (the "
             "search ladder becomes that axis)";
  } else if (base.token_rates.size() > 1) {
    return "search cannot ride a multi-valued token_rate axis";
  }
  const std::vector<double> values = inputs();
  if (values.size() < 2)
    return "search ladder needs at least 2 distinct values (ladder = "
           "<comma list>, or lo/hi/points)";
  for (const double value : values) {
    switch (input) {
      case SearchInput::kTokenRate:
        if (value <= 0.0)
          return "token_rate ladder values must be positive";
        break;
      case SearchInput::kEwmaAlpha:
        if (!(value > 0.0 && value <= 1.0))
          return "ewma_alpha ladder values must be in (0, 1]";
        break;
      case SearchInput::kBucketDepth:
        if (value <= 0.0)
          return "bucket_depth ladder values must be positive";
        break;
    }
  }
  if (slo.empty()) return "search needs an SLO (slo = p99_ms<=N, ...)";
  if (budget == 0) return "search budget must be >= 1";
  if (probe_repetitions == 0) return "probe_repetitions must be >= 1";
  if (test_repetitions == 0) return "test_repetitions must be >= 1";
  if (!(pass_margin >= 0.0)) return "pass_margin must be >= 0";
  return "";
}

std::uint32_t SearchSpec::grid_repetitions() const {
  std::uint32_t probe_max = probe_repetitions;
  if (controller == SearchControllerKind::kHalving) {
    const std::uint32_t rounds = halving_rounds(inputs().size());
    if (rounds > 0)
      probe_max = probe_repetitions
                  << std::min<std::uint32_t>(rounds - 1, 20);
  }
  return std::max(probe_max, test_repetitions);
}

SweepSpec SearchSpec::probe_sweep(const SweepSpec& base) const {
  SweepSpec probe = base;
  probe.repetitions = grid_repetitions();
  const std::vector<double> values = inputs();
  if (input == SearchInput::kTokenRate) {
    probe.token_rates = values;
    return probe;
  }
  // Gain ladders become scenario variants: the outermost grid axis, one
  // labeled copy of the base scenario per rung. Labels carry the exact
  // value, so the grid hash (which folds in cell ids) fingerprints the
  // ladder for the workers' hello.
  const SweepScenario base_scenario = probe.scenarios.front();
  probe.scenarios.clear();
  probe.scenarios.reserve(values.size());
  for (const double value : values) {
    SweepScenario variant = base_scenario;
    variant.label += "@";
    variant.label += search_input_name(input);
    variant.label += "=";
    variant.label += input_label(value);
    if (input == SearchInput::kEwmaAlpha)
      variant.spec.ewma_alpha = value;
    else
      variant.spec.bucket_depth = value;
    probe.scenarios.push_back(std::move(variant));
  }
  return probe;
}

std::uint64_t SearchSpec::search_hash() const {
  Fnv1a fnv;
  fnv.u64(static_cast<std::uint64_t>(controller));
  fnv.u64(static_cast<std::uint64_t>(input));
  const std::vector<double> values = inputs();
  fnv.u64(values.size());
  for (const double value : values) fnv.f64(value);
  fnv.u64(slo.size());
  for (const Threshold& threshold : slo) {
    fnv.u64(static_cast<std::uint64_t>(threshold.metric));
    fnv.u64(static_cast<std::uint64_t>(threshold.cmp));
    fnv.f64(threshold.bound);
  }
  fnv.u64(static_cast<std::uint64_t>(objective.metric));
  fnv.f64(pass_margin);
  fnv.u64(budget);
  fnv.u64(probe_repetitions);
  fnv.u64(test_repetitions);
  return fnv.value();
}

std::unique_ptr<StepController> SearchSpec::make_controller() const {
  std::vector<double> values = inputs();
  switch (controller) {
    case SearchControllerKind::kBisect:
      return make_bisection_controller(std::move(values), probe_repetitions,
                                       budget);
    case SearchControllerKind::kGolden:
      return make_golden_section_controller(std::move(values),
                                            probe_repetitions, budget);
    case SearchControllerKind::kHalving:
      return make_successive_halving_controller(std::move(values),
                                                probe_repetitions, budget);
  }
  return nullptr;
}

}  // namespace adaptbf
