// The search driver: turns a StepController's probe requests into
// simulator trials, journals everything, and resumes deterministically.
//
// Execution model. The probe grid (spec.h) pre-materializes every probe
// the controller can request: trial (ladder point k, repetition j) sits
// at grid index k * R + j, R = SearchSpec::grid_repetitions(). Each
// controller batch becomes ONE executor call covering every trial row
// the batch still needs; the executor runs them in-process (SweepRunner)
// or fans them over TCP workers (DispatchCoordinator adaptive mode) and
// returns the exact journal-row bytes, ordered by index. The driver
// appends those rows, then feeds each request's score to the controller
// and appends one `search_step` row per feed. Because rows within a
// batch are appended in index order and step rows follow their batch,
// the journal's byte stream is a pure function of the step history —
// single-process, multi-worker, and kill-and-resume runs of the same
// search produce byte-identical journals.
//
// Resume. scan_search_file() (journal.h) recovers the trial rows (the
// result memo) and the step rows; run_search() replays each step through
// a fresh controller, cross-checking it against next_probes() and the
// recomputed score's verdict, then continues live from wherever the
// journal stopped — including mid-batch, thanks to the controllers'
// unfed-remainder protocol (controller.h).
//
// After the adjusting stage converges (or exhausts its budget with a
// best-so-far answer), a testing stage re-scores the winning input over
// SearchSpec::test_repetitions and journals a final stage="test" step
// row — the journal's terminal marker.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "search/journal.h"
#include "search/spec.h"
#include "sweep/sweep_spec.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

class DispatchCoordinator;
class MetricRegistry;

/// Metric names the driver registers when SearchDriverOptions::metrics is
/// set (naming scheme: docs/observability.md).
inline constexpr char kMetricSearchSteps[] = "adaptbf_search_steps_total";
inline constexpr char kMetricSearchProbeTrials[] =
    "adaptbf_search_probe_trials_total";
inline constexpr char kMetricSearchBracketWidth[] =
    "adaptbf_search_bracket_width";
inline constexpr char kMetricSearchBestInput[] = "adaptbf_search_best_input";
inline constexpr char kMetricSearchConverged[] = "adaptbf_search_converged";

/// Runs probe-grid trials on behalf of the driver. `indices` are grid
/// indices (deduplicated, ascending); `rows_out` receives the EXACT
/// journal-row bytes (trial_to_jsonl, no newline) in the same order.
/// Returns "" on success, an error message otherwise.
class ProbeExecutor {
 public:
  virtual ~ProbeExecutor() = default;
  [[nodiscard]] virtual std::string run(
      const std::vector<std::size_t>& indices,
      std::vector<std::string>& rows_out) = 0;
};

/// In-process execution: a SweepRunner over the requested trial subset.
/// `trials` must outlive the executor. `threads` as SweepRunner::Options;
/// `metrics` (optional) receives the runner's per-trial series.
[[nodiscard]] std::unique_ptr<ProbeExecutor> make_local_probe_executor(
    std::span<const TrialSpec> trials, std::uint32_t threads,
    MetricRegistry* metrics);

/// TCP fan-out: serve_trials() on an adaptive-mode coordinator
/// (DispatchCoordinator::open_adaptive). The coordinator must outlive the
/// executor; the caller calls finish() on it after run_search returns.
[[nodiscard]] std::unique_ptr<ProbeExecutor> make_dispatch_probe_executor(
    DispatchCoordinator& coordinator);

struct SearchDriverOptions {
  /// Journal durability knobs (tests disable fsync).
  JsonlSinkOptions sink{};
  /// Optional telemetry: steps/probe-trial counters plus bracket-width,
  /// best-input, and converged gauges. Must outlive run_search().
  MetricRegistry* metrics = nullptr;
  /// Called after every step row lands (replayed steps included, so a
  /// resumed watcher sees the full history).
  std::function<void(const SearchStepRow&)> on_step;
};

struct SearchOutcome {
  std::string error;  ///< Non-empty: the search did not finish.

  /// The adjusting stage closed its bracket (false = budget exhausted;
  /// best_index is then best-so-far).
  bool converged = false;
  /// A feasible answer exists AND the testing stage upheld it.
  bool feasible = false;
  std::optional<std::uint32_t> best_index;
  double best_input = 0.0;  ///< Ladder value at best_index.
  /// Testing-stage means at the answer (valid iff best_index).
  ProbeMetrics test_metrics;
  Verdict test_verdict = Verdict::kLower;

  std::uint32_t steps = 0;           ///< Total step rows, test included.
  std::uint32_t steps_replayed = 0;  ///< Of those, recovered from journal.
  std::uint64_t trials_run = 0;      ///< NEW trials this run.
  double bracket = 0.0;              ///< Final bracket width (input units).
  bool resumed = false;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs (or resumes) the search to completion. `trials` is the expanded
/// probe grid of spec.probe_sweep(base) — the k * R + j layout is
/// validated up front — and `sweep_name` / the grid hash stamp the
/// journal at `journal_path`. An existing journal requires resume=true
/// and must match the sweep, grid, and search hash.
[[nodiscard]] SearchOutcome run_search(const SearchSpec& spec,
                                       const std::string& sweep_name,
                                       std::span<const TrialSpec> trials,
                                       const std::string& journal_path,
                                       bool resume, ProbeExecutor& executor,
                                       SearchDriverOptions options = {});

}  // namespace adaptbf
