#include "cluster/experiment.h"

#include <memory>
#include <utility>

#include "adaptbf/controller.h"
#include "adaptbf/gift_controller.h"
#include "adaptbf/static_controller.h"
#include "client/client_system.h"
#include "ost/oss.h"
#include "sim/simulator.h"
#include "support/check.h"
#include "tbf/fcfs_scheduler.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {

namespace {

std::unique_ptr<IoPattern> build_pattern(const ProcessPattern& pattern) {
  switch (pattern.kind) {
    case ProcessPattern::Kind::kContinuous:
      return std::make_unique<ContinuousPattern>(pattern.total_rpcs,
                                                 pattern.start_delay);
    case ProcessPattern::Kind::kPeriodicBurst:
      return std::make_unique<PeriodicBurstPattern>(
          pattern.total_rpcs, pattern.burst_rpcs, pattern.period,
          pattern.start_delay);
    case ProcessPattern::Kind::kPoisson:
      return std::make_unique<PoissonPattern>(pattern.total_rpcs,
                                              pattern.poisson_rate,
                                              pattern.start_delay,
                                              pattern.seed);
  }
  ADAPTBF_CHECK_MSG(false, "unknown pattern kind");
  return nullptr;
}

}  // namespace

std::size_t estimate_peak_events(const ScenarioSpec& spec) {
  std::size_t processes = 0;
  for (const auto& job : spec.jobs) processes += job.processes.size();
  // Per process: the next pattern release plus one pending event per
  // inflight RPC (each RPC holds at most one — its current network or
  // service stage). Per OST: disk completion, token/queue wakeups bounded
  // by service threads, and a few controller/daemon periodics.
  const std::size_t per_process = spec.max_inflight_per_process + 2;
  const std::size_t per_ost = spec.num_threads + 8;
  const std::size_t estimate =
      processes * per_process + spec.num_osts * per_ost + 64;
  return std::max<std::size_t>(estimate, 256);
}

std::vector<std::pair<JobId, std::string>> ExperimentResult::job_labels()
    const {
  std::vector<std::pair<JobId, std::string>> labels;
  labels.reserve(jobs.size());
  for (const auto& j : jobs) labels.emplace_back(j.id, j.name);
  return labels;
}

ExperimentResult run_experiment(const ScenarioSpec& spec,
                                const ExperimentOptions& options) {
  ADAPTBF_CHECK_MSG(!spec.jobs.empty(), "scenario needs at least one job");
  ADAPTBF_CHECK(spec.duration > SimDuration(0));
  ADAPTBF_CHECK(spec.num_osts > 0);

  Simulator local_sim(
      Simulator::Config{options.queue_backend, options.batched_dispatch});
  Simulator* sim_ptr = options.simulator;
  if (sim_ptr != nullptr) {
    // Arena reuse: the caller owns a warmed simulator (one per sweep
    // worker). reset() makes it observationally identical to a fresh one
    // while keeping every pool at capacity.
    ADAPTBF_CHECK_MSG(
        sim_ptr->config().backend == options.queue_backend &&
            sim_ptr->config().batched_dispatch == options.batched_dispatch,
        "reused simulator's config must match ExperimentOptions");
    sim_ptr->reset();
  } else {
    sim_ptr = &local_sim;
  }
  Simulator& sim = *sim_ptr;
  // One event arena serves the whole trial, pre-sized from the scenario so
  // steady-state scheduling never grows the pool.
  sim.reserve_events(estimate_peak_events(spec));
  if (options.dispatch_hook) sim.set_dispatch_hook(options.dispatch_hook);

  // --- Server: OSS hosting num_osts OSTs, one scheduler each ---
  Oss::Config oss_config;
  oss_config.num_osts = spec.num_osts;
  oss_config.ost.num_threads = spec.num_threads;
  oss_config.ost.disk = spec.disk;

  std::vector<TbfScheduler*> tbf_schedulers(spec.num_osts, nullptr);
  Oss oss(sim, oss_config, [&](std::uint32_t index)
              -> std::unique_ptr<RequestScheduler> {
    if (spec.control == BwControl::kNone)
      return std::make_unique<FcfsScheduler>();
    auto owned = std::make_unique<TbfScheduler>();
    tbf_schedulers[index] = owned.get();
    return owned;
  });

  const double max_token_rate =
      spec.max_token_rate > 0.0
          ? spec.max_token_rate
          : oss.ost(0).max_token_rate(spec.rpc_size_bytes);

  // --- Metrics (global across OSTs) ---
  ExperimentResult result;
  result.scenario_name = spec.name;
  result.control = spec.control;
  result.max_token_rate = max_token_rate;
  result.timeline = ThroughputTimeline(spec.timeline_bin);
  oss.add_completion_hook([&result](const RpcCompletion& completion) {
    result.timeline.record(completion.rpc.job, completion.rpc.size_bytes,
                           completion.end_service);
    result.latency.record(completion);
  });

  // --- Clients: processes assigned round-robin over OSTs (stripe_count=1)
  // and over 4 client machines as in the CloudLab testbed (Table II). ---
  ClientSystem clients(sim, spec.network_latency);
  for (std::size_t i = 0; i < oss.num_osts(); ++i)
    clients.attach_ost(oss.ost(i));
  std::uint32_t global_process = 0;
  for (const auto& job : spec.jobs) {
    std::uint32_t process_index = 0;
    for (const auto& pattern : job.processes) {
      ProcessStream::Config config;
      config.job = job.id;
      config.nid = Nid(global_process % 4);
      config.process_index = process_index++;
      config.rpc_size_bytes = spec.rpc_size_bytes;
      config.locality = pattern.locality;
      config.max_inflight = spec.max_inflight_per_process;
      config.network_latency = spec.network_latency;
      Ost& target = oss.ost(global_process % oss.num_osts());
      clients.add_process(target, config, build_pattern(pattern));
      ++global_process;
    }
  }

  // --- Control policy: one independent instance per OST (AdapTBF/Static)
  // or one central instance over all OSTs (GIFT) ---
  std::vector<std::unique_ptr<AdaptbfController>> adaptive;
  std::vector<std::unique_ptr<StaticBwController>> static_controls;
  std::unique_ptr<GiftController> gift;
  if (spec.control == BwControl::kGift) {
    std::vector<std::pair<Ost*, TbfScheduler*>> targets;
    for (std::size_t i = 0; i < oss.num_osts(); ++i) {
      ADAPTBF_CHECK(tbf_schedulers[i] != nullptr);
      targets.emplace_back(&oss.ost(i), tbf_schedulers[i]);
    }
    GiftController::Config config;
    config.total_rate = max_token_rate;
    config.dt = spec.observation_period;
    config.daemon.depth = spec.bucket_depth;
    gift = std::make_unique<GiftController>(sim, std::move(targets), config);
    gift->start();
  } else if (spec.control == BwControl::kAdaptive) {
    for (std::size_t i = 0; i < oss.num_osts(); ++i) {
      ADAPTBF_CHECK(tbf_schedulers[i] != nullptr);
      AdaptbfController::Config config;
      config.allocator.total_rate = max_token_rate;
      config.allocator.dt = spec.observation_period;
      config.allocator.enable_redistribution = spec.enable_redistribution;
      config.allocator.enable_recompensation = spec.enable_recompensation;
      config.allocator.enable_remainders = spec.enable_remainders;
      config.allocator.demand_estimator = spec.use_ewma_estimator
                                              ? DemandEstimator::kEwma
                                              : DemandEstimator::kLastWindow;
      config.allocator.ewma_alpha = spec.ewma_alpha;
      config.daemon.depth = spec.bucket_depth;
      config.apply_latency = spec.controller_apply_latency;
      for (const auto& job : spec.jobs) config.job_nodes[job.id] = job.nodes;
      adaptive.push_back(std::make_unique<AdaptbfController>(
          sim, oss.ost(i), *tbf_schedulers[i], config));
      // The recorded allocation trace follows OST 0 (all of the paper's
      // trace figures are single-OST).
      if (options.capture_allocation_trace && i == 0) {
        adaptive.back()->add_observer([&result](const WindowResult& window) {
          result.allocation_trace.push_back(window);
        });
      }
      adaptive.back()->start();
    }
  } else if (spec.control == BwControl::kStatic) {
    for (std::size_t i = 0; i < oss.num_osts(); ++i) {
      ADAPTBF_CHECK(tbf_schedulers[i] != nullptr);
      StaticBwController::Config config;
      config.total_rate = max_token_rate;
      config.depth = spec.bucket_depth;
      for (const auto& job : spec.jobs)
        config.jobs.push_back({job.id, job.nodes});
      static_controls.push_back(
          std::make_unique<StaticBwController>(*tbf_schedulers[i], config));
      static_controls.back()->install(sim.now());
    }
  }

  // --- Run: in bin-width steps so early-idle stop is detected promptly ---
  clients.start_all();
  const SimTime end = SimTime::zero() + spec.duration;
  SimTime cursor = SimTime::zero();
  while (cursor < end) {
    cursor = std::min(end, cursor + spec.timeline_bin);
    sim.run_until(cursor);
    if (spec.stop_when_idle && clients.all_finished()) break;
  }
  result.horizon = sim.now();
  for (auto& controller : adaptive) controller->stop();
  if (gift) gift->stop();

  // --- Summaries (cumulative stats summed across OSTs) ---
  for (const auto& job : spec.jobs) {
    JobSummary summary;
    summary.id = job.id;
    summary.name = job.name;
    summary.nodes = job.nodes;
    for (std::size_t i = 0; i < oss.num_osts(); ++i) {
      const JobCumulativeStats* cumulative =
          oss.ost(i).job_stats().cumulative(job.id);
      if (cumulative == nullptr) continue;
      summary.rpcs_completed += cumulative->rpcs_completed;
      summary.bytes_completed += cumulative->bytes_completed;
    }
    bool all_done = true;
    for (const auto& process : clients.processes()) {
      if (process->config().job != job.id) continue;
      if (!process->finished()) {
        all_done = false;
        break;
      }
    }
    summary.finished = all_done;
    if (all_done) summary.finish_time = clients.job_finish_time(job.id);
    const SimTime span = all_done && summary.finish_time > SimTime::zero()
                             ? summary.finish_time
                             : result.horizon;
    summary.mean_mibps = result.timeline.mean_mibps(job.id, span);
    result.jobs.push_back(std::move(summary));
  }
  result.aggregate_mibps =
      result.timeline.aggregate_mean_mibps(result.horizon);
  result.total_bytes = result.timeline.total_bytes();
  result.events_dispatched = sim.events_dispatched();
  result.queue_stats = sim.queue_stats();
  result.event_pool_slots = sim.event_pool_slots();
  return result;
}

}  // namespace adaptbf
