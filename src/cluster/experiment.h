// Experiment harness: ScenarioSpec in, ExperimentResult out.
//
// Wires a full single-OST testbed — simulator, OST with the policy's
// scheduler, client system with every process of every job — runs it, and
// collects the timeline, per-job summaries and (for AdapTBF) the
// allocation/record trace. This is the programmatic equivalent of one
// CloudLab run in §IV.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "adaptbf/allocation_types.h"
#include "metrics/latency_stats.h"
#include "metrics/throughput_timeline.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace adaptbf {

struct JobSummary {
  JobId id;
  std::string name;
  std::uint32_t nodes = 0;
  std::uint64_t rpcs_completed = 0;
  std::uint64_t bytes_completed = 0;
  /// Bytes over the job's active span: completion time for jobs that
  /// finished, the full horizon otherwise. This is the "achieved I/O
  /// bandwidth per job" of Figs. 4a/6a/8a — a job that finished early
  /// because it received more tokens shows the higher rate it ran at.
  double mean_mibps = 0.0;
  /// Time the job's last process finished; zero if it ran to the horizon.
  SimTime finish_time;
  bool finished = false;
};

struct ExperimentResult {
  std::string scenario_name;
  BwControl control = BwControl::kNone;
  SimTime horizon;  ///< Measured span (duration, or early-idle stop point).
  double max_token_rate = 0.0;  ///< T_i used (tokens/s).

  ThroughputTimeline timeline;
  LatencyStats latency;
  std::vector<JobSummary> jobs;  ///< Ascending JobId.
  double aggregate_mibps = 0.0;
  std::uint64_t total_bytes = 0;

  /// One entry per observation window (AdapTBF runs only).
  std::vector<WindowResult> allocation_trace;

  std::uint64_t events_dispatched = 0;
  /// Per-trial event-core counters (reset() zeroes them when a simulator
  /// is reused across trials, so these never mix trials).
  EventQueue::Stats queue_stats;
  /// Event slots the trial's arena ended with — compare against
  /// estimate_peak_events() to judge the pre-sizing heuristic.
  std::size_t event_pool_slots = 0;

  /// Binary search over the id-sorted `jobs` vector.
  [[nodiscard]] const JobSummary* find_job(JobId id) const {
    const auto it = std::lower_bound(
        jobs.begin(), jobs.end(), id,
        [](const JobSummary& summary, JobId key) { return summary.id < key; });
    return it != jobs.end() && it->id == id ? &*it : nullptr;
  }

  /// (JobId, name) pairs in ascending id order — the labels argument the
  /// metrics/report.h tables take.
  [[nodiscard]] std::vector<std::pair<JobId, std::string>> job_labels() const;
};

struct ExperimentOptions {
  /// Record every WindowResult (memory ~ jobs x windows). On for figure
  /// benches, off for sweeps that only need summaries.
  bool capture_allocation_trace = true;
  /// Forwarded to Simulator::set_dispatch_hook: observes every dispatched
  /// event as (fire time, schedule sequence). Used by the golden-trace
  /// tests that pin the exact dispatch order of the paper scenarios.
  Simulator::DispatchHook dispatch_hook;
  /// Event-queue ordering backend for the trial's simulator. Both backends
  /// produce bit-identical results; kCalendar targets deep-horizon runs.
  QueueBackend queue_backend = QueueBackend::kHeap;
  /// Drain same-timestamp cohorts via pop_batch (default) or one pop per
  /// event; results are bit-identical either way.
  bool batched_dispatch = true;
  /// Optional externally owned simulator to run the trial on, for arena
  /// reuse across trials: run_experiment calls reset() first, and the
  /// simulator's Config must match queue_backend/batched_dispatch above.
  /// nullptr (the default) runs the trial on a private simulator.
  Simulator* simulator = nullptr;

  /// Sweep default: summaries only, no per-window trace.
  [[nodiscard]] static ExperimentOptions without_trace() {
    ExperimentOptions options;
    options.capture_allocation_trace = false;
    return options;
  }
};

/// Scenario-derived bound on concurrently pending events, used to pre-size
/// the trial's event arena: per process one arrival/wakeup plus one event
/// per inflight RPC stage, per OST a disk completion, thread wakeups, and
/// the control daemon's periodics, plus slack for transients. Replaces the
/// old hard-coded 4096, which over-reserved small scenarios 30x and
/// under-reserved million-client ones.
[[nodiscard]] std::size_t estimate_peak_events(const ScenarioSpec& spec);

/// Runs one scenario to its horizon. Deterministic: equal specs give
/// bit-identical results.
[[nodiscard]] ExperimentResult run_experiment(const ScenarioSpec& spec,
                                              const ExperimentOptions& options = {});

}  // namespace adaptbf
