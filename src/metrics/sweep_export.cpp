#include "metrics/sweep_export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace adaptbf {

namespace {

/// Shortest-round-trip-ish numeric literal, valid JSON and stable CSV.
/// %.10g keeps full practical precision for MiB/s-scale values while
/// printing integers without a trailing ".0000000000".
std::string num(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void append_summary_fields(std::ostringstream& out, const char* prefix,
                           const SampleSummary& s) {
  out << '"' << prefix << "_mean\":" << num(s.mean) << ",\"" << prefix
      << "_stddev\":" << num(s.stddev) << ",\"" << prefix
      << "_ci95\":" << num(s.ci95_half) << ",\"" << prefix
      << "_min\":" << num(s.min) << ",\"" << prefix
      << "_max\":" << num(s.max);
}

}  // namespace

Table sweep_trials_table(std::span<const TrialResult> trials) {
  Table table({"trial", "scenario", "policy", "osts", "token_rate",
               "repetition", "seed", "aggregate_mibps", "fairness", "p50_ms",
               "p95_ms", "p99_ms", "horizon_s", "total_bytes", "events"});
  for (const auto& trial : trials) {
    table.add_row({std::to_string(trial.index), trial.scenario,
                   std::string(to_string(trial.policy)),
                   std::to_string(trial.num_osts), num(trial.max_token_rate),
                   std::to_string(trial.repetition),
                   std::to_string(trial.seed), num(trial.aggregate_mibps),
                   num(trial.fairness), num(trial.p50_ms), num(trial.p95_ms),
                   num(trial.p99_ms), num(trial.horizon_s),
                   std::to_string(trial.total_bytes),
                   std::to_string(trial.events_dispatched)});
  }
  return table;
}

Table sweep_cells_table(std::span<const CellStats> cells) {
  Table table({"scenario", "policy", "osts", "token_rate", "trials",
               "mibps_mean", "mibps_stddev", "mibps_ci95", "mibps_min",
               "mibps_max", "fairness_mean", "fairness_stddev", "p99_mean_ms",
               "p99_ci95_ms", "horizon_s", "total_bytes"});
  for (const auto& cell : cells) {
    table.add_row({cell.scenario, std::string(to_string(cell.policy)),
                   std::to_string(cell.num_osts), num(cell.max_token_rate),
                   std::to_string(cell.trials), num(cell.aggregate_mibps.mean),
                   num(cell.aggregate_mibps.stddev),
                   num(cell.aggregate_mibps.ci95_half),
                   num(cell.aggregate_mibps.min), num(cell.aggregate_mibps.max),
                   num(cell.fairness.mean), num(cell.fairness.stddev),
                   num(cell.p99_ms.mean), num(cell.p99_ms.ci95_half),
                   num(cell.mean_horizon_s),
                   std::to_string(cell.total_bytes)});
  }
  return table;
}

std::string sweep_to_json(const std::string& sweep_name,
                          std::span<const TrialResult> trials,
                          std::span<const CellStats> cells) {
  std::ostringstream out;
  out << "{\"sweep\":" << quote(sweep_name) << ",\"trials\":[";
  bool first = true;
  for (const auto& trial : trials) {
    if (!first) out << ',';
    first = false;
    out << "{\"trial\":" << trial.index
        << ",\"scenario\":" << quote(trial.scenario)
        << ",\"policy\":" << quote(std::string(to_string(trial.policy)))
        << ",\"osts\":" << trial.num_osts
        << ",\"token_rate\":" << num(trial.max_token_rate)
        << ",\"repetition\":" << trial.repetition
        << ",\"seed\":" << trial.seed
        << ",\"aggregate_mibps\":" << num(trial.aggregate_mibps)
        << ",\"fairness\":" << num(trial.fairness)
        << ",\"p50_ms\":" << num(trial.p50_ms)
        << ",\"p95_ms\":" << num(trial.p95_ms)
        << ",\"p99_ms\":" << num(trial.p99_ms)
        << ",\"horizon_s\":" << num(trial.horizon_s)
        << ",\"total_bytes\":" << trial.total_bytes
        << ",\"events\":" << trial.events_dispatched << ",\"jobs\":[";
    bool first_job = true;
    for (const auto& job : trial.jobs) {
      if (!first_job) out << ',';
      first_job = false;
      out << "{\"id\":" << job.id.value() << ",\"name\":" << quote(job.name)
          << ",\"nodes\":" << job.nodes
          << ",\"mean_mibps\":" << num(job.mean_mibps)
          << ",\"rpcs\":" << job.rpcs_completed
          << ",\"finished\":" << (job.finished ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << "],\"cells\":[";
  first = true;
  for (const auto& cell : cells) {
    if (!first) out << ',';
    first = false;
    out << "{\"scenario\":" << quote(cell.scenario)
        << ",\"policy\":" << quote(std::string(to_string(cell.policy)))
        << ",\"osts\":" << cell.num_osts
        << ",\"token_rate\":" << num(cell.max_token_rate)
        << ",\"trials\":" << cell.trials << ',';
    append_summary_fields(out, "mibps", cell.aggregate_mibps);
    out << ',';
    append_summary_fields(out, "fairness", cell.fairness);
    out << ',';
    append_summary_fields(out, "p99_ms", cell.p99_ms);
    out << ",\"horizon_s\":" << num(cell.mean_horizon_s)
        << ",\"total_bytes\":" << cell.total_bytes << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace adaptbf
