#include "metrics/sweep_export.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/json.h"
#include "sweep/resume.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

namespace {

/// Shortest-round-trip-ish numeric literal, valid JSON and stable CSV
/// (display precision; support/json.h owns the format).
std::string num(double v) { return json_num(v); }

void append_summary_fields(std::ostream& out, const char* prefix,
                           const SampleSummary& s) {
  out << '"' << prefix << "_mean\":" << num(s.mean) << ",\"" << prefix
      << "_stddev\":" << num(s.stddev) << ",\"" << prefix
      << "_ci95\":" << num(s.ci95_half) << ",\"" << prefix
      << "_min\":" << num(s.min) << ",\"" << prefix
      << "_max\":" << num(s.max);
}

}  // namespace

Table sweep_trials_table(std::span<const TrialResult> trials) {
  Table table({"trial", "scenario", "policy", "osts", "token_rate",
               "repetition", "seed", "aggregate_mibps", "fairness", "p50_ms",
               "p95_ms", "p99_ms", "horizon_s", "total_bytes", "events"});
  for (const auto& trial : trials) {
    table.add_row({std::to_string(trial.index), trial.scenario,
                   std::string(to_string(trial.policy)),
                   std::to_string(trial.num_osts), num(trial.max_token_rate),
                   std::to_string(trial.repetition),
                   std::to_string(trial.seed), num(trial.aggregate_mibps),
                   num(trial.fairness), num(trial.p50_ms), num(trial.p95_ms),
                   num(trial.p99_ms), num(trial.horizon_s),
                   std::to_string(trial.total_bytes),
                   std::to_string(trial.events_dispatched)});
  }
  return table;
}

Table sweep_cells_table(std::span<const CellStats> cells) {
  Table table({"scenario", "policy", "osts", "token_rate", "trials",
               "mibps_mean", "mibps_stddev", "mibps_ci95", "mibps_min",
               "mibps_max", "fairness_mean", "fairness_stddev", "p99_mean_ms",
               "p99_ci95_ms", "horizon_s", "total_bytes"});
  for (const auto& cell : cells) {
    table.add_row({cell.scenario, std::string(to_string(cell.policy)),
                   std::to_string(cell.num_osts), num(cell.max_token_rate),
                   std::to_string(cell.trials), num(cell.aggregate_mibps.mean),
                   num(cell.aggregate_mibps.stddev),
                   num(cell.aggregate_mibps.ci95_half),
                   num(cell.aggregate_mibps.min), num(cell.aggregate_mibps.max),
                   num(cell.fairness.mean), num(cell.fairness.stddev),
                   num(cell.p99_ms.mean), num(cell.p99_ms.ci95_half),
                   num(cell.mean_horizon_s),
                   std::to_string(cell.total_bytes)});
  }
  return table;
}

void append_trial_json(std::ostream& out, const TrialResult& trial) {
  out << "{\"trial\":" << trial.index
      << ",\"scenario\":" << json_quote(trial.scenario)
      << ",\"policy\":" << json_quote(to_string(trial.policy))
      << ",\"osts\":" << trial.num_osts
      << ",\"token_rate\":" << num(trial.max_token_rate)
      << ",\"repetition\":" << trial.repetition << ",\"seed\":" << trial.seed
      << ",\"aggregate_mibps\":" << num(trial.aggregate_mibps)
      << ",\"fairness\":" << num(trial.fairness)
      << ",\"p50_ms\":" << num(trial.p50_ms)
      << ",\"p95_ms\":" << num(trial.p95_ms)
      << ",\"p99_ms\":" << num(trial.p99_ms)
      << ",\"horizon_s\":" << num(trial.horizon_s)
      << ",\"total_bytes\":" << trial.total_bytes
      << ",\"events\":" << trial.events_dispatched << ",\"jobs\":[";
  bool first_job = true;
  for (const auto& job : trial.jobs) {
    if (!first_job) out << ',';
    first_job = false;
    out << "{\"id\":" << job.id.value() << ",\"name\":" << json_quote(job.name)
        << ",\"nodes\":" << job.nodes
        << ",\"mean_mibps\":" << num(job.mean_mibps)
        << ",\"rpcs\":" << job.rpcs_completed
        << ",\"finished\":" << (job.finished ? "true" : "false") << '}';
  }
  out << "]}";
}

void append_cell_json(std::ostream& out, const CellStats& cell) {
  out << "{\"scenario\":" << json_quote(cell.scenario)
      << ",\"policy\":" << json_quote(to_string(cell.policy))
      << ",\"osts\":" << cell.num_osts
      << ",\"token_rate\":" << num(cell.max_token_rate)
      << ",\"trials\":" << cell.trials << ',';
  append_summary_fields(out, "mibps", cell.aggregate_mibps);
  out << ',';
  append_summary_fields(out, "fairness", cell.fairness);
  out << ',';
  append_summary_fields(out, "p99_ms", cell.p99_ms);
  out << ",\"horizon_s\":" << num(cell.mean_horizon_s)
      << ",\"total_bytes\":" << cell.total_bytes << '}';
}

std::string sweep_to_json(const std::string& sweep_name,
                          std::span<const TrialResult> trials,
                          std::span<const CellStats> cells) {
  std::ostringstream out;
  out << "{\"sweep\":" << json_quote(sweep_name) << ",\"trials\":[";
  bool first = true;
  for (const auto& trial : trials) {
    if (!first) out << ',';
    first = false;
    append_trial_json(out, trial);
  }
  out << "],\"cells\":[";
  first = true;
  for (const auto& cell : cells) {
    if (!first) out << ',';
    first = false;
    append_cell_json(out, cell);
  }
  out << "]}";
  return out.str();
}

JsonlExportResult export_campaign_from_jsonl(const std::string& jsonl_path,
                                             const std::string& sweep_name,
                                             std::span<const TrialSpec> trials,
                                             std::ostream* json_out) {
  JsonlExportResult result;
  const CampaignScan scan = scan_campaign_file(jsonl_path, sweep_name, trials);
  if (!scan.ok()) {
    result.error = scan.error;
    return result;
  }
  if (scan.fresh) {
    result.error = "journal '" + jsonl_path + "' does not exist";
    return result;
  }
  if (!scan.complete()) {
    std::size_t first_missing = scan.trial_count;
    for (std::size_t i = 0; i < scan.have.size(); ++i) {
      if (!scan.have[i]) {
        first_missing = i;
        break;
      }
    }
    result.error = "journal '" + jsonl_path + "' is incomplete (" +
                   std::to_string(scan.expected_rows - scan.rows) + " of " +
                   std::to_string(scan.expected_rows) +
                   " trials missing, first missing trial " +
                   std::to_string(first_missing) +
                   "; resume the campaign first)";
    return result;
  }

  std::ifstream file(jsonl_path, std::ios::binary);
  if (!file) {
    result.error = "cannot open '" + jsonl_path + "'";
    return result;
  }

  // One seek per trial, in index order: rows land in the journal in
  // completion order, but every derived artifact must be index-ordered to
  // stay byte-identical across thread counts and resume histories.
  StreamingCellAggregator aggregator;
  if (json_out != nullptr)
    *json_out << "{\"sweep\":" << json_quote(sweep_name) << ",\"trials\":[";
  std::string line;
  TrialResult row;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    file.clear();
    file.seekg(scan.row_offset[i]);
    if (!std::getline(file, line) || !trial_from_jsonl(line, row) ||
        row.index != i) {
      result.error = "journal '" + jsonl_path + "' line " +
                     std::to_string(scan.row_line[i]) +
                     ": changed while exporting (row for trial " +
                     std::to_string(i) + " no longer parses)";
      return result;
    }
    aggregator.add(row);
    if (json_out != nullptr) {
      if (i > 0) *json_out << ',';
      append_trial_json(*json_out, row);
    }
  }
  result.cells = aggregator.cells();
  if (json_out != nullptr) {
    *json_out << "],\"cells\":[";
    bool first = true;
    for (const auto& cell : result.cells) {
      if (!first) *json_out << ',';
      first = false;
      append_cell_json(*json_out, cell);
    }
    *json_out << "]}";
  }
  return result;
}

}  // namespace adaptbf
