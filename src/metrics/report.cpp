#include "metrics/report.h"

#include <algorithm>

#include "support/check.h"

namespace adaptbf {

namespace {
/// Mean of chunk [begin, end) of `series` (empty chunk -> 0).
double chunk_mean(const std::vector<double>& series, std::size_t begin,
                  std::size_t end) {
  if (begin >= end || begin >= series.size()) return 0.0;
  end = std::min(end, series.size());
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += series[i];
  return sum / static_cast<double>(end - begin);
}
}  // namespace

Table timeline_table(const ThroughputTimeline& timeline, SimTime horizon,
                     const std::vector<std::pair<JobId, std::string>>& jobs,
                     std::size_t points) {
  ADAPTBF_CHECK(points > 0);
  std::vector<std::string> headers{"t (s)"};
  for (const auto& [id, name] : jobs) headers.push_back(name + " MiB/s");
  headers.push_back("Aggregate MiB/s");
  Table table(std::move(headers));

  std::vector<std::vector<double>> series;
  series.reserve(jobs.size());
  for (const auto& [id, name] : jobs)
    series.push_back(timeline.series_mibps(id, horizon));
  const auto aggregate = timeline.aggregate_mibps(horizon);
  const std::size_t bins = aggregate.size();
  const std::size_t chunk = std::max<std::size_t>(1, bins / points);

  for (std::size_t begin = 0; begin < bins; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, bins);
    const double t_mid = (static_cast<double>(begin + end) / 2.0) *
                         timeline.bin_width().to_seconds();
    std::vector<std::string> row{fmt_fixed(t_mid, 1)};
    for (const auto& s : series)
      row.push_back(fmt_fixed(chunk_mean(s, begin, end), 1));
    row.push_back(fmt_fixed(chunk_mean(aggregate, begin, end), 1));
    table.add_row(std::move(row));
  }
  return table;
}

Table bandwidth_summary_table(
    const std::vector<std::pair<JobId, std::string>>& jobs,
    const std::vector<PolicySummary>& policies) {
  std::vector<std::string> headers{"Job"};
  for (const auto& p : policies) headers.push_back(p.policy + " MiB/s");
  Table table(std::move(headers));
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    std::vector<std::string> row{jobs[j].second};
    for (const auto& p : policies) {
      ADAPTBF_CHECK(p.per_job_mibps.size() == jobs.size());
      row.push_back(fmt_fixed(p.per_job_mibps[j], 1));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> overall{"Overall"};
  for (const auto& p : policies)
    overall.push_back(fmt_fixed(p.aggregate_mibps, 1));
  table.add_row(std::move(overall));
  return table;
}

Table gain_loss_table(const std::vector<std::pair<JobId, std::string>>& jobs,
                      const PolicySummary& subject,
                      const PolicySummary& baseline) {
  ADAPTBF_CHECK(subject.per_job_mibps.size() == jobs.size());
  ADAPTBF_CHECK(baseline.per_job_mibps.size() == jobs.size());
  Table table({"Job", subject.policy + " MiB/s", baseline.policy + " MiB/s",
               "Gain MiB/s", "Gain %"});
  auto add = [&](const std::string& name, double got, double base) {
    const double delta = got - base;
    const double pct = base > 0.0 ? delta / base * 100.0 : 0.0;
    table.add_row({name, fmt_fixed(got, 1), fmt_fixed(base, 1),
                   fmt_signed(delta, 1), fmt_signed(pct, 1)});
  };
  for (std::size_t j = 0; j < jobs.size(); ++j)
    add(jobs[j].second, subject.per_job_mibps[j], baseline.per_job_mibps[j]);
  add("Overall", subject.aggregate_mibps, baseline.aggregate_mibps);
  return table;
}

Table record_trace_table(
    const std::vector<WindowResult>& trace,
    const std::vector<std::pair<JobId, std::string>>& jobs,
    std::size_t points) {
  ADAPTBF_CHECK(points > 0);
  std::vector<std::string> headers{"t (s)"};
  for (const auto& [id, name] : jobs) {
    headers.push_back(name + " record");
    headers.push_back(name + " demand");
  }
  Table table(std::move(headers));
  if (trace.empty()) return table;
  const std::size_t chunk = std::max<std::size_t>(1, trace.size() / points);
  // The record is a running balance that only moves in windows where the
  // job is active; carry the last-known value forward so sampling a window
  // where the job sat out still shows its standing balance (the paper's
  // Fig. 7 plots exactly this running value).
  std::vector<double> last_record(jobs.size(), 0.0);
  for (std::size_t begin = 0; begin < trace.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, trace.size());
    std::vector<double> demand(jobs.size(), 0.0);
    for (std::size_t w = begin; w < end; ++w) {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const JobAllocation* alloc = trace[w].find(jobs[j].first);
        if (alloc == nullptr) continue;
        last_record[j] = alloc->record_after;
        demand[j] += alloc->demand;
      }
    }
    std::vector<std::string> row{
        fmt_fixed(trace[end - 1].when.to_seconds(), 1)};
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      row.push_back(fmt_fixed(last_record[j], 0));
      row.push_back(fmt_fixed(demand[j], 0));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace adaptbf
