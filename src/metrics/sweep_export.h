// Campaign result export: CSV (via support/table.h) and JSON.
//
// Two shapes: the raw per-trial table (one row per seeded run, for
// re-analysis in pandas/R) and the aggregated per-cell table (one row per
// grid cell with mean/stddev/95% CI, the numbers a paper reports). The
// JSON document carries both plus the sweep name.
//
// All formatting is a pure function of the values, so exports are
// byte-identical across runs and worker-thread counts. A max_token_rate
// of -1 denotes "derived from the disk model" (ScenarioSpec convention).
//
// Sources: either an in-memory trial list (the runner's default mode) or
// a JSONL campaign journal (sink mode / resumed campaigns). The journal
// path streams one row at a time and aggregates with StreamingStats in
// trial-index order, so its artifacts are byte-identical to the in-memory
// ones — interrupted, resumed, or neither.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "support/table.h"
#include "sweep/sweep_aggregator.h"
#include "sweep/sweep_runner.h"
#include "sweep/sweep_spec.h"

namespace adaptbf {

/// One row per trial, ordered as given (trial-index order from the runner).
[[nodiscard]] Table sweep_trials_table(std::span<const TrialResult> trials);

/// One row per grid cell with aggregate statistics.
[[nodiscard]] Table sweep_cells_table(std::span<const CellStats> cells);

/// One trial / one cell as a JSON object fragment — the building blocks
/// sweep_to_json and the journal-streaming exporter share.
void append_trial_json(std::ostream& out, const TrialResult& trial);
void append_cell_json(std::ostream& out, const CellStats& cell);

/// Full campaign document:
///   {"sweep": name, "trials": [...], "cells": [...]}
[[nodiscard]] std::string sweep_to_json(const std::string& sweep_name,
                                        std::span<const TrialResult> trials,
                                        std::span<const CellStats> cells);

/// Artifacts derived from a JSONL campaign journal (sweep/trial_sink.h).
struct JsonlExportResult {
  std::string error;  ///< Empty on success.
  std::vector<CellStats> cells;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Re-derives campaign artifacts from a journal: scans/validates it
/// against the expanded `trials` (every trial must be present), streams
/// rows in index order through a StreamingCellAggregator, and — when
/// `json_out` is non-null — writes the same JSON document sweep_to_json
/// produces without ever materializing the trial list. Memory is O(one
/// row) plus the per-cell accumulators.
[[nodiscard]] JsonlExportResult export_campaign_from_jsonl(
    const std::string& jsonl_path, const std::string& sweep_name,
    std::span<const TrialSpec> trials, std::ostream* json_out);

}  // namespace adaptbf
