// Campaign result export: CSV (via support/table.h) and JSON.
//
// Two shapes: the raw per-trial table (one row per seeded run, for
// re-analysis in pandas/R) and the aggregated per-cell table (one row per
// grid cell with mean/stddev/95% CI, the numbers a paper reports). The
// JSON document carries both plus the sweep name.
//
// All formatting is a pure function of the values, so exports are
// byte-identical across runs and worker-thread counts. A max_token_rate
// of -1 denotes "derived from the disk model" (ScenarioSpec convention).
#pragma once

#include <span>
#include <string>

#include "support/table.h"
#include "sweep/sweep_aggregator.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {

/// One row per trial, ordered as given (trial-index order from the runner).
[[nodiscard]] Table sweep_trials_table(std::span<const TrialResult> trials);

/// One row per grid cell with aggregate statistics.
[[nodiscard]] Table sweep_cells_table(std::span<const CellStats> cells);

/// Full campaign document:
///   {"sweep": name, "trials": [...], "cells": [...]}
[[nodiscard]] std::string sweep_to_json(const std::string& sweep_name,
                                        std::span<const TrialResult> trials,
                                        std::span<const CellStats> cells);

}  // namespace adaptbf
