// Per-job throughput timelines, binned like the paper's plots.
//
// The evaluation figures plot per-job aggregated I/O throughput with one
// observation every 100 ms (Fig. 3/5). This collector buckets completed
// RPC bytes into fixed-width bins per job and converts to MiB/s series.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(SimDuration bin_width = SimDuration::millis(100));

  /// Records a completed RPC's bytes into the bin of its completion time.
  void record(JobId job, std::uint32_t bytes, SimTime when);

  /// MiB/s series for one job, length >= bins spanning [0, horizon).
  [[nodiscard]] std::vector<double> series_mibps(JobId job,
                                                 SimTime horizon) const;

  /// Aggregate MiB/s series across all jobs.
  [[nodiscard]] std::vector<double> aggregate_mibps(SimTime horizon) const;

  /// Total bytes recorded for a job (0 if unseen).
  [[nodiscard]] std::uint64_t total_bytes(JobId job) const;
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Mean MiB/s for a job over [0, horizon).
  [[nodiscard]] double mean_mibps(JobId job, SimTime horizon) const;
  [[nodiscard]] double aggregate_mean_mibps(SimTime horizon) const;

  [[nodiscard]] std::vector<JobId> jobs() const;
  [[nodiscard]] SimDuration bin_width() const { return bin_width_; }

 private:
  [[nodiscard]] std::size_t bin_index(SimTime when) const;

  // Ordered maps: aggregate_mibps() sums doubles across jobs, so the
  // fold order must not depend on hash layout (lint: unordered-output).
  SimDuration bin_width_;
  std::map<JobId, std::vector<std::uint64_t>> bytes_per_bin_;
  std::map<JobId, std::uint64_t> totals_;
};

}  // namespace adaptbf
