#include "metrics/throughput_timeline.h"

#include "support/check.h"
#include "support/units.h"

namespace adaptbf {

ThroughputTimeline::ThroughputTimeline(SimDuration bin_width)
    : bin_width_(bin_width) {
  ADAPTBF_CHECK(bin_width > SimDuration(0));
}

std::size_t ThroughputTimeline::bin_index(SimTime when) const {
  ADAPTBF_CHECK(when >= SimTime::zero());
  return static_cast<std::size_t>(when.ns() / bin_width_.ns());
}

void ThroughputTimeline::record(JobId job, std::uint32_t bytes, SimTime when) {
  auto& bins = bytes_per_bin_[job];
  const std::size_t index = bin_index(when);
  if (bins.size() <= index) bins.resize(index + 1, 0);
  bins[index] += bytes;
  totals_[job] += bytes;
}

std::vector<double> ThroughputTimeline::series_mibps(JobId job,
                                                     SimTime horizon) const {
  const std::size_t bins =
      static_cast<std::size_t>(horizon.ns() / bin_width_.ns()) +
      (horizon.ns() % bin_width_.ns() != 0 ? 1u : 0u);
  std::vector<double> series(bins, 0.0);
  auto it = bytes_per_bin_.find(job);
  if (it == bytes_per_bin_.end()) return series;
  const double bin_sec = bin_width_.to_seconds();
  for (std::size_t i = 0; i < bins && i < it->second.size(); ++i)
    series[i] = to_mib(it->second[i]) / bin_sec;
  return series;
}

std::vector<double> ThroughputTimeline::aggregate_mibps(SimTime horizon) const {
  const std::size_t bins =
      static_cast<std::size_t>(horizon.ns() / bin_width_.ns()) +
      (horizon.ns() % bin_width_.ns() != 0 ? 1u : 0u);
  std::vector<double> series(bins, 0.0);
  const double bin_sec = bin_width_.to_seconds();
  for (const auto& [job, job_bins] : bytes_per_bin_)
    for (std::size_t i = 0; i < bins && i < job_bins.size(); ++i)
      series[i] += to_mib(job_bins[i]) / bin_sec;
  return series;
}

std::uint64_t ThroughputTimeline::total_bytes(JobId job) const {
  auto it = totals_.find(job);
  return it == totals_.end() ? 0 : it->second;
}

std::uint64_t ThroughputTimeline::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [job, bytes] : totals_) total += bytes;
  return total;
}

double ThroughputTimeline::mean_mibps(JobId job, SimTime horizon) const {
  ADAPTBF_CHECK(horizon > SimTime::zero());
  return to_mib(total_bytes(job)) / horizon.to_seconds();
}

double ThroughputTimeline::aggregate_mean_mibps(SimTime horizon) const {
  ADAPTBF_CHECK(horizon > SimTime::zero());
  return to_mib(total_bytes()) / horizon.to_seconds();
}

std::vector<JobId> ThroughputTimeline::jobs() const {
  std::vector<JobId> ids;
  ids.reserve(bytes_per_bin_.size());
  for (const auto& [job, bins] : bytes_per_bin_) ids.push_back(job);
  return ids;  // std::map keeps ids sorted already.
}

}  // namespace adaptbf
