#include "metrics/latency_stats.h"

#include "support/stats.h"

namespace adaptbf {

void LatencyStats::record(const RpcCompletion& completion) {
  auto& samples = samples_[completion.rpc.job];
  samples.total_ms.push_back(completion.latency().to_seconds() * 1e3);
  samples.queue_ms.push_back(completion.queue_delay().to_seconds() * 1e3);
}

LatencySummary LatencyStats::summarize(const std::vector<double>& values) {
  LatencySummary summary;
  if (values.empty()) return summary;
  summary.samples = values.size();
  StreamingStats stats;
  for (double v : values) stats.add(v);
  summary.mean_ms = stats.mean();
  summary.max_ms = stats.max();
  summary.p50_ms = percentile(values, 50.0);
  summary.p95_ms = percentile(values, 95.0);
  summary.p99_ms = percentile(values, 99.0);
  return summary;
}

LatencySummary LatencyStats::total_latency(JobId job) const {
  auto it = samples_.find(job);
  return it == samples_.end() ? LatencySummary{}
                              : summarize(it->second.total_ms);
}

LatencySummary LatencyStats::queue_delay(JobId job) const {
  auto it = samples_.find(job);
  return it == samples_.end() ? LatencySummary{}
                              : summarize(it->second.queue_ms);
}

LatencySummary LatencyStats::total_latency_all() const {
  std::vector<double> all;
  for (const auto& [job, samples] : samples_)
    all.insert(all.end(), samples.total_ms.begin(), samples.total_ms.end());
  return summarize(all);
}

std::vector<JobId> LatencyStats::jobs() const {
  std::vector<JobId> ids;
  ids.reserve(samples_.size());
  for (const auto& [job, samples] : samples_) ids.push_back(job);
  return ids;  // std::map keeps ids sorted already.
}

std::size_t LatencyStats::samples(JobId job) const {
  auto it = samples_.find(job);
  return it == samples_.end() ? 0 : it->second.total_ms.size();
}

}  // namespace adaptbf
