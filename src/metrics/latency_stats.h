// Per-job RPC latency collection.
//
// Burst-sensitive experiments (§IV-E) are better judged by how fast a burst
// clears than by mean bandwidth: a bursty job emitting 96 RPCs every few
// seconds shows the same MiB/s under any policy that eventually serves it,
// but its burst-completion latency differs wildly. This collector keeps
// per-job queue-delay and total-latency samples and reports percentiles.
#pragma once

#include <map>
#include <vector>

#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

struct LatencySummary {
  std::size_t samples = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class LatencyStats {
 public:
  /// Records one completed RPC.
  void record(const RpcCompletion& completion);

  /// Percentile summary of total latency (issue -> completion) for a job.
  /// Zeroed summary if the job has no samples.
  [[nodiscard]] LatencySummary total_latency(JobId job) const;

  /// Percentile summary of queueing delay (issue -> service start).
  [[nodiscard]] LatencySummary queue_delay(JobId job) const;

  /// Summary across all jobs.
  [[nodiscard]] LatencySummary total_latency_all() const;

  [[nodiscard]] std::vector<JobId> jobs() const;
  [[nodiscard]] std::size_t samples(JobId job) const;

 private:
  struct Samples {
    std::vector<double> total_ms;
    std::vector<double> queue_ms;
  };
  static LatencySummary summarize(const std::vector<double>& values);

  // Ordered map: total_latency_all() folds samples across jobs and
  // floating-point accumulation is rounding-order-sensitive — iteration
  // order must not depend on hash layout (lint: unordered-output).
  std::map<JobId, Samples> samples_;
};

}  // namespace adaptbf
