// Report rendering shared by the figure-reproduction benches.
//
// Converts timelines/summaries into the same row/series shapes the paper's
// figures report: throughput-vs-time series (Figs. 3/5), per-job bandwidth
// bars (Figs. 4a/6a/8a), gain/loss vs a baseline (Figs. 4b/6b/8b), and the
// record/demand traces of Fig. 7.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "adaptbf/allocation_types.h"
#include "metrics/throughput_timeline.h"
#include "support/table.h"

namespace adaptbf {

/// Downsamples a 100 ms series into `points` rows of (time, value) by
/// averaging within each chunk — a printable stand-in for a plot line.
[[nodiscard]] Table timeline_table(
    const ThroughputTimeline& timeline, SimTime horizon,
    const std::vector<std::pair<JobId, std::string>>& jobs,
    std::size_t points = 30);

/// Per-job mean bandwidth plus the aggregate (Fig. 4a shape). One column
/// per labelled policy; rows are jobs + "Overall".
struct PolicySummary {
  std::string policy;                       ///< e.g. "No BW".
  std::vector<double> per_job_mibps;        ///< Matches the jobs argument.
  double aggregate_mibps = 0.0;
};
[[nodiscard]] Table bandwidth_summary_table(
    const std::vector<std::pair<JobId, std::string>>& jobs,
    const std::vector<PolicySummary>& policies);

/// Gain/loss of `subject` relative to `baseline` per job and overall
/// (Fig. 4b shape). Values in MiB/s and percent.
[[nodiscard]] Table gain_loss_table(
    const std::vector<std::pair<JobId, std::string>>& jobs,
    const PolicySummary& subject, const PolicySummary& baseline);

/// Fig. 7 shape: per window, each job's record and demand.
[[nodiscard]] Table record_trace_table(
    const std::vector<WindowResult>& trace,
    const std::vector<std::pair<JobId, std::string>>& jobs,
    std::size_t points = 30);

}  // namespace adaptbf
