// Minimal TCP transport for the campaign dispatch layer.
//
// A deliberately thin wrapper over POSIX stream sockets: connect, listen,
// accept, send-all, recv. No TLS, no name-resolution niceties beyond
// getaddrinfo, no portability shims beyond what the build already targets
// (POSIX). Errors surface as strings in result structs — the dispatch
// layer treats every network failure the same way (drop the peer, re-lease
// its work), so rich error taxonomies would go unused.
//
// Framing, protocol versioning, and message semantics live one layer up
// in net/frame.h and sweep/dispatch.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adaptbf {

/// One connected stream socket. Owns the file descriptor: movable, not
/// copyable; the destructor closes. A default-constructed socket is
/// invalid (valid() == false) and every operation on it fails.
class TcpSocket {
 public:
  TcpSocket() = default;
  /// Adopts an already-open descriptor (accept(), tests).
  explicit TcpSocket(int fd) : fd_(fd) {}
  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  ~TcpSocket();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Raw descriptor for poll(); -1 when invalid. Ownership stays here.
  [[nodiscard]] int fd() const { return fd_; }

  /// Blocks until all `n` bytes are written (handles short writes and
  /// EINTR). False on any error, including a closed peer; SIGPIPE is
  /// suppressed (MSG_NOSIGNAL), the caller sees `false`, not a signal.
  [[nodiscard]] bool send_all(const void* data, std::size_t n);

  /// One recv(2): up to `n` bytes. Returns the byte count, 0 on orderly
  /// peer close, -1 on error. Blocks unless the socket is non-blocking
  /// (then -1/EAGAIN maps to -1; the poll()-driven caller distinguishes
  /// by polling first).
  [[nodiscard]] long recv_some(void* data, std::size_t n);

  /// Blocks until exactly `n` bytes arrive. False on EOF or error —
  /// callers that need "clean EOF" vs "torn read" use recv_some.
  [[nodiscard]] bool recv_all(void* data, std::size_t n);

  /// Closes now (idempotent). Used to simulate abrupt worker death in
  /// tests and to evict silent workers: the peer sees EOF/ECONNRESET.
  void close();

  /// Half-close: no more sends, receiving still possible. The graceful
  /// goodbye — the peer reads everything already sent, THEN sees EOF. A
  /// full close() with unread peer data risks an RST that discards our
  /// final frames from the peer's receive queue.
  void shutdown_write();

  /// Connects to `host:port` (numeric or resolvable host). On failure the
  /// returned socket is invalid and `error` says why.
  struct ConnectResult;
  [[nodiscard]] static ConnectResult connect_to(const std::string& host,
                                                std::uint16_t port);

 private:
  int fd_ = -1;
};

struct TcpSocket::ConnectResult {
  TcpSocket socket;
  std::string error;
  [[nodiscard]] bool ok() const { return socket.valid(); }
};

/// A listening TCP socket bound to `port` on all interfaces (port 0 picks
/// an ephemeral port — tests bind 0 and read port() back). Movable, not
/// copyable; the destructor closes.
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The actually bound port (resolves a requested port of 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts one pending connection, or an invalid socket when the queue
  /// is empty (callers poll() on fd() first) or on error.
  [[nodiscard]] TcpSocket accept_one();

  void close();

  /// Binds (SO_REUSEADDR) and listens. On failure the listener is invalid
  /// and `error` says why (port in use, privileged port, ...).
  struct ListenResult;
  [[nodiscard]] static ListenResult listen_on(std::uint16_t port);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

struct TcpListener::ListenResult {
  TcpListener listener;
  std::string error;
  [[nodiscard]] bool ok() const { return listener.valid(); }
};

}  // namespace adaptbf
