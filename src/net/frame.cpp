#include "net/frame.h"

#include <cstring>

#include "net/socket.h"

namespace adaptbf {

namespace {

std::uint32_t read_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

void write_u32le(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

/// Validates a complete 8-byte header. Returns empty on success, else the
/// violation (the caller reports it and drops the connection).
std::string check_header(const char* header, std::uint32_t& length) {
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0)
    return "bad frame magic (not a dispatch connection, or stream "
           "desynchronized)";
  length = read_u32le(header + 4);
  if (length > kMaxFramePayload)
    return "frame length " + std::to_string(length) + " exceeds the " +
           std::to_string(kMaxFramePayload) + "-byte cap";
  return {};
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return {};
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  char len[4];
  write_u32le(len, static_cast<std::uint32_t>(payload.size()));
  out.append(len, sizeof(len));
  out.append(payload);
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (bad_) return;  // The stream is already lost; don't grow the buffer.
  buffer_.append(data, n);
}

FrameReader::Status FrameReader::next(std::string& payload,
                                      std::string& error) {
  if (bad_) {
    error = bad_reason_;
    return Status::kBad;
  }
  if (buffer_.size() < kFrameHeaderSize) return Status::kNeedMore;
  std::uint32_t length = 0;
  bad_reason_ = check_header(buffer_.data(), length);
  if (!bad_reason_.empty()) {
    bad_ = true;
    error = bad_reason_;
    return Status::kBad;
  }
  if (buffer_.size() < kFrameHeaderSize + length) return Status::kNeedMore;
  payload.assign(buffer_, kFrameHeaderSize, length);
  buffer_.erase(0, kFrameHeaderSize + length);
  return Status::kFrame;
}

bool read_frame(TcpSocket& socket, std::string& payload, std::string& error) {
  error.clear();
  char header[kFrameHeaderSize];
  // Distinguish clean EOF (peer closed between frames: empty error) from
  // a torn header (mid-frame close or I/O error).
  const long first = socket.recv_some(header, sizeof(header));
  if (first == 0) return false;
  if (first < 0) {
    error = "recv failed";
    return false;
  }
  if (static_cast<std::size_t>(first) < sizeof(header) &&
      !socket.recv_all(header + first, sizeof(header) - first)) {
    error = "connection closed mid-frame (truncated header)";
    return false;
  }
  std::uint32_t length = 0;
  error = check_header(header, length);
  if (!error.empty()) return false;
  payload.resize(length);
  if (length > 0 && !socket.recv_all(payload.data(), length)) {
    error = "connection closed mid-frame (truncated payload)";
    return false;
  }
  return true;
}

bool write_frame(TcpSocket& socket, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  if (frame.empty()) return false;
  return socket.send_all(frame.data(), frame.size());
}

}  // namespace adaptbf
