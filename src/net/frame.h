// Length-prefixed message framing for the dispatch protocol.
//
// Every message on a dispatch connection is one frame:
//
//   bytes 0-3   magic "ATBF" (0x41 0x54 0x42 0x46)
//   bytes 4-7   payload length, unsigned 32-bit little-endian
//   bytes 8-    payload: one JSON object (sweep/dispatch.h messages)
//
// The magic heads every frame — not just the connection — so a
// desynchronized or hostile stream is detected at the next frame boundary
// instead of being reinterpreted as a length. Payloads above
// kMaxFramePayload are rejected before any allocation: a corrupt length
// must not become a multi-gigabyte buffer. Protocol *versioning* is not
// framing's job; the hello message carries the version (dispatch.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace adaptbf {

/// Frame header bytes: "ATBF" + u32le length.
inline constexpr std::size_t kFrameHeaderSize = 8;
inline constexpr char kFrameMagic[4] = {'A', 'T', 'B', 'F'};

/// Upper bound on one frame's payload. Generous for protocol messages (a
/// result row with thousands of jobs is ~hundreds of KB) yet small enough
/// that a garbage length fails fast.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

/// Wraps `payload` in a frame header. Requires
/// payload.size() <= kMaxFramePayload (checked; returns "" on violation —
/// an empty string is never a valid frame, frames are >= 8 bytes).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame extractor for poll()-driven readers.
///
/// Feed raw received bytes in any fragmentation; next() yields complete
/// payloads in order. Once next() reports kBad the stream is
/// unrecoverable (framing lost) and the connection must be dropped —
/// every later next() keeps returning kBad.
class FrameReader {
 public:
  enum class Status {
    kFrame,     ///< `payload` holds one complete message.
    kNeedMore,  ///< No complete frame buffered yet.
    kBad,       ///< Bad magic or oversized length; drop the connection.
  };

  /// Appends raw bytes from the socket.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete frame into `payload`. On kBad, `error`
  /// names the violation (for the eviction log line).
  [[nodiscard]] Status next(std::string& payload, std::string& error);

  /// Bytes buffered but not yet returned (tests; truncation detection).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool bad_ = false;
  std::string bad_reason_;
};

/// Blocking single-frame read for the worker side: exactly one frame off
/// `recv_all`-style I/O. Returns false on EOF, I/O error, bad magic, or
/// oversized length; `error` says which (empty error + false = clean EOF
/// before any byte, i.e. the peer closed between frames).
class TcpSocket;
[[nodiscard]] bool read_frame(TcpSocket& socket, std::string& payload,
                              std::string& error);

/// Blocking single-frame write: encode + send_all. False on any I/O error.
[[nodiscard]] bool write_frame(TcpSocket& socket, std::string_view payload);

}  // namespace adaptbf
