#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace adaptbf {

namespace {

std::string errno_string(const char* what) {
  // strerror_r, not strerror: sockets are used from worker and heartbeat
  // threads, and strerror's shared buffer is not thread-safe. This is the
  // GNU variant (returns the message pointer, may ignore buf).
  char buf[128];
  return std::string(what) + ": " + strerror_r(errno, buf, sizeof(buf));
}

}  // namespace

// ------------------------------------------------------------- TcpSocket

TcpSocket::TcpSocket(TcpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpSocket::~TcpSocket() { close(); }

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpSocket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool TcpSocket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

long TcpSocket::recv_some(void* data, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, data, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

bool TcpSocket::recv_all(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const long got = recv_some(p, n);
    if (got <= 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

TcpSocket::ConnectResult TcpSocket::connect_to(const std::string& host,
                                               std::uint16_t port) {
  ConnectResult result;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &list);
  if (rc != 0) {
    result.error = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    return result;
  }
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Leases and heartbeats are small messages; latency beats batching.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      result.socket = TcpSocket(fd);
      break;
    }
    result.error = errno_string("connect");
    ::close(fd);
  }
  ::freeaddrinfo(list);
  if (!result.ok() && result.error.empty())
    result.error = "no usable address for '" + host + "'";
  if (result.ok()) result.error.clear();
  return result;
}

// ----------------------------------------------------------- TcpListener

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpSocket TcpListener::accept_one() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    if (fd < 0) return {};
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpSocket(fd);
  }
}

TcpListener::ListenResult TcpListener::listen_on(std::uint16_t port) {
  ListenResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = errno_string("socket");
    return result;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    result.error = errno_string("bind");
    ::close(fd);
    return result;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    result.error = errno_string("listen");
    ::close(fd);
    return result;
  }
  // Read the bound port back so a requested port of 0 (tests) reports the
  // kernel's ephemeral pick.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    result.error = errno_string("getsockname");
    ::close(fd);
    return result;
  }
  result.listener.fd_ = fd;
  result.listener.port_ = ntohs(bound.sin_port);
  return result;
}

}  // namespace adaptbf
