#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "support/check.h"
#include "support/json.h"

namespace adaptbf {

// -------------------------------------------------------------- histogram

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    ADAPTBF_CHECK_MSG(bounds_[i] < bounds_[i + 1],
                      "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; one past the end is +Inf.
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  // upper_bound is strict (<); Prometheus buckets are `le`, so a value
  // exactly on a bound belongs in that bound's bucket.
  const std::size_t bucket =
      (i > 0 && bounds_[i - 1] == v) ? i - 1 : i;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::span<const double> trial_runtime_bounds_s() {
  static const double kBounds[] = {0.001, 0.005, 0.01, 0.025, 0.05, 0.1,
                                   0.25,  0.5,   1.0,  2.5,   5.0,  10.0,
                                   30.0,  60.0,  120.0, 300.0};
  return kBounds;
}

// --------------------------------------------------------------- snapshot

namespace {

bool sample_key_less(const MetricSample& a, const MetricSample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          std::string_view labels) const {
  for (const MetricSample& sample : samples)
    if (sample.name == name && sample.labels == labels) return &sample;
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricSample& theirs : other.samples) {
    auto it = std::lower_bound(samples.begin(), samples.end(), theirs,
                               sample_key_less);
    if (it == samples.end() || it->name != theirs.name ||
        it->labels != theirs.labels) {
      samples.insert(it, theirs);
      continue;
    }
    MetricSample& ours = *it;
    if (ours.kind != theirs.kind)
      throw std::runtime_error("metric '" + ours.name +
                               "' merged across different kinds");
    switch (ours.kind) {
      case MetricSample::Kind::kCounter:
        ours.counter += theirs.counter;
        break;
      case MetricSample::Kind::kGauge:
        ours.gauge = theirs.gauge;  // Point-in-time: last write wins.
        break;
      case MetricSample::Kind::kHistogram:
        if (ours.bounds != theirs.bounds)
          throw std::runtime_error("histogram '" + ours.name +
                                   "' merged across different bucket bounds");
        for (std::size_t i = 0; i < ours.buckets.size(); ++i)
          ours.buckets[i] += theirs.buckets[i];
        ours.count += theirs.count;
        ours.sum += theirs.sum;
        break;
    }
  }
}

double histogram_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricSample::Kind::kHistogram || sample.count == 0 ||
      !(q >= 0.0 && q <= 1.0))
    return std::numeric_limits<double>::quiet_NaN();
  const double rank = q * static_cast<double>(sample.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += sample.buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == sample.bounds.size())  // +Inf bucket: clamp, don't extrapolate.
      return sample.bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                                   : sample.bounds.back();
    const double lo = i == 0 ? 0.0 : sample.bounds[i - 1];
    const double hi = sample.bounds[i];
    const std::uint64_t in_bucket = sample.buckets[i];
    // Reachable only at rank == 0 (q = 0 with empty leading buckets):
    // the quantile lives in the first bucket holding mass, not at this
    // empty bucket's upper bound.
    if (in_bucket == 0) continue;
    return lo + (hi - lo) * (rank - static_cast<double>(before)) /
                    static_cast<double>(in_bucket);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

namespace {

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "?";
}

/// `name{labels}` or bare `name`; `extra` splices an extra label (the
/// histogram `le`) after the caller's labels.
void append_series(std::string& out, const std::string& name,
                   const std::string& labels, const std::string& extra) {
  out += name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
}

std::string prom_bound(double bound) {
  // Integral bounds print bare ("5" not "5.0"): le values are string
  // labels, and the canonical Prometheus rendering is the shortest one.
  return json_num(bound);
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_typed;  // One # TYPE line per metric name.
  for (const MetricSample& sample : samples) {
    if (sample.name != last_typed) {
      out += "# TYPE ";
      out += sample.name;
      out += ' ';
      out += kind_name(sample.kind);
      out += '\n';
      last_typed = sample.name;
    }
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        append_series(out, sample.name, sample.labels, "");
        out += ' ';
        out += std::to_string(sample.counter);
        out += '\n';
        break;
      case MetricSample::Kind::kGauge:
        append_series(out, sample.name, sample.labels, "");
        out += ' ';
        out += json_num(sample.gauge);
        out += '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          cumulative += sample.buckets[i];
          const std::string le =
              i == sample.bounds.size()
                  ? std::string("le=\"+Inf\"")
                  : "le=\"" + prom_bound(sample.bounds[i]) + "\"";
          append_series(out, sample.name + "_bucket", sample.labels, le);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        append_series(out, sample.name + "_sum", sample.labels, "");
        out += ' ';
        out += json_num(sample.sum);
        out += '\n';
        append_series(out, sample.name + "_count", sample.labels, "");
        out += ' ';
        out += std::to_string(sample.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"adaptbf_metrics\":1,\"metrics\":[";
  bool first = true;
  for (const MetricSample& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    out += json_quote(sample.name);
    out += ",\"labels\":";
    out += json_quote(sample.labels);
    out += ",\"type\":\"";
    out += kind_name(sample.kind);
    out += '"';
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out += ",\"value\":";
        out += std::to_string(sample.counter);
        break;
      case MetricSample::Kind::kGauge:
        out += ",\"value\":";
        out += json_num_exact(sample.gauge);
        break;
      case MetricSample::Kind::kHistogram: {
        out += ",\"count\":";
        out += std::to_string(sample.count);
        out += ",\"sum\":";
        out += json_num_exact(sample.sum);
        out += ",\"bounds\":[";
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          if (i > 0) out += ',';
          out += json_num_exact(sample.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < sample.buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(sample.buckets[i]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool metrics_from_json(std::string_view text, MetricsSnapshot& out) {
  JsonCursor c(text);
  out = MetricsSnapshot{};
  if (!json_lit(c, "{\"adaptbf_metrics\":1,\"metrics\":[")) return false;
  bool first = true;
  while (!json_lit(c, "]")) {
    if (!first && !json_lit(c, ",")) return false;
    first = false;
    MetricSample sample;
    std::string type;
    if (!json_lit(c, "{\"name\":") || !json_parse_string(c, sample.name))
      return false;
    if (!json_lit(c, ",\"labels\":") || !json_parse_string(c, sample.labels))
      return false;
    if (!json_lit(c, ",\"type\":") || !json_parse_string(c, type))
      return false;
    if (type == "counter") {
      sample.kind = MetricSample::Kind::kCounter;
      if (!json_lit(c, ",\"value\":") || !json_parse_u64(c, sample.counter))
        return false;
    } else if (type == "gauge") {
      sample.kind = MetricSample::Kind::kGauge;
      if (!json_lit(c, ",\"value\":") ||
          !json_parse_double_or_null(c, sample.gauge))
        return false;
    } else if (type == "histogram") {
      sample.kind = MetricSample::Kind::kHistogram;
      if (!json_lit(c, ",\"count\":") || !json_parse_u64(c, sample.count))
        return false;
      if (!json_lit(c, ",\"sum\":") ||
          !json_parse_double_or_null(c, sample.sum))
        return false;
      if (!json_lit(c, ",\"bounds\":[")) return false;
      bool first_bound = true;
      while (!json_lit(c, "]")) {
        if (!first_bound && !json_lit(c, ",")) return false;
        first_bound = false;
        double bound = 0.0;
        if (!json_parse_double_or_null(c, bound)) return false;
        sample.bounds.push_back(bound);
      }
      if (!json_lit(c, ",\"buckets\":[")) return false;
      bool first_bucket = true;
      while (!json_lit(c, "]")) {
        if (!first_bucket && !json_lit(c, ",")) return false;
        first_bucket = false;
        std::uint64_t n = 0;
        if (!json_parse_u64(c, n)) return false;
        sample.buckets.push_back(n);
      }
      if (sample.buckets.size() != sample.bounds.size() + 1) return false;
    } else {
      return false;
    }
    if (!json_lit(c, "}")) return false;
    out.samples.push_back(std::move(sample));
  }
  if (!json_lit(c, "}")) return false;
  return c.done();
}

// --------------------------------------------------------------- registry

struct MetricRegistry::Entry {
  std::string name;
  std::string labels;
  MetricSample::Kind kind;
  // Exactly one is set, matching `kind`.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

Counter& MetricRegistry::counter(std::string_view name,
                                 std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_)
    if (entry->name == name && entry->labels == labels) {
      ADAPTBF_CHECK_MSG(entry->kind == MetricSample::Kind::kCounter,
                        "metric re-registered with a different kind");
      return *entry->counter;
    }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = MetricSample::Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter& out = *entry->counter;
  entries_.push_back(std::move(entry));
  return out;
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_)
    if (entry->name == name && entry->labels == labels) {
      ADAPTBF_CHECK_MSG(entry->kind == MetricSample::Kind::kGauge,
                        "metric re-registered with a different kind");
      return *entry->gauge;
    }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = MetricSample::Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge& out = *entry->gauge;
  entries_.push_back(std::move(entry));
  return out;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> upper_bounds,
                                     std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_)
    if (entry->name == name && entry->labels == labels) {
      ADAPTBF_CHECK_MSG(entry->kind == MetricSample::Kind::kHistogram,
                        "metric re-registered with a different kind");
      return *entry->histogram;
    }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->kind = MetricSample::Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(upper_bounds);
  Histogram& out = *entry->histogram;
  entries_.push_back(std::move(entry));
  return out;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.labels = entry->labels;
    sample.kind = entry->kind;
    switch (entry->kind) {
      case MetricSample::Kind::kCounter:
        sample.counter = entry->counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge = entry->gauge->value();
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        sample.bounds = h.bounds();
        sample.buckets.resize(sample.bounds.size() + 1);
        for (std::size_t i = 0; i < sample.buckets.size(); ++i)
          sample.buckets[i] = h.bucket_count(i);
        sample.count = h.count();
        sample.sum = h.sum();
        break;
      }
    }
    out.samples.push_back(std::move(sample));
  }
  std::sort(out.samples.begin(), out.samples.end(), sample_key_less);
  return out;
}

}  // namespace adaptbf
