// Live telemetry: a thread-safe registry of named counters, gauges, and
// fixed-bucket histograms, cheap enough for worker loops and I/O paths.
//
// Write path: one relaxed atomic RMW per update — no locks, no
// allocation — so instrumenting SweepRunner workers or the journal sink
// costs nanoseconds. The registry mutex guards only metric CREATION
// (name -> slot); callers look a metric up once and keep the returned
// reference, which stays valid for the registry's lifetime.
//
// The simulator event loop is deliberately NOT instrumented: even a
// relaxed atomic per event would tax the 13M events/s core. The sim
// contributes through its existing EventQueue::queue_stats() snapshot and
// the per-trial counters (events_dispatched) that SweepRunner records
// AFTER each trial finishes. bench/sim_core_bench's floor check in CI
// enforces this stays true.
//
// Rendering: snapshot() captures every metric into a plain value struct,
// sorted by (name, labels) so output is deterministic; the snapshot
// renders to Prometheus text exposition or to the house no-dependency
// JSON dialect (support/json.h), and snapshots MERGE — counters and
// histogram buckets add, gauges last-write-wins — so a coordinator can
// fold per-worker series into fleet totals. Merging is associative and
// commutative over counters/histograms (tests/obs/metrics_test.cpp
// proves it), which is what makes fleet aggregation order-independent.
//
// Naming scheme (docs/observability.md): adaptbf_<subsystem>_<what>[_total],
// seconds/bytes as base units, `_total` only on monotonic counters.
// Labels are a pre-rendered Prometheus label body, e.g. `worker="3"`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace adaptbf {

/// Monotonic event count. Relaxed atomics: totals are exact, ordering
/// between metrics is not promised (snapshots are not cross-metric
/// consistent cuts, same stance as every scrape-based system).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (fleet size, queue depth, rows/s). set() overwrites;
/// add() nudges — both relaxed.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram, Prometheus-style: cumulative-at-render buckets
/// over caller-chosen upper bounds plus an implicit +Inf bucket; observe()
/// is a binary search plus three relaxed RMWs. Bounds must be strictly
/// increasing (CHECKed at creation) and cannot change afterwards — merges
/// require identical bounds.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (NOT cumulative) count; index bounds_.size() is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponentially weighted moving average — the "recent per-trial runtime"
/// a worker attaches to its heartbeats. Single-writer observe(),
/// any-thread value(); seeds on the first observation instead of decaying
/// up from zero.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void observe(double v) {
    const double old = v_.load(std::memory_order_relaxed);
    const double next = seeded_.load(std::memory_order_relaxed)
                            ? old + alpha_ * (v - old)
                            : v;
    seeded_.store(true, std::memory_order_relaxed);
    v_.store(next, std::memory_order_relaxed);
  }
  /// 0.0 until the first observation.
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  double alpha_;
  std::atomic<bool> seeded_{false};
  std::atomic<double> v_{0.0};
};

/// Default histogram bounds for per-trial runtimes (seconds): covers
/// microbenchmark-sized trials through multi-minute paper scenarios.
[[nodiscard]] std::span<const double> trial_runtime_bounds_s();

// --------------------------------------------------------------- snapshot

struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string labels;  ///< Prometheus label body (`worker="3"`) or empty.
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;  ///< kCounter
  double gauge = 0.0;         ///< kGauge
  // kHistogram: per-bucket counts aligned with bounds; +Inf appended.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of a registry, sorted by (name, labels) so renders
/// and merges are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Folds `other` in: counters and histogram buckets add (histogram
  /// bounds must match — mismatched series throw), gauges take `other`'s
  /// value (last write wins). Associative + commutative over
  /// counters/histograms.
  void merge(const MetricsSnapshot& other);

  /// Prometheus text exposition (# TYPE lines, _bucket/_sum/_count).
  [[nodiscard]] std::string to_prometheus() const;
  /// House JSON dialect: {"adaptbf_metrics":1,"metrics":[...]}.
  [[nodiscard]] std::string to_json() const;

  /// Lookup helpers for tests and aggregators; nullptr when absent.
  [[nodiscard]] const MetricSample* find(std::string_view name,
                                         std::string_view labels = "") const;
};

/// Interpolated quantile (q in [0,1]) from a histogram sample, Prometheus
/// histogram_quantile-style: linear within the winning bucket, the +Inf
/// bucket clamps to the highest finite bound. NaN for an empty histogram.
[[nodiscard]] double histogram_quantile(const MetricSample& sample, double q);

/// Strict parse of a to_json() document back into samples (sorted order
/// preserved). Powers the stats wire path tests and future scrapers.
[[nodiscard]] bool metrics_from_json(std::string_view text,
                                     MetricsSnapshot& out);

// --------------------------------------------------------------- registry

/// Named metric store. create-or-get is mutex-guarded and returns a
/// reference that is stable for the registry's lifetime; hot paths hold
/// the reference, never the name.
class MetricRegistry {
 public:
  // Out of line: Entry is incomplete here.
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view labels = "");
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             std::string_view labels = "");
  /// `upper_bounds` is consulted only on first creation; later lookups of
  /// the same (name, labels) return the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_bounds,
                                     std::string_view labels = "");

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< Registration order.
};

}  // namespace adaptbf
