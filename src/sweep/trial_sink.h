// Durable per-trial result streaming for large campaigns.
//
// A TrialSink consumes finished TrialResults one at a time; the runner's
// sink mode appends each trial as it completes and then releases the
// per-trial payloads, so campaign memory no longer scales with the number
// of completed trials. The JSONL implementation is the journal that makes
// campaigns resumable:
//
//   line 1   campaign header: sweep name, expanded-grid hash, trial count
//   line 2+  one self-describing JSON object per completed trial
//
// Rows are appended in completion order (worker-dependent) and carry the
// trial index, so every derived artifact orders rows by index and is
// byte-identical for any thread count, interrupted or not. Doubles are
// written with round-trip precision (support/json.h) — reloading a row
// reconstructs the exact bits the simulator produced. Appends are batched
// and fsync'd, so a crash loses at most the current batch plus (at worst)
// one partial line, which the resume scanner detects and truncates.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "sweep/shard.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {

/// Consumer of completed trials. The runner serializes calls under its
/// progress mutex, so implementations need not be thread-safe. append()
/// and flush() may throw on I/O failure; the runner's exception barrier
/// stops the campaign and rethrows on the caller thread.
class TrialSink {
 public:
  virtual ~TrialSink() = default;
  virtual void append(const TrialResult& result) = 0;
  virtual void flush() = 0;
};

/// First line of a campaign journal. The grid hash (resume.h) fingerprints
/// the expanded trial list so a journal is never resumed against a
/// different campaign. `trials` is always the FULL grid size — a shard
/// journal declares the whole campaign it is a slice of, plus its slice.
struct CampaignHeader {
  std::string sweep;
  std::uint64_t grid_hash = 0;
  std::uint64_t trials = 0;
  /// Which slice this journal holds. The unsharded {0, 1} serializes to
  /// the exact PR 2 header bytes, so pre-shard journals parse unchanged
  /// and merged journals are indistinguishable from single-process ones.
  ShardRef shard;
  /// Search-journal stamp (search/journal.h). 0 = a plain campaign
  /// journal, serialized to the exact pre-search header bytes. A search
  /// journal stamps the step-row format generation (currently 1) plus
  /// the SearchSpec fingerprint, and interleaves `search_step` rows with
  /// ordinary trial rows; the plain campaign scanner refuses it by name
  /// (its trial subset is probe-driven, not the full grid).
  std::uint32_t search_step = 0;
  std::uint64_t search_hash = 0;
};

/// Header line serialization (no trailing newline).
[[nodiscard]] std::string campaign_header_line(const CampaignHeader& header);
[[nodiscard]] bool parse_campaign_header(std::string_view line,
                                         CampaignHeader& out);

/// One-trial row serialization (no trailing newline). Round-trip exact:
/// trial_from_jsonl(trial_to_jsonl(t)) reproduces every field bit for bit.
[[nodiscard]] std::string trial_to_jsonl(const TrialResult& trial);

/// Strict full parse (jobs included). Returns false on any malformation —
/// a truncated or hand-edited line never yields a partial result.
[[nodiscard]] bool trial_from_jsonl(std::string_view line, TrialResult& out);

/// Validating scalar parse: same strictness (the whole line, jobs
/// included, must be well-formed) but job entries are discarded as they
/// are read, so aggregation passes never materialize per-job payloads.
[[nodiscard]] bool trial_scalars_from_jsonl(std::string_view line,
                                            TrialResult& out);

class Counter;
class MetricRegistry;

/// Metric names the journal sink registers when JsonlSinkOptions::metrics
/// is set (naming scheme: docs/observability.md).
inline constexpr char kMetricJournalRows[] = "adaptbf_journal_rows_total";
inline constexpr char kMetricJournalBytes[] = "adaptbf_journal_bytes_total";
inline constexpr char kMetricJournalFsyncs[] = "adaptbf_journal_fsyncs_total";

struct JsonlSinkOptions {
  /// Rows per durability batch: fflush + fsync every N appends (and on
  /// flush()/close). 1 = maximally durable, larger = fewer syncs.
  std::size_t flush_every = 32;
  /// Disable fsync (batched fflush only) for tests/throwaway runs.
  bool fsync = true;
  /// Optional telemetry (obs/metrics.h): rows appended, row bytes
  /// written, fsync batches issued. Must outlive the sink.
  MetricRegistry* metrics = nullptr;
};

/// Append-only JSONL journal writer with batched fsync.
class JsonlTrialSink : public TrialSink {
 public:
  using Options = JsonlSinkOptions;
  struct OpenResult {
    std::unique_ptr<JsonlTrialSink> sink;
    std::string error;  ///< Non-empty when sink == nullptr.
    [[nodiscard]] bool ok() const { return sink != nullptr; }
  };

  /// Starts a new journal: truncates/creates `path`, writes the header.
  [[nodiscard]] static OpenResult open_fresh(const std::string& path,
                                             const CampaignHeader& header,
                                             Options options = {});

  /// Reopens an existing journal for appending. `keep_bytes` is the scan's
  /// valid-bytes watermark: the file is truncated there first, discarding
  /// a crash's partial tail line. `add_newline` terminates a final row the
  /// crash left unterminated (data intact, '\n' missing).
  [[nodiscard]] static OpenResult open_append(const std::string& path,
                                              std::uint64_t keep_bytes,
                                              bool add_newline,
                                              Options options = {});

  ~JsonlTrialSink() override;

  JsonlTrialSink(const JsonlTrialSink&) = delete;
  JsonlTrialSink& operator=(const JsonlTrialSink&) = delete;

  void append(const TrialResult& result) override;
  void flush() override;

  [[nodiscard]] std::size_t rows_appended() const { return rows_; }

 private:
  JsonlTrialSink(std::FILE* file, Options options);

  std::FILE* file_;
  Options options_;
  std::size_t pending_ = 0;  ///< Appends since the last durability point.
  std::size_t rows_ = 0;
  // Resolved once at construction (see JsonlSinkOptions::metrics).
  Counter* rows_metric_ = nullptr;
  Counter* bytes_metric_ = nullptr;
  Counter* fsyncs_metric_ = nullptr;
};

}  // namespace adaptbf
