// Parallel campaign execution.
//
// Trials are embarrassingly parallel: each runs on a single-threaded
// Simulator confined to one worker, so N workers give linear speedup while
// every trial stays bit-for-bit deterministic. Each worker keeps ONE
// simulator for its whole run and reset()s it between trials, so the event
// arena and periodic pool are warmed once per worker rather than rebuilt
// per trial. Workers claim trial indices from an atomic counter and write
// results into a pre-sized slot vector, so the returned vector is ordered
// by trial index and identical for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "sweep/sweep_spec.h"

namespace adaptbf {

/// Summary of one executed trial. Carries the grid coordinates (not the
/// materialized spec) plus the scalar metrics the aggregator consumes.
struct TrialResult {
  std::size_t index = 0;
  std::string scenario;
  BwControl policy = BwControl::kNone;
  std::uint32_t num_osts = 1;
  double max_token_rate = -1.0;
  std::uint32_t repetition = 0;
  std::uint64_t seed = 0;

  double aggregate_mibps = 0.0;
  /// Jain's index over per-job achieved bandwidth: 1 = perfectly fair.
  double fairness = 0.0;
  /// Total RPC latency percentiles across all jobs (ms).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double horizon_s = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events_dispatched = 0;
  std::vector<JobSummary> jobs;  ///< Ascending JobId, as in ExperimentResult.

  /// Grid-cell identity (every coordinate except the repetition); equal
  /// to the originating TrialSpec::cell_id(), which is how journal rows
  /// are validated against the expanded grid on resume and dispatch.
  [[nodiscard]] std::string cell_id() const;
};

/// Computes the TrialResult summary for one finished experiment.
[[nodiscard]] TrialResult summarize_trial(const TrialSpec& trial,
                                          const ExperimentResult& result);

class TrialSink;
class MetricRegistry;

/// Metric names the runner registers when Options::metrics is set
/// (naming scheme: docs/observability.md).
inline constexpr char kMetricTrialsStarted[] =
    "adaptbf_sweep_trials_started_total";
inline constexpr char kMetricTrialsDone[] = "adaptbf_sweep_trials_done_total";
inline constexpr char kMetricTrialsFailed[] =
    "adaptbf_sweep_trials_failed_total";
inline constexpr char kMetricTrialRuntime[] =
    "adaptbf_sweep_trial_runtime_seconds";
inline constexpr char kMetricEventsDispatched[] =
    "adaptbf_sweep_events_dispatched_total";
inline constexpr char kMetricPoolReallocations[] =
    "adaptbf_sweep_event_pool_reallocations_total";

class SweepRunner {
 public:
  struct Options {
    /// Worker threads; 0 picks std::thread::hardware_concurrency().
    std::uint32_t threads = 0;
    /// Per-trial experiment options. The allocation trace defaults OFF for
    /// sweeps (memory ~ jobs x windows x trials would be unbounded on a
    /// campaign; summaries carry everything the aggregator needs). The
    /// `simulator` field is ignored: each worker always substitutes its
    /// own per-worker simulator (sharing one across workers would break
    /// the single-threaded simulator invariant).
    ExperimentOptions experiment = ExperimentOptions::without_trace();
    /// Called after each trial completes, serialized under a mutex.
    /// `completed` counts finished trials, not the finished trial's index.
    std::function<void(std::size_t completed, std::size_t total,
                       const TrialResult& result)>
        on_trial_done;
    /// Streaming mode: every completed trial is appended here (serialized
    /// under the same mutex as on_trial_done, sink first) and its `jobs`
    /// payload released from the returned results afterwards, so peak
    /// memory stops scaling with the completed-trial count. The sink must
    /// outlive run(); the caller owns it.
    TrialSink* sink = nullptr;
    /// Optional telemetry (obs/metrics.h): trials started/done/failed
    /// counters, a per-trial wall-clock runtime histogram, and the
    /// post-trial events_dispatched total. Updates are lock-free atomics
    /// recorded OUTSIDE the simulator event loop — instrumentation never
    /// touches the sim core's hot path. Must outlive run(); shared across
    /// runs (a dispatch worker accumulates over all its leases).
    MetricRegistry* metrics = nullptr;
  };

  SweepRunner();
  explicit SweepRunner(Options options);

  /// Expands and runs the full grid. Results are ordered by trial index
  /// and bit-identical regardless of the worker-thread count.
  ///
  /// Exception safety: a throw from run_experiment, the sink, or the
  /// progress callback stops the campaign — remaining trials are not
  /// started, the pool is joined, the sink flushed, and the FIRST
  /// exception rethrown on the calling thread. Worker threads never leak
  /// an exception (which would std::terminate the process).
  [[nodiscard]] std::vector<TrialResult> run(const SweepSpec& sweep) const;

  /// Runs an explicit trial list (already expanded).
  [[nodiscard]] std::vector<TrialResult> run(
      const std::vector<TrialSpec>& trials) const;

 private:
  Options options_;
};

}  // namespace adaptbf
