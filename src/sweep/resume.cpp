#include "sweep/resume.h"

#include <fstream>
#include <string_view>

#include "support/fnv.h"

namespace adaptbf {

bool trial_row_matches(const TrialResult& row,
                       std::span<const TrialSpec> trials) {
  if (row.index >= trials.size()) return false;
  const TrialSpec& trial = trials[row.index];
  return row.seed == trial.seed && row.repetition == trial.repetition &&
         row.cell_id() == trial.cell_id();
}

std::uint64_t sweep_grid_hash(std::span<const TrialSpec> trials) {
  Fnv1a fnv;
  fnv.u64(trials.size());
  for (const TrialSpec& trial : trials) {
    fnv.u64(trial.index);
    fnv.str(trial.cell_id());
    fnv.u64(trial.repetition);
    fnv.u64(trial.seed);
    // Salient materialized-spec fields: a resumed journal must have been
    // produced by the same workloads, not just the same grid coordinates.
    const ScenarioSpec& spec = trial.spec;
    fnv.i64(spec.duration.ns());
    fnv.u64(spec.num_osts);
    fnv.f64(spec.max_token_rate);
    fnv.u64(static_cast<std::uint64_t>(spec.control));
    fnv.u64(spec.jobs.size());
    for (const JobSpec& job : spec.jobs) {
      fnv.u64(job.id.value());
      fnv.u64(job.nodes);
      fnv.u64(job.processes.size());
      for (const ProcessPattern& process : job.processes) {
        fnv.u64(static_cast<std::uint64_t>(process.kind));
        fnv.u64(process.total_rpcs);
        fnv.f64(process.poisson_rate);
        fnv.u64(process.seed);
        fnv.i64(process.start_delay.ns());
      }
    }
  }
  return fnv.value();
}

CampaignScan scan_campaign_file(const std::string& path,
                                const std::string& sweep_name,
                                std::span<const TrialSpec> trials,
                                ShardRef shard) {
  CampaignScan scan;
  scan.trial_count = trials.size();
  scan.have.assign(trials.size(), false);
  scan.row_offset.assign(trials.size(), -1);
  scan.row_line.assign(trials.size(), 0);
  scan.expected_rows = 0;
  for (const TrialSpec& trial : trials)
    if (shard_owner(trial.index, shard.count) == shard.index)
      ++scan.expected_rows;

  std::ifstream file(path, std::ios::binary);
  if (!file) {
    scan.fresh = true;
    return scan;
  }

  const std::uint64_t expected_hash = sweep_grid_hash(trials);
  std::uint64_t offset = 0;
  std::uint64_t line_no = 0;
  std::string line;
  bool saw_header = false;
  while (std::getline(file, line)) {
    // getline sets eofbit only when the final line lacks its '\n'.
    const bool has_newline = !file.eof();
    const std::uint64_t line_end = offset + line.size() + (has_newline ? 1 : 0);
    ++line_no;

    if (!saw_header) {
      CampaignHeader header;
      if (!parse_campaign_header(line, header)) {
        // Torn header: the crash hit during the very first writeout. The
        // line must still be a recognizable prefix of a header — an
        // unterminated line of some unrelated file the user pointed
        // --output at keeps the hard error instead of getting clobbered.
        constexpr std::string_view kMagic = "{\"adaptbf_sweep\":1,\"name\":";
        const std::string_view head(line);
        const bool header_prefix =
            head.size() < kMagic.size()
                ? kMagic.substr(0, head.size()) == head
                : head.substr(0, kMagic.size()) == kMagic;
        if (!has_newline && header_prefix) {
          // Nothing recoverable; start fresh rather than wedging every
          // future --resume on a hard error.
          scan.fresh = true;
          return scan;
        }
        scan.error = "'" + path + "' line 1: not a campaign journal";
        return scan;
      }
      if (header.sweep != sweep_name) {
        scan.error = "journal '" + path + "' line 1: belongs to sweep '" +
                     header.sweep + "', not '" + sweep_name + "'";
        return scan;
      }
      if (header.trials != trials.size() ||
          header.grid_hash != expected_hash) {
        scan.error = "journal '" + path +
                     "' line 1: written for a different campaign grid "
                     "(sweep file changed since the journal started?)";
        return scan;
      }
      if (header.search_step != 0) {
        // A search journal holds only the trials its probes visited plus
        // interleaved search_step rows; reading it as a plain campaign
        // would re-run every unprobed trial and corrupt the step record.
        scan.error = "journal '" + path +
                     "' line 1: is a search journal; resume it with "
                     "'sweep_cli search --resume'";
        return scan;
      }
      if (header.shard != shard) {
        if (!shard.sharded() && header.shard.sharded()) {
          scan.error = "journal '" + path + "' line 1: is shard " +
                       header.shard.str() +
                       " of a sharded campaign; merge the full shard set "
                       "with 'sweep_cli merge' instead of reading one slice";
        } else if (shard.sharded() && !header.shard.sharded()) {
          scan.error = "journal '" + path +
                       "' line 1: is an unsharded campaign journal, but "
                       "this run is shard " + shard.str() +
                       "; give each shard its own --output";
        } else {
          scan.error = "journal '" + path + "' line 1: belongs to shard " +
                       header.shard.str() + ", but this run is shard " +
                       shard.str() +
                       (header.shard.count != shard.count
                            ? " (shard count changed since the journal "
                              "started?)"
                            : " (shard journals mixed up?)");
        }
        return scan;
      }
      scan.header = header;
      saw_header = true;
      if (!has_newline) scan.missing_final_newline = true;
      scan.valid_bytes = line_end;
      offset = line_end;
      continue;
    }

    TrialResult row;
    const bool valid =
        trial_scalars_from_jsonl(line, row) && trial_row_matches(row, trials);
    if (valid) {
      if (shard_owner(row.index, shard.count) != shard.index) {
        // A foreign shard's row is not corruption — it parses fine — and
        // ignoring it would let a later merge double-count the trial.
        // Hard error, pinned to the line.
        scan.error = "journal '" + path + "' line " +
                     std::to_string(line_no) + ": trial " +
                     std::to_string(row.index) + " belongs to shard " +
                     std::to_string(shard_owner(row.index, shard.count)) +
                     "/" + std::to_string(shard.count) +
                     ", not this journal's shard " + shard.str() +
                     " (shard journals mixed up? merging would "
                     "double-count it)";
        return scan;
      }
      if (!scan.have[row.index]) {
        scan.have[row.index] = true;
        scan.row_offset[row.index] = static_cast<std::int64_t>(offset);
        scan.row_line[row.index] = line_no;
        ++scan.rows;
      } else {
        ++scan.duplicate_rows;
      }
      if (!has_newline) scan.missing_final_newline = true;
      scan.valid_bytes = line_end;
    } else if (!has_newline) {
      // Partial tail from a mid-write crash: discard; valid_bytes stays at
      // the end of the last good line so the sink truncates it away.
      scan.truncated_tail = true;
    } else {
      // Interior garbage: the bytes stay (truncating would drop every row
      // after them) but the line is ignored and its trial re-run.
      ++scan.corrupt_lines;
      scan.valid_bytes = line_end;
    }
    offset = line_end;
  }

  if (!saw_header) {
    // Zero-byte file: treat like a missing one and start fresh.
    scan.fresh = true;
  }
  return scan;
}

std::vector<TrialSpec> missing_trials(const CampaignScan& scan,
                                      std::span<const TrialSpec> trials) {
  std::vector<TrialSpec> todo;
  for (const TrialSpec& trial : trials)
    if (trial.index >= scan.have.size() || !scan.have[trial.index])
      todo.push_back(trial);
  return todo;
}

}  // namespace adaptbf
