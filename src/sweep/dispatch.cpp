#include "sweep/dispatch.h"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <exception>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "support/log.h"
#include "sweep/resume.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {

namespace dispatch_wire {

namespace {

std::string envelope(const char* type) {
  std::string out = "{\"adaptbf_dispatch\":";
  out += std::to_string(kDispatchProtocolVersion);
  out += ",\"type\":\"";
  out += type;
  out += '"';
  return out;
}

}  // namespace

std::string hello(const std::string& sweep, std::uint64_t grid_hash,
                  std::uint64_t trials) {
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, grid_hash);
  std::string out = envelope("hello");
  out += ",\"sweep\":";
  out += json_quote(sweep);
  out += ",\"grid_hash\":\"";
  out += hash;
  out += "\",\"trials\":";
  out += std::to_string(trials);
  out += '}';
  return out;
}

std::string welcome(std::uint32_t worker) {
  return envelope("welcome") + ",\"worker\":" + std::to_string(worker) + "}";
}

std::string error_msg(const std::string& message) {
  return envelope("error") + ",\"message\":" + json_quote(message) + "}";
}

std::string request() { return envelope("request") + "}"; }

std::string lease(std::uint64_t lease, std::span<const std::uint64_t> trials) {
  std::string out = envelope("lease");
  out += ",\"lease\":";
  out += std::to_string(lease);
  out += ",\"trials\":[";
  bool first = true;
  for (const std::uint64_t index : trials) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(index);
  }
  out += "]}";
  return out;
}

std::string wait() { return envelope("wait") + "}"; }

std::string result(std::uint64_t lease, std::string_view row) {
  std::string out = envelope("result");
  out += ",\"lease\":";
  out += std::to_string(lease);
  out += ",\"row\":";
  out += row;
  out += '}';
  return out;
}

std::string heartbeat() { return envelope("heartbeat") + "}"; }

std::string heartbeat_counters(std::uint64_t trials_done,
                               double runtime_ewma_ms) {
  std::string out = envelope("heartbeat");
  out += ",\"trials_done\":";
  out += std::to_string(trials_done);
  out += ",\"runtime_ewma_ms\":";
  out += json_num_exact(runtime_ewma_ms);
  out += '}';
  return out;
}

std::string done() { return envelope("done") + "}"; }

std::string stats_request(const std::string& format) {
  std::string out = envelope("stats");
  out += ",\"stats_version\":";
  out += std::to_string(kStatsVersion);
  out += ",\"format\":";
  out += json_quote(format);
  out += '}';
  return out;
}

std::string stats_reply(std::string_view body) {
  std::string out = envelope("stats_reply");
  out += ",\"stats_version\":";
  out += std::to_string(kStatsVersion);
  out += ",\"body\":";
  out += json_quote(body);
  out += '}';
  return out;
}

bool parse(std::string_view payload, Message& out) {
  JsonCursor c(payload);
  out = Message{};
  if (!json_lit(c, "{\"adaptbf_dispatch\":") ||
      !json_parse_u32(c, out.version))
    return false;
  if (out.version != kDispatchProtocolVersion) {
    // A future (or past) generation: the envelope is recognizable but the
    // content is not ours to interpret. Parsed "successfully" so the
    // receiver rejects the VERSION by name, not the bytes as garbage.
    out.type = Message::Type::kForeignVersion;
    return true;
  }
  std::string type;
  if (!json_lit(c, ",\"type\":") || !json_parse_string(c, type)) return false;
  if (type == "hello") {
    out.type = Message::Type::kHello;
    if (!json_lit(c, ",\"sweep\":") || !json_parse_string(c, out.sweep))
      return false;
    if (!json_lit(c, ",\"grid_hash\":\"") ||
        !json_parse_hash16(c, out.grid_hash))
      return false;
    if (!json_lit(c, "\",\"trials\":") || !json_parse_u64(c, out.trials))
      return false;
  } else if (type == "welcome") {
    out.type = Message::Type::kWelcome;
    if (!json_lit(c, ",\"worker\":") || !json_parse_u32(c, out.worker))
      return false;
  } else if (type == "error") {
    out.type = Message::Type::kError;
    if (!json_lit(c, ",\"message\":") || !json_parse_string(c, out.message))
      return false;
  } else if (type == "request") {
    out.type = Message::Type::kRequest;
  } else if (type == "lease") {
    out.type = Message::Type::kLease;
    if (!json_lit(c, ",\"lease\":") || !json_parse_u64(c, out.lease))
      return false;
    if (!json_lit(c, ",\"trials\":[")) return false;
    bool first = true;
    while (!json_lit(c, "]")) {
      if (!first && !json_lit(c, ",")) return false;
      first = false;
      std::uint64_t index = 0;
      if (!json_parse_u64(c, index)) return false;
      out.indices.push_back(index);
    }
  } else if (type == "wait") {
    out.type = Message::Type::kWait;
  } else if (type == "result") {
    out.type = Message::Type::kResult;
    if (!json_lit(c, ",\"lease\":") || !json_parse_u64(c, out.lease))
      return false;
    if (!json_lit(c, ",\"row\":")) return false;
    // The row rides as verbatim bytes: everything up to the envelope's
    // closing brace. Semantic validation (trial_from_jsonl, grid match)
    // is the coordinator's job; here only the bracketing is checked.
    const std::size_t remaining = static_cast<std::size_t>(c.end - c.p);
    if (remaining < 3 || *c.p != '{' || c.end[-2] != '}') return false;
    out.row.assign(c.p, remaining - 1);
    c.p = c.end - 1;
  } else if (type == "heartbeat") {
    out.type = Message::Type::kHeartbeat;
    // Counters payload is optional: a bare heartbeat (the pre-telemetry
    // form, still emitted before a worker's first flush) closes here.
    if (json_lit(c, ",\"trials_done\":")) {
      if (!json_parse_u64(c, out.trials_done)) return false;
      if (!json_lit(c, ",\"runtime_ewma_ms\":") ||
          !json_parse_double_or_null(c, out.runtime_ewma_ms))
        return false;
      out.has_counters = true;
    }
  } else if (type == "done") {
    out.type = Message::Type::kDone;
  } else if (type == "stats") {
    out.type = Message::Type::kStats;
    if (!json_lit(c, ",\"stats_version\":") ||
        !json_parse_u32(c, out.stats_version))
      return false;
    if (out.stats_version != kStatsVersion) {
      // Foreign stats generation: the rest of the payload is not ours to
      // interpret (same stance as kForeignVersion). Parsed "successfully"
      // so the coordinator rejects the stats VERSION by name.
      c.p = c.end;
      return true;
    }
    if (!json_lit(c, ",\"format\":") || !json_parse_string(c, out.format))
      return false;
  } else if (type == "stats_reply") {
    out.type = Message::Type::kStatsReply;
    if (!json_lit(c, ",\"stats_version\":") ||
        !json_parse_u32(c, out.stats_version))
      return false;
    if (out.stats_version != kStatsVersion) {
      c.p = c.end;
      return true;
    }
    if (!json_lit(c, ",\"body\":") || !json_parse_string(c, out.body))
      return false;
  } else {
    return false;
  }
  if (!json_lit(c, "}")) return false;
  return c.done();
}

}  // namespace dispatch_wire

// ------------------------------------------------------------ coordinator

namespace {

using Clock = std::chrono::steady_clock;

/// One connected worker (or would-be worker: connections start anonymous
/// and must hello before anything else).
struct Conn {
  TcpSocket socket;
  FrameReader reader;
  std::uint32_t id = 0;
  bool helloed = false;
  /// Sent `wait`; gets a lease pushed as soon as one frees up.
  bool waiting = false;
  std::int64_t lease_id = -1;  ///< Active lease; -1 = none.
  Clock::time_point last_activity;
  bool dead = false;  ///< Marked for eviction at the end of the round.
  /// Per-worker series (created at hello, labeled worker="<id>").
  Counter* rows_metric = nullptr;
  Counter* dup_metric = nullptr;
  Gauge* trials_done_metric = nullptr;
  Gauge* runtime_ewma_metric = nullptr;
};

/// Prometheus label body for one worker's series.
std::string worker_label(std::uint32_t id) {
  return "worker=\"" + std::to_string(id) + "\"";
}

struct LeaseState {
  std::vector<std::size_t> remaining;  ///< Undelivered trial indices.
};

}  // namespace

struct DispatchCoordinator::Impl {
  std::string journal_path;
  std::string sweep_name;
  std::span<const TrialSpec> trials;
  std::uint64_t grid_hash = 0;
  Options options;
  TcpListener listener;
  /// Declared before `sink`: the sink holds counter refs into the
  /// registry, so member destruction order (reverse of declaration) must
  /// tear the sink down first.
  MetricRegistry metrics;
  std::unique_ptr<JsonlTrialSink> sink;

  std::vector<bool> have;
  std::size_t rows_done = 0;  ///< Journaled trials, resumed rows included.
  /// Adaptive mode (open_adaptive): no sink, no fixed work list. Rows are
  /// collected in memory for serve_trials() instead of journaled, and the
  /// campaign never "completes" on its own — finish() ends it.
  bool adaptive = false;
  std::map<std::size_t, std::string> collected;  ///< Adaptive: raw row bytes.
  std::deque<std::vector<std::size_t>> queue;
  std::map<std::uint64_t, LeaseState> leases;
  std::uint64_t next_lease_id = 1;
  std::uint32_t next_worker_id = 1;
  std::vector<std::unique_ptr<Conn>> conns;
  std::atomic<bool> stop{false};
  DispatchServeResult stats;
  Clock::time_point serve_start{};

  // Fleet-wide series, resolved once in open(). Counters are cumulative
  // over the serve; gauges are refreshed from coordinator state at each
  // stats poll (refresh_gauges).
  Counter* rows_journaled_metric = nullptr;
  Counter* rows_duplicate_metric = nullptr;
  Counter* leases_granted_metric = nullptr;
  Counter* leases_reclaimed_metric = nullptr;
  Counter* workers_seen_metric = nullptr;
  Counter* frames_metric = nullptr;
  Counter* rx_bytes_metric = nullptr;
  Gauge* rows_done_gauge = nullptr;
  Gauge* trials_total_gauge = nullptr;
  Gauge* leases_outstanding_gauge = nullptr;
  Gauge* workers_connected_gauge = nullptr;
  Gauge* uptime_gauge = nullptr;
  Gauge* rows_per_sec_gauge = nullptr;

  void init_metrics() {
    rows_journaled_metric = &metrics.counter(kMetricDispatchRowsJournaled);
    rows_duplicate_metric = &metrics.counter(kMetricDispatchRowsDuplicate);
    leases_granted_metric = &metrics.counter(kMetricDispatchLeasesGranted);
    leases_reclaimed_metric = &metrics.counter(kMetricDispatchLeasesReclaimed);
    workers_seen_metric = &metrics.counter(kMetricDispatchWorkersSeen);
    frames_metric = &metrics.counter(kMetricDispatchFramesReceived);
    rx_bytes_metric = &metrics.counter(kMetricDispatchRxBytes);
    rows_done_gauge = &metrics.gauge(kMetricDispatchRowsDone);
    trials_total_gauge = &metrics.gauge(kMetricDispatchTrialsTotal);
    leases_outstanding_gauge = &metrics.gauge(kMetricDispatchLeasesOutstanding);
    workers_connected_gauge = &metrics.gauge(kMetricDispatchWorkersConnected);
    uptime_gauge = &metrics.gauge(kMetricDispatchUptime);
    rows_per_sec_gauge = &metrics.gauge(kMetricDispatchRowsPerSec);
  }

  [[nodiscard]] std::uint32_t workers_connected() const {
    std::uint32_t connected = 0;
    for (const auto& conn : conns)
      if (!conn->dead && conn->helloed) ++connected;
    return connected;
  }

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - serve_start).count();
  }

  /// Re-derives the gauge series from coordinator state. Called at each
  /// stats poll, never on the row hot path — gauges are projections of
  /// state the coordinator already tracks.
  void refresh_gauges() {
    rows_done_gauge->set(static_cast<double>(rows_done));
    trials_total_gauge->set(static_cast<double>(trials.size()));
    leases_outstanding_gauge->set(static_cast<double>(leases.size()));
    workers_connected_gauge->set(static_cast<double>(workers_connected()));
    const double elapsed = elapsed_s();
    uptime_gauge->set(elapsed);
    // Serve-average delivery rate: rows journaled by THIS serve over its
    // lifetime (resumed rows excluded — they predate the serve).
    rows_per_sec_gauge->set(
        elapsed > 0 ? static_cast<double>(stats.rows_received) / elapsed : 0.0);
  }

  /// The `stats` endpoint body. "prom" is the registry rendered as a
  /// Prometheus scrape; "json" wraps the registry snapshot in a top-level
  /// summary object (schema: docs/observability.md) so shell consumers
  /// can grep one key instead of walking the metric array.
  [[nodiscard]] std::string render_stats(const std::string& format) {
    refresh_gauges();
    const MetricsSnapshot snap = metrics.snapshot();
    if (format == "prom") return snap.to_prometheus();
    std::string out = "{\"adaptbf_stats\":1,\"sweep\":";
    out += json_quote(sweep_name);
    out += ",\"complete\":";
    out += rows_done == trials.size() ? "true" : "false";
    out += ",\"trials\":";
    out += std::to_string(trials.size());
    out += ",\"rows_done\":";
    out += std::to_string(rows_done);
    out += ",\"rows_received\":";
    out += std::to_string(stats.rows_received);
    out += ",\"duplicate_rows\":";
    out += std::to_string(stats.duplicate_rows);
    out += ",\"workers_connected\":";
    out += std::to_string(workers_connected());
    out += ",\"workers_seen\":";
    out += std::to_string(stats.workers_seen);
    out += ",\"leases_outstanding\":";
    out += std::to_string(leases.size());
    out += ",\"leases_granted\":";
    out += std::to_string(stats.leases_granted);
    out += ",\"leases_reclaimed\":";
    out += std::to_string(stats.leases_reclaimed);
    out += ",\"elapsed_s\":";
    out += json_num_exact(elapsed_s());
    out += ",\"rows_per_s\":";
    out += json_num_exact(rows_per_sec_gauge->value());
    out += ",\"registry\":";
    out += snap.to_json();
    out += '}';
    return out;
  }

  void evict(Conn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    reclaim(conn);
    conn.socket.close();
  }

  void reject(Conn& conn, const std::string& message) {
    ADAPTBF_LOG_WARN("dispatch", "rejecting connection: %s", message.c_str());
    (void)write_frame(conn.socket, dispatch_wire::error_msg(message));
    evict(conn);
  }

  /// Returns a dead/evicted worker's undelivered trials to the queue.
  void reclaim(Conn& conn) {
    if (conn.lease_id < 0) return;
    const std::uint64_t lease_id = static_cast<std::uint64_t>(conn.lease_id);
    auto it = leases.find(lease_id);
    conn.lease_id = -1;
    if (it == leases.end()) return;
    // Drop trials the journal already has: other workers (or non-owner
    // deliveries) may have journaled this lease's trials while its owner
    // was silent. Filtering BEFORE the requeue decision keeps a
    // reclaimed-then-completed lease from counting as reclaimed work —
    // its rows sit in `rows_done` (and possibly `duplicates`) already,
    // and requeueing them would only mint more duplicates.
    std::erase_if(it->second.remaining,
                  [&](std::size_t index) { return have[index]; });
    if (!it->second.remaining.empty()) {
      ADAPTBF_LOG_INFO("dispatch", "reclaiming lease %llu (%zu trials re-queued)",
                       static_cast<unsigned long long>(lease_id),
                       it->second.remaining.size());
      queue.push_back(std::move(it->second.remaining));
      ++stats.leases_reclaimed;
      leases_reclaimed_metric->inc();
    }
    leases.erase(it);
  }

  /// Hands `conn` the next work unit, or parks it (`wait`) when all
  /// remaining trials are leased out elsewhere.
  void grant_or_wait(Conn& conn) {
    // Drop trials that arrived (via duplicates/re-leases) since the chunk
    // was queued; skip chunks that emptied entirely.
    while (!queue.empty()) {
      auto& chunk = queue.front();
      std::erase_if(chunk, [&](std::size_t i) { return have[i]; });
      if (!chunk.empty()) break;
      queue.pop_front();
    }
    if (queue.empty()) {
      conn.waiting = true;
      if (!write_frame(conn.socket, dispatch_wire::wait())) evict(conn);
      return;
    }
    std::vector<std::size_t> chunk = std::move(queue.front());
    queue.pop_front();
    const std::uint64_t id = next_lease_id++;
    std::vector<std::uint64_t> indices(chunk.begin(), chunk.end());
    leases[id].remaining = std::move(chunk);
    conn.lease_id = static_cast<std::int64_t>(id);
    conn.waiting = false;
    if (!write_frame(conn.socket, dispatch_wire::lease(id, indices))) {
      evict(conn);  // reclaim() re-queues the chunk.
      return;
    }
    ++stats.leases_granted;
    leases_granted_metric->inc();
    ADAPTBF_LOG_DEBUG("dispatch", "lease %llu (%zu trials) -> worker %u",
                      static_cast<unsigned long long>(id), indices.size(),
                      conn.id);
  }

  /// Pushes freed leases to parked workers (after reclaims/completions).
  void dispatch_to_waiting() {
    for (auto& conn : conns) {
      if (queue.empty()) return;
      if (!conn->dead && conn->helloed && conn->waiting) grant_or_wait(*conn);
    }
  }

  /// Handles one complete frame from `conn`. May evict it.
  void handle_frame(Conn& conn, std::string_view payload) {
    dispatch_wire::Message msg;
    if (!dispatch_wire::parse(payload, msg)) {
      reject(conn, "malformed dispatch message");
      return;
    }
    conn.last_activity = Clock::now();
    using Type = dispatch_wire::Message::Type;
    switch (msg.type) {
      case Type::kForeignVersion:
        reject(conn, "protocol version mismatch: coordinator speaks " +
                         std::to_string(kDispatchProtocolVersion) +
                         ", peer sent " + std::to_string(msg.version) +
                         " (mixed sweep_cli builds?)");
        return;
      case Type::kHello: {
        if (conn.helloed) {
          reject(conn, "duplicate hello");
          return;
        }
        if (msg.sweep != sweep_name) {
          reject(conn, "coordinator serves sweep '" + sweep_name +
                           "', worker expanded '" + msg.sweep + "'");
          return;
        }
        if (msg.grid_hash != grid_hash || msg.trials != trials.size()) {
          reject(conn,
                 "worker expanded a different campaign grid (sweep file "
                 "differs between the two machines? re-distribute it)");
          return;
        }
        conn.helloed = true;
        conn.id = next_worker_id++;
        ++stats.workers_seen;
        workers_seen_metric->inc();
        // Per-worker series. create-or-get: a worker id is never reused
        // within one serve, but labels survive the worker (a dead
        // worker's totals stay visible in scrapes).
        const std::string label = worker_label(conn.id);
        conn.rows_metric = &metrics.counter(kMetricWorkerRows, label);
        conn.dup_metric = &metrics.counter(kMetricWorkerDuplicates, label);
        conn.trials_done_metric =
            &metrics.gauge(kMetricWorkerTrialsDone, label);
        conn.runtime_ewma_metric =
            &metrics.gauge(kMetricWorkerRuntimeEwma, label);
        ADAPTBF_LOG_INFO("dispatch", "worker %u joined sweep '%s'", conn.id,
                         sweep_name.c_str());
        if (!write_frame(conn.socket, dispatch_wire::welcome(conn.id)))
          evict(conn);
        return;
      }
      case Type::kRequest:
        if (!conn.helloed || conn.lease_id >= 0) {
          reject(conn, conn.helloed ? "request while holding a lease"
                                    : "request before hello");
          return;
        }
        // Adaptive mode has no fixed finish line — workers park on `wait`
        // between batches until finish() releases them.
        if (!adaptive && rows_done == trials.size()) {
          (void)write_frame(conn.socket, dispatch_wire::done());
          evict(conn);
          return;
        }
        grant_or_wait(conn);
        return;
      case Type::kResult: {
        if (!conn.helloed) {
          reject(conn, "result before hello");
          return;
        }
        TrialResult row;
        if (!trial_from_jsonl(msg.row, row) ||
            !trial_row_matches(row, trials)) {
          reject(conn, "result row does not match the campaign grid");
          return;
        }
        if (have[row.index]) {
          // Re-delivery of a trial another worker (or a previous serve)
          // already journaled. Rows are deterministic, so the copies are
          // byte-identical; count and discard — same stance as the
          // resume scanner on duplicate journal lines.
          ++stats.duplicate_rows;
          rows_duplicate_metric->inc();
          if (conn.dup_metric != nullptr) conn.dup_metric->inc();
        } else {
          if (adaptive)
            collected[row.index] = msg.row;  // Caller journals; exact bytes.
          else
            sink->append(row);  // Throws on I/O failure; serve() catches.
          have[row.index] = true;
          ++rows_done;
          ++stats.rows_received;
          rows_journaled_metric->inc();
          if (conn.rows_metric != nullptr) conn.rows_metric->inc();
          if (options.on_progress)
            options.on_progress(rows_done, trials.size());
        }
        // Retire the index ONLY from the sender's own lease. Honoring
        // msg.lease unchecked would let a peer (anyone with the sweep
        // file can forge valid rows) name another live worker's lease id,
        // empty it, and leave that honest worker holding a dangling
        // lease_id — evicted at its next request. A non-owner's valid row
        // is still journaled above; the true owner's later copy is just a
        // counted duplicate and its lease retires on its own deliveries.
        if (conn.lease_id >= 0 &&
            static_cast<std::uint64_t>(conn.lease_id) == msg.lease) {
          auto it = leases.find(msg.lease);
          if (it != leases.end()) {
            std::erase(it->second.remaining, row.index);
            if (it->second.remaining.empty()) {
              leases.erase(it);
              conn.lease_id = -1;
            }
          }
        }
        return;
      }
      case Type::kHeartbeat:
        // Liveness only counts for workers that proved their identity —
        // an anonymous connection heartbeating would dodge the silence
        // sweep and hold its fd + poll slot forever.
        if (!conn.helloed) {
          reject(conn, "heartbeat before hello");
          return;
        }
        if (msg.has_counters) {
          // Worker self-reports feed per-worker GAUGES only. Fleet row
          // totals always derive from coordinator-side journaling; summing
          // worker counters would double-count re-leased work.
          conn.trials_done_metric->set(static_cast<double>(msg.trials_done));
          conn.runtime_ewma_metric->set(msg.runtime_ewma_ms);
        }
        return;  // last_activity is already refreshed.
      case Type::kStats: {
        // Stats polls are welcome from anyone, hello or not — a monitor
        // never joins the campaign — and repeatable on one connection.
        if (msg.stats_version != kStatsVersion) {
          reject(conn, "stats version mismatch: coordinator speaks " +
                           std::to_string(kStatsVersion) + ", client sent " +
                           std::to_string(msg.stats_version));
          return;
        }
        if (msg.format != "json" && msg.format != "prom") {
          reject(conn, "unknown stats format '" + msg.format +
                           "' (expected \"json\" or \"prom\")");
          return;
        }
        const std::string body = render_stats(msg.format);
        if (!write_frame(conn.socket, dispatch_wire::stats_reply(body)))
          evict(conn);
        return;
      }
      case Type::kWelcome:
      case Type::kLease:
      case Type::kWait:
      case Type::kDone:
      case Type::kError:
      case Type::kStatsReply:
        reject(conn, "coordinator-only message from a worker");
        return;
    }
  }

  /// Goodbye protocol for every surviving HELLOED connection: send
  /// `done`, half-close, drain each peer to EOF (bounded). A straight
  /// close() would race the worker's in-flight request/heartbeat: that
  /// write would draw an RST flushing the unread `done` from the worker's
  /// receive queue, turning a fully successful worker into a spurious
  /// "lost connection" exit. Anonymous connections (stats monitors,
  /// probes) are left untouched.
  void release_workers() {
    for (auto& conn : conns) {
      if (conn->dead || !conn->helloed) continue;
      (void)write_frame(conn->socket, dispatch_wire::done());
      conn->socket.shutdown_write();
    }
    const auto drain_deadline = Clock::now() + std::chrono::seconds(2);
    for (auto& conn : conns) {
      if (conn->dead || !conn->helloed) continue;
      char discard[4096];
      while (Clock::now() < drain_deadline) {
        pollfd pfd{conn->socket.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 100) <= 0) continue;
        if (conn->socket.recv_some(discard, sizeof(discard)) <= 0) break;
      }
      // Campaign is over (or the serve is stopping): nothing to reclaim,
      // just drop the connection.
      conn->dead = true;
      conn->socket.close();
    }
    std::erase_if(conns, [](const std::unique_ptr<Conn>& conn) {
      return conn->dead;
    });
  }

  /// One accept/read/sweep/dispatch round: poll (<= 50 ms), accept new
  /// connections, drain complete frames, drop silent connections, erase
  /// the dead, and push freed leases to parked workers. The body of both
  /// serve modes; throws on poll or journal I/O failure.
  void poll_round(std::chrono::duration<double> lease_timeout) {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& conn : conns)
      fds.push_back({conn->socket.fd(), POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), /*timeout=*/50);
    if (ready < 0 && errno != EINTR)
      throw std::runtime_error("dispatch poll failed");

    if (fds[0].revents & POLLIN) {
      TcpSocket accepted = listener.accept_one();
      if (accepted.valid()) {
        auto conn = std::make_unique<Conn>();
        conn->socket = std::move(accepted);
        conn->last_activity = Clock::now();
        conns.push_back(std::move(conn));
      }
    }

    // fds[1 + i] is conns[i]; connections accepted above aren't in
    // fds yet and get their first read next round.
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      Conn& conn = *conns[i];
      if (conn.dead || !(fds[i + 1].revents & (POLLIN | POLLHUP))) continue;
      char buffer[64 * 1024];
      const long got = conn.socket.recv_some(buffer, sizeof(buffer));
      if (got <= 0) {
        evict(conn);  // EOF or error: a dead worker's lease re-queues.
        continue;
      }
      rx_bytes_metric->inc(static_cast<std::uint64_t>(got));
      conn.reader.feed(buffer, static_cast<std::size_t>(got));
      std::string payload, frame_error;
      for (;;) {
        if (conn.dead) break;
        const FrameReader::Status status =
            conn.reader.next(payload, frame_error);
        if (status == FrameReader::Status::kNeedMore) break;
        if (status == FrameReader::Status::kBad) {
          reject(conn, frame_error);
          break;
        }
        frames_metric->inc();
        handle_frame(conn, payload);
      }
    }

    // Silence sweep: ANY connection that has sent nothing for the
    // timeout is dropped (and a held lease re-queued). Workers
    // heartbeat for their whole lifetime — hello through done — at a
    // cadence well under the timeout, so this only trips genuinely
    // hung/dead workers and strangers (port scanners, health probes)
    // that would otherwise hold an fd and a poll slot forever.
    const auto now = Clock::now();
    for (auto& conn : conns) {
      if (!conn->dead && now - conn->last_activity > lease_timeout) {
        ADAPTBF_LOG_WARN("dispatch",
                         "connection silent past the %.1fs lease timeout "
                         "(worker %u); dropping it",
                         lease_timeout.count(), conn->id);
        evict(*conn);
      }
    }

    std::erase_if(conns, [](const std::unique_ptr<Conn>& conn) {
      return conn->dead;
    });
    dispatch_to_waiting();
  }

  [[nodiscard]] std::chrono::duration<double> lease_timeout() const {
    return std::chrono::duration<double>(
        options.lease_timeout_s > 0 ? options.lease_timeout_s : 30.0);
  }

  DispatchServeResult serve() {
    stats = DispatchServeResult{};
    serve_start = Clock::now();
    const auto timeout = lease_timeout();
    Clock::time_point linger_deadline{};
    try {
      while (!stop.load(std::memory_order_relaxed)) {
        if (rows_done == trials.size()) {
          if (!stats.complete) {
            // Completion edge: release the fleet immediately, then keep
            // the listener alive for linger_s so scrapers (and the CI
            // smoke) can poll the FINAL totals.
            stats.complete = true;
            linger_deadline =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       options.linger_s > 0 ? options.linger_s
                                                            : 0.0));
            ADAPTBF_LOG_INFO(
                "dispatch",
                "campaign complete: %zu rows journaled, %zu duplicates",
                stats.rows_received, stats.duplicate_rows);
            release_workers();
          }
          if (Clock::now() >= linger_deadline) break;
        }
        poll_round(timeout);
      }
    } catch (const std::exception& e) {
      stats.error = e.what();
    }

    // Tell every surviving worker the campaign is over (or the serve is
    // stopping); then make the journal durable. A stopped or failed serve
    // still leaves a valid journal — resume continues it. On the
    // completion path this is a no-op: workers were already released at
    // the completion edge, before the linger.
    release_workers();
    conns.clear();  // Conn destructors close the monitors' sockets.
    if (sink != nullptr && stats.error.empty()) {
      try {
        sink->flush();
      } catch (const std::exception& e) {
        stats.error = e.what();
      }
    }
    return stats;
  }

  /// Adaptive mode: lease out exactly `indices` (the not-yet-collected
  /// ones), block until every requested row arrived, and hand back the
  /// exact bytes in request order. Workers stay parked afterwards.
  std::string serve_trials(const std::vector<std::size_t>& indices,
                           std::vector<std::string>& rows_out) {
    rows_out.clear();
    for (const std::size_t index : indices)
      if (index >= trials.size())
        return "serve_trials: trial index " + std::to_string(index) +
               " outside the probe grid";
    // Queue only the missing ones, in index order, lease_size per chunk.
    std::vector<std::size_t> todo;
    for (const std::size_t index : indices)
      if (!have[index]) todo.push_back(index);
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    std::vector<std::size_t> chunk;
    for (const std::size_t index : todo) {
      chunk.push_back(index);
      if (chunk.size() == options.lease_size) {
        queue.push_back(std::move(chunk));
        chunk.clear();
      }
    }
    if (!chunk.empty()) queue.push_back(std::move(chunk));

    const auto timeout = lease_timeout();
    try {
      dispatch_to_waiting();
      for (;;) {
        bool missing = false;
        for (const std::size_t index : todo)
          if (!have[index]) { missing = true; break; }
        if (!missing) break;
        if (stop.load(std::memory_order_relaxed))
          return "serve_trials: stopped before the batch completed";
        poll_round(timeout);
      }
    } catch (const std::exception& e) {
      return e.what();
    }
    rows_out.reserve(indices.size());
    for (const std::size_t index : indices)
      rows_out.push_back(collected.at(index));
    return "";
  }

  /// Adaptive mode: end of the search — release the fleet, then keep the
  /// listener answering stats polls for linger_s.
  void finish() {
    release_workers();
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               options.linger_s > 0 ? options.linger_s : 0.0));
    const auto timeout = lease_timeout();
    try {
      while (!stop.load(std::memory_order_relaxed) && Clock::now() < deadline)
        poll_round(timeout);
    } catch (const std::exception&) {
      // Linger is best-effort; the search result is already decided.
    }
    release_workers();
    conns.clear();
  }
};

DispatchCoordinator::DispatchCoordinator() : impl_(new Impl) {}
DispatchCoordinator::~DispatchCoordinator() = default;

std::uint16_t DispatchCoordinator::port() const {
  return impl_->listener.port();
}

void DispatchCoordinator::request_stop() {
  impl_->stop.store(true, std::memory_order_relaxed);
}

DispatchServeResult DispatchCoordinator::serve() { return impl_->serve(); }

std::string DispatchCoordinator::serve_trials(
    const std::vector<std::size_t>& indices,
    std::vector<std::string>& rows_out) {
  return impl_->serve_trials(indices, rows_out);
}

void DispatchCoordinator::finish() { impl_->finish(); }

MetricRegistry& DispatchCoordinator::registry() { return impl_->metrics; }

DispatchCoordinator::Open DispatchCoordinator::open_adaptive(
    const std::string& sweep_name, std::span<const TrialSpec> trials,
    Options options) {
  Open result;
  std::unique_ptr<DispatchCoordinator> coordinator(new DispatchCoordinator);
  Impl& impl = *coordinator->impl_;
  impl.sweep_name = sweep_name;
  impl.trials = trials;
  impl.grid_hash = sweep_grid_hash(trials);
  impl.options = options;
  if (impl.options.lease_size == 0) impl.options.lease_size = 1;
  impl.init_metrics();
  impl.adaptive = true;
  impl.have.assign(trials.size(), false);
  impl.serve_start = Clock::now();

  TcpListener::ListenResult listening = TcpListener::listen_on(options.port);
  if (!listening.ok()) {
    result.error = "cannot listen on port " + std::to_string(options.port) +
                   ": " + listening.error;
    return result;
  }
  impl.listener = std::move(listening.listener);
  result.coordinator = std::move(coordinator);
  return result;
}

DispatchCoordinator::Open DispatchCoordinator::open(
    const std::string& journal_path, const std::string& sweep_name,
    std::span<const TrialSpec> trials, bool resume, Options options) {
  Open result;
  std::unique_ptr<DispatchCoordinator> coordinator(new DispatchCoordinator);
  Impl& impl = *coordinator->impl_;
  impl.journal_path = journal_path;
  impl.sweep_name = sweep_name;
  impl.trials = trials;
  impl.grid_hash = sweep_grid_hash(trials);
  impl.options = options;
  if (impl.options.lease_size == 0) impl.options.lease_size = 1;
  // The journal sink reports into the coordinator's registry so journal
  // counters (rows/bytes/fsyncs) ride the stats endpoint for free.
  impl.options.sink.metrics = &impl.metrics;
  impl.init_metrics();

  // Bind the port before touching the journal: a bind failure must not
  // strand a freshly created header-only journal that would then block
  // the retry with "already exists".
  TcpListener::ListenResult listening = TcpListener::listen_on(options.port);
  if (!listening.ok()) {
    result.error = "cannot listen on port " + std::to_string(options.port) +
                   ": " + listening.error;
    return result;
  }
  impl.listener = std::move(listening.listener);

  // The journal contract is exactly the local --output one: fresh runs
  // refuse to clobber, resumes validate the grid and keep finished rows.
  const CampaignScan scan =
      scan_campaign_file(journal_path, sweep_name, trials, ShardRef{});
  if (!scan.ok()) {
    result.error = scan.error;
    return result;
  }
  if (!resume && !scan.fresh) {
    result.error = "journal '" + journal_path + "' already exists (" +
                   std::to_string(scan.rows) + "/" +
                   std::to_string(scan.expected_rows) +
                   " trials); pass resume to continue it or remove it to "
                   "restart";
    return result;
  }
  JsonlTrialSink::OpenResult opened;
  if (scan.fresh) {
    CampaignHeader header;
    header.sweep = sweep_name;
    header.grid_hash = impl.grid_hash;
    header.trials = trials.size();
    opened =
        JsonlTrialSink::open_fresh(journal_path, header, impl.options.sink);
    impl.have.assign(trials.size(), false);
    impl.rows_done = 0;
  } else {
    opened = JsonlTrialSink::open_append(journal_path, scan.valid_bytes,
                                         scan.missing_final_newline,
                                         impl.options.sink);
    impl.have = scan.have;
    impl.rows_done = scan.rows;
  }
  if (!opened.ok()) {
    result.error = opened.error;
    return result;
  }
  impl.sink = std::move(opened.sink);

  // Work units: the missing trials in index order, lease_size per chunk.
  std::vector<std::size_t> chunk;
  for (std::size_t index = 0; index < trials.size(); ++index) {
    if (impl.have[index]) continue;
    chunk.push_back(index);
    if (chunk.size() == impl.options.lease_size) {
      impl.queue.push_back(std::move(chunk));
      chunk.clear();
    }
  }
  if (!chunk.empty()) impl.queue.push_back(std::move(chunk));

  result.coordinator = std::move(coordinator);
  return result;
}

// ----------------------------------------------------------------- worker

namespace {

/// Thrown by the test hook that simulates a worker dying mid-lease.
struct AbortLease : std::exception {
  const char* what() const noexcept override {
    return "worker aborted mid-lease (test hook)";
  }
};

/// Worker-side sink: journals locally (optional), then streams the exact
/// row bytes to the coordinator. SweepRunner serializes append() calls
/// under its progress mutex; the send mutex additionally serializes
/// against the heartbeat thread.
class SocketTrialSink : public TrialSink {
 public:
  SocketTrialSink(TcpSocket& socket, std::mutex& send_mutex,
                  JsonlTrialSink* local, std::size_t abort_after_rows)
      : socket_(socket),
        send_mutex_(send_mutex),
        local_(local),
        abort_after_rows_(abort_after_rows) {}

  void set_lease(std::uint64_t lease) { lease_ = lease; }
  [[nodiscard]] std::size_t rows_sent() const { return rows_sent_; }

  void append(const TrialResult& result) override {
    if (local_ != nullptr) local_->append(result);
    const std::string row = trial_to_jsonl(result);
    const std::lock_guard<std::mutex> lock(send_mutex_);
    if (!write_frame(socket_, dispatch_wire::result(lease_, row)))
      throw std::runtime_error("lost connection to coordinator");
    ++rows_sent_;
    if (abort_after_rows_ > 0 && rows_sent_ >= abort_after_rows_) {
      socket_.close();  // Abrupt death: no goodbye, the lease just stops.
      throw AbortLease{};
    }
  }

  void flush() override {
    if (local_ != nullptr) local_->flush();
  }

 private:
  TcpSocket& socket_;
  std::mutex& send_mutex_;
  JsonlTrialSink* local_;
  std::size_t abort_after_rows_;
  std::uint64_t lease_ = 0;
  std::size_t rows_sent_ = 0;
};

}  // namespace

DispatchWorkResult run_dispatch_worker(const std::string& host,
                                       std::uint16_t port,
                                       const std::string& sweep_name,
                                       std::span<const TrialSpec> trials,
                                       DispatchWorkerOptions options) {
  DispatchWorkResult out;
  // Workers routinely start before their coordinator binds; retry the
  // connect for the grace window instead of failing the fleet's launch
  // order.
  const auto connect_deadline =
      Clock::now() + std::chrono::duration<double>(
                         options.connect_wait_s > 0 ? options.connect_wait_s
                                                    : 0.0);
  TcpSocket::ConnectResult connected;
  for (;;) {
    connected = TcpSocket::connect_to(host, port);
    if (connected.ok() || Clock::now() >= connect_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!connected.ok()) {
    out.error = "cannot connect to " + host + ":" + std::to_string(port) +
                ": " + connected.error;
    return out;
  }
  TcpSocket socket = std::move(connected.socket);
  std::mutex send_mutex;

  // Worker-local telemetry: the runner (and optional local journal)
  // write lock-free counters here; the heartbeat thread snapshots them.
  // Declared before the local sink so the sink's counter refs die first.
  MetricRegistry registry;
  Counter& trials_done_counter = registry.counter(kMetricTrialsDone);
  Histogram& runtime_hist =
      registry.histogram(kMetricTrialRuntime, trial_runtime_bounds_s());

  const std::uint64_t grid_hash = sweep_grid_hash(trials);
  if (!write_frame(socket,
                   dispatch_wire::hello(sweep_name, grid_hash,
                                        trials.size()))) {
    out.error = "connection lost sending hello";
    return out;
  }

  std::unique_ptr<JsonlTrialSink> local;
  if (!options.journal_path.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(options.journal_path, ec)) {
      out.error = "local journal '" + options.journal_path +
                  "' already exists; remove it or choose another path";
      return out;
    }
    CampaignHeader header;
    header.sweep = sweep_name;
    header.grid_hash = grid_hash;
    header.trials = trials.size();
    options.sink.metrics = &registry;
    auto opened = JsonlTrialSink::open_fresh(options.journal_path, header,
                                             options.sink);
    if (!opened.ok()) {
      out.error = opened.error;
      return out;
    }
    local = std::move(opened.sink);
  }

  // Liveness thread: one heartbeat per interval, so the coordinator can
  // tell "running a long trial" from "dead" without waiting for rows.
  // Each beat carries this worker's counters: lifetime trials done plus a
  // per-trial runtime EWMA fed from the runtime histogram's interval
  // deltas (mean runtime of the trials finished since the last beat).
  std::atomic<bool> stop_heartbeat{false};
  const auto heartbeat_interval = std::chrono::duration<double>(
      options.heartbeat_interval_s > 0 ? options.heartbeat_interval_s : 2.0);
  std::thread heartbeat([&] {
    Ewma runtime_ewma;
    std::uint64_t last_count = 0;
    double last_sum = 0.0;
    auto next_beat = Clock::now() + heartbeat_interval;
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (Clock::now() < next_beat) continue;
      next_beat += heartbeat_interval;
      const std::uint64_t count = runtime_hist.count();
      const double sum = runtime_hist.sum();
      if (count > last_count) {
        runtime_ewma.observe((sum - last_sum) /
                             static_cast<double>(count - last_count) * 1000.0);
        last_count = count;
        last_sum = sum;
      }
      const std::lock_guard<std::mutex> lock(send_mutex);
      // A failed beat means the socket is gone; the main loop's next
      // send/recv reports it with better context.
      (void)write_frame(socket,
                        dispatch_wire::heartbeat_counters(
                            trials_done_counter.value(), runtime_ewma.value()));
    }
  });

  SocketTrialSink sink(socket, send_mutex, local.get(),
                       options.abort_after_rows);

  // Main protocol loop. Runs leases until the coordinator says done.
  const auto run = [&]() -> void {
    using Type = dispatch_wire::Message::Type;
    std::string payload, frame_error;
    dispatch_wire::Message msg;

    if (!read_frame(socket, payload, frame_error)) {
      out.error = frame_error.empty() ? "coordinator closed the connection"
                                      : frame_error;
      return;
    }
    if (!dispatch_wire::parse(payload, msg)) {
      out.error = "malformed frame from coordinator";
      return;
    }
    if (msg.type == Type::kError) {
      out.error = "coordinator rejected this worker: " + msg.message;
      return;
    }
    if (msg.type == Type::kForeignVersion) {
      out.error = "protocol version mismatch: worker speaks " +
                  std::to_string(kDispatchProtocolVersion) +
                  ", coordinator sent " + std::to_string(msg.version);
      return;
    }
    if (msg.type != Type::kWelcome) {
      out.error = "expected welcome from coordinator";
      return;
    }

    bool send_request = true;
    for (;;) {
      if (send_request) {
        const std::lock_guard<std::mutex> lock(send_mutex);
        if (!write_frame(socket, dispatch_wire::request())) {
          out.error = "lost connection to coordinator";
          return;
        }
      }
      send_request = false;
      if (!read_frame(socket, payload, frame_error)) {
        out.error = frame_error.empty()
                        ? "coordinator closed the connection mid-campaign"
                        : frame_error;
        return;
      }
      if (!dispatch_wire::parse(payload, msg)) {
        out.error = "malformed frame from coordinator";
        return;
      }
      switch (msg.type) {
        case Type::kWait:
          continue;  // Parked: block until a lease or done is pushed.
        case Type::kDone:
          return;
        case Type::kError:
          out.error = "coordinator: " + msg.message;
          return;
        case Type::kLease: {
          std::vector<TrialSpec> todo;
          todo.reserve(msg.indices.size());
          for (const std::uint64_t index : msg.indices) {
            if (index >= trials.size() || trials[index].index != index) {
              out.error = "lease names trial " + std::to_string(index) +
                          " outside the expanded grid";
              return;
            }
            todo.push_back(trials[index]);
          }
          sink.set_lease(msg.lease);
          SweepRunner::Options runner_options;
          runner_options.threads = options.threads;
          runner_options.sink = &sink;
          runner_options.metrics = &registry;
          if (options.on_trial_done)
            runner_options.on_trial_done =
                [&](std::size_t, std::size_t, const TrialResult& result) {
                  options.on_trial_done(result);
                };
          const std::size_t sent_before = sink.rows_sent();
          try {
            (void)SweepRunner(runner_options).run(todo);
          } catch (const std::exception& e) {
            // Covers the AbortLease test hook too (its what() says so).
            out.trials_run += sink.rows_sent() - sent_before;
            out.error = e.what();
            return;
          }
          out.trials_run += todo.size();
          ++out.leases_completed;
          send_request = true;
          continue;
        }
        case Type::kHello:
        case Type::kWelcome:
        case Type::kRequest:
        case Type::kResult:
        case Type::kHeartbeat:
        case Type::kStats:
        case Type::kStatsReply:
        case Type::kForeignVersion:
          out.error = "unexpected frame from coordinator";
          return;
      }
    }
  };
  run();

  stop_heartbeat.store(true, std::memory_order_relaxed);
  heartbeat.join();
  return out;
}

}  // namespace adaptbf
