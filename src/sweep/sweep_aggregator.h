// Aggregation of seeded repetitions into per-cell statistics.
//
// A "cell" is one grid coordinate (scenario, policy, OST count, token
// rate); its trials differ only in repetition seed. The aggregator reports
// mean / sample stddev / 95% confidence half-width (Student t) for the
// headline metrics, Jain fairness across jobs, and tail latency — the
// numbers a campaign exists to produce.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>  // adaptbf-lint: allow(unordered-output)
#include <vector>

#include "support/stats.h"
#include "sweep/sweep_runner.h"

namespace adaptbf {

/// Mean/stddev/CI of one metric across a cell's repetitions.
struct SampleSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;    ///< Sample stddev (n-1 divisor); 0 when n < 2.
  double ci95_half = 0.0; ///< t_{.975,n-1} * stddev / sqrt(n); 0 when n < 2.
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes raw samples. Empty input gives an all-zero summary.
[[nodiscard]] SampleSummary summarize_samples(std::span<const double> values);

/// Summary of an already-accumulated StreamingStats (the streaming
/// equivalent of summarize_samples; both produce identical numbers for
/// the same add() sequence).
[[nodiscard]] SampleSummary summarize_stats(const StreamingStats& stats);

/// Two-sided 95% Student t critical value for `df` degrees of freedom.
/// Exact table for df <= 30; conservative (next lower df, i.e. never
/// understating the interval) between table rows; 1.962 asymptotically.
/// df = 0 returns 0 (CI undefined for n = 1).
[[nodiscard]] double student_t95(std::size_t df);

struct CellStats {
  std::string scenario;
  BwControl policy = BwControl::kNone;
  std::uint32_t num_osts = 1;
  double max_token_rate = -1.0;
  std::size_t trials = 0;

  SampleSummary aggregate_mibps;
  SampleSummary fairness;
  SampleSummary p99_ms;
  double mean_horizon_s = 0.0;
  std::uint64_t total_bytes = 0;  ///< Summed over repetitions.

  /// Same key as TrialSpec/TrialResult::cell_id(): a cell and the trials
  /// that fed it always agree on identity.
  [[nodiscard]] std::string cell_id() const;
};

/// Incremental per-cell accumulation over StreamingStats: add() one trial
/// at a time (jobs payloads are never touched, so rows streamed off a
/// campaign journal aggregate in bounded memory), then cells() emits the
/// per-cell statistics ordered by each cell's lowest trial index — grid
/// order, independent of the order trials were added in.
///
/// Numeric determinism caveat: Welford accumulation is sequence-dependent
/// in the last ulps, so bit-identical artifacts require feeding trials in
/// index order (every caller in this repo does). merge() combines two
/// aggregators via StreamingStats::merge for sharded/multi-process
/// campaigns; merged statistics are mathematically equal but not
/// bit-guaranteed against the single-pass order.
class StreamingCellAggregator {
 public:
  void add(const TrialResult& trial);
  void merge(const StreamingCellAggregator& other);

  [[nodiscard]] std::size_t trials_added() const { return trials_; }
  [[nodiscard]] std::vector<CellStats> cells() const;

 private:
  struct CellAccumulator {
    std::string scenario;
    BwControl policy = BwControl::kNone;
    std::uint32_t num_osts = 1;
    double max_token_rate = -1.0;
    std::size_t first_index = 0;  ///< Lowest trial index seen in the cell.
    std::size_t trials = 0;
    StreamingStats mibps;
    StreamingStats fairness;
    StreamingStats p99_ms;
    double horizon_sum = 0.0;
    std::uint64_t total_bytes = 0;
  };
  std::vector<CellAccumulator> cells_;
  /// cell_id -> slot. Lookup only: output order comes from cells_, which
  /// records first-seen order — never from this map's iteration.
  std::unordered_map<std::string, std::size_t>  // adaptbf-lint: allow(unordered-output)
      index_;
  std::size_t trials_ = 0;
};

/// Groups trials into cells and computes per-cell statistics via
/// StreamingCellAggregator. Deterministic: depends only on the trial
/// list, not execution order.
[[nodiscard]] std::vector<CellStats> aggregate_sweep(
    std::span<const TrialResult> trials);

}  // namespace adaptbf
