// Aggregation of seeded repetitions into per-cell statistics.
//
// A "cell" is one grid coordinate (scenario, policy, OST count, token
// rate); its trials differ only in repetition seed. The aggregator reports
// mean / sample stddev / 95% confidence half-width (Student t) for the
// headline metrics, Jain fairness across jobs, and tail latency — the
// numbers a campaign exists to produce.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sweep/sweep_runner.h"

namespace adaptbf {

/// Mean/stddev/CI of one metric across a cell's repetitions.
struct SampleSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;    ///< Sample stddev (n-1 divisor); 0 when n < 2.
  double ci95_half = 0.0; ///< t_{.975,n-1} * stddev / sqrt(n); 0 when n < 2.
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes raw samples. Empty input gives an all-zero summary.
[[nodiscard]] SampleSummary summarize_samples(std::span<const double> values);

/// Two-sided 95% Student t critical value for `df` degrees of freedom.
/// Exact table for df <= 30; conservative (next lower df, i.e. never
/// understating the interval) between table rows; 1.962 asymptotically.
/// df = 0 returns 0 (CI undefined for n = 1).
[[nodiscard]] double student_t95(std::size_t df);

struct CellStats {
  std::string scenario;
  BwControl policy = BwControl::kNone;
  std::uint32_t num_osts = 1;
  double max_token_rate = -1.0;
  std::size_t trials = 0;

  SampleSummary aggregate_mibps;
  SampleSummary fairness;
  SampleSummary p99_ms;
  double mean_horizon_s = 0.0;
  std::uint64_t total_bytes = 0;  ///< Summed over repetitions.

  [[nodiscard]] std::string cell_id() const;
};

/// Groups trials into cells (first-appearance order, which for an
/// expand()ed sweep is grid order) and computes per-cell statistics.
/// Deterministic: depends only on the trial list, not execution order.
[[nodiscard]] std::vector<CellStats> aggregate_sweep(
    std::span<const TrialResult> trials);

}  // namespace adaptbf
