// Network-distributed campaign dispatch: one coordinator, N workers,
// TCP message passing instead of a shared filesystem.
//
// The shard backend (shard.h) fans a campaign out across processes that
// share a disk; this layer removes that requirement. The coordinator
// expands the grid once, opens ONE unsharded journal (trial_sink.h), and
// leases work units — small batches of trial indices — to workers that
// connect over TCP. Workers run their leases with the ordinary
// SweepRunner and stream each finished trial row back; the coordinator
// validates every row against the expanded grid (resume.h) and appends it
// to the journal. Because rows are deterministic and the journal is
// append-order-independent, the coordinator's journal is a first-class
// campaign journal: its derived CSV/JSON are byte-identical to a
// single-process run, no matter how trials were distributed, how many
// workers died, or how many duplicate rows arrived.
//
// Fault model:
//   - worker silent past the lease timeout, or its connection drops: the
//     lease's undelivered trials are re-queued and handed to another
//     worker (delivered rows are already journaled and never re-run)
//   - duplicate delivery (a re-leased trial finishing twice, a retried
//     frame): rows are deterministic, so the first valid row wins and
//     later copies are counted and discarded — the exact stance the
//     resume scanner takes on duplicate journal lines
//   - coordinator killed: the journal is an ordinary resumable journal;
//     restart `serve` with resume=true and only missing trials are
//     re-leased
//   - malformed frame, wrong protocol version, wrong sweep/grid: the
//     offending connection is rejected with a named error and dropped;
//     the campaign is never poisoned
//
// Workers need the same sweep file (they expand the grid themselves and
// prove it with the grid hash in their hello) but no shared storage.
// Wire format: net/frame.h frames carrying the JSON messages below;
// docs/formats.md documents every frame field-by-field.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/sweep_spec.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

/// Journal wire format generation: the value of the header's
/// "adaptbf_sweep" key. The shard stamp (PR 3) is a backward-compatible
/// optional extension, not a new generation.
inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// Dispatch protocol generation: the value of every message's
/// "adaptbf_dispatch" key. A coordinator rejects hellos from any other
/// generation by name, so mixed-version fleets fail loudly at connect.
inline constexpr std::uint32_t kDispatchProtocolVersion = 1;

/// Stats frame generation: the value of the stats/stats_reply messages'
/// "stats_version" key. Versioned separately from the dispatch protocol
/// so the telemetry schema can evolve without invalidating running
/// worker fleets; a coordinator rejects unknown stats generations by
/// name (tests/sweep/dispatch_test.cpp pins this).
inline constexpr std::uint32_t kStatsVersion = 1;

/// Metric names the coordinator registers (docs/observability.md).
/// Fleet row totals come ONLY from coordinator-side journaling — worker
/// heartbeat counters feed per-worker gauges, never fleet sums, so a
/// reclaimed-then-completed lease can never double-count.
inline constexpr char kMetricDispatchRowsJournaled[] =
    "adaptbf_dispatch_rows_journaled_total";
inline constexpr char kMetricDispatchRowsDuplicate[] =
    "adaptbf_dispatch_rows_duplicate_total";
inline constexpr char kMetricDispatchRowsDone[] = "adaptbf_dispatch_rows_done";
inline constexpr char kMetricDispatchTrialsTotal[] =
    "adaptbf_dispatch_trials_total";
inline constexpr char kMetricDispatchLeasesGranted[] =
    "adaptbf_dispatch_leases_granted_total";
inline constexpr char kMetricDispatchLeasesReclaimed[] =
    "adaptbf_dispatch_leases_reclaimed_total";
inline constexpr char kMetricDispatchLeasesOutstanding[] =
    "adaptbf_dispatch_leases_outstanding";
inline constexpr char kMetricDispatchWorkersConnected[] =
    "adaptbf_dispatch_workers_connected";
inline constexpr char kMetricDispatchWorkersSeen[] =
    "adaptbf_dispatch_workers_seen_total";
inline constexpr char kMetricDispatchFramesReceived[] =
    "adaptbf_dispatch_frames_received_total";
inline constexpr char kMetricDispatchRxBytes[] =
    "adaptbf_dispatch_rx_bytes_total";
inline constexpr char kMetricDispatchUptime[] =
    "adaptbf_dispatch_uptime_seconds";
inline constexpr char kMetricDispatchRowsPerSec[] =
    "adaptbf_dispatch_rows_per_second";
/// Per-worker series, labeled worker="<session id>".
inline constexpr char kMetricWorkerRows[] =
    "adaptbf_dispatch_worker_rows_journaled_total";
inline constexpr char kMetricWorkerDuplicates[] =
    "adaptbf_dispatch_worker_rows_duplicate_total";
inline constexpr char kMetricWorkerTrialsDone[] =
    "adaptbf_dispatch_worker_trials_done";
inline constexpr char kMetricWorkerRuntimeEwma[] =
    "adaptbf_dispatch_worker_runtime_ewma_ms";

// ------------------------------------------------------------ wire format
//
// One JSON object per frame, machine-written in a fixed dialect (exact
// key order, no whitespace) and read back with the strict support/json.h
// scanner. Builders and parser are public so tests — and future tooling —
// can speak the protocol without a live runner.

namespace dispatch_wire {

/// Worker -> coordinator, first frame: prove protocol + campaign identity.
[[nodiscard]] std::string hello(const std::string& sweep,
                                std::uint64_t grid_hash,
                                std::uint64_t trials);
/// Coordinator -> worker: hello accepted; `worker` is the session id.
[[nodiscard]] std::string welcome(std::uint32_t worker);
/// Coordinator -> worker: hello (or a later frame) rejected; the
/// connection closes after this frame.
[[nodiscard]] std::string error_msg(const std::string& message);
/// Worker -> coordinator: ready for a lease.
[[nodiscard]] std::string request();
/// Coordinator -> worker: run these trial indices under lease `lease`.
[[nodiscard]] std::string lease(std::uint64_t lease,
                                std::span<const std::uint64_t> trials);
/// Coordinator -> worker: nothing to lease right now; keep the connection
/// open — a lease (re-leased from a dead worker) or `done` will follow.
[[nodiscard]] std::string wait();
/// Worker -> coordinator: one finished trial. `row` is the EXACT
/// trial_to_jsonl line (no newline); embedding the bytes verbatim is what
/// keeps the coordinator's journal byte-identical to a local run's.
[[nodiscard]] std::string result(std::uint64_t lease, std::string_view row);
/// Worker -> coordinator: liveness while a long trial runs.
[[nodiscard]] std::string heartbeat();
/// Heartbeat with an attached counters payload: lifetime trials run by
/// this worker plus its per-trial runtime EWMA. The coordinator folds
/// these into per-worker gauges; the bare form stays valid (a frame from
/// before the worker's first counter flush parses identically).
[[nodiscard]] std::string heartbeat_counters(std::uint64_t trials_done,
                                             double runtime_ewma_ms);
/// Coordinator -> worker: campaign complete; exit cleanly.
[[nodiscard]] std::string done();
/// Anyone -> coordinator: one stats poll. Valid WITHOUT a hello — a
/// monitoring client never joins the campaign — and repeatable on one
/// connection (`--watch`). `format` is "json" or "prom".
[[nodiscard]] std::string stats_request(const std::string& format);
/// Coordinator -> poller: the rendered stats document (docs/formats.md).
[[nodiscard]] std::string stats_reply(std::string_view body);

struct Message {
  enum class Type {
    kHello,
    kWelcome,
    kError,
    kRequest,
    kLease,
    kWait,
    kResult,
    kHeartbeat,
    kDone,
    kStats,
    kStatsReply,
    /// Well-formed envelope, foreign "adaptbf_dispatch" generation.
    /// `version` holds the peer's; nothing else is parsed.
    kForeignVersion,
  };
  Type type = Type::kHeartbeat;
  std::uint32_t version = 0;

  std::string sweep;            ///< hello
  std::uint64_t grid_hash = 0;  ///< hello
  std::uint64_t trials = 0;     ///< hello: full expanded-grid size
  std::uint32_t worker = 0;     ///< welcome
  std::string message;          ///< error
  std::uint64_t lease = 0;      ///< lease, result
  std::vector<std::uint64_t> indices;  ///< lease
  std::string row;              ///< result: exact journal-row bytes

  bool has_counters = false;        ///< heartbeat: counters attached
  std::uint64_t trials_done = 0;    ///< heartbeat counters
  double runtime_ewma_ms = 0.0;     ///< heartbeat counters
  /// stats, stats_reply. A foreign stats generation parses with
  /// stats_version set and nothing else, mirroring kForeignVersion: the
  /// receiver rejects the STATS version by name.
  std::uint32_t stats_version = 0;
  std::string format;  ///< stats: "json" | "prom"
  std::string body;    ///< stats_reply: rendered document
};

/// Strict parse of one frame payload. False on any malformation — except
/// a well-formed envelope with a foreign protocol version, which parses
/// to kForeignVersion so the receiver can reject it BY NAME instead of
/// as garbage.
[[nodiscard]] bool parse(std::string_view payload, Message& out);

}  // namespace dispatch_wire

// ------------------------------------------------------------ coordinator

struct DispatchCoordinatorOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (tests read
  /// DispatchCoordinator::port() back).
  std::uint16_t port = 0;
  /// Trials per lease. Small leases spread load and shrink the re-run
  /// cost of a dead worker; large leases amortize round trips.
  std::uint32_t lease_size = 16;
  /// A lease whose worker sends nothing (rows, heartbeats, anything) for
  /// this long is reclaimed and its undelivered trials re-leased; the
  /// silent connection is dropped. Must exceed the workers' heartbeat
  /// interval with margin.
  double lease_timeout_s = 30.0;
  /// Journal durability knobs (tests disable fsync). The coordinator
  /// overrides sink.metrics with its own registry so journal counters
  /// show up in the stats endpoint.
  JsonlSinkOptions sink{};
  /// Keep serving `stats` polls for this long after the campaign
  /// completes (workers are released immediately). A scraper or the CI
  /// smoke can read the FINAL totals — without a linger the listener
  /// vanishes the instant the last row lands.
  double linger_s = 0.0;
  /// Called after each newly journaled trial, from the serve() thread.
  std::function<void(std::size_t rows_done, std::size_t total)> on_progress;
};

/// Outcome of one serve() call. rows/duplicates/leases count THIS call's
/// traffic (a resumed serve starts from the journal's existing rows).
struct DispatchServeResult {
  std::string error;  ///< Empty unless serving itself failed (I/O, bind).
  bool complete = false;          ///< Every trial journaled.
  std::size_t rows_received = 0;  ///< Newly journaled rows.
  std::size_t duplicate_rows = 0; ///< Valid re-deliveries, discarded.
  std::uint32_t workers_seen = 0;
  std::uint32_t leases_granted = 0;
  /// Leases reclaimed from silent/dead workers and re-queued.
  std::uint32_t leases_reclaimed = 0;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// The campaign coordinator: owns the listener and the single unsharded
/// journal. Construction (open) validates/creates the journal exactly
/// like a local `sweep_cli --output` run — a pre-existing journal needs
/// resume=true and must match the sweep name and grid hash; completed
/// trials found there are never re-leased.
class DispatchCoordinator {
 public:
  using Options = DispatchCoordinatorOptions;
  struct Open {
    std::unique_ptr<DispatchCoordinator> coordinator;
    std::string error;  ///< Non-empty when coordinator == nullptr.
    [[nodiscard]] bool ok() const { return coordinator != nullptr; }
  };

  /// `trials` is the full expanded grid and must outlive the coordinator.
  [[nodiscard]] static Open open(const std::string& journal_path,
                                 const std::string& sweep_name,
                                 std::span<const TrialSpec> trials,
                                 bool resume, Options options = {});

  /// Adaptive mode (search/driver.h): no journal and no fixed work list —
  /// the caller decides which trials to run, batch by batch, with
  /// serve_trials(). Workers are indistinguishable from campaign workers:
  /// they hello against the same grid, lease index batches, stream rows,
  /// and park on `wait` between batches (heartbeats keep them past the
  /// silence sweep). The caller owns journaling; the coordinator only
  /// validates rows and returns their exact bytes.
  [[nodiscard]] static Open open_adaptive(const std::string& sweep_name,
                                          std::span<const TrialSpec> trials,
                                          Options options = {});

  ~DispatchCoordinator();
  DispatchCoordinator(const DispatchCoordinator&) = delete;
  DispatchCoordinator& operator=(const DispatchCoordinator&) = delete;

  /// The bound listen port (the ephemeral pick when options.port == 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Accepts workers and dispatches leases until every trial is journaled
  /// (or request_stop()). Blocking; single-threaded; run it on a
  /// dedicated thread if the caller needs to do anything else. The
  /// journal is flushed before returning, so even a stopped serve leaves
  /// a valid, resumable journal behind.
  [[nodiscard]] DispatchServeResult serve();

  /// Adaptive mode only. Accepts workers and leases exactly the given
  /// trial indices until every one has a validated row, then returns the
  /// exact row bytes in `indices` order (workers stay connected, parked
  /// on `wait`). Blocking, like serve(); returns a non-empty error if
  /// serving failed or request_stop() interrupted the batch. Indices
  /// whose rows arrived in an earlier batch (duplicates, re-leases) are
  /// answered from the collected set without re-leasing.
  [[nodiscard]] std::string serve_trials(
      const std::vector<std::size_t>& indices,
      std::vector<std::string>& rows_out);

  /// Adaptive mode only: releases the worker fleet (`done` + drain) and
  /// keeps serving stats polls for Options::linger_s before returning.
  void finish();

  /// The coordinator's metric registry — the one the `stats` endpoint
  /// renders. Adaptive callers register their own series here so search
  /// progress rides `sweep_cli stats --watch` for free.
  [[nodiscard]] MetricRegistry& registry();

  /// Thread-safe: makes a running serve() return at its next poll tick
  /// (<= ~50 ms). Used by tests and signal handlers.
  void request_stop();

 private:
  DispatchCoordinator();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ----------------------------------------------------------------- worker

struct DispatchWorkerOptions {
  /// SweepRunner worker threads per lease; 0 = hardware concurrency.
  std::uint32_t threads = 1;
  /// Liveness cadence; keep well under the coordinator's lease timeout.
  double heartbeat_interval_s = 2.0;
  /// Keep retrying a refused/unreachable connect for this long before
  /// giving up — workers routinely launch before their coordinator.
  double connect_wait_s = 10.0;
  /// Optional local journal: every finished trial is appended here BEFORE
  /// it is streamed, so a worker's completed work survives even if both
  /// the network and the coordinator die. Must not already exist.
  std::string journal_path;
  JsonlSinkOptions sink{};
  /// Called after each finished trial, serialized, before streaming.
  std::function<void(const TrialResult&)> on_trial_done;
  /// Test hook: after streaming this many rows, hard-close the socket and
  /// abandon the lease — simulates a worker killed mid-lease. 0 = never.
  std::size_t abort_after_rows = 0;
};

struct DispatchWorkResult {
  std::string error;  ///< Empty on a clean `done` from the coordinator.
  std::size_t trials_run = 0;
  std::uint32_t leases_completed = 0;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Connects to a coordinator and runs leases until it says `done`.
/// `trials` must be the same full expanded grid the coordinator serves
/// (the hello's grid hash proves it; a mismatch is rejected by name).
/// Any network failure abandons the in-flight lease and returns an error
/// — the coordinator's timeout machinery re-leases the remainder.
[[nodiscard]] DispatchWorkResult run_dispatch_worker(
    const std::string& host, std::uint16_t port, const std::string& sweep_name,
    std::span<const TrialSpec> trials, DispatchWorkerOptions options = {});

}  // namespace adaptbf
