// Multi-process campaign fan-out: deterministic grid sharding and
// journal merging.
//
// A campaign shards by splitting its expanded trial list into K disjoint
// subsets, one per OS process (or machine sharing a filesystem). Each
// shard journals to its own file — header stamped with the shard identity
// plus the full-grid hash — runs and resumes independently via the
// resume.h planner, and a final merge validates the shard set (same grid,
// disjoint coverage, no gaps, no trial claimed by two shards) and writes
// one unsharded journal whose derived CSV/JSON are byte-identical to a
// single-process run of the whole campaign.
//
// Partitioning is by index stride (trial i belongs to shard i mod K), not
// contiguous ranges: adjacent indices differ only in repetition or the
// innermost grid axis, so each expensive scenario's trials spread evenly
// across shards instead of one shard inheriting the slowest scenario
// block wholesale. The assignment is a pure function of (index, K) —
// every process derives the same plan from the sweep file alone, with no
// coordination channel.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sweep/sweep_spec.h"

namespace adaptbf {

/// Identity of one shard in a K-way campaign split. The default {0, 1} is
/// the unsharded whole-campaign case; every PR 2 journal reads as 0/1.
struct ShardRef {
  std::uint32_t index = 0;  ///< In [0, count).
  std::uint32_t count = 1;  ///< Total shards; 1 = unsharded.

  [[nodiscard]] bool sharded() const { return count > 1; }
  [[nodiscard]] bool operator==(const ShardRef&) const = default;
  /// "3/8" (1-based position would lie about --shard-index; keep 0-based).
  [[nodiscard]] std::string str() const;
};

/// Non-empty diagnostic when the pair is not a valid shard identity
/// (count == 0, or index >= count).
[[nodiscard]] std::string shard_ref_error(const ShardRef& shard);

/// The shard that owns a trial index under a K-way stride split.
[[nodiscard]] constexpr std::uint32_t shard_owner(std::size_t trial_index,
                                                  std::uint32_t shard_count) {
  return static_cast<std::uint32_t>(trial_index % shard_count);
}

/// One shard's slice of an expanded campaign.
struct ShardPlan {
  ShardRef shard;
  /// The owned trials, ascending index (original full-grid indices).
  std::vector<TrialSpec> trials;
};

/// Deterministic stride partition of the expanded grid. Requires a valid
/// `shard` (see shard_ref_error) and `trials` dense-indexed from expand().
/// The K plans for a fixed grid are disjoint and cover every trial.
[[nodiscard]] ShardPlan plan_shard(std::span<const TrialSpec> trials,
                                   ShardRef shard);

/// Canonical per-shard journal path: "<base>.shard-I-of-K" for sharded
/// runs, `base` unchanged for the unsharded {0, 1}. Every shard process
/// passes the same --output base and lands on its own file.
[[nodiscard]] std::string shard_journal_path(const std::string& base,
                                             const ShardRef& shard);

/// Outcome of merging K shard journals into one unsharded journal.
struct ShardMergeResult {
  std::string error;           ///< Empty on success.
  std::uint32_t shard_count = 0;
  std::size_t rows = 0;        ///< Trials written to the merged journal.
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Validates and merges a complete shard set into `merged_path`.
///
/// Every journal must carry the sweep's name, the expanded grid's hash,
/// and a shard stamp; the set must agree on K, contain each shard index
/// exactly once, hold only trials its shard owns (a trial surfacing in a
/// foreign journal is a double-count in the making and is rejected, never
/// silently dropped), and cover the grid with no gaps. Each failure mode
/// gets a distinct, actionable error naming the offending file, shard,
/// and line. `merged_path` must be a new file: naming an input shard
/// journal (which opening for write would destroy) or any existing file
/// is refused before a byte is written. On success the merged journal
/// holds the unsharded header
/// plus every row in trial-index order, each copied byte-for-byte from
/// its shard journal — rows are deterministic, so artifacts derived from
/// the merge are byte-identical to a single-process campaign's.
[[nodiscard]] ShardMergeResult merge_shard_journals(
    std::span<const std::string> shard_paths, const std::string& sweep_name,
    std::span<const TrialSpec> trials, const std::string& merged_path);

}  // namespace adaptbf
