#include "sweep/sweep_io.h"

#include <fstream>
#include <sstream>
#include <unordered_set>  // adaptbf-lint: allow(unordered-output)

#include "support/ini.h"
#include "workload/scenario_io.h"
#include "workload/scenarios_paper.h"

namespace adaptbf {

namespace {

SweepLoadResult fail(std::string message) {
  SweepLoadResult result;
  result.error = std::move(message);
  return result;
}

/// Splits a comma-separated value list, trimming each element.
std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view raw =
        text.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    const std::string_view item = trim(raw);
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Builtin paper scenarios by short name. The control baked in here is a
/// placeholder: expand() re-applies the policy axis per trial.
std::optional<SweepScenario> builtin_scenario(std::string_view name) {
  if (name == "token_allocation")
    return SweepScenario{"token_allocation",
                         scenario_token_allocation(BwControl::kNone)};
  if (name == "redistribution")
    return SweepScenario{"redistribution",
                         scenario_token_redistribution(BwControl::kNone)};
  if (name == "recompensation")
    return SweepScenario{"recompensation",
                         scenario_token_recompensation(BwControl::kNone)};
  return std::nullopt;
}

/// Path stem ("dir/noisy.ini" -> "noisy") as the scenario label fallback.
std::string path_stem(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string_view::npos && dot > 0) name = name.substr(0, dot);
  return std::string(name);
}

}  // namespace

SweepLoadResult load_sweep(std::string_view text, const std::string& base_dir) {
  std::string parse_error;
  const auto ini = IniFile::parse(text, &parse_error);
  if (!ini.has_value()) return fail("ini: " + parse_error);

  // Known-key sets are membership tests only (never iterated), so hash
  // order cannot reach any output byte.
  static const std::unordered_set<std::string> known_sweep_keys{  // adaptbf-lint: allow(unordered-output)
      "name",      "policies",        "scenario", "repetitions",
      "base_seed", "start_jitter_ms", "duration_s"};
  static const std::unordered_set<std::string> known_grid_keys{  // adaptbf-lint: allow(unordered-output)
      "osts", "token_rate"};
  static const std::unordered_set<std::string> known_output_keys{  // adaptbf-lint: allow(unordered-output)
      "csv", "json", "jsonl"};
  for (const auto& section : ini->sections()) {
    const std::unordered_set<std::string>* known = nullptr;  // adaptbf-lint: allow(unordered-output)
    if (section == "sweep") known = &known_sweep_keys;
    else if (section == "grid") known = &known_grid_keys;
    else if (section == "output") known = &known_output_keys;
    else if (section == "search") continue;  // search_io.h owns its grammar.
    else return fail("unknown section [" + section + "]");
    for (const auto& key : ini->keys(section))
      if (!known->contains(key))
        return fail("unknown key '" + key + "' in [" + section + "]");
  }

  SweepSpec spec;
  if (auto name = ini->get("sweep", "name")) spec.name = *name;

  const auto policy_list = ini->get("sweep", "policies");
  if (!policy_list.has_value())
    return fail("[sweep] needs policies = <comma list>");
  for (const auto& name : split_list(*policy_list)) {
    const auto policy = bw_control_from_name(name);
    if (!policy.has_value())
      return fail("bad policy '" + name + "' (none|static|adaptive|gift)");
    spec.policies.push_back(*policy);
  }
  if (spec.policies.empty()) return fail("policies list is empty");

  const auto scenario_values = ini->get_all("sweep", "scenario");
  if (scenario_values.empty())
    return fail("[sweep] needs at least one scenario = line");
  for (const auto& value : scenario_values) {
    if (value.empty())
      return fail("empty scenario = value (builtin name or file path)");
    if (auto builtin = builtin_scenario(value)) {
      spec.scenarios.push_back(std::move(*builtin));
      continue;
    }
    std::string path = value;
    if (!base_dir.empty() && path.front() != '/')
      path = base_dir + "/" + path;
    const ScenarioLoadResult loaded = load_scenario_file(path);
    if (!loaded.ok())
      return fail("scenario '" + value + "': " + loaded.error);
    SweepScenario scenario;
    scenario.label =
        loaded.spec->name.empty() ? path_stem(value) : loaded.spec->name;
    scenario.spec = std::move(*loaded.spec);
    spec.scenarios.push_back(std::move(scenario));
  }

  if (auto reps = ini->get("sweep", "repetitions")) {
    std::uint64_t value = 0;
    if (!parse_u64(*reps, value) || value == 0)
      return fail("repetitions must be a positive integer");
    spec.repetitions = static_cast<std::uint32_t>(value);
  }
  if (auto seed = ini->get("sweep", "base_seed")) {
    std::uint64_t value = 0;
    if (!parse_u64(*seed, value)) return fail("bad base_seed");
    spec.base_seed = value;
  }
  if (auto jitter = ini->get_double("sweep", "start_jitter_ms")) {
    if (*jitter < 0.0) return fail("start_jitter_ms must be >= 0");
    spec.start_jitter = SimDuration::from_seconds(*jitter / 1e3);
  } else if (ini->get("sweep", "start_jitter_ms")) {
    return fail("bad start_jitter_ms");
  }
  if (auto duration = ini->get_double("sweep", "duration_s")) {
    if (*duration <= 0.0) return fail("duration_s must be positive");
    spec.duration_override = SimDuration::from_seconds(*duration);
  } else if (ini->get("sweep", "duration_s")) {
    return fail("bad duration_s");
  }

  if (auto osts = ini->get("grid", "osts")) {
    for (const auto& item : split_list(*osts)) {
      std::uint64_t value = 0;
      if (!parse_u64(item, value) || value == 0)
        return fail("bad osts value '" + item + "'");
      spec.ost_counts.push_back(static_cast<std::uint32_t>(value));
    }
  }
  if (auto rates = ini->get("grid", "token_rate")) {
    for (const auto& item : split_list(*rates)) {
      double value = 0.0;
      if (!parse_double(item, value) || value <= 0.0)
        return fail("bad token_rate value '" + item + "'");
      spec.token_rates.push_back(value);
    }
  }

  SweepLoadResult result;
  if (ini->has_section("search")) {
    // Forward the raw entries in file order (duplicate keys included —
    // the search layer rejects them by name).
    result.search_section = true;
    const std::vector<std::string> search_keys = ini->keys("search");
    for (std::size_t i = 0; i < search_keys.size(); ++i) {
      const std::string& key = search_keys[i];
      std::size_t occurrence = 0;
      for (std::size_t j = 0; j < i; ++j)
        if (search_keys[j] == key) ++occurrence;
      result.search_entries.emplace_back(
          key, ini->get_all("search", key)[occurrence]);
    }
  }
  if (auto csv = ini->get("output", "csv")) result.csv_path = *csv;
  if (auto json = ini->get("output", "json")) result.json_path = *json;
  if (auto jsonl = ini->get("output", "jsonl")) result.jsonl_path = *jsonl;
  result.spec = std::move(spec);
  return result;
}

SweepLoadResult load_sweep_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  return load_sweep(buffer.str(), base_dir);
}

}  // namespace adaptbf
