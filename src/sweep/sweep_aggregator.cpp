#include "sweep/sweep_aggregator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/stats.h"

namespace adaptbf {

SampleSummary summarize_samples(std::span<const double> values) {
  SampleSummary summary;
  if (values.empty()) return summary;
  StreamingStats stats;
  for (const double v : values) stats.add(v);
  summary.n = stats.count();
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  if (summary.n >= 2) {
    summary.ci95_half = student_t95(summary.n - 1) * summary.stddev /
                        std::sqrt(static_cast<double>(summary.n));
  }
  return summary;
}

double student_t95(std::size_t df) {
  // Two-sided 95% (alpha/2 = .025) critical values.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  // Conservative between sparse rows: use the next LOWER df's (larger)
  // value so reported intervals never understate uncertainty.
  if (df < 40) return kTable[30];
  if (df < 60) return 2.021;
  if (df < 120) return 2.000;
  if (df < 1000) return 1.980;
  return 1.962;  // t at df=1000; still >= the limit 1.960 beyond.
}

std::string CellStats::cell_id() const {
  TrialSpec key;
  key.scenario = scenario;
  key.policy = policy;
  key.num_osts = num_osts;
  key.max_token_rate = max_token_rate;
  return key.cell_id();
}

std::vector<CellStats> aggregate_sweep(std::span<const TrialResult> trials) {
  // Bucket trial indices per cell, keeping first-appearance cell order.
  struct Bucket {
    std::vector<const TrialResult*> members;
  };
  std::vector<std::string> order;
  std::unordered_map<std::string, Bucket> buckets;
  for (const auto& trial : trials) {
    const std::string id = trial.cell_id();
    auto [it, inserted] = buckets.try_emplace(id);
    if (inserted) order.push_back(id);
    it->second.members.push_back(&trial);
  }

  std::vector<CellStats> cells;
  cells.reserve(order.size());
  for (const auto& id : order) {
    const Bucket& bucket = buckets.at(id);
    CellStats cell;
    const TrialResult& first = *bucket.members.front();
    cell.scenario = first.scenario;
    cell.policy = first.policy;
    cell.num_osts = first.num_osts;
    cell.max_token_rate = first.max_token_rate;
    cell.trials = bucket.members.size();

    std::vector<double> mibps, fairness, p99;
    mibps.reserve(cell.trials);
    fairness.reserve(cell.trials);
    p99.reserve(cell.trials);
    double horizon_sum = 0.0;
    for (const TrialResult* trial : bucket.members) {
      mibps.push_back(trial->aggregate_mibps);
      fairness.push_back(trial->fairness);
      p99.push_back(trial->p99_ms);
      horizon_sum += trial->horizon_s;
      cell.total_bytes += trial->total_bytes;
    }
    cell.aggregate_mibps = summarize_samples(mibps);
    cell.fairness = summarize_samples(fairness);
    cell.p99_ms = summarize_samples(p99);
    cell.mean_horizon_s = horizon_sum / static_cast<double>(cell.trials);
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace adaptbf
