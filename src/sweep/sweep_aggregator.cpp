#include "sweep/sweep_aggregator.h"

#include <algorithm>
#include <cmath>

#include "support/stats.h"

namespace adaptbf {

SampleSummary summarize_samples(std::span<const double> values) {
  StreamingStats stats;
  for (const double v : values) stats.add(v);
  return summarize_stats(stats);
}

SampleSummary summarize_stats(const StreamingStats& stats) {
  SampleSummary summary;
  if (stats.count() == 0) return summary;
  summary.n = stats.count();
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  if (summary.n >= 2) {
    summary.ci95_half = student_t95(summary.n - 1) * summary.stddev /
                        std::sqrt(static_cast<double>(summary.n));
  }
  return summary;
}

double student_t95(std::size_t df) {
  // Two-sided 95% (alpha/2 = .025) critical values.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  // Conservative between sparse rows: use the next LOWER df's (larger)
  // value so reported intervals never understate uncertainty.
  if (df < 40) return kTable[30];
  if (df < 60) return 2.021;
  if (df < 120) return 2.000;
  if (df < 1000) return 1.980;
  return 1.962;  // t at df=1000; still >= the limit 1.960 beyond.
}

std::string CellStats::cell_id() const {
  TrialSpec key;
  key.scenario = scenario;
  key.policy = policy;
  key.num_osts = num_osts;
  key.max_token_rate = max_token_rate;
  return key.cell_id();
}

void StreamingCellAggregator::add(const TrialResult& trial) {
  const std::string id = trial.cell_id();
  auto [it, inserted] = index_.try_emplace(id, cells_.size());
  if (inserted) {
    CellAccumulator cell;
    cell.scenario = trial.scenario;
    cell.policy = trial.policy;
    cell.num_osts = trial.num_osts;
    cell.max_token_rate = trial.max_token_rate;
    cell.first_index = trial.index;
    cells_.push_back(std::move(cell));
  }
  CellAccumulator& cell = cells_[it->second];
  cell.first_index = std::min(cell.first_index, trial.index);
  ++cell.trials;
  cell.mibps.add(trial.aggregate_mibps);
  cell.fairness.add(trial.fairness);
  cell.p99_ms.add(trial.p99_ms);
  cell.horizon_sum += trial.horizon_s;
  cell.total_bytes += trial.total_bytes;
  ++trials_;
}

void StreamingCellAggregator::merge(const StreamingCellAggregator& other) {
  for (const CellAccumulator& theirs : other.cells_) {
    TrialSpec key;
    key.scenario = theirs.scenario;
    key.policy = theirs.policy;
    key.num_osts = theirs.num_osts;
    key.max_token_rate = theirs.max_token_rate;
    auto [it, inserted] = index_.try_emplace(key.cell_id(), cells_.size());
    if (inserted) {
      cells_.push_back(theirs);
      continue;
    }
    CellAccumulator& ours = cells_[it->second];
    ours.first_index = std::min(ours.first_index, theirs.first_index);
    ours.trials += theirs.trials;
    ours.mibps.merge(theirs.mibps);
    ours.fairness.merge(theirs.fairness);
    ours.p99_ms.merge(theirs.p99_ms);
    ours.horizon_sum += theirs.horizon_sum;
    ours.total_bytes += theirs.total_bytes;
  }
  trials_ += other.trials_;
}

std::vector<CellStats> StreamingCellAggregator::cells() const {
  // Order by each cell's lowest trial index: grid order for an expanded
  // sweep, regardless of the order rows were added (a resumed journal
  // holds rows in completion order, not index order).
  std::vector<const CellAccumulator*> ordered;
  ordered.reserve(cells_.size());
  for (const auto& cell : cells_) ordered.push_back(&cell);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellAccumulator* a, const CellAccumulator* b) {
              return a->first_index < b->first_index;
            });

  std::vector<CellStats> out;
  out.reserve(ordered.size());
  for (const CellAccumulator* acc : ordered) {
    CellStats cell;
    cell.scenario = acc->scenario;
    cell.policy = acc->policy;
    cell.num_osts = acc->num_osts;
    cell.max_token_rate = acc->max_token_rate;
    cell.trials = acc->trials;
    cell.aggregate_mibps = summarize_stats(acc->mibps);
    cell.fairness = summarize_stats(acc->fairness);
    cell.p99_ms = summarize_stats(acc->p99_ms);
    cell.mean_horizon_s =
        acc->horizon_sum / static_cast<double>(acc->trials);
    cell.total_bytes = acc->total_bytes;
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<CellStats> aggregate_sweep(std::span<const TrialResult> trials) {
  StreamingCellAggregator aggregator;
  for (const auto& trial : trials) aggregator.add(trial);
  return aggregator.cells();
}

}  // namespace adaptbf
