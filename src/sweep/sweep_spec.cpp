#include "sweep/sweep_spec.h"

#include <cstdio>

#include "support/check.h"
#include "support/random.h"

namespace adaptbf {

namespace {

/// Applies one set of grid coordinates to a copy of the base spec.
ScenarioSpec materialize(const SweepScenario& scenario, BwControl policy,
                         const std::uint32_t* num_osts,
                         const double* token_rate, std::uint64_t seed,
                         SimDuration start_jitter,
                         SimDuration duration_override) {
  ScenarioSpec spec = scenario.spec;
  spec.name = scenario.label;
  spec.control = policy;
  if (num_osts != nullptr) spec.num_osts = *num_osts;
  if (token_rate != nullptr) spec.max_token_rate = *token_rate;
  if (duration_override > SimDuration(0)) spec.duration = duration_override;

  // Per-trial RNG streams: every stochastic input of the materialized spec
  // is reseeded from the trial's private stream so (a) no two trials share
  // generator state and (b) the same repetition draws the same randomness
  // under every policy.
  std::uint64_t stream = 0;
  Xoshiro256 rng(seed);
  for (auto& job : spec.jobs) {
    for (auto& process : job.processes) {
      if (process.kind == ProcessPattern::Kind::kPoisson)
        process.seed = derive_stream_seed(seed, ++stream);
      if (start_jitter > SimDuration(0)) {
        const auto jitter_ns = static_cast<std::int64_t>(
            rng.next_double() * static_cast<double>(start_jitter.ns()));
        process.start_delay += SimDuration(jitter_ns);
      }
    }
  }
  return spec;
}

}  // namespace

std::string TrialSpec::cell_id() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "|%s|%u|%.6g",
                std::string(to_string(policy)).c_str(), num_osts,
                max_token_rate);
  return scenario + buf;
}

std::size_t SweepSpec::trial_count() const {
  const std::size_t osts = ost_counts.empty() ? 1 : ost_counts.size();
  const std::size_t rates = token_rates.empty() ? 1 : token_rates.size();
  return scenarios.size() * policies.size() * osts * rates * repetitions;
}

std::vector<TrialSpec> SweepSpec::expand() const {
  ADAPTBF_CHECK_MSG(!scenarios.empty(), "sweep needs at least one scenario");
  ADAPTBF_CHECK_MSG(!policies.empty(), "sweep needs at least one policy");
  ADAPTBF_CHECK_MSG(repetitions > 0, "sweep needs repetitions >= 1");

  std::vector<TrialSpec> trials;
  trials.reserve(trial_count());
  for (const auto& scenario : scenarios) {
    for (const BwControl policy : policies) {
      const std::size_t osts = ost_counts.empty() ? 1 : ost_counts.size();
      const std::size_t rates = token_rates.empty() ? 1 : token_rates.size();
      for (std::size_t o = 0; o < osts; ++o) {
        for (std::size_t r = 0; r < rates; ++r) {
          for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
            TrialSpec trial;
            trial.index = trials.size();
            trial.scenario = scenario.label;
            trial.policy = policy;
            trial.repetition = rep;
            trial.seed = derive_stream_seed(base_seed, rep);
            const std::uint32_t* ost_override =
                ost_counts.empty() ? nullptr : &ost_counts[o];
            const double* rate_override =
                token_rates.empty() ? nullptr : &token_rates[r];
            trial.spec = materialize(scenario, policy, ost_override,
                                     rate_override, trial.seed, start_jitter,
                                     duration_override);
            trial.num_osts = trial.spec.num_osts;
            trial.max_token_rate = trial.spec.max_token_rate;
            trials.push_back(std::move(trial));
          }
        }
      }
    }
  }
  return trials;
}

}  // namespace adaptbf
