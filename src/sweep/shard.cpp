#include "sweep/shard.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "sweep/resume.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

std::string ShardRef::str() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::string shard_ref_error(const ShardRef& shard) {
  if (shard.count == 0) return "shard count must be >= 1";
  if (shard.index >= shard.count)
    return "shard index " + std::to_string(shard.index) +
           " out of range for " + std::to_string(shard.count) +
           " shard(s) (indices are 0-based)";
  return {};
}

ShardPlan plan_shard(std::span<const TrialSpec> trials, ShardRef shard) {
  ShardPlan plan;
  plan.shard = shard;
  plan.trials.reserve(trials.size() / std::max<std::uint32_t>(shard.count, 1) +
                      1);
  for (const TrialSpec& trial : trials)
    if (shard_owner(trial.index, shard.count) == shard.index)
      plan.trials.push_back(trial);
  return plan;
}

std::string shard_journal_path(const std::string& base,
                               const ShardRef& shard) {
  if (!shard.sharded()) return base;
  return base + ".shard-" + std::to_string(shard.index) + "-of-" +
         std::to_string(shard.count);
}

namespace {

/// First line of a shard journal, parsed and pre-validated against the
/// sweep. Read before the full row scan so shard-set-level errors
/// (disagreeing K, duplicate indices, missing shards) can name every
/// offending file instead of failing on whichever scanned first.
struct ShardHeader {
  std::string path;
  CampaignHeader header;
};

std::string read_shard_header(const std::string& path,
                              const std::string& sweep_name,
                              std::uint64_t grid_hash, std::uint64_t trials,
                              ShardHeader& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return "cannot open shard journal '" + path + "'";
  std::string line;
  if (!std::getline(file, line) ||
      !parse_campaign_header(line, out.header)) {
    return "'" + path + "' line 1: not a campaign journal";
  }
  if (out.header.sweep != sweep_name) {
    return "journal '" + path + "' line 1: belongs to sweep '" +
           out.header.sweep + "', not '" + sweep_name + "'";
  }
  if (out.header.trials != trials || out.header.grid_hash != grid_hash) {
    return "journal '" + path +
           "' line 1: written for a different campaign grid than this "
           "sweep file expands to (sweep file edited after the shards "
           "ran? re-run the campaign)";
  }
  if (!out.header.shard.sharded()) {
    return "journal '" + path +
           "' line 1: is an unsharded campaign journal, not a shard "
           "(its artifacts can be exported directly; merge is for "
           "--shard-count runs)";
  }
  out.path = path;
  return {};
}

}  // namespace

ShardMergeResult merge_shard_journals(std::span<const std::string> shard_paths,
                                      const std::string& sweep_name,
                                      std::span<const TrialSpec> trials,
                                      const std::string& merged_path) {
  ShardMergeResult result;
  if (shard_paths.empty()) {
    result.error = "no shard journals given";
    return result;
  }

  // Pass 1: headers only — establish the shard set's shape and reject
  // set-level misuse with every offender named.
  const std::uint64_t grid_hash = sweep_grid_hash(trials);
  std::vector<ShardHeader> headers(shard_paths.size());
  for (std::size_t i = 0; i < shard_paths.size(); ++i) {
    result.error = read_shard_header(shard_paths[i], sweep_name, grid_hash,
                                     trials.size(), headers[i]);
    if (!result.ok()) return result;
  }

  const std::uint32_t shard_count = headers.front().header.shard.count;
  result.shard_count = shard_count;
  for (const ShardHeader& h : headers) {
    if (h.header.shard.count != shard_count) {
      result.error = "shard journals disagree on the shard count: '" +
                     headers.front().path + "' is shard " +
                     headers.front().header.shard.str() + " but '" + h.path +
                     "' is shard " + h.header.shard.str() +
                     " (slices of different campaign splits cannot be "
                     "merged)";
      return result;
    }
  }

  std::vector<const ShardHeader*> by_index(shard_count, nullptr);
  for (const ShardHeader& h : headers) {
    const std::uint32_t index = h.header.shard.index;
    if (by_index[index] != nullptr) {
      result.error = "overlapping shards: '" + by_index[index]->path +
                     "' and '" + h.path + "' both claim shard " +
                     h.header.shard.str() +
                     " (merging both would double-count its trials)";
      return result;
    }
    by_index[index] = &h;
  }
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    if (by_index[i] == nullptr) {
      result.error = "missing shard " + ShardRef{i, shard_count}.str() +
                     ": got " + std::to_string(headers.size()) + " of " +
                     std::to_string(shard_count) +
                     " shard journals (pass every shard's file)";
      return result;
    }
  }

  // The output must not alias an input (opening it for write would
  // destroy that shard's rows before they are read) and must not clobber
  // an existing file — the same no-overwrite stance the run path takes.
  std::error_code ec;
  if (std::filesystem::exists(merged_path, ec)) {
    for (const ShardHeader& h : headers) {
      if (std::filesystem::equivalent(merged_path, h.path, ec)) {
        result.error = "merged journal path '" + merged_path +
                       "' is shard journal '" + h.path +
                       "' itself; writing the merge there would destroy "
                       "the shard's rows — choose a different --output";
        return result;
      }
    }
    result.error = "'" + merged_path +
                   "' already exists; remove it or choose a different "
                   "--output for the merged journal";
    return result;
  }

  // Pass 2: full row scan of each slice, in shard order. The scanner
  // enforces per-row ownership (a trial surfacing in a foreign shard's
  // journal is rejected with its line number) and completeness.
  std::vector<CampaignScan> scans(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    const std::string& path = by_index[i]->path;
    scans[i] = scan_campaign_file(path, sweep_name, trials,
                                  ShardRef{i, shard_count});
    if (!scans[i].ok()) {
      result.error = scans[i].error;
      return result;
    }
    if (!scans[i].complete()) {
      result.error =
          "shard " + ShardRef{i, shard_count}.str() + " journal '" + path +
          "' is incomplete (" +
          std::to_string(scans[i].expected_rows - scans[i].rows) + " of " +
          std::to_string(scans[i].expected_rows) +
          " trials missing; finish it with --shard-index " +
          std::to_string(i) + " --shard-count " +
          std::to_string(shard_count) + " --resume)";
      return result;
    }
  }

  // Emit: unsharded header, then every row byte-for-byte from its owning
  // slice in trial-index order. Rows are deterministic, so the merged
  // journal's derived CSV/JSON match a single-process campaign's exactly.
  std::ofstream merged(merged_path, std::ios::binary);
  if (!merged) {
    result.error = "cannot create merged journal '" + merged_path + "'";
    return result;
  }
  CampaignHeader header;
  header.sweep = sweep_name;
  header.grid_hash = grid_hash;
  header.trials = trials.size();
  merged << campaign_header_line(header) << '\n';

  std::vector<std::ifstream> slices(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    slices[i].open(by_index[i]->path, std::ios::binary);
    if (!slices[i]) {
      result.error = "cannot open shard journal '" + by_index[i]->path + "'";
      return result;
    }
  }
  std::string line;
  for (std::size_t index = 0; index < trials.size(); ++index) {
    const std::uint32_t owner = shard_owner(index, shard_count);
    std::ifstream& slice = slices[owner];
    slice.clear();
    slice.seekg(scans[owner].row_offset[index]);
    if (!std::getline(slice, line)) {
      result.error = "journal '" + by_index[owner]->path + "' line " +
                     std::to_string(scans[owner].row_line[index]) +
                     ": changed while merging (row for trial " +
                     std::to_string(index) + " no longer readable)";
      return result;
    }
    merged << line << '\n';
    ++result.rows;
  }
  merged.flush();
  if (!merged.good()) {
    result.error = "cannot write merged journal '" + merged_path + "'";
    return result;
  }
  return result;
}

}  // namespace adaptbf
