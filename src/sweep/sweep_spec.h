// Declarative multi-trial experiment campaigns.
//
// A SweepSpec is a parameter grid over ScenarioSpec fields: the cross
// product of base scenarios x control policies x OST counts x token rates,
// repeated over seeded repetitions. expand() materializes the grid into a
// flat trial list with dense indices; the runner executes trials in any
// order and the aggregator groups them back into grid cells. Everything
// downstream keys off TrialSpec::index, so results are independent of
// execution order (and hence of worker-thread count).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace adaptbf {

/// One base scenario entered into the grid. `label` names the grid axis
/// value (CSV/JSON cell key); the spec's own name is replaced by it.
struct SweepScenario {
  std::string label;
  ScenarioSpec spec;
};

/// One fully materialized run: grid coordinates plus the concrete spec.
struct TrialSpec {
  std::size_t index = 0;        ///< Dense [0, trial_count), row-major.
  std::string scenario;         ///< SweepScenario label.
  BwControl policy = BwControl::kNone;
  std::uint32_t num_osts = 1;
  double max_token_rate = -1.0;  ///< <= 0: derived from the disk model.
  std::uint32_t repetition = 0;  ///< 0-based seed repetition.
  std::uint64_t seed = 0;        ///< Per-trial RNG stream seed.
  ScenarioSpec spec;

  /// Grid-cell identity: every coordinate except the repetition. Trials
  /// sharing a cell id are aggregated as seeded repetitions of one cell.
  [[nodiscard]] std::string cell_id() const;
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<SweepScenario> scenarios;
  /// Policies to run each scenario under. Must be non-empty to expand.
  std::vector<BwControl> policies;
  /// Optional OST-count axis; empty keeps each scenario's own num_osts.
  std::vector<std::uint32_t> ost_counts;
  /// Optional token-rate axis (tokens/s); empty keeps the spec's value.
  std::vector<double> token_rates;
  /// Seeded repetitions per grid cell.
  std::uint32_t repetitions = 1;
  /// Base seed; repetition r uses derive_stream_seed(base_seed, r), so the
  /// same workload randomness is paired across policies (paired-sample
  /// comparisons have lower variance than independent draws).
  std::uint64_t base_seed = 1;
  /// When > 0, each process's start_delay is jittered by a uniform draw in
  /// [0, jitter) from the trial's private RNG stream. Gives deterministic
  /// per-seed variability even for scenarios with no Poisson processes
  /// (real jobs never start in lockstep).
  SimDuration start_jitter{0};
  /// When > 0, overrides every scenario's run duration (campaign-wide cap
  /// so one long scenario cannot dominate wall time).
  SimDuration duration_override{0};

  [[nodiscard]] std::size_t trial_count() const;

  /// Materializes the full grid, row-major over
  /// scenario x policy x ost_count x token_rate x repetition.
  [[nodiscard]] std::vector<TrialSpec> expand() const;
};

}  // namespace adaptbf
