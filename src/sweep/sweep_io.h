// Sweep file format: declarative campaign descriptions on disk.
//
// Example (see examples/sweeps/*.ini for complete files):
//
//   [sweep]
//   name = paper_campaign
//   policies = static, adaptive     ; comma list: none|static|adaptive|gift
//   scenario = token_allocation     ; builtin paper scenario, or a path to
//   scenario = custom/noisy.ini     ; a scenario_io.h file (repeatable)
//   repetitions = 4                 ; seeded repetitions per grid cell
//   base_seed = 42
//   start_jitter_ms = 200           ; optional per-process start jitter
//   duration_s = 20                 ; optional campaign-wide duration cap
//
//   [grid]                          ; optional extra axes
//   osts = 1, 2
//   token_rate = 1200, 1600
//
//   [output]                        ; optional default export paths
//   csv = campaign.csv
//   json = campaign.json
//   jsonl = campaign.jsonl          ; durable trial journal (resumable)
//
// Builtin scenario names: token_allocation, redistribution,
// recompensation (the paper's §IV-D/E/F workloads). Any other value is
// treated as a scenario file path, resolved relative to the sweep file.
// Unknown sections/keys are errors, same stance as scenario_io.h.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sweep/sweep_spec.h"

namespace adaptbf {

struct SweepLoadResult {
  std::optional<SweepSpec> spec;
  std::string error;      ///< Empty on success.
  std::string csv_path;   ///< From [output] csv; empty if absent.
  std::string json_path;  ///< From [output] json; empty if absent.
  /// From [output] jsonl; empty if absent. Names the campaign journal
  /// (sweep/trial_sink.h): trials stream to it as they complete and an
  /// interrupted campaign resumes from it (sweep_cli --resume).
  std::string jsonl_path;
  /// Raw `[search]` entries in file order, untouched — the search layer
  /// (search/search_io.h) owns their grammar and validation, so the
  /// sweep loader stays ignorant of search keys. Empty = no [search]
  /// section; non-empty means the file describes a closed-loop search
  /// (`sweep_cli search`), not a plain campaign.
  std::vector<std::pair<std::string, std::string>> search_entries;
  /// True when the file has a [search] section, even an empty one (an
  /// empty section is a search-layer validation error, not a plain
  /// campaign).
  bool search_section = false;
  [[nodiscard]] bool has_search() const { return search_section; }
  [[nodiscard]] bool ok() const { return spec.has_value(); }
};

/// Parses a sweep file's contents. `base_dir` prefixes relative scenario
/// file paths (pass the sweep file's directory; empty = cwd).
[[nodiscard]] SweepLoadResult load_sweep(std::string_view text,
                                         const std::string& base_dir = "");

/// Reads and parses a sweep file from disk. Scenario paths resolve
/// relative to the sweep file's directory.
[[nodiscard]] SweepLoadResult load_sweep_file(const std::string& path);

}  // namespace adaptbf
