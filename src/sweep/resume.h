// Campaign resume: validate a JSONL journal against an expanded sweep and
// plan which trials still need to run.
//
// The scanner is the single reader of journal files. It tolerates every
// crash artifact append-only journals can exhibit:
//   - a partial last line (killed mid-write): discarded; the sink truncates
//     it before appending resumes
//   - a complete last row missing its '\n' (killed between the row bytes
//     and the newline hitting disk): kept; the sink restores the newline
//   - corrupt interior lines (torn sectors, hand edits): ignored where they
//     lie; their trials count as missing and are re-run, the fresh rows
//     appended at the tail
//   - duplicate rows for one index: first valid row wins (rows are
//     deterministic, so duplicates are byte-identical anyway)
// A journal whose header names a different campaign or whose grid hash
// does not match the expanded trial list is rejected outright — resuming
// into the wrong grid would silently mix incompatible results.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sweep/shard.h"
#include "sweep/sweep_spec.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

/// Fingerprint of an expanded trial list: grid coordinates, seeds, and the
/// salient materialized-spec fields (duration, jobs, process seeds/delays).
/// Two sweeps resume-compatible iff their hashes match.
[[nodiscard]] std::uint64_t sweep_grid_hash(std::span<const TrialSpec> trials);

/// True when a parsed journal/wire row is the row the expanded grid
/// expects at its index: in-range, same seed, repetition, and grid cell.
/// The per-row belt to the grid hash's suspender — the journal scanner
/// and the dispatch coordinator both refuse rows that fail it.
[[nodiscard]] bool trial_row_matches(const TrialResult& row,
                                     std::span<const TrialSpec> trials);

/// Result of scanning a journal against an expanded sweep.
struct CampaignScan {
  std::string error;  ///< Non-empty: journal unusable for this sweep.
  bool fresh = false; ///< File absent — start a new journal.

  /// The journal's parsed first line (valid whenever !fresh && ok()):
  /// gives callers the shard identity for diagnostics.
  CampaignHeader header;

  std::size_t trial_count = 0;  ///< Size of the expanded (full) grid.
  /// Rows this journal is expected to hold when complete: the scanned
  /// shard's subset size (== trial_count for the unsharded {0, 1}).
  std::size_t expected_rows = 0;
  std::size_t rows = 0;         ///< Distinct valid rows found.
  std::vector<bool> have;       ///< Per trial index: valid row present.
  /// Byte offset of each index's first valid row; -1 when missing.
  std::vector<std::int64_t> row_offset;
  /// 1-based journal line of each index's first valid row; 0 when
  /// missing. Line 1 is the header. Error messages cite these so a bad
  /// row in a multi-file merge is findable with sed -n 'Np'.
  std::vector<std::uint64_t> row_line;

  std::size_t corrupt_lines = 0;   ///< Interior lines that failed to parse.
  std::size_t duplicate_rows = 0;  ///< Extra valid rows for a present index.
  bool truncated_tail = false;     ///< Partial last line discarded.
  bool missing_final_newline = false;  ///< Last row valid but unterminated.
  /// Watermark for JsonlTrialSink::open_append: bytes to keep.
  std::uint64_t valid_bytes = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
  [[nodiscard]] bool complete() const {
    return !fresh && rows == expected_rows;
  }
};

/// Scans `path` against the expanded `trials` of the sweep named
/// `sweep_name`. A missing file is not an error: the scan comes back
/// `fresh` with every trial missing.
///
/// `shard` is the identity the caller expects the journal to carry: the
/// default {0, 1} accepts only unsharded journals, a sharded ref only the
/// matching shard's journal (so shard processes can never resume each
/// other's files, and a merged artifact can never be re-merged as a
/// slice). `trials` is always the FULL expanded grid either way — rows
/// are validated against their full-grid index; a valid row owned by a
/// DIFFERENT shard is a hard error (mixed-up journals double-count on
/// merge), not a corrupt line.
[[nodiscard]] CampaignScan scan_campaign_file(
    const std::string& path, const std::string& sweep_name,
    std::span<const TrialSpec> trials, ShardRef shard = {});

/// The trials a resumed run still has to execute, in index order.
/// `trials` may be the full grid or a shard's subset (ShardPlan::trials);
/// rows are looked up by each trial's own full-grid index, so a shard
/// resumes against exactly its slice.
[[nodiscard]] std::vector<TrialSpec> missing_trials(
    const CampaignScan& scan, std::span<const TrialSpec> trials);

}  // namespace adaptbf
