#include "sweep/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "support/stats.h"
#include "sweep/trial_sink.h"

namespace adaptbf {

std::string TrialResult::cell_id() const {
  TrialSpec key;
  key.scenario = scenario;
  key.policy = policy;
  key.num_osts = num_osts;
  key.max_token_rate = max_token_rate;
  return key.cell_id();
}

TrialResult summarize_trial(const TrialSpec& trial,
                            const ExperimentResult& result) {
  TrialResult out;
  out.index = trial.index;
  out.scenario = trial.scenario;
  out.policy = trial.policy;
  out.num_osts = trial.num_osts;
  out.max_token_rate = trial.max_token_rate;
  out.repetition = trial.repetition;
  out.seed = trial.seed;

  out.aggregate_mibps = result.aggregate_mibps;
  std::vector<double> per_job;
  per_job.reserve(result.jobs.size());
  for (const auto& job : result.jobs) per_job.push_back(job.mean_mibps);
  out.fairness = jain_fairness(per_job);
  const LatencySummary latency = result.latency.total_latency_all();
  out.p50_ms = latency.p50_ms;
  out.p95_ms = latency.p95_ms;
  out.p99_ms = latency.p99_ms;
  out.horizon_s = result.horizon.to_seconds();
  out.total_bytes = result.total_bytes;
  out.events_dispatched = result.events_dispatched;
  out.jobs = result.jobs;
  return out;
}

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options options) : options_(std::move(options)) {}

std::vector<TrialResult> SweepRunner::run(const SweepSpec& sweep) const {
  return run(sweep.expand());
}

std::vector<TrialResult> SweepRunner::run(
    const std::vector<TrialSpec>& trials) const {
  std::vector<TrialResult> results(trials.size());
  if (trials.empty()) return results;

  std::uint32_t workers = options_.threads;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (workers > trials.size())
    workers = static_cast<std::uint32_t>(trials.size());

  // Telemetry refs are resolved once, up front: workers touch only
  // lock-free atomics, never the registry mutex.
  Counter* trials_started = nullptr;
  Counter* trials_done_metric = nullptr;
  Counter* trials_failed = nullptr;
  Counter* events_total = nullptr;
  Counter* pool_reallocs = nullptr;
  Histogram* trial_runtime = nullptr;
  if (options_.metrics != nullptr) {
    trials_started = &options_.metrics->counter(kMetricTrialsStarted);
    trials_done_metric = &options_.metrics->counter(kMetricTrialsDone);
    trials_failed = &options_.metrics->counter(kMetricTrialsFailed);
    events_total = &options_.metrics->counter(kMetricEventsDispatched);
    pool_reallocs = &options_.metrics->counter(kMetricPoolReallocations);
    trial_runtime = &options_.metrics->histogram(kMetricTrialRuntime,
                                                 trial_runtime_bounds_s());
  }

  // Work-stealing by atomic index: no queue, no locks on the hot path.
  // Each worker runs whole trials; a trial's Simulator is confined to the
  // worker that claimed it, so the single-threaded simulator invariants
  // hold and results land in their index's slot regardless of timing.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::size_t completed = 0;            // Guarded by progress_mutex.
  std::exception_ptr first_error;       // Guarded by progress_mutex.
  std::mutex progress_mutex;

  // Exception barrier: a throw escaping a worker thread would call
  // std::terminate and take the whole campaign down. Capture the first
  // exception, stop claiming trials, and rethrow after the join — already
  // completed (and sunk) trials stay durable.
  auto worker_loop = [&]() {
    // One simulator per worker, reused across every trial this worker
    // claims: run_experiment reset()s it, so the event arena and periodic
    // pool stay warm for the whole lease instead of being rebuilt per
    // trial. Always substituted — a caller-provided simulator shared by
    // N workers would violate the single-threaded simulator invariant.
    Simulator worker_sim(Simulator::Config{
        options_.experiment.queue_backend, options_.experiment.batched_dispatch});
    ExperimentOptions experiment = options_.experiment;
    experiment.simulator = &worker_sim;
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      try {
        if (trials_started != nullptr) trials_started->inc();
        const auto trial_t0 = std::chrono::steady_clock::now();
        const ExperimentResult result =
            run_experiment(trials[i].spec, experiment);
        if (trial_runtime != nullptr) {
          // Recorded AFTER the experiment returns: the event loop itself
          // is never instrumented (see obs/metrics.h).
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - trial_t0;
          trial_runtime->observe(elapsed.count());
        }
        if (events_total != nullptr)
          events_total->inc(result.events_dispatched);
        if (pool_reallocs != nullptr &&
            result.queue_stats.pool_reallocations > 0)
          pool_reallocs->inc(result.queue_stats.pool_reallocations);
        results[i] = summarize_trial(trials[i], result);
        if (trials_done_metric != nullptr) trials_done_metric->inc();
        if (options_.sink != nullptr || options_.on_trial_done) {
          // Count inside the lock so callbacks see a strictly increasing
          // 1..total sequence even when workers finish back to back; the
          // same lock serializes sink appends. Sink I/O (row formatting,
          // write, periodic fsync) therefore runs under the lock — a
          // deliberate simplicity tradeoff: one trial is a whole
          // simulation (>> the cost of journaling its ~1 KiB row), so
          // workers are virtually never contended here.
          std::lock_guard<std::mutex> lock(progress_mutex);
          if (options_.sink != nullptr) options_.sink->append(results[i]);
          if (options_.on_trial_done)
            options_.on_trial_done(++completed, trials.size(), results[i]);
          if (options_.sink != nullptr) {
            // Sunk rows carry the jobs payload on disk; releasing it here
            // keeps campaign memory independent of completed-trial count.
            results[i].jobs.clear();
            results[i].jobs.shrink_to_fit();
          }
        }
      } catch (...) {
        if (trials_failed != nullptr) trials_failed->inc();
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    // Run inline: no thread spawn — handy under a debugger.
    worker_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w)
      pool.emplace_back(worker_loop);
    for (auto& thread : pool) thread.join();
  }
  if (options_.sink != nullptr) {
    // Final durability point for the tail batch, even on abort.
    try {
      options_.sink->flush();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace adaptbf
