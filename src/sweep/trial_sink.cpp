#include "sweep/trial_sink.h"

#include <charconv>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.h"
#include "support/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace adaptbf {

namespace {

// ------------------------------------------------------------- row writer

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += std::to_string(v);
}

void append_field(std::string& out, const char* key, double v) {
  out += key;
  out += json_num_exact(v);
}

// --------------------------------------------------------- strict parser
//
// The journal is machine-written by the functions above, so the reader is
// a strict mirror built on the shared support/json.h scanner: exact key
// order, exact structure. Anything else — truncation, hand edits,
// interleaved crash garbage — fails the parse and the row counts as
// missing (the resume plan re-runs it). This is the crash-safety
// property: a row is either bit-exact or not a row.

bool parse_row(std::string_view line, TrialResult& out, bool keep_jobs) {
  JsonCursor c(line);
  out = TrialResult{};
  std::uint64_t index = 0;
  std::string policy_name;
  if (!json_lit(c, "{\"trial\":") || !json_parse_u64(c, index)) return false;
  out.index = static_cast<std::size_t>(index);
  if (!json_lit(c, ",\"scenario\":") || !json_parse_string(c, out.scenario))
    return false;
  if (!json_lit(c, ",\"policy\":") || !json_parse_string(c, policy_name)) return false;
  const auto policy = bw_control_from_name(policy_name);
  if (!policy.has_value()) return false;
  out.policy = *policy;
  if (!json_lit(c, ",\"osts\":") || !json_parse_u32(c, out.num_osts)) return false;
  if (!json_lit(c, ",\"token_rate\":") ||
      !json_parse_double_or_null(c, out.max_token_rate))
    return false;
  if (!json_lit(c, ",\"repetition\":") || !json_parse_u32(c, out.repetition))
    return false;
  if (!json_lit(c, ",\"seed\":") || !json_parse_u64(c, out.seed)) return false;
  if (!json_lit(c, ",\"aggregate_mibps\":") ||
      !json_parse_double_or_null(c, out.aggregate_mibps))
    return false;
  if (!json_lit(c, ",\"fairness\":") || !json_parse_double_or_null(c, out.fairness))
    return false;
  if (!json_lit(c, ",\"p50_ms\":") || !json_parse_double_or_null(c, out.p50_ms))
    return false;
  if (!json_lit(c, ",\"p95_ms\":") || !json_parse_double_or_null(c, out.p95_ms))
    return false;
  if (!json_lit(c, ",\"p99_ms\":") || !json_parse_double_or_null(c, out.p99_ms))
    return false;
  if (!json_lit(c, ",\"horizon_s\":") || !json_parse_double_or_null(c, out.horizon_s))
    return false;
  if (!json_lit(c, ",\"total_bytes\":") || !json_parse_u64(c, out.total_bytes))
    return false;
  if (!json_lit(c, ",\"events\":") || !json_parse_u64(c, out.events_dispatched))
    return false;
  if (!json_lit(c, ",\"jobs\":[")) return false;
  bool first = true;
  while (!json_lit(c, "]")) {
    if (!first && !json_lit(c, ",")) return false;
    first = false;
    JobSummary job;
    std::uint32_t id = 0;
    std::int64_t finish_ns = 0;
    if (!json_lit(c, "{\"id\":") || !json_parse_u32(c, id)) return false;
    job.id = JobId(id);
    if (!json_lit(c, ",\"name\":") || !json_parse_string(c, job.name)) return false;
    if (!json_lit(c, ",\"nodes\":") || !json_parse_u32(c, job.nodes)) return false;
    if (!json_lit(c, ",\"mean_mibps\":") ||
        !json_parse_double_or_null(c, job.mean_mibps))
      return false;
    if (!json_lit(c, ",\"rpcs\":") || !json_parse_u64(c, job.rpcs_completed))
      return false;
    if (!json_lit(c, ",\"bytes\":") || !json_parse_u64(c, job.bytes_completed))
      return false;
    if (!json_lit(c, ",\"finish_ns\":") || !json_parse_i64(c, finish_ns)) return false;
    job.finish_time = SimTime(finish_ns);
    if (!json_lit(c, ",\"finished\":") || !json_parse_bool(c, job.finished))
      return false;
    if (!json_lit(c, "}")) return false;
    if (keep_jobs) out.jobs.push_back(std::move(job));
  }
  if (!json_lit(c, "}")) return false;
  return c.done();
}

void sync_to_disk(std::FILE* file) {
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(fileno(file));
#else
  (void)file;
#endif
}

}  // namespace

std::string campaign_header_line(const CampaignHeader& header) {
  char hash[24];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, header.grid_hash);
  std::string out = "{\"adaptbf_sweep\":1,\"name\":";
  out += json_quote(header.sweep);
  out += ",\"grid_hash\":\"";
  out += hash;
  out += "\",\"trials\":";
  out += std::to_string(header.trials);
  if (header.shard.sharded()) {
    out += ",\"shard\":";
    out += std::to_string(header.shard.index);
    out += ",\"shard_count\":";
    out += std::to_string(header.shard.count);
  }
  if (header.search_step != 0) {
    char search_hash[24];
    std::snprintf(search_hash, sizeof(search_hash), "%016" PRIx64,
                  header.search_hash);
    out += ",\"search_step\":";
    out += std::to_string(header.search_step);
    out += ",\"search_hash\":\"";
    out += search_hash;
    out += '"';
  }
  out += '}';
  return out;
}

bool parse_campaign_header(std::string_view line, CampaignHeader& out) {
  JsonCursor c(line);
  out = CampaignHeader{};
  if (!json_lit(c, "{\"adaptbf_sweep\":1,\"name\":") || !json_parse_string(c, out.sweep))
    return false;
  if (!json_lit(c, ",\"grid_hash\":\"") ||
      !json_parse_hash16(c, out.grid_hash))
    return false;
  if (!json_lit(c, "\"") || !json_lit(c, ",\"trials\":") ||
      !json_parse_u64(c, out.trials))
    return false;
  if (json_lit(c, ",\"shard\":")) {
    if (!json_parse_u32(c, out.shard.index) || !json_lit(c, ",\"shard_count\":") ||
        !json_parse_u32(c, out.shard.count))
      return false;
    // A stamped shard must be a real slice: K >= 2 and index in range.
    // (K == 1 writes the unsharded form above, never this one.)
    if (out.shard.count < 2 || out.shard.index >= out.shard.count)
      return false;
  }
  if (json_lit(c, ",\"search_step\":")) {
    // A stamped search journal declares a real generation (0 writes the
    // plain header above, never this clause).
    if (!json_parse_u32(c, out.search_step) || out.search_step == 0)
      return false;
    if (!json_lit(c, ",\"search_hash\":\"") ||
        !json_parse_hash16(c, out.search_hash) || !json_lit(c, "\""))
      return false;
  }
  if (!json_lit(c, "}")) return false;
  return c.done();
}

std::string trial_to_jsonl(const TrialResult& trial) {
  std::string out;
  out.reserve(256 + trial.jobs.size() * 128);
  append_field(out, "{\"trial\":",
               static_cast<std::uint64_t>(trial.index));
  out += ",\"scenario\":";
  out += json_quote(trial.scenario);
  out += ",\"policy\":";
  out += json_quote(bw_control_config_name(trial.policy));
  append_field(out, ",\"osts\":", std::uint64_t{trial.num_osts});
  append_field(out, ",\"token_rate\":", trial.max_token_rate);
  append_field(out, ",\"repetition\":", std::uint64_t{trial.repetition});
  append_field(out, ",\"seed\":", trial.seed);
  append_field(out, ",\"aggregate_mibps\":", trial.aggregate_mibps);
  append_field(out, ",\"fairness\":", trial.fairness);
  append_field(out, ",\"p50_ms\":", trial.p50_ms);
  append_field(out, ",\"p95_ms\":", trial.p95_ms);
  append_field(out, ",\"p99_ms\":", trial.p99_ms);
  append_field(out, ",\"horizon_s\":", trial.horizon_s);
  append_field(out, ",\"total_bytes\":", trial.total_bytes);
  append_field(out, ",\"events\":", trial.events_dispatched);
  out += ",\"jobs\":[";
  bool first = true;
  for (const auto& job : trial.jobs) {
    if (!first) out += ',';
    first = false;
    append_field(out, "{\"id\":", std::uint64_t{job.id.value()});
    out += ",\"name\":";
    out += json_quote(job.name);
    append_field(out, ",\"nodes\":", std::uint64_t{job.nodes});
    append_field(out, ",\"mean_mibps\":", job.mean_mibps);
    append_field(out, ",\"rpcs\":", job.rpcs_completed);
    append_field(out, ",\"bytes\":", job.bytes_completed);
    out += ",\"finish_ns\":";
    out += std::to_string(job.finish_time.ns());
    out += ",\"finished\":";
    out += job.finished ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

bool trial_from_jsonl(std::string_view line, TrialResult& out) {
  return parse_row(line, out, /*keep_jobs=*/true);
}

bool trial_scalars_from_jsonl(std::string_view line, TrialResult& out) {
  return parse_row(line, out, /*keep_jobs=*/false);
}

// --------------------------------------------------------- JsonlTrialSink

JsonlTrialSink::JsonlTrialSink(std::FILE* file, Options options)
    : file_(file), options_(options) {
  if (options_.flush_every == 0) options_.flush_every = 1;
  if (options_.metrics != nullptr) {
    rows_metric_ = &options_.metrics->counter(kMetricJournalRows);
    bytes_metric_ = &options_.metrics->counter(kMetricJournalBytes);
    fsyncs_metric_ = &options_.metrics->counter(kMetricJournalFsyncs);
  }
}

JsonlTrialSink::OpenResult JsonlTrialSink::open_fresh(
    const std::string& path, const CampaignHeader& header, Options options) {
  OpenResult result;
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    result.error = "cannot create '" + path + "'";
    return result;
  }
  const std::string line = campaign_header_line(header) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    result.error = "cannot write header to '" + path + "'";
    return result;
  }
  if (options.fsync) sync_to_disk(file);
  result.sink.reset(new JsonlTrialSink(file, options));
  return result;
}

JsonlTrialSink::OpenResult JsonlTrialSink::open_append(const std::string& path,
                                                       std::uint64_t keep_bytes,
                                                       bool add_newline,
                                                       Options options) {
  OpenResult result;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    result.error = "cannot stat '" + path + "': " + ec.message();
    return result;
  }
  if (keep_bytes > size) {
    result.error = "journal '" + path + "' shrank since it was scanned";
    return result;
  }
  if (keep_bytes < size) {
    // Drop a crash's partial tail so the next append starts a clean line.
    std::filesystem::resize_file(path, keep_bytes, ec);
    if (ec) {
      result.error = "cannot truncate '" + path + "': " + ec.message();
      return result;
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    result.error = "cannot append to '" + path + "'";
    return result;
  }
  if (add_newline && std::fputc('\n', file) == EOF) {
    std::fclose(file);
    result.error = "cannot write to '" + path + "'";
    return result;
  }
  result.sink.reset(new JsonlTrialSink(file, options));
  return result;
}

JsonlTrialSink::~JsonlTrialSink() {
  if (file_ != nullptr) {
    // Destructor cannot throw; best-effort final durability point.
    if (std::fflush(file_) == 0 && options_.fsync) sync_to_disk(file_);
    std::fclose(file_);
  }
}

void JsonlTrialSink::append(const TrialResult& result) {
  const std::string line = trial_to_jsonl(result) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    throw std::runtime_error("campaign journal: short write");
  ++rows_;
  if (rows_metric_ != nullptr) rows_metric_->inc();
  if (bytes_metric_ != nullptr) bytes_metric_->inc(line.size());
  if (++pending_ >= options_.flush_every) flush();
}

void JsonlTrialSink::flush() {
  if (std::fflush(file_) != 0)
    throw std::runtime_error("campaign journal: flush failed");
  if (options_.fsync) {
    sync_to_disk(file_);
    if (fsyncs_metric_ != nullptr) fsyncs_metric_->inc();
  }
  pending_ = 0;
}

}  // namespace adaptbf
