// RPC model mirroring the Lustre PtlRPC requests that NRS-TBF schedules.
//
// The paper's TBF rules classify RPCs by JobID, NID (client network id) or
// opcode; we carry all three so rule matching behaves like the real NRS.
// 1 RPC = 1 token (the paper's convention in §IV-F).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace adaptbf {

/// Lustre JobID ("%e.%H" in the paper: executable.hostname). We keep it a
/// small integer id plus a human-readable name for rule matching/printing.
class JobId {
 public:
  constexpr JobId() = default;
  explicit constexpr JobId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const JobId&) const = default;

  static constexpr std::uint32_t kInvalid = UINT32_MAX;

 private:
  std::uint32_t value_ = kInvalid;
};

/// Client network identifier (in real Lustre, "10.0.0.1@tcp").
class Nid {
 public:
  constexpr Nid() = default;
  explicit constexpr Nid(std::uint32_t v) : value_(v) {}
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  constexpr auto operator<=>(const Nid&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// Subset of PtlRPC opcodes relevant to OST bandwidth control.
enum class Opcode : std::uint8_t {
  kOstRead = 0,
  kOstWrite = 1,
  kOstPunch = 2,
  kOstSync = 3,
};

[[nodiscard]] std::string_view to_string(Opcode op);

/// Access locality of the payload, used by the disk model. The paper's
/// motivating example is a job issuing "numerous small, random writes".
enum class Locality : std::uint8_t { kSequential = 0, kRandom = 1 };

/// One bulk I/O request as seen by the OST scheduler.
struct Rpc {
  std::uint64_t id = 0;        ///< Globally unique, assigned at issue time.
  JobId job;                   ///< Owning job (rule classification key).
  Nid nid;                     ///< Issuing client node.
  Opcode opcode = Opcode::kOstWrite;
  Locality locality = Locality::kSequential;
  std::uint32_t size_bytes = 0;  ///< Bulk payload size (1 MiB typical).
  SimTime issue_time;            ///< When the client handed it to the server.
  std::uint32_t process = 0;     ///< Issuing process index within the job.
};

/// Completion record the OST reports to metrics and back to the client.
struct RpcCompletion {
  Rpc rpc;
  SimTime start_service;  ///< When an I/O thread picked it up.
  SimTime end_service;    ///< When the bulk transfer finished.

  [[nodiscard]] SimDuration queue_delay() const {
    return start_service - rpc.issue_time;
  }
  [[nodiscard]] SimDuration service_time() const {
    return end_service - start_service;
  }
  [[nodiscard]] SimDuration latency() const {
    return end_service - rpc.issue_time;
  }
};

}  // namespace adaptbf

template <>
struct std::hash<adaptbf::JobId> {
  std::size_t operator()(const adaptbf::JobId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<adaptbf::Nid> {
  std::size_t operator()(const adaptbf::Nid& nid) const noexcept {
    return std::hash<std::uint32_t>{}(nid.value());
  }
};
