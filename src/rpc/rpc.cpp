#include "rpc/rpc.h"

namespace adaptbf {

std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kOstRead: return "ost_read";
    case Opcode::kOstWrite: return "ost_write";
    case Opcode::kOstPunch: return "ost_punch";
    case Opcode::kOstSync: return "ost_sync";
  }
  return "unknown";
}

}  // namespace adaptbf
