#include "tbf/fcfs_scheduler.h"

namespace adaptbf {

void FcfsScheduler::enqueue(const Rpc& rpc, SimTime /*now*/) {
  queue_.push_back(rpc);
}

std::optional<Rpc> FcfsScheduler::dequeue(SimTime /*now*/) {
  if (queue_.empty()) return std::nullopt;
  Rpc rpc = queue_.front();
  queue_.pop_front();
  return rpc;
}

SimTime FcfsScheduler::next_ready_time(SimTime now) {
  return queue_.empty() ? SimTime::max() : now;
}

}  // namespace adaptbf
