// Token bucket as used by the Lustre NRS-TBF policy.
//
// Tokens accumulate continuously at `rate` tokens/second up to `depth`
// (Lustre's default depth is 3 — a deliberately small burst allowance so a
// queue cannot save up a large burst; see Fig. 1 in the paper). One token
// admits one RPC. Refill is computed lazily from the last-touch timestamp,
// so the bucket costs O(1) per operation and nothing when idle.
#pragma once

#include "sim/time.h"

namespace adaptbf {

class TokenBucket {
 public:
  /// Starts with `initial` tokens (clamped to depth) at time `t0`.
  /// `rate` >= 0 (0 = frozen bucket, never refills); `depth` > 0.
  TokenBucket(double rate, double depth, SimTime t0, double initial);

  /// Brings the token count up to date at `now` (monotonic in `now`).
  void refill(SimTime now);

  /// Consumes `n` tokens if available at `now`; returns success.
  bool try_consume(double n, SimTime now);

  /// Earliest absolute time >= now at which `n` tokens will be available,
  /// or SimTime::max() if that can never happen (rate 0, or n > depth).
  [[nodiscard]] SimTime time_for_tokens(double n, SimTime now);

  /// Changes the accumulation rate; accrues tokens at the old rate first.
  void set_rate(double rate, SimTime now);

  /// Changes the depth; the current token count is clamped to the new depth.
  void set_depth(double depth, SimTime now);

  [[nodiscard]] double tokens(SimTime now);
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double depth() const { return depth_; }

 private:
  double rate_;
  double depth_;
  double tokens_;
  SimTime last_;
};

}  // namespace adaptbf
