// Request-scheduler interface the OST pulls from.
//
// Both the NRS-TBF policy and the baseline FCFS policy ("No BW" in the
// paper's evaluation) implement this. The OST calls dequeue() whenever an
// I/O thread is idle; if nothing is eligible yet it arms a wakeup at
// next_ready_time().
#pragma once

#include <cstddef>
#include <optional>

#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

class RequestScheduler {
 public:
  virtual ~RequestScheduler() = default;

  /// Accepts an RPC from the network at time `now`.
  virtual void enqueue(const Rpc& rpc, SimTime now) = 0;

  /// Hands out the next RPC eligible for service at `now`, if any.
  virtual std::optional<Rpc> dequeue(SimTime now) = 0;

  /// Earliest time > now at which dequeue() could succeed without further
  /// arrivals; SimTime::max() if no RPCs are pending anywhere.
  virtual SimTime next_ready_time(SimTime now) = 0;

  /// Total RPCs waiting (all queues).
  [[nodiscard]] virtual std::size_t backlog() const = 0;
};

}  // namespace adaptbf
