// First-Come First-Serve scheduler: the paper's "No BW" baseline.
//
// No classification, no token buckets — every RPC is eligible the moment it
// arrives, so the OST's I/O threads drain requests in arrival order. Under
// this policy a single I/O-heavy job can monopolize the server (the
// bandwidth-hogging problem that motivates the paper).
#pragma once

#include <deque>

#include "tbf/scheduler.h"

namespace adaptbf {

class FcfsScheduler final : public RequestScheduler {
 public:
  void enqueue(const Rpc& rpc, SimTime now) override;
  std::optional<Rpc> dequeue(SimTime now) override;
  SimTime next_ready_time(SimTime now) override;
  [[nodiscard]] std::size_t backlog() const override { return queue_.size(); }

 private:
  std::deque<Rpc> queue_;
};

}  // namespace adaptbf
