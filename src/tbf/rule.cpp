#include "tbf/rule.h"

#include <algorithm>
#include <sstream>

namespace adaptbf {

RpcMatcher RpcMatcher::for_job(JobId job) { return RpcMatcher{}.add_job(job); }
RpcMatcher RpcMatcher::for_nid(Nid nid) { return RpcMatcher{}.add_nid(nid); }
RpcMatcher RpcMatcher::for_opcode(Opcode op) {
  return RpcMatcher{}.add_opcode(op);
}

RpcMatcher& RpcMatcher::add_job(JobId job) {
  jobs_.push_back(job);
  return *this;
}
RpcMatcher& RpcMatcher::add_nid(Nid nid) {
  nids_.push_back(nid);
  return *this;
}
RpcMatcher& RpcMatcher::add_opcode(Opcode op) {
  opcodes_.push_back(op);
  return *this;
}

bool RpcMatcher::matches(const Rpc& rpc) const {
  const bool job_ok =
      jobs_.empty() || std::find(jobs_.begin(), jobs_.end(), rpc.job) != jobs_.end();
  const bool nid_ok =
      nids_.empty() || std::find(nids_.begin(), nids_.end(), rpc.nid) != nids_.end();
  const bool op_ok = opcodes_.empty() ||
                     std::find(opcodes_.begin(), opcodes_.end(), rpc.opcode) !=
                         opcodes_.end();
  return job_ok && nid_ok && op_ok;
}

bool RpcMatcher::is_wildcard() const {
  return jobs_.empty() && nids_.empty() && opcodes_.empty();
}

std::string RpcMatcher::to_string() const {
  if (is_wildcard()) return "*";
  std::ostringstream out;
  bool first = true;
  auto sep = [&] {
    if (!first) out << " & ";
    first = false;
  };
  if (!jobs_.empty()) {
    sep();
    out << "jobid={";
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      out << (i ? "," : "") << jobs_[i].value();
    out << "}";
  }
  if (!nids_.empty()) {
    sep();
    out << "nid={";
    for (std::size_t i = 0; i < nids_.size(); ++i)
      out << (i ? "," : "") << nids_[i].value();
    out << "}";
  }
  if (!opcodes_.empty()) {
    sep();
    out << "opcode={";
    for (std::size_t i = 0; i < opcodes_.size(); ++i)
      out << (i ? "," : "") << adaptbf::to_string(opcodes_[i]);
    out << "}";
  }
  return out.str();
}

}  // namespace adaptbf
