// Text interface for TBF rules, mirroring Lustre's `nrs_tbf_rule` commands.
//
// Real Lustre administrators drive TBF through strings like
//
//   lctl set_param ost.OSS.ost_io.nrs_tbf_rule=
//       "start hog_limit jobid={17} & opcode={ost_write} rate=50 rank=-3"
//
// This parser accepts the same command shapes against our scheduler:
//
//   start <name> [<matcher>] rate=<r> [depth=<d>] [rank=<k>]
//   change <name> rate=<r> [rank=<k>]
//   stop <name>
//
// where <matcher> is zero or more '&'-joined clauses:
//
//   jobid={3,17}   nid={0,2}   opcode={ost_read,ost_write}
//
// A missing matcher means wildcard. Numbers are decimal; jobid/nid values
// are the numeric ids this simulator uses in place of Lustre's
// "executable.hostname" / "a.b.c.d@tcp" strings.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "tbf/rule.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {

/// Parsed forms of the three commands.
struct StartRuleCommand {
  RuleSpec spec;
};
struct ChangeRuleCommand {
  std::string name;
  double rate = 0.0;
  std::optional<std::int32_t> rank;
};
struct StopRuleCommand {
  std::string name;
};
using RuleCommand =
    std::variant<StartRuleCommand, ChangeRuleCommand, StopRuleCommand>;

/// Outcome of parsing: a command, or a human-readable error with the
/// offending position.
struct RuleParseResult {
  std::optional<RuleCommand> command;
  std::string error;  ///< Empty on success.

  [[nodiscard]] bool ok() const { return command.has_value(); }
};

/// Parses one command line (leading/trailing whitespace ignored).
[[nodiscard]] RuleParseResult parse_rule_command(std::string_view text);

/// Parses and applies a command to a scheduler. Returns an empty string on
/// success, the error message otherwise (parse errors, duplicate starts,
/// unknown names on change/stop).
std::string apply_rule_command(TbfScheduler& scheduler, std::string_view text,
                               SimTime now);

/// Renders a RuleSpec back to the command syntax (round-trips through the
/// parser); useful for dumping active rule sets.
[[nodiscard]] std::string format_rule_spec(const RuleSpec& spec);

}  // namespace adaptbf
