#include "tbf/rule_parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace adaptbf {

namespace {

/// Minimal recursive-descent tokenizer over the command line.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Next bare word: [A-Za-z0-9_.-]+ (stops before '=' '{' '}' ',' '&').
  std::string_view word() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    return text_.substr(begin, pos_ - begin);
  }

  bool consume(char expected) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

RuleParseResult fail(std::string message, std::size_t position) {
  RuleParseResult result;
  result.error = std::move(message) + " (at offset " +
                 std::to_string(position) + ")";
  return result;
}

bool parse_u32(std::string_view token, std::uint32_t& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_i32(std::string_view token, std::int32_t& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(std::string_view token, double& out) {
  // from_chars for double is not universally available; strtod on a copy.
  const std::string copy(token);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

std::optional<Opcode> opcode_from_name(std::string_view name) {
  if (name == "ost_read") return Opcode::kOstRead;
  if (name == "ost_write") return Opcode::kOstWrite;
  if (name == "ost_punch") return Opcode::kOstPunch;
  if (name == "ost_sync") return Opcode::kOstSync;
  return std::nullopt;
}

/// Parses `key={v1,v2,...}` clauses joined by '&' into the matcher.
/// Leaves the cursor at the first token that is not a clause (e.g. the
/// `rate=` parameter).
bool parse_matcher(Cursor& cursor, RpcMatcher& matcher, std::string& error) {
  while (true) {
    // Look ahead: clause keys are followed by '={'; parameters by '='
    // then a number. Snapshot and probe.
    Cursor probe = cursor;
    const std::string_view key = probe.word();
    if (key != "jobid" && key != "nid" && key != "opcode") return true;
    if (!probe.consume('=') || !probe.consume('{')) {
      error = "expected '={' after matcher key '" + std::string(key) + "'";
      return false;
    }
    cursor = probe;
    bool first = true;
    while (true) {
      if (cursor.consume('}')) break;
      if (!first && !cursor.consume(',')) {
        error = "expected ',' or '}' in matcher list";
        return false;
      }
      const std::string_view value = cursor.word();
      if (value.empty()) {
        error = "empty value in matcher list";
        return false;
      }
      if (key == "jobid") {
        std::uint32_t id = 0;
        if (!parse_u32(value, id)) {
          error = "bad jobid '" + std::string(value) + "'";
          return false;
        }
        matcher.add_job(JobId(id));
      } else if (key == "nid") {
        std::uint32_t id = 0;
        if (!parse_u32(value, id)) {
          error = "bad nid '" + std::string(value) + "'";
          return false;
        }
        matcher.add_nid(Nid(id));
      } else {
        const auto opcode = opcode_from_name(value);
        if (!opcode.has_value()) {
          error = "unknown opcode '" + std::string(value) + "'";
          return false;
        }
        matcher.add_opcode(*opcode);
      }
      first = false;
    }
    if (!cursor.consume('&')) return true;  // matcher ends
  }
}

/// Parses trailing `key=value` parameters.
struct Params {
  std::optional<double> rate;
  std::optional<double> depth;
  std::optional<std::int32_t> rank;
};

bool parse_params(Cursor& cursor, Params& params, std::string& error) {
  while (!cursor.at_end()) {
    const std::string_view key = cursor.word();
    if (key.empty() || !cursor.consume('=')) {
      error = "expected 'key=value' parameter";
      return false;
    }
    const std::string_view value = cursor.word();
    if (key == "rate") {
      double rate = 0.0;
      if (!parse_double(value, rate) || rate < 0.0) {
        error = "bad rate '" + std::string(value) + "'";
        return false;
      }
      params.rate = rate;
    } else if (key == "depth") {
      double depth = 0.0;
      if (!parse_double(value, depth) || depth < 1.0) {
        error = "bad depth '" + std::string(value) + "' (must be >= 1)";
        return false;
      }
      params.depth = depth;
    } else if (key == "rank") {
      std::int32_t rank = 0;
      if (!parse_i32(value, rank)) {
        error = "bad rank '" + std::string(value) + "'";
        return false;
      }
      params.rank = rank;
    } else {
      error = "unknown parameter '" + std::string(key) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

RuleParseResult parse_rule_command(std::string_view text) {
  Cursor cursor(text);
  const std::string_view verb = cursor.word();
  if (verb != "start" && verb != "change" && verb != "stop")
    return fail("expected 'start', 'change' or 'stop'", cursor.position());

  const std::string_view name = cursor.word();
  if (name.empty()) return fail("expected rule name", cursor.position());

  if (verb == "stop") {
    if (!cursor.at_end())
      return fail("unexpected trailing input after stop", cursor.position());
    RuleParseResult result;
    result.command = StopRuleCommand{std::string(name)};
    return result;
  }

  if (verb == "change") {
    Params params;
    std::string error;
    if (!parse_params(cursor, params, error))
      return fail(std::move(error), cursor.position());
    if (!params.rate.has_value())
      return fail("'change' requires rate=", cursor.position());
    if (params.depth.has_value())
      return fail("'change' cannot alter depth", cursor.position());
    RuleParseResult result;
    result.command =
        ChangeRuleCommand{std::string(name), *params.rate, params.rank};
    return result;
  }

  // start
  RpcMatcher matcher;
  std::string error;
  if (!parse_matcher(cursor, matcher, error))
    return fail(std::move(error), cursor.position());
  Params params;
  if (!parse_params(cursor, params, error))
    return fail(std::move(error), cursor.position());
  if (!params.rate.has_value())
    return fail("'start' requires rate=", cursor.position());

  RuleSpec spec;
  spec.name = std::string(name);
  spec.matcher = matcher;
  spec.rate = *params.rate;
  if (params.depth.has_value()) spec.depth = *params.depth;
  if (params.rank.has_value()) spec.rank = *params.rank;
  RuleParseResult result;
  result.command = StartRuleCommand{std::move(spec)};
  return result;
}

std::string apply_rule_command(TbfScheduler& scheduler, std::string_view text,
                               SimTime now) {
  const RuleParseResult parsed = parse_rule_command(text);
  if (!parsed.ok()) return parsed.error;
  if (const auto* start = std::get_if<StartRuleCommand>(&*parsed.command)) {
    if (scheduler.has_rule(start->spec.name))
      return "rule '" + start->spec.name + "' already exists";
    scheduler.start_rule(start->spec);
    return "";
  }
  if (const auto* change = std::get_if<ChangeRuleCommand>(&*parsed.command)) {
    // Preserve the current rank when the command does not set one.
    std::int32_t rank = 0;
    if (change->rank.has_value()) {
      rank = *change->rank;
    } else {
      // No rank given: re-read is not exposed, so default to 0 like Lustre
      // re-creating the rule body.
    }
    if (!scheduler.change_rule(change->name, change->rate, rank, now))
      return "no such rule '" + change->name + "'";
    return "";
  }
  const auto& stop = std::get<StopRuleCommand>(*parsed.command);
  if (!scheduler.stop_rule(stop.name, now))
    return "no such rule '" + stop.name + "'";
  return "";
}

std::string format_rule_spec(const RuleSpec& spec) {
  std::ostringstream out;
  out << "start " << spec.name;
  if (!spec.matcher.is_wildcard()) out << ' ' << spec.matcher.to_string();
  out << " rate=" << spec.rate << " depth=" << spec.depth
      << " rank=" << spec.rank;
  return out.str();
}

}  // namespace adaptbf
