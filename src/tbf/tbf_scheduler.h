// NRS-TBF: classful token-bucket-filter request scheduler.
//
// Faithful model of the Lustre Network Request Scheduler TBF policy
// (Qian et al., SC'17; Fig. 1 of the AdapTBF paper):
//
//  * An ordered rule list classifies arriving RPCs; the first matching rule
//    wins. Rules can be started, changed (re-rated) and stopped at runtime.
//  * Each (rule, classification-key) pair owns a queue with a token bucket.
//    RPCs within a queue are FCFS and dequeue only when a token is held.
//  * Queues carry a deadline — the time at which they will next hold a
//    token — and the scheduler serves the queue with the earliest deadline
//    (binary heap). Ties break by rule rank (AdapTBF's priority hierarchy,
//    §III-D), then arrival order.
//  * RPCs matching no rule land in the fallback queue, which has no token
//    limit and is served whenever no rule queue is eligible, so unclassified
//    jobs never starve (§III-D).
//
// Classification key: this reproduction keys queues by JobID (the paper sets
// `jobid_var=nodelocal`), so one queue exists per (rule, job) pair.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tbf/rule.h"
#include "tbf/scheduler.h"
#include "tbf/token_bucket.h"

namespace adaptbf {

class TbfScheduler final : public RequestScheduler {
 public:
  struct Config {
    /// Bucket depth for queues whose rule does not override it.
    double default_depth = 3.0;
    /// New queues start with a full bucket (Lustre behaviour: the first
    /// burst up to `depth` RPCs passes immediately).
    bool start_full = true;
  };

  TbfScheduler() : TbfScheduler(Config{}) {}
  explicit TbfScheduler(Config config);

  // --- Rule management (what AdapTBF's Rule Management Daemon drives) ---

  /// Starts a rule. Name must be unique among active rules. Existing queued
  /// RPCs are NOT reclassified (matches Lustre: classification happens at
  /// arrival), but new arrivals see the rule immediately.
  void start_rule(const RuleSpec& spec);

  /// Changes the token rate (and rank) of an active rule; all queues bound
  /// to it pick up the new rate at `now`, keeping their accrued tokens.
  /// Returns false if no such rule.
  bool change_rule(const std::string& name, double new_rate,
                   std::int32_t new_rank, SimTime now);

  /// Stops a rule. Its queues drain without further token limits (they are
  /// folded into the fallback path), and new arrivals are reclassified.
  /// Returns false if no such rule.
  bool stop_rule(const std::string& name, SimTime now);

  [[nodiscard]] bool has_rule(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> active_rules() const;
  [[nodiscard]] const RuleStats* rule_stats(const std::string& name) const;

  // --- RequestScheduler interface ---

  void enqueue(const Rpc& rpc, SimTime now) override;
  std::optional<Rpc> dequeue(SimTime now) override;
  SimTime next_ready_time(SimTime now) override;
  [[nodiscard]] std::size_t backlog() const override { return backlog_; }

  /// RPCs waiting in the fallback (unclassified) queue.
  [[nodiscard]] std::size_t fallback_backlog() const {
    return fallback_.size();
  }

  /// Tokens currently held by job `job`'s queue (testing aid).
  [[nodiscard]] double queue_tokens(JobId job, SimTime now);

  /// RPCs waiting in job `job`'s rule-bound queue (0 if it has none).
  /// The rule daemon uses this to avoid stopping rules that still gate
  /// queued work — stopping such a rule would release the backlog
  /// unthrottled through the fallback path.
  [[nodiscard]] std::size_t queue_backlog(JobId job) const;

 private:
  struct Rule {
    RuleSpec spec;
    RuleStats stats;
    std::uint64_t generation;  ///< Distinguishes a restarted same-name rule.
    /// Jobs whose queue is currently bound to this rule. Lets rule changes
    /// and stops touch exactly their own queues (O(bound) instead of a
    /// scan over every queue — the §IV-G O(n) scaling depends on it).
    std::unordered_set<JobId> bound_jobs;
  };

  struct ClassQueue {
    JobId job;
    /// Owning rule. Stable: rules_ stores unique_ptrs, and stop_rule()
    /// erases every bound queue before destroying the rule.
    Rule* rule = nullptr;
    TokenBucket bucket;
    std::deque<Rpc> rpcs;
    std::int32_t rank = 0;
    std::uint64_t heap_version = 0;  ///< Invalidates stale heap entries.
  };

  struct HeapEntry {
    SimTime deadline;
    std::int32_t rank;
    std::uint64_t arrival_seq;
    std::uint64_t version;
    JobId job;
    bool operator>(const HeapEntry& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      if (rank != o.rank) return rank > o.rank;
      return arrival_seq > o.arrival_seq;
    }
  };

  /// First active rule matching `rpc`, in rank order then start order.
  Rule* classify(const Rpc& rpc);

  /// Recomputes and pushes the heap entry for a non-empty throttled queue.
  void push_deadline(ClassQueue& q, SimTime now);

  Config config_;
  std::vector<std::unique_ptr<Rule>> rules_;           // insertion-ordered
  std::unordered_map<std::string, Rule*> rules_by_name_;
  std::unordered_map<JobId, ClassQueue> queues_;       // one per job
  /// Unclassified RPCs, tagged with their arrival sequence. The fallback
  /// competes FIFO-fairly with *due* rule queues (older head first) rather
  /// than only running when every rule queue is token-blocked — matching
  /// Lustre, where the default/fallback queue participates in scheduling.
  /// Otherwise a saturated rule set (Σ rates ≈ device rate) would starve
  /// fallback RPCs forever, deadlocking closed-loop clients.
  std::deque<std::pair<std::uint64_t, Rpc>> fallback_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  std::size_t backlog_ = 0;
  std::uint64_t arrival_counter_ = 0;
  std::uint64_t generation_counter_ = 0;
};

}  // namespace adaptbf
