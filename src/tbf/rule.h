// TBF rules: the classification + rate policy objects of the NRS-TBF
// scheduler (Lustre's `nrs_tbf_rule`).
//
// A rule pairs a matcher (which RPCs it classifies) with a token rate and a
// rank. Rules live in an ordered list; the first matching rule classifies an
// RPC. AdapTBF's Rule Management Daemon creates one JobID rule per active
// job and retunes its rate every observation window (§III-D).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpc/rpc.h"

namespace adaptbf {

/// Matches RPCs by any combination of JobID / NID / opcode. Empty vectors
/// act as wildcards (match anything), mirroring Lustre TBF expressions like
/// `jobid={dd.0} & opcode={ost_write}`.
class RpcMatcher {
 public:
  RpcMatcher() = default;  ///< Matches every RPC.

  [[nodiscard]] static RpcMatcher for_job(JobId job);
  [[nodiscard]] static RpcMatcher for_nid(Nid nid);
  [[nodiscard]] static RpcMatcher for_opcode(Opcode op);

  RpcMatcher& add_job(JobId job);
  RpcMatcher& add_nid(Nid nid);
  RpcMatcher& add_opcode(Opcode op);

  [[nodiscard]] bool matches(const Rpc& rpc) const;
  [[nodiscard]] bool is_wildcard() const;

  /// Human-readable expression ("jobid={3} & opcode={ost_write}").
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<JobId> jobs_;
  std::vector<Nid> nids_;
  std::vector<Opcode> opcodes_;
};

/// Immutable identity + mutable tuning of one TBF rule.
struct RuleSpec {
  std::string name;      ///< Unique; rule updates address rules by name.
  RpcMatcher matcher;
  double rate = 1.0;     ///< Tokens (RPCs) per second. Clamped to >= 0.
  double depth = 3.0;    ///< Bucket depth; Lustre default is 3.
  /// Rank orders rules for classification (lower = matched first) and
  /// breaks deadline ties (lower = served first). AdapTBF sets rank from
  /// job priority so idle capacity prefers high-priority queues (§III-D).
  std::int32_t rank = 0;
};

/// Counters the scheduler keeps per rule, exposed for tests and metrics.
struct RuleStats {
  std::uint64_t arrived = 0;   ///< RPCs classified to this rule.
  std::uint64_t served = 0;    ///< RPCs dequeued under this rule.
  std::uint64_t rate_changes = 0;
};

}  // namespace adaptbf
