#include "tbf/token_bucket.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace adaptbf {

TokenBucket::TokenBucket(double rate, double depth, SimTime t0, double initial)
    : rate_(rate), depth_(depth), tokens_(std::min(initial, depth)), last_(t0) {
  ADAPTBF_CHECK_MSG(rate >= 0.0, "token rate must be non-negative");
  ADAPTBF_CHECK_MSG(depth > 0.0, "bucket depth must be positive");
  ADAPTBF_CHECK_MSG(initial >= 0.0, "initial tokens must be non-negative");
}

void TokenBucket::refill(SimTime now) {
  ADAPTBF_CHECK_MSG(now >= last_, "token bucket time went backwards");
  if (rate_ > 0.0 && now > last_) {
    const double elapsed = (now - last_).to_seconds();
    tokens_ = std::min(depth_, tokens_ + rate_ * elapsed);
  }
  last_ = now;
}

bool TokenBucket::try_consume(double n, SimTime now) {
  ADAPTBF_CHECK(n >= 0.0);
  refill(now);
  // Tolerate ~1 ns worth of accumulation error so a consumer waking exactly
  // at its computed deadline is never spuriously refused.
  const double epsilon = rate_ * 1e-9 + 1e-12;
  if (tokens_ + epsilon < n) return false;
  tokens_ = std::max(0.0, tokens_ - n);
  return true;
}

SimTime TokenBucket::time_for_tokens(double n, SimTime now) {
  ADAPTBF_CHECK(n >= 0.0);
  refill(now);
  if (tokens_ >= n) return now;
  if (rate_ <= 0.0 || n > depth_) return SimTime::max();
  const double deficit = n - tokens_;
  const double wait_sec = deficit / rate_;
  // Round up to the next nanosecond so the bucket is guaranteed ready when
  // a wakeup scheduled at the returned time fires.
  return now + SimDuration(static_cast<std::int64_t>(std::ceil(wait_sec * 1e9)));
}

void TokenBucket::set_rate(double rate, SimTime now) {
  ADAPTBF_CHECK(rate >= 0.0);
  refill(now);
  rate_ = rate;
}

void TokenBucket::set_depth(double depth, SimTime now) {
  ADAPTBF_CHECK(depth > 0.0);
  refill(now);
  depth_ = depth;
  tokens_ = std::min(tokens_, depth_);
}

double TokenBucket::tokens(SimTime now) {
  refill(now);
  return tokens_;
}

}  // namespace adaptbf
