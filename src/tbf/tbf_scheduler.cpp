#include "tbf/tbf_scheduler.h"

#include <algorithm>
#include <utility>

#include "support/check.h"
#include "support/log.h"

namespace adaptbf {

TbfScheduler::TbfScheduler(Config config) : config_(config) {
  ADAPTBF_CHECK(config_.default_depth >= 1.0);
}

void TbfScheduler::start_rule(const RuleSpec& spec) {
  ADAPTBF_CHECK_MSG(!spec.name.empty(), "rule name must be non-empty");
  ADAPTBF_CHECK_MSG(!has_rule(spec.name), "duplicate rule name");
  ADAPTBF_CHECK_MSG(spec.rate >= 0.0, "rule rate must be non-negative");
  ADAPTBF_CHECK_MSG(spec.depth >= 1.0, "rule depth must admit one RPC");
  auto rule = std::make_unique<Rule>();
  rule->spec = spec;
  rule->generation = ++generation_counter_;
  rules_by_name_.emplace(spec.name, rule.get());
  rules_.push_back(std::move(rule));
  ADAPTBF_LOG_DEBUG("tbf", "start rule '%s' (%s) rate=%.2f rank=%d",
                    spec.name.c_str(), spec.matcher.to_string().c_str(),
                    spec.rate, spec.rank);
}

bool TbfScheduler::change_rule(const std::string& name, double new_rate,
                               std::int32_t new_rank, SimTime now) {
  ADAPTBF_CHECK(new_rate >= 0.0);
  auto it = rules_by_name_.find(name);
  if (it == rules_by_name_.end()) return false;
  Rule* rule = it->second;
  rule->spec.rate = new_rate;
  rule->spec.rank = new_rank;
  ++rule->stats.rate_changes;
  for (JobId job : rule->bound_jobs) {
    auto& queue = queues_.at(job);
    queue.bucket.set_rate(new_rate, now);
    queue.rank = new_rank;
    if (!queue.rpcs.empty()) push_deadline(queue, now);
  }
  return true;
}

bool TbfScheduler::stop_rule(const std::string& name, SimTime /*now*/) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const auto& r) { return r->spec.name == name; });
  if (it == rules_.end()) return false;
  // Queues bound to the stopped rule drain through the fallback path:
  // their pending RPCs keep FIFO order within each queue and are appended
  // in ascending JobId order across queues (deterministic).
  std::vector<JobId> to_erase((*it)->bound_jobs.begin(),
                              (*it)->bound_jobs.end());
  std::sort(to_erase.begin(), to_erase.end());
  for (JobId job : to_erase) {
    auto& queue = queues_.at(job);
    ++queue.heap_version;  // kill any live heap entry
    for (auto& rpc : queue.rpcs)
      fallback_.emplace_back(arrival_counter_++, rpc);
    queues_.erase(job);
  }
  rules_by_name_.erase(name);
  rules_.erase(it);
  ADAPTBF_LOG_DEBUG("tbf", "stop rule '%s'", name.c_str());
  return true;
}

bool TbfScheduler::has_rule(const std::string& name) const {
  return rules_by_name_.contains(name);
}

std::vector<std::string> TbfScheduler::active_rules() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& rule : rules_) names.push_back(rule->spec.name);
  return names;
}

const RuleStats* TbfScheduler::rule_stats(const std::string& name) const {
  auto it = rules_by_name_.find(name);
  return it == rules_by_name_.end() ? nullptr : &it->second->stats;
}

TbfScheduler::Rule* TbfScheduler::classify(const Rpc& rpc) {
  Rule* best = nullptr;
  for (auto& rule : rules_) {
    if (!rule->spec.matcher.matches(rpc)) continue;
    if (best == nullptr || rule->spec.rank < best->spec.rank) best = rule.get();
  }
  return best;
}

void TbfScheduler::push_deadline(ClassQueue& q, SimTime now) {
  const SimTime deadline = q.bucket.time_for_tokens(1.0, now);
  ++q.heap_version;
  heap_.push(HeapEntry{deadline, q.rank, arrival_counter_++, q.heap_version,
                       q.job});
}

void TbfScheduler::enqueue(const Rpc& rpc, SimTime now) {
  Rule* rule = classify(rpc);
  if (rule == nullptr) {
    fallback_.emplace_back(arrival_counter_++, rpc);
    ++backlog_;
    return;
  }
  ++rule->stats.arrived;
  auto it = queues_.find(rpc.job);
  if (it != queues_.end() && it->second.rule != rule) {
    // The job's best-matching rule changed (rule stopped+restarted, or a
    // higher-rank rule now matches). Rebind: keep pending RPCs, adopt the
    // new rule's rate/rank with a fresh bucket.
    ClassQueue& queue = it->second;
    queue.rule->bound_jobs.erase(rpc.job);
    rule->bound_jobs.insert(rpc.job);
    ++queue.heap_version;
    queue.rule = rule;
    queue.rank = rule->spec.rank;
    queue.bucket = TokenBucket(rule->spec.rate, rule->spec.depth, now,
                               config_.start_full ? rule->spec.depth : 0.0);
    queue.rpcs.push_back(rpc);
    ++backlog_;
    push_deadline(queue, now);
    return;
  }
  if (it == queues_.end()) {
    ClassQueue queue{
        rpc.job,
        rule,
        TokenBucket(rule->spec.rate, rule->spec.depth, now,
                    config_.start_full ? rule->spec.depth : 0.0),
        {},
        rule->spec.rank,
        0};
    rule->bound_jobs.insert(rpc.job);
    it = queues_.emplace(rpc.job, std::move(queue)).first;
  }
  ClassQueue& queue = it->second;
  const bool was_empty = queue.rpcs.empty();
  queue.rpcs.push_back(rpc);
  ++backlog_;
  if (was_empty) push_deadline(queue, now);
}

std::optional<Rpc> TbfScheduler::dequeue(SimTime now) {
  while (true) {
    // Drop stale heap entries off the top.
    const HeapEntry* top = nullptr;
    while (!heap_.empty()) {
      const HeapEntry& candidate = heap_.top();
      auto it = queues_.find(candidate.job);
      if (it == queues_.end() ||
          it->second.heap_version != candidate.version) {
        heap_.pop();
        continue;
      }
      top = &candidate;
      break;
    }
    const bool rule_due = top != nullptr && top->deadline <= now;
    // Fallback competes with due rule queues in arrival order; it wins
    // outright when no rule queue is due.
    if (!fallback_.empty() &&
        (!rule_due || fallback_.front().first < top->arrival_seq)) {
      Rpc rpc = fallback_.front().second;
      fallback_.pop_front();
      --backlog_;
      return rpc;
    }
    if (!rule_due) return std::nullopt;
    const HeapEntry entry = *top;
    heap_.pop();
    ClassQueue& queue = queues_.at(entry.job);
    ADAPTBF_CHECK(!queue.rpcs.empty());
    if (queue.bucket.try_consume(1.0, now)) {
      Rpc rpc = queue.rpcs.front();
      queue.rpcs.pop_front();
      --backlog_;
      ++queue.rule->stats.served;
      if (!queue.rpcs.empty()) {
        push_deadline(queue, now);
      } else {
        ++queue.heap_version;  // no live entry while queue is empty
      }
      return rpc;
    }
    // Deadline was computed under an older (higher) rate; recompute. The
    // new deadline is strictly in the future, so this cannot loop.
    push_deadline(queue, now);
  }
}

SimTime TbfScheduler::next_ready_time(SimTime now) {
  if (!fallback_.empty()) return now;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    auto it = queues_.find(top.job);
    if (it == queues_.end() || it->second.heap_version != top.version) {
      heap_.pop();
      continue;
    }
    return std::max(now, top.deadline);
  }
  return SimTime::max();
}

double TbfScheduler::queue_tokens(JobId job, SimTime now) {
  auto it = queues_.find(job);
  if (it == queues_.end()) return 0.0;
  return it->second.bucket.tokens(now);
}

std::size_t TbfScheduler::queue_backlog(JobId job) const {
  auto it = queues_.find(job);
  return it == queues_.end() ? 0 : it->second.rpcs.size();
}

}  // namespace adaptbf
