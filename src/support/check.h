// Checked preconditions and invariants.
//
// ADAPTBF_CHECK is active in all build types: simulator correctness depends
// on these invariants, and the cost is negligible next to event processing.
// Violations abort with a message; they indicate a programming error, never
// a recoverable runtime condition (per the C++ Core Guidelines I.6 / E.12 we
// do not throw from invariant failures).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace adaptbf {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "ADAPTBF_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace adaptbf

// Evaluation contract (pinned by tests/support/check_test.cpp): `expr` is
// evaluated EXACTLY once whether it passes or fails — side effects in the
// condition are safe — and `msg` is evaluated at most once, only on the
// failure path (so it may be an expensive formatting expression).
// check_failed() is [[noreturn]], which lets clang-tidy and sanitizer
// flow analysis treat the code after a CHECK as unreachable-on-failure.
#define ADAPTBF_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) [[unlikely]]                                            \
      ::adaptbf::check_failed(#expr, __FILE__, __LINE__, nullptr);       \
  } while (0)

#define ADAPTBF_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) [[unlikely]]                                            \
      ::adaptbf::check_failed(#expr, __FILE__, __LINE__, (msg));         \
  } while (0)
