// Console table and CSV emission for benchmark harnesses.
//
// Every figure-reproduction binary prints (a) an aligned console table that
// mirrors the rows/series the paper reports and (b) optionally a CSV file so
// the series can be re-plotted.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adaptbf {

/// Row-oriented table builder. Columns are fixed at construction; cells are
/// formatted by the caller (format helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Renders with padded columns, a header separator, and `title` on top.
  [[nodiscard]] std::string to_string(std::string_view title = "") const;

  /// Renders as RFC-4180-ish CSV (comma separated, quoting cells that need
  /// it). Header row included.
  [[nodiscard]] std::string to_csv() const;

  /// Writes to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
[[nodiscard]] std::string fmt_fixed(double v, int precision = 2);

/// Integer with thousands separators ("1,234,567").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

/// Signed delta with explicit sign ("+3.20" / "-0.75").
[[nodiscard]] std::string fmt_signed(double v, int precision = 2);

/// Percentage ("45.0%").
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace adaptbf
