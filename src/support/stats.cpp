#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace adaptbf {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const { return n_ ? mean_ : 0.0; }

double StreamingStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const { return n_ ? min_ : 0.0; }

double StreamingStats::max() const { return n_ ? max_ : 0.0; }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double q) {
  ADAPTBF_CHECK(!values.empty());
  ADAPTBF_CHECK(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double jain_fairness(std::span<const double> values) {
  // Degenerate inputs are defined, not checked: a scenario can legitimately
  // complete with zero jobs (empty workload, all-idle horizon), and a
  // campaign must summarize such a trial rather than abort the process.
  // Zero jobs — like all-zero shares below — is "nobody is disadvantaged":
  // fairness 1.
  if (values.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero shares: degenerate but equal
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace adaptbf
