#include "support/ini.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace adaptbf {

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && !text.empty();
}

bool parse_double(std::string_view text, double& out) {
  // from_chars, not strtod: strtod accepts "nan", "inf", and hex floats
  // ("0x1p4"), which let non-finite or surprising values into configs and
  // from there into exports. Configs are plain decimal/scientific only;
  // anything else — including "nan"/"inf" (from_chars parses them, the
  // finiteness check rejects them) and overflow to infinity ("1e999") —
  // fails the parse. `out` is untouched on failure.
  if (!text.empty() && text.front() == '+') {
    text.remove_prefix(1);
    // from_chars would happily parse the '-' of "+-5"; one sign only.
    if (!text.empty() && (text.front() == '+' || text.front() == '-'))
      return false;
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || !std::isfinite(value)) return false;
  out = value;
  return true;
}

namespace {
std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}
}  // namespace

std::optional<IniFile> IniFile::parse(std::string_view text,
                                      std::string* error) {
  IniFile file;
  std::string current_section;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& message) -> std::optional<IniFile> {
    if (error != nullptr)
      *error = message + " (line " + std::to_string(line_number) + ")";
    return std::nullopt;
  };
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    // Strip comments (full-line or trailing).
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) return fail("empty section name");
      current_section = std::string(name);
      if (std::find(file.section_order_.begin(), file.section_order_.end(),
                    current_section) == file.section_order_.end())
        file.section_order_.push_back(current_section);
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return fail("expected 'key = value'");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) return fail("empty key");
    if (current_section.empty()) return fail("key before any [section]");
    file.entries_.push_back(
        Entry{current_section, std::string(key), std::string(value)});
  }
  return file;
}

std::vector<std::string> IniFile::sections() const { return section_order_; }

bool IniFile::has_section(std::string_view section) const {
  return std::find(section_order_.begin(), section_order_.end(), section) !=
         section_order_.end();
}

std::optional<std::string> IniFile::get(std::string_view section,
                                        std::string_view key) const {
  for (const auto& entry : entries_)
    if (entry.section == section && entry.key == key) return entry.value;
  return std::nullopt;
}

std::vector<std::string> IniFile::get_all(std::string_view section,
                                          std::string_view key) const {
  std::vector<std::string> values;
  for (const auto& entry : entries_)
    if (entry.section == section && entry.key == key)
      values.push_back(entry.value);
  return values;
}

std::optional<double> IniFile::get_double(std::string_view section,
                                          std::string_view key) const {
  const auto value = get(section, key);
  if (!value.has_value()) return std::nullopt;
  double parsed = 0.0;
  if (!parse_double(*value, parsed)) return std::nullopt;
  return parsed;
}

std::optional<std::int64_t> IniFile::get_int(std::string_view section,
                                             std::string_view key) const {
  const auto value = get(section, key);
  if (!value.has_value()) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end != value->c_str() + value->size() || value->empty())
    return std::nullopt;
  return parsed;
}

std::optional<bool> IniFile::get_bool(std::string_view section,
                                      std::string_view key) const {
  const auto value = get(section, key);
  if (!value.has_value()) return std::nullopt;
  const std::string v = lower(*value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return std::nullopt;
}

std::vector<std::string> IniFile::keys(std::string_view section) const {
  std::vector<std::string> names;
  for (const auto& entry : entries_)
    if (entry.section == section) names.push_back(entry.key);
  return names;
}

}  // namespace adaptbf
