// Shared JSON text formatting for the exporters and the campaign journal.
//
// Two numeric renderings with different contracts:
//   json_num       "%.10g"  — display precision, stable and compact; what
//                  the CSV/JSON artifacts print.
//   json_num_exact "%.17g"  — round-trip precision; strtod() on the output
//                  reconstructs the identical IEEE-754 double. The JSONL
//                  journal uses this so a resumed campaign re-exports
//                  byte-identical artifacts.
// Both emit `null` for non-finite values (JSON has no NaN/Inf tokens).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace adaptbf {

/// Quoted + escaped JSON string literal (quotes included).
[[nodiscard]] std::string json_quote(std::string_view text);

/// Display-precision numeric literal; "null" when non-finite.
[[nodiscard]] std::string json_num(double v);

/// Round-trip-exact numeric literal; "null" when non-finite.
[[nodiscard]] std::string json_num_exact(double v);

// --------------------------------------------------------- strict scanner
//
// Linear scanner for machine-written JSON in a fixed dialect: exact key
// order, exact structure, no whitespace. The journal rows and the dispatch
// protocol frames are both written by this codebase, so their readers are
// strict mirrors of the writers — anything unexpected (truncation, hand
// edits, crash garbage, a hostile peer) fails the parse as a whole rather
// than yielding a partial value. Every json_parse_* helper consumes input
// on success and returns false (cursor state unspecified) on mismatch.

struct JsonCursor {
  const char* p;
  const char* end;
  explicit JsonCursor(std::string_view text)
      : p(text.data()), end(text.data() + text.size()) {}
  /// True when the whole input was consumed — callers check this last so
  /// trailing garbage fails the parse.
  [[nodiscard]] bool done() const { return p == end; }
};

/// Consumes the exact literal `token` (keys, punctuation, keywords).
[[nodiscard]] bool json_lit(JsonCursor& c, std::string_view token);

/// Quoted string as written by json_quote: only \" \\ and \u00XX (control
/// characters) escapes are accepted.
[[nodiscard]] bool json_parse_string(JsonCursor& c, std::string& out);

[[nodiscard]] bool json_parse_u64(JsonCursor& c, std::uint64_t& out);
[[nodiscard]] bool json_parse_u32(JsonCursor& c, std::uint32_t& out);
[[nodiscard]] bool json_parse_i64(JsonCursor& c, std::int64_t& out);

/// Exactly 16 lowercase hex digits (the %016x rendering of a 64-bit
/// hash — journal grid_hash, dispatch hello). Surrounding quotes are the
/// caller's tokens.
[[nodiscard]] bool json_parse_hash16(JsonCursor& c, std::uint64_t& out);

/// JSON number or `null` (the json_num* encoding for non-finite doubles;
/// null parses back as quiet NaN).
[[nodiscard]] bool json_parse_double_or_null(JsonCursor& c, double& out);

[[nodiscard]] bool json_parse_bool(JsonCursor& c, bool& out);

}  // namespace adaptbf
