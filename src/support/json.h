// Shared JSON text formatting for the exporters and the campaign journal.
//
// Two numeric renderings with different contracts:
//   json_num       "%.10g"  — display precision, stable and compact; what
//                  the CSV/JSON artifacts print.
//   json_num_exact "%.17g"  — round-trip precision; strtod() on the output
//                  reconstructs the identical IEEE-754 double. The JSONL
//                  journal uses this so a resumed campaign re-exports
//                  byte-identical artifacts.
// Both emit `null` for non-finite values (JSON has no NaN/Inf tokens).
#pragma once

#include <string>
#include <string_view>

namespace adaptbf {

/// Quoted + escaped JSON string literal (quotes included).
[[nodiscard]] std::string json_quote(std::string_view text);

/// Display-precision numeric literal; "null" when non-finite.
[[nodiscard]] std::string json_num(double v);

/// Round-trip-exact numeric literal; "null" when non-finite.
[[nodiscard]] std::string json_num_exact(double v);

}  // namespace adaptbf
