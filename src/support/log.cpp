#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace adaptbf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

/// Serializes sink writes. Concurrent sweep trials log from worker
/// threads; without this the prefix/body/newline fprintf calls of two
/// messages could interleave on stderr.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, std::string_view tag, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;

  // Format the whole line first so the sink sees one atomic write.
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body_len = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  std::string body(body_len > 0 ? static_cast<std::size_t>(body_len) : 0, '\0');
  if (body_len > 0) std::vsnprintf(body.data(), body.size() + 1, fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(), body.c_str());
}

}  // namespace adaptbf
