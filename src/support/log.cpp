#include "support/log.h"

#include <atomic>
#include <cstdio>

namespace adaptbf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, std::string_view tag, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %.*s: ", level_name(level),
               static_cast<int>(tag.size()), tag.data());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace adaptbf
