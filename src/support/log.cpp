#include "support/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace adaptbf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

/// Process-start anchor for the +<ms> elapsed column. Captured at first
/// use, which is close enough to main() for a human-readable offset.
std::chrono::steady_clock::time_point process_start() {
  static const auto kStart = std::chrono::steady_clock::now();
  return kStart;
}

/// Serializes sink writes. Concurrent sweep trials log from worker
/// threads; without this the prefix/body/newline fprintf calls of two
/// messages could interleave on stderr.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> log_level_from_name(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

bool init_log_level_from_env() {
  // Read once during startup, before any worker threads exist.
  const char* env = std::getenv("ADAPTBF_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return true;
  const auto level = log_level_from_name(env);
  if (!level) return false;
  set_log_level(*level);
  return true;
}

std::string format_log_timestamp(std::time_t wall_s, int wall_ms,
                                 std::uint64_t elapsed_ms) {
  std::tm utc{};
  gmtime_r(&wall_s, &utc);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ +%llums",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, wall_ms,
                static_cast<unsigned long long>(elapsed_ms));
  return buffer;
}

void log_message(LogLevel level, std::string_view tag, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;

  // Format the whole line first so the sink sees one atomic write.
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body_len = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  std::string body(body_len > 0 ? static_cast<std::size_t>(body_len) : 0, '\0');
  if (body_len > 0) std::vsnprintf(body.data(), body.size() + 1, fmt, args);
  va_end(args);

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - process_start());
  const auto wall = std::chrono::system_clock::now();
  const std::time_t wall_s = std::chrono::system_clock::to_time_t(wall);
  const int wall_ms = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          wall.time_since_epoch())
          .count() %
      1000);
  const std::string stamp = format_log_timestamp(
      wall_s, wall_ms, static_cast<std::uint64_t>(elapsed.count()));

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%s [%s] %.*s: %s\n", stamp.c_str(),
               level_name(level), static_cast<int>(tag.size()), tag.data(),
               body.c_str());
}

}  // namespace adaptbf
