#include "support/json.h"

#include <cmath>
#include <cstdio>

namespace adaptbf {

std::string json_quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_num_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace adaptbf
