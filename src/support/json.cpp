#include "support/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace adaptbf {

std::string json_quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_num_exact(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool json_lit(JsonCursor& c, std::string_view token) {
  if (static_cast<std::size_t>(c.end - c.p) < token.size()) return false;
  if (std::memcmp(c.p, token.data(), token.size()) != 0) return false;
  c.p += token.size();
  return true;
}

bool json_parse_string(JsonCursor& c, std::string& out) {
  if (!json_lit(c, "\"")) return false;
  out.clear();
  while (c.p != c.end) {
    const char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.p == c.end) return false;
      const char esc = *c.p++;
      if (esc == '"' || esc == '\\') {
        out += esc;
      } else if (esc == 'u') {
        // The writer only \u-escapes control characters (< 0x20).
        if (c.end - c.p < 4) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = *c.p++;
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            value |= static_cast<unsigned>(h - 'a' + 10);
          else return false;
        }
        if (value >= 0x20) return false;
        out += static_cast<char>(value);
      } else {
        return false;
      }
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      return false;
    } else {
      out += ch;
    }
  }
  return false;  // Unterminated string.
}

bool json_parse_u64(JsonCursor& c, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(c.p, c.end, out);
  if (ec != std::errc{}) return false;
  c.p = ptr;
  return true;
}

bool json_parse_u32(JsonCursor& c, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!json_parse_u64(c, v) ||
      v > std::numeric_limits<std::uint32_t>::max())
    return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool json_parse_i64(JsonCursor& c, std::int64_t& out) {
  auto [ptr, ec] = std::from_chars(c.p, c.end, out);
  if (ec != std::errc{}) return false;
  c.p = ptr;
  return true;
}

bool json_parse_hash16(JsonCursor& c, std::uint64_t& out) {
  if (c.end - c.p < 16) return false;
  auto [ptr, ec] = std::from_chars(c.p, c.p + 16, out, 16);
  if (ec != std::errc{} || ptr != c.p + 16) return false;
  c.p = ptr;
  return true;
}

bool json_parse_double_or_null(JsonCursor& c, double& out) {
  if (json_lit(c, "null")) {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  auto [ptr, ec] = std::from_chars(c.p, c.end, out);
  if (ec != std::errc{}) return false;
  c.p = ptr;
  return true;
}

bool json_parse_bool(JsonCursor& c, bool& out) {
  if (json_lit(c, "true")) { out = true; return true; }
  if (json_lit(c, "false")) { out = false; return true; }
  return false;
}

}  // namespace adaptbf
