// Byte-size and rate unit helpers shared across the simulator.
#pragma once

#include <cstdint>

namespace adaptbf {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Bytes-per-second rate expressed from MiB/s, the unit used throughout the
/// paper's evaluation plots.
[[nodiscard]] constexpr double mib_per_sec(double mib) {
  return mib * static_cast<double>(kMiB);
}

/// Convert a byte count to MiB for reporting.
[[nodiscard]] constexpr double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

}  // namespace adaptbf
