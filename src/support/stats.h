// Streaming summary statistics and percentile helpers used by the metrics
// layer and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace adaptbf {

/// Single-pass mean / variance / min / max accumulator (Welford's method).
/// Numerically stable for long throughput timelines.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Sample variance (n-1 divisor).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation between closest ranks.
/// `q` in [0, 100]. The input span is copied; the original is not reordered.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = all equal.
/// Degenerate inputs (empty, or all-zero shares) return 1.0 — equal by
/// vacuity — so trial summaries never abort on jobless scenarios.
/// Used by tests to quantify share fairness across jobs.
[[nodiscard]] double jain_fairness(std::span<const double> values);

}  // namespace adaptbf
