// Minimal INI reader for scenario files.
//
// Grammar: `[section]` headers, `key = value` pairs, `#`/`;` comments,
// blank lines ignored. Keys may repeat within a section (used for the
// `process =` lines of job descriptions); values keep inner whitespace and
// are trimmed at both ends. No escapes, no quoting — scenario files do not
// need them, and a parser this small is easy to audit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaptbf {

class IniFile {
 public:
  /// Parses `text`. On failure returns nullopt and sets `error` (if given)
  /// to a message with the 1-based line number.
  static std::optional<IniFile> parse(std::string_view text,
                                      std::string* error = nullptr);

  /// Section names in file order (duplicates merged into the first).
  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] bool has_section(std::string_view section) const;

  /// First value of `key` in `section`; nullopt if absent.
  [[nodiscard]] std::optional<std::string> get(std::string_view section,
                                               std::string_view key) const;

  /// All values of `key` in `section`, in file order.
  [[nodiscard]] std::vector<std::string> get_all(std::string_view section,
                                                 std::string_view key) const;

  /// Typed accessors; return nullopt when missing OR malformed.
  [[nodiscard]] std::optional<double> get_double(std::string_view section,
                                                 std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(
      std::string_view section, std::string_view key) const;
  /// true/false, yes/no, on/off, 1/0 (case-insensitive).
  [[nodiscard]] std::optional<bool> get_bool(std::string_view section,
                                             std::string_view key) const;

  /// Keys present in a section, in file order (with duplicates).
  [[nodiscard]] std::vector<std::string> keys(std::string_view section) const;

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> section_order_;
};

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Strict numeric parsers shared by the scenario/sweep loaders: the whole
/// string must be consumed, else false. (IniFile's typed getters wrap
/// these; the loaders also need them for key=value word lists.)
/// parse_double accepts plain decimal/scientific notation only and
/// rejects non-finite results: "nan", "inf", hex floats, and overflowing
/// exponents never reach a config value. On failure `out` is untouched.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out);
[[nodiscard]] bool parse_double(std::string_view text, double& out);

}  // namespace adaptbf
