// Minimal leveled logger.
//
// The simulator itself never logs on hot paths; logging exists for the
// controllers (rule create/change/stop events mirror what the real AdapTBF
// daemon prints) and for harness progress. Global level, stderr sink.
//
// Every line carries a UTC wall-clock timestamp (when it happened, for
// correlating coordinator and worker logs across machines) plus the
// monotonic milliseconds since process start (how far into the run —
// immune to NTP steps):
//
//   2026-08-07T12:34:56.789Z +1234ms [WARN] dispatch: message
#pragma once

#include <cstdarg>
#include <cstdint>
#include <ctime>
#include <optional>
#include <string>
#include <string_view>

namespace adaptbf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// "debug" | "info" | "warn" | "error" | "off" (the sweep_cli --log-level
/// vocabulary) -> level; nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> log_level_from_name(
    std::string_view name);

/// Applies the ADAPTBF_LOG_LEVEL environment variable when set. Returns
/// false (level untouched) when the variable holds an unknown name, so
/// callers can warn; true when unset or applied.
bool init_log_level_from_env();

/// The line prefix, exposed pure so tests can pin the format:
/// "2026-08-07T12:34:56.789Z +1234ms" from a UTC wall time (seconds +
/// milliseconds) and the monotonic elapsed milliseconds.
[[nodiscard]] std::string format_log_timestamp(std::time_t wall_s,
                                               int wall_ms,
                                               std::uint64_t elapsed_ms);

/// printf-style logging. `tag` names the subsystem ("rule-daemon", ...).
void log_message(LogLevel level, std::string_view tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace adaptbf

#define ADAPTBF_LOG_DEBUG(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kDebug, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_INFO(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kInfo, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_WARN(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kWarn, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_ERROR(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kError, (tag), __VA_ARGS__)
