// Minimal leveled logger.
//
// The simulator itself never logs on hot paths; logging exists for the
// controllers (rule create/change/stop events mirror what the real AdapTBF
// daemon prints) and for harness progress. Global level, stderr sink.
#pragma once

#include <cstdarg>
#include <string_view>

namespace adaptbf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. `tag` names the subsystem ("rule-daemon", ...).
void log_message(LogLevel level, std::string_view tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace adaptbf

#define ADAPTBF_LOG_DEBUG(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kDebug, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_INFO(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kInfo, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_WARN(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kWarn, (tag), __VA_ARGS__)
#define ADAPTBF_LOG_ERROR(tag, ...) \
  ::adaptbf::log_message(::adaptbf::LogLevel::kError, (tag), __VA_ARGS__)
