// Deterministic pseudo-random number generation.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so we implement our own generator (xoshiro256**, Blackman & Vigna) and our
// own distributions instead of relying on the implementation-defined
// std::uniform_*_distribution. Seeding goes through SplitMix64 as the
// authors recommend.
#pragma once

#include <cstdint>

namespace adaptbf {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives an independent stream seed from a base seed and a stream index
/// (trial number, worker id, ...). Mixing both through SplitMix64 gives
/// well-separated xoshiro256** states even for adjacent indices, so
/// concurrent trials can each own a private generator with no shared
/// mutable state. Thread-safe: pure function of its arguments.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(
    std::uint64_t base_seed, std::uint64_t stream_index) {
  SplitMix64 sm(base_seed);
  // Decorrelate the index before combining: adjacent indices must not
  // produce adjacent SplitMix64 states.
  SplitMix64 ix(stream_index ^ 0x6a09e667f3bcc909ULL);
  return sm.next() ^ ix.next();
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d5ad9cc1e4f7a61ULL);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  /// Uses Lemire's unbiased bounded rejection method.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Exponentially distributed double with the given mean (> 0).
  double next_exponential(double mean);

  /// Normally distributed double (Marsaglia polar method).
  double next_normal(double mean, double stddev);

  /// Jump function: advances the state by 2^128 steps, giving independent
  /// non-overlapping subsequences for parallel streams.
  void jump();

 private:
  std::uint64_t s_[4];
};

}  // namespace adaptbf
