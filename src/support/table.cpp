#include "support/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/check.h"

namespace adaptbf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ADAPTBF_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ADAPTBF_CHECK_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(std::string_view title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_csv();
  return static_cast<bool>(file);
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_signed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace adaptbf
