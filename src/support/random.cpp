#include "support/random.h"

#include <cmath>

#include "support/check.h"

namespace adaptbf {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_in(std::uint64_t lo, std::uint64_t hi) {
  ADAPTBF_CHECK(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == ~0ULL) return next();
  const std::uint64_t bound = range + 1;
  // Lemire's method: multiply-shift with rejection of the biased zone.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_exponential(double mean) {
  ADAPTBF_CHECK(mean > 0.0);
  double u = next_double();
  // Guard log(0); next_double() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256::next_normal(double mean, double stddev) {
  ADAPTBF_CHECK(stddev >= 0.0);
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace adaptbf
