// FNV-1a 64-bit over typed fields, the fingerprint primitive behind the
// campaign grid hash (sweep/resume.h) and the search-config hash
// (search/spec.h). Strings are length-prefixed so field boundaries
// cannot alias; doubles hash their IEEE-754 bits, so two configs hash
// equal iff their values are bit-identical — the same standard the
// journals hold doubles to (support/json.h json_num_exact).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace adaptbf {

class Fnv1a {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace adaptbf
