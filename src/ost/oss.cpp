#include "ost/oss.h"

#include "support/check.h"

namespace adaptbf {

Oss::Oss(Simulator& sim, Config config,
         const SchedulerFactory& make_scheduler) {
  ADAPTBF_CHECK_MSG(config.num_osts > 0, "OSS needs at least one OST");
  ADAPTBF_CHECK(make_scheduler != nullptr);
  osts_.reserve(config.num_osts);
  for (std::uint32_t i = 0; i < config.num_osts; ++i) {
    Ost::Config ost_config = config.ost;
    ost_config.id = i;
    osts_.push_back(
        std::make_unique<Ost>(sim, ost_config, make_scheduler(i)));
  }
}

Ost& Oss::ost(std::size_t index) {
  ADAPTBF_CHECK(index < osts_.size());
  return *osts_[index];
}

const Ost& Oss::ost(std::size_t index) const {
  ADAPTBF_CHECK(index < osts_.size());
  return *osts_[index];
}

void Oss::add_completion_hook(const Ost::CompletionHook& hook) {
  for (auto& ost : osts_) ost->add_completion_hook(hook);
}

std::uint64_t Oss::completed_rpcs() const {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost->completed_rpcs();
  return total;
}

std::uint64_t Oss::completed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost->completed_bytes();
  return total;
}

}  // namespace adaptbf
