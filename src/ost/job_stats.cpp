#include "ost/job_stats.h"

#include <algorithm>

namespace adaptbf {

void JobStatsTracker::record_arrival(const Rpc& rpc) {
  auto& w = window_[rpc.job];
  w.job = rpc.job;
  ++w.rpcs;
  w.bytes += rpc.size_bytes;
  auto& c = cumulative_[rpc.job];
  ++c.rpcs_issued;
  c.bytes_issued += rpc.size_bytes;
}

void JobStatsTracker::record_completion(const Rpc& rpc) {
  auto& c = cumulative_[rpc.job];
  ++c.rpcs_completed;
  c.bytes_completed += rpc.size_bytes;
}

std::vector<JobWindowStats> JobStatsTracker::window_snapshot() const {
  std::vector<JobWindowStats> jobs;
  jobs.reserve(window_.size());
  for (const auto& [job, stats] : window_) jobs.push_back(stats);
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& a, const auto& b) { return a.job < b.job; });
  return jobs;
}

void JobStatsTracker::clear_window() { window_.clear(); }

const JobCumulativeStats* JobStatsTracker::cumulative(JobId job) const {
  auto it = cumulative_.find(job);
  return it == cumulative_.end() ? nullptr : &it->second;
}

std::vector<JobId> JobStatsTracker::jobs_ever_seen() const {
  std::vector<JobId> jobs;
  jobs.reserve(cumulative_.size());
  for (const auto& [job, stats] : cumulative_) jobs.push_back(job);
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

}  // namespace adaptbf
