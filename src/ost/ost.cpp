#include "ost/ost.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

Ost::Ost(Simulator& sim, Config config,
         std::unique_ptr<RequestScheduler> scheduler)
    : sim_(sim),
      config_(config),
      disk_model_(config.disk),
      scheduler_(std::move(scheduler)),
      disk_(sim, config.disk.seq_bandwidth) {
  ADAPTBF_CHECK_MSG(config_.num_threads > 0, "OST needs at least one thread");
  ADAPTBF_CHECK_MSG(scheduler_ != nullptr, "OST needs a scheduler");
}

void Ost::submit(const Rpc& rpc) {
  job_stats_.record_arrival(rpc);
  scheduler_->enqueue(rpc, sim_.now());
  pump();
}

void Ost::add_completion_hook(CompletionHook hook) {
  ADAPTBF_CHECK(hook != nullptr);
  hooks_.push_back(std::move(hook));
}

double Ost::max_token_rate(std::uint32_t rpc_size_bytes) const {
  return disk_model_.rpcs_per_second(rpc_size_bytes, Locality::kSequential);
}

void Ost::pump() {
  const SimTime now = sim_.now();
  while (busy_threads_ < config_.num_threads) {
    auto rpc = scheduler_->dequeue(now);
    if (!rpc.has_value()) break;
    ++busy_threads_;
    const std::uint64_t tag = rpc->id;
    in_service_.emplace(tag, InService{*rpc, now});
    disk_.admit(tag, disk_model_.work_bytes(*rpc),
                [this](std::uint64_t done_tag) { on_disk_done(done_tag); });
  }
  // If work remains queued but nothing was eligible (tokens pending) or all
  // threads are busy, arm a wakeup for the earliest time the scheduler could
  // release an RPC. Completions also call pump(), so thread-availability
  // wakeups are implicit.
  if (scheduler_->backlog() > 0 && busy_threads_ < config_.num_threads) {
    const SimTime ready = scheduler_->next_ready_time(now);
    if (ready < SimTime::max()) {
      if (sim_.pending(wakeup_) && wakeup_time_ <= ready) return;  // armed
      sim_.cancel(wakeup_);  // stale handles are ignored in O(1)
      wakeup_time_ = std::max(ready, now);
      wakeup_ = sim_.schedule_at(wakeup_time_, [this] { pump(); });
    }
  }
}

void Ost::on_disk_done(std::uint64_t tag) {
  auto it = in_service_.find(tag);
  ADAPTBF_CHECK_MSG(it != in_service_.end(), "completion for unknown RPC");
  RpcCompletion completion{it->second.rpc, it->second.start_service,
                           sim_.now()};
  in_service_.erase(it);
  ADAPTBF_CHECK(busy_threads_ > 0);
  --busy_threads_;
  ++completed_;
  completed_bytes_ += completion.rpc.size_bytes;
  job_stats_.record_completion(completion.rpc);
  for (const auto& hook : hooks_) hook(completion);
  pump();
}

}  // namespace adaptbf
