// Storage-device cost model.
//
// Substitution for the CloudLab c6525-25g SATA SSDs (Table II of the paper).
// Each RPC's cost is normalized to "sequential byte equivalents": the
// device drains work at `seq_bandwidth` bytes/s, and random I/O or per-RPC
// overhead inflate an RPC's work. This keeps the device a single scalar
// resource — which is all the paper's experiments exercise — while
// preserving the property that small random writes burn disproportionate
// device time (the bandwidth-hogging motivation in §I).
#pragma once

#include <cstdint>

#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

class DiskModel {
 public:
  struct Config {
    /// Sequential streaming bandwidth in bytes/second.
    double seq_bandwidth = 1600.0 * 1024 * 1024;
    /// Random-access bandwidth in bytes/second (seek/FTL penalty).
    double rand_bandwidth = 400.0 * 1024 * 1024;
    /// Fixed per-RPC setup cost (request handling, bulk setup).
    SimDuration per_rpc_overhead = SimDuration::micros(50);
  };

  DiskModel() : DiskModel(Config{}) {}
  explicit DiskModel(Config config);

  /// Work of an RPC in sequential-byte equivalents (see file comment).
  [[nodiscard]] double work_bytes(const Rpc& rpc) const;

  /// Time to complete `rpc` alone on an idle device.
  [[nodiscard]] SimDuration isolated_service_time(const Rpc& rpc) const;

  [[nodiscard]] double seq_bandwidth() const { return config_.seq_bandwidth; }

  /// Device capacity expressed in RPCs/second for a given RPC shape; the
  /// experiment harness uses this to derive the OST's max token rate T_i.
  [[nodiscard]] double rpcs_per_second(std::uint32_t size_bytes,
                                       Locality locality) const;

 private:
  Config config_;
};

}  // namespace adaptbf
