// Object Storage Server: a host with one or more OSTs (Fig. 2, left).
//
// In Lustre, the OSS runs the NRS (and thus TBF) for each of its targets;
// AdapTBF runs one independent controller per OST. The Oss class groups the
// OSTs of one server, owns their schedulers through the Ost instances, and
// exposes aggregate counters. It deliberately adds no cross-OST logic —
// decentralization is the point (§III-A).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ost/ost.h"
#include "sim/simulator.h"
#include "tbf/scheduler.h"

namespace adaptbf {

class Oss {
 public:
  /// Builds a scheduler for one OST (called once per target). Lets callers
  /// choose FCFS vs TBF per policy without Oss knowing about policies.
  using SchedulerFactory =
      std::function<std::unique_ptr<RequestScheduler>(std::uint32_t ost_index)>;

  struct Config {
    std::uint32_t num_osts = 2;  ///< CloudLab setup: one OSS with two OSTs.
    Ost::Config ost;             ///< Shared per-OST configuration.
  };

  Oss(Simulator& sim, Config config, const SchedulerFactory& make_scheduler);

  [[nodiscard]] std::size_t num_osts() const { return osts_.size(); }
  [[nodiscard]] Ost& ost(std::size_t index);
  [[nodiscard]] const Ost& ost(std::size_t index) const;

  /// Registers a completion hook on every OST.
  void add_completion_hook(const Ost::CompletionHook& hook);

  [[nodiscard]] std::uint64_t completed_rpcs() const;
  [[nodiscard]] std::uint64_t completed_bytes() const;

 private:
  std::vector<std::unique_ptr<Ost>> osts_;
};

}  // namespace adaptbf
