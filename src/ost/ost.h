// Object Storage Target: scheduler + I/O threads + device.
//
// The OST accepts RPCs from clients, classifies/queues them through its
// RequestScheduler (NRS-TBF or FCFS), and services them with a fixed pool
// of I/O threads over a processor-shared device. This mirrors the OSS/OST
// split in Fig. 2: the scheduler is the OSS-layer NRS; the device is the
// target. One Ost instance == one decentralized AdapTBF control domain.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ost/disk_model.h"
#include "ost/job_stats.h"
#include "ost/ps_disk.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"
#include "tbf/scheduler.h"

namespace adaptbf {

class Ost {
 public:
  struct Config {
    std::uint32_t id = 0;
    /// Lustre OSS I/O service thread count (ost_io threads). Bounds how many
    /// RPCs are in service concurrently.
    std::uint32_t num_threads = 16;
    DiskModel::Config disk;
  };

  using CompletionHook = std::function<void(const RpcCompletion&)>;

  /// The OST owns its scheduler; callers keep a typed pointer if they need
  /// rule management (see TbfScheduler).
  Ost(Simulator& sim, Config config,
      std::unique_ptr<RequestScheduler> scheduler);

  /// Client-facing entry point: hand an RPC to the server at sim.now().
  void submit(const Rpc& rpc);

  /// Registers an observer for RPC completions (metrics, client wakeups).
  /// Hooks run in registration order.
  void add_completion_hook(CompletionHook hook);

  [[nodiscard]] RequestScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] JobStatsTracker& job_stats() { return job_stats_; }
  [[nodiscard]] const DiskModel& disk_model() const { return disk_model_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Device capacity in RPCs/second for the given RPC shape; used to set
  /// the OST's maximum token rate T_i.
  [[nodiscard]] double max_token_rate(std::uint32_t rpc_size_bytes) const;

  [[nodiscard]] std::uint64_t completed_rpcs() const { return completed_; }
  [[nodiscard]] std::uint64_t completed_bytes() const {
    return completed_bytes_;
  }
  [[nodiscard]] std::uint32_t busy_threads() const { return busy_threads_; }

 private:
  /// Dispatches eligible RPCs onto free threads; arms a wakeup otherwise.
  void pump();
  void on_disk_done(std::uint64_t tag);

  Simulator& sim_;
  Config config_;
  DiskModel disk_model_;
  std::unique_ptr<RequestScheduler> scheduler_;
  PsDisk disk_;
  JobStatsTracker job_stats_;
  std::vector<CompletionHook> hooks_;

  struct InService {
    Rpc rpc;
    SimTime start_service;
  };
  std::unordered_map<std::uint64_t, InService> in_service_;

  std::uint32_t busy_threads_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t completed_bytes_ = 0;
  /// Pending scheduler wakeup; goes stale automatically once it fires, so
  /// no companion "armed" flag is needed.
  EventHandle wakeup_;
  SimTime wakeup_time_;
};

}  // namespace adaptbf
