// Processor-sharing device engine.
//
// Models the OST's backing device as a single resource of fixed bandwidth
// shared equally among all in-service transfers (egalitarian processor
// sharing) — the standard fluid approximation for concurrent bulk I/O on a
// shared SSD. Progress is integrated lazily between events; one pending
// completion event is kept armed for the transfer that will finish first.
// Deterministic: ties complete in admission order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulator.h"

namespace adaptbf {

class PsDisk {
 public:
  using DoneFn = std::function<void(std::uint64_t tag)>;

  /// `bandwidth` in work-bytes/second (see DiskModel::work_bytes).
  PsDisk(Simulator& sim, double bandwidth);

  /// Admits a transfer of `work_bytes` (> 0); `done` fires at completion.
  /// `tag` must be unique among active transfers.
  void admit(std::uint64_t tag, double work_bytes, DoneFn done);

  [[nodiscard]] std::size_t active() const { return active_.size(); }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

  /// Total work-bytes completed since construction (monotonic).
  [[nodiscard]] double work_completed() const { return work_completed_; }

 private:
  struct Transfer {
    double remaining;
    std::uint64_t admit_seq;
    DoneFn done;
  };

  /// Integrates progress from last_update_ to now.
  void advance_to(SimTime now);
  /// (Re)arms the completion event for the earliest-finishing transfer.
  void arm_completion();
  void on_completion();

  Simulator& sim_;
  double bandwidth_;
  double work_completed_ = 0.0;
  std::map<std::uint64_t, Transfer> active_;  // ordered => deterministic scan
  SimTime last_update_;
  /// Armed completion event; stale (and safely cancellable) once fired.
  EventHandle pending_event_;
  std::uint64_t admit_counter_ = 0;
};

}  // namespace adaptbf
