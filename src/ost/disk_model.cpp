#include "ost/disk_model.h"

#include "support/check.h"

namespace adaptbf {

DiskModel::DiskModel(Config config) : config_(config) {
  ADAPTBF_CHECK(config_.seq_bandwidth > 0.0);
  ADAPTBF_CHECK(config_.rand_bandwidth > 0.0);
  ADAPTBF_CHECK(config_.per_rpc_overhead >= SimDuration(0));
}

double DiskModel::work_bytes(const Rpc& rpc) const {
  const double penalty = rpc.locality == Locality::kRandom
                             ? config_.seq_bandwidth / config_.rand_bandwidth
                             : 1.0;
  const double overhead_bytes =
      config_.per_rpc_overhead.to_seconds() * config_.seq_bandwidth;
  return static_cast<double>(rpc.size_bytes) * penalty + overhead_bytes;
}

SimDuration DiskModel::isolated_service_time(const Rpc& rpc) const {
  return SimDuration::from_seconds(work_bytes(rpc) / config_.seq_bandwidth);
}

double DiskModel::rpcs_per_second(std::uint32_t size_bytes,
                                  Locality locality) const {
  Rpc probe;
  probe.size_bytes = size_bytes;
  probe.locality = locality;
  return config_.seq_bandwidth / work_bytes(probe);
}

}  // namespace adaptbf
