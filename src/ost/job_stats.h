// Per-job I/O statistics tracker — the simulator's `lustre job_stats`.
//
// AdapTBF's System Stats Controller samples this every observation window to
// learn each job's I/O demand d (eq. 3: RPCs issued to the target during the
// window) and clears it afterwards (§III-B, steps 1 and 9 in Fig. 2).
// Cumulative counters are kept separately for end-of-run reporting.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rpc/rpc.h"

namespace adaptbf {

struct JobWindowStats {
  JobId job;
  std::uint64_t rpcs = 0;   ///< RPCs issued during the window (demand d).
  std::uint64_t bytes = 0;  ///< Payload bytes issued during the window.
};

struct JobCumulativeStats {
  std::uint64_t rpcs_issued = 0;
  std::uint64_t rpcs_completed = 0;
  std::uint64_t bytes_issued = 0;
  std::uint64_t bytes_completed = 0;
};

class JobStatsTracker {
 public:
  /// Called by the OST on RPC arrival.
  void record_arrival(const Rpc& rpc);

  /// Called by the OST on RPC completion.
  void record_completion(const Rpc& rpc);

  /// Jobs active in the current window (>= 1 RPC arrival), in ascending
  /// JobId order for determinism. Does not clear.
  [[nodiscard]] std::vector<JobWindowStats> window_snapshot() const;

  /// Clears the window counters (the controller's step 9).
  void clear_window();

  [[nodiscard]] const JobCumulativeStats* cumulative(JobId job) const;
  [[nodiscard]] std::vector<JobId> jobs_ever_seen() const;

 private:
  std::unordered_map<JobId, JobWindowStats> window_;
  std::unordered_map<JobId, JobCumulativeStats> cumulative_;
};

}  // namespace adaptbf
