#include "ost/ps_disk.h"

#include <cmath>
#include <utility>
#include <vector>

#include "support/check.h"

namespace adaptbf {

namespace {
// Transfers within this many work-bytes of done are considered complete;
// absorbs float drift from repeated progress integration.
constexpr double kCompletionSlack = 1e-3;
}  // namespace

PsDisk::PsDisk(Simulator& sim, double bandwidth)
    : sim_(sim), bandwidth_(bandwidth), last_update_(sim.now()) {
  ADAPTBF_CHECK_MSG(bandwidth > 0.0, "disk bandwidth must be positive");
}

void PsDisk::advance_to(SimTime now) {
  ADAPTBF_CHECK(now >= last_update_);
  if (!active_.empty() && now > last_update_) {
    const double share = bandwidth_ * (now - last_update_).to_seconds() /
                         static_cast<double>(active_.size());
    for (auto& [tag, transfer] : active_) {
      const double progressed = std::min(transfer.remaining, share);
      transfer.remaining -= progressed;
      work_completed_ += progressed;
    }
  }
  last_update_ = now;
}

void PsDisk::arm_completion() {
  sim_.cancel(pending_event_);  // no-op when unarmed or already fired
  if (active_.empty()) return;
  double min_remaining = -1.0;
  for (const auto& [tag, transfer] : active_)
    if (min_remaining < 0.0 || transfer.remaining < min_remaining)
      min_remaining = transfer.remaining;
  const double wait_sec = std::max(0.0, min_remaining) *
                          static_cast<double>(active_.size()) / bandwidth_;
  const auto wait =
      SimDuration(static_cast<std::int64_t>(std::ceil(wait_sec * 1e9)));
  pending_event_ = sim_.schedule_after(wait, [this] { on_completion(); });
}

void PsDisk::on_completion() {
  advance_to(sim_.now());
  // Collect everything done; ties resolve in admission order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> done;  // (seq, tag)
  for (const auto& [tag, transfer] : active_)
    if (transfer.remaining <= kCompletionSlack)
      done.emplace_back(transfer.admit_seq, tag);
  std::sort(done.begin(), done.end());
  std::vector<std::pair<std::uint64_t, DoneFn>> callbacks;
  callbacks.reserve(done.size());
  for (const auto& [seq, tag] : done) {
    auto it = active_.find(tag);
    work_completed_ += it->second.remaining;  // count the slack
    callbacks.emplace_back(tag, std::move(it->second.done));
    active_.erase(it);
  }
  // Re-arm before running callbacks: callbacks typically admit new work,
  // and admit() re-arms again with the updated active set.
  arm_completion();
  for (auto& [tag, fn] : callbacks) fn(tag);
}

void PsDisk::admit(std::uint64_t tag, double work_bytes, DoneFn done) {
  ADAPTBF_CHECK_MSG(work_bytes > 0.0, "transfer work must be positive");
  ADAPTBF_CHECK_MSG(!active_.contains(tag), "duplicate active transfer tag");
  advance_to(sim_.now());
  active_.emplace(tag, Transfer{work_bytes, admit_counter_++, std::move(done)});
  arm_completion();
}

}  // namespace adaptbf
