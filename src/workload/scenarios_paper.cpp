#include "workload/scenarios_paper.h"

namespace adaptbf {

namespace {

/// 1 GiB file at 1 MiB RPCs: the paper's file-per-process size.
constexpr std::uint64_t kRpcsPerGiBFile = 1024;

/// Enough RPCs that a continuous process cannot drain before the run ends
/// even at full device bandwidth (~1.5 GiB/s * 150 s < 256 GiB).
constexpr std::uint64_t kUnbounded = 256 * 1024;

ScenarioSpec base_spec(std::string name, BwControl control) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.control = control;
  spec.num_threads = 16;
  spec.rpc_size_bytes = 1024 * 1024;
  spec.max_inflight_per_process = 8;
  spec.observation_period = SimDuration::millis(100);
  spec.timeline_bin = SimDuration::millis(100);
  return spec;
}

JobSpec make_job(std::uint32_t id, std::string name, std::uint32_t nodes) {
  JobSpec job;
  job.id = JobId(id);
  job.name = std::move(name);
  job.nodes = nodes;
  return job;
}

}  // namespace

SimDuration paper_run_duration() { return SimDuration::seconds(120); }

ScenarioSpec scenario_token_allocation(BwControl control) {
  ScenarioSpec spec = base_spec("IV-D token allocation", control);
  // Priorities 10/10/30/50 % realized as 1/1/3/5 compute nodes.
  const std::uint32_t nodes[] = {1, 1, 3, 5};
  for (std::uint32_t j = 0; j < 4; ++j) {
    JobSpec job = make_job(j + 1, "Job" + std::to_string(j + 1), nodes[j]);
    for (int p = 0; p < 16; ++p)
      job.processes.push_back(continuous_pattern(kRpcsPerGiBFile));
    spec.jobs.push_back(std::move(job));
  }
  spec.duration = SimDuration::seconds(150);
  spec.stop_when_idle = true;
  return spec;
}

ScenarioSpec scenario_token_redistribution(BwControl control) {
  ScenarioSpec spec = base_spec("IV-E token redistribution", control);
  // Jobs 1-3: high priority (30 % each), 2 processes of periodic bursts.
  // Burst volume and interval differ per job and start offsets stagger the
  // bursts so they interleave on the server (§IV-E.2).
  struct BurstShape {
    std::uint64_t burst;
    std::int64_t period_s;
    std::int64_t offset_s;
  };
  const BurstShape shapes[] = {{48, 3, 0}, {64, 4, 1}, {80, 5, 2}};
  for (std::uint32_t j = 0; j < 3; ++j) {
    JobSpec job = make_job(j + 1, "Job" + std::to_string(j + 1), 3);
    for (int p = 0; p < 2; ++p) {
      const auto& s = shapes[j];
      // Cover the whole run with bursts; each process still writes in
      // file-per-process fashion (1 GiB granularity is irrelevant to the
      // scheduler: only the release cadence matters).
      const auto bursts =
          static_cast<std::uint64_t>(paper_run_duration().to_seconds() /
                                     static_cast<double>(s.period_s)) +
          1;
      job.processes.push_back(burst_pattern(
          s.burst * bursts, s.burst, SimDuration::seconds(s.period_s),
          SimDuration::seconds(s.offset_s) +
              SimDuration::millis(250 * p)));  // stagger the 2 procs
    }
    spec.jobs.push_back(std::move(job));
  }
  // Job 4: low priority (10 %), 16 processes of continuous demand.
  JobSpec job4 = make_job(4, "Job4", 1);
  for (int p = 0; p < 16; ++p)
    job4.processes.push_back(continuous_pattern(kUnbounded));
  spec.jobs.push_back(std::move(job4));
  spec.duration = paper_run_duration();
  spec.stop_when_idle = false;
  return spec;
}

ScenarioSpec scenario_token_recompensation(BwControl control) {
  ScenarioSpec spec = base_spec("IV-F token re-compensation", control);
  // All four jobs have equal priority (25 %): one node each.
  // Jobs 1-3: process 0 issues small bursts at constant intervals (volume
  // and interval vary per job; job 3 has the smallest burst, matching the
  // paper's observation that job 3 lends the most); process 1 issues
  // continuous I/O after a delay of 20/50/80 s.
  struct Shape {
    std::uint64_t burst;
    std::int64_t period_s;
    std::int64_t delay_s;
  };
  const Shape shapes[] = {{24, 2, 20}, {32, 3, 50}, {16, 4, 80}};
  for (std::uint32_t j = 0; j < 3; ++j) {
    JobSpec job = make_job(j + 1, "Job" + std::to_string(j + 1), 1);
    const auto& s = shapes[j];
    const auto bursts =
        static_cast<std::uint64_t>(paper_run_duration().to_seconds() /
                                   static_cast<double>(s.period_s)) +
        1;
    job.processes.push_back(burst_pattern(s.burst * bursts, s.burst,
                                          SimDuration::seconds(s.period_s),
                                          SimDuration::millis(100)));
    job.processes.push_back(
        continuous_pattern(kUnbounded, SimDuration::seconds(s.delay_s)));
    spec.jobs.push_back(std::move(job));
  }
  JobSpec job4 = make_job(4, "Job4", 1);
  for (int p = 0; p < 16; ++p)
    job4.processes.push_back(continuous_pattern(kUnbounded));
  spec.jobs.push_back(std::move(job4));
  spec.duration = paper_run_duration();
  spec.stop_when_idle = false;
  return spec;
}

}  // namespace adaptbf
