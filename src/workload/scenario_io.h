// Scenario file format: declarative experiment descriptions on disk.
//
// Example (see examples/scenarios/*.ini for complete files):
//
//   [scenario]
//   name = demo
//   control = adaptive          ; none | static | adaptive
//   duration_s = 30
//   observation_ms = 100
//   stop_when_idle = true
//
//   [server]
//   osts = 1
//   threads = 16
//   seq_bandwidth_mibps = 1600
//   rand_bandwidth_mibps = 400
//   overhead_us = 50
//
//   [client]
//   rpc_size_kib = 1024
//   max_inflight = 8
//
//   [job.1]
//   name = small
//   nodes = 1
//   ; process kinds: "continuous" and "burst". count= replicates the line.
//   process = continuous total=1024 delay_s=0 count=4
//   process = burst total=640 burst=64 period_s=5 delay_s=2 count=2 random=true
//
// Unknown sections/keys are errors: a typo silently ignored is a wrong
// experiment silently run.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "workload/scenario.h"

namespace adaptbf {

struct ScenarioLoadResult {
  std::optional<ScenarioSpec> spec;
  std::string error;  ///< Empty on success.
  [[nodiscard]] bool ok() const { return spec.has_value(); }
};

/// Parses a scenario file's contents.
[[nodiscard]] ScenarioLoadResult load_scenario(std::string_view text);

/// Reads and parses a scenario file from disk.
[[nodiscard]] ScenarioLoadResult load_scenario_file(const std::string& path);

/// Renders a spec back to the file format (round-trips through
/// load_scenario).
[[nodiscard]] std::string scenario_to_ini(const ScenarioSpec& spec);

}  // namespace adaptbf
