#include "workload/scenario_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/ini.h"

namespace adaptbf {

namespace {

ScenarioLoadResult fail(std::string message) {
  ScenarioLoadResult result;
  result.error = std::move(message);
  return result;
}

/// Parses "key=value key=value ..." word lists (the process = lines).
bool parse_kv_words(std::string_view text,
                    std::unordered_map<std::string, std::string>& out,
                    std::string& first_word, std::string& error) {
  std::istringstream stream{std::string(text)};
  std::string token;
  bool first = true;
  while (stream >> token) {
    if (first) {
      first = false;
      first_word = token;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      error = "expected key=value, got '" + token + "'";
      return false;
    }
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  if (first) {
    error = "empty process description";
    return false;
  }
  return true;
}

/// Parses one `process =` value into a pattern plus replication count.
bool parse_process(std::string_view text, ProcessPattern& pattern,
                   std::uint64_t& count, std::string& error) {
  std::unordered_map<std::string, std::string> kv;
  std::string kind;
  if (!parse_kv_words(text, kv, kind, error)) return false;

  count = 1;
  pattern = ProcessPattern{};
  static const std::unordered_set<std::string> known{
      "total", "burst", "period_s", "period_ms", "delay_s", "delay_ms",
      "count", "random", "rate", "seed"};
  for (const auto& [key, value] : kv) {
    if (!known.contains(key)) {
      error = "unknown process key '" + key + "'";
      return false;
    }
  }
  auto take_u64 = [&](const char* key, std::uint64_t& out) {
    auto it = kv.find(key);
    if (it == kv.end()) return true;
    if (!parse_u64(it->second, out)) {
      error = std::string("bad number for '") + key + "'";
      return false;
    }
    return true;
  };
  auto take_duration = [&](const char* sec_key, const char* ms_key,
                           SimDuration& out) {
    if (auto it = kv.find(sec_key); it != kv.end()) {
      double seconds = 0.0;
      if (!parse_double(it->second, seconds) || seconds < 0.0) {
        error = std::string("bad duration for '") + sec_key + "'";
        return false;
      }
      out = SimDuration::from_seconds(seconds);
    }
    if (auto it = kv.find(ms_key); it != kv.end()) {
      double ms = 0.0;
      if (!parse_double(it->second, ms) || ms < 0.0) {
        error = std::string("bad duration for '") + ms_key + "'";
        return false;
      }
      out = SimDuration::from_seconds(ms / 1e3);
    }
    return true;
  };

  if (!take_u64("total", pattern.total_rpcs)) return false;
  if (!take_u64("count", count)) return false;
  if (count == 0) {
    error = "count must be >= 1";
    return false;
  }
  if (!take_duration("delay_s", "delay_ms", pattern.start_delay)) return false;
  if (auto it = kv.find("random"); it != kv.end()) {
    if (it->second == "true") {
      pattern.locality = Locality::kRandom;
    } else if (it->second == "false") {
      pattern.locality = Locality::kSequential;
    } else {
      error = "random= must be true or false";
      return false;
    }
  }

  if (kind == "continuous") {
    pattern.kind = ProcessPattern::Kind::kContinuous;
    if (kv.contains("burst") || kv.contains("period_s") ||
        kv.contains("period_ms") || kv.contains("rate")) {
      error = "continuous process cannot have burst/period/rate";
      return false;
    }
    return true;
  }
  if (kind == "poisson") {
    pattern.kind = ProcessPattern::Kind::kPoisson;
    if (auto it = kv.find("rate"); it != kv.end()) {
      if (!parse_double(it->second, pattern.poisson_rate) ||
          pattern.poisson_rate <= 0.0) {
        error = "poisson process needs rate=N > 0";
        return false;
      }
    } else {
      error = "poisson process needs rate=N";
      return false;
    }
    if (!take_u64("seed", pattern.seed)) return false;
    if (kv.contains("burst") || kv.contains("period_s") ||
        kv.contains("period_ms")) {
      error = "poisson process cannot have burst/period";
      return false;
    }
    return true;
  }
  if (kind == "burst") {
    pattern.kind = ProcessPattern::Kind::kPeriodicBurst;
    if (!take_u64("burst", pattern.burst_rpcs)) return false;
    if (pattern.burst_rpcs == 0) {
      error = "burst process needs burst=N";
      return false;
    }
    if (!take_duration("period_s", "period_ms", pattern.period)) return false;
    if (pattern.period <= SimDuration(0)) {
      error = "burst process needs period_s/period_ms > 0";
      return false;
    }
    return true;
  }
  error = "unknown process kind '" + kind + "' (continuous|burst|poisson)";
  return false;
}

}  // namespace

ScenarioLoadResult load_scenario(std::string_view text) {
  std::string parse_error;
  const auto ini = IniFile::parse(text, &parse_error);
  if (!ini.has_value()) return fail("ini: " + parse_error);

  static const std::unordered_set<std::string> known_scenario_keys{
      "name", "control", "duration_s", "observation_ms", "apply_latency_ms",
      "stop_when_idle", "timeline_bin_ms", "max_token_rate",
      "redistribution", "recompensation", "remainders", "bucket_depth",
      "ewma_estimator", "ewma_alpha"};
  static const std::unordered_set<std::string> known_server_keys{
      "osts", "threads", "seq_bandwidth_mibps", "rand_bandwidth_mibps",
      "overhead_us"};
  static const std::unordered_set<std::string> known_client_keys{
      "rpc_size_kib", "max_inflight", "network_latency_us"};
  static const std::unordered_set<std::string> known_job_keys{
      "name", "nodes", "process"};

  ScenarioSpec spec;
  for (const auto& section : ini->sections()) {
    if (section == "scenario") {
      for (const auto& key : ini->keys(section))
        if (!known_scenario_keys.contains(key))
          return fail("unknown key '" + key + "' in [scenario]");
    } else if (section == "server") {
      for (const auto& key : ini->keys(section))
        if (!known_server_keys.contains(key))
          return fail("unknown key '" + key + "' in [server]");
    } else if (section == "client") {
      for (const auto& key : ini->keys(section))
        if (!known_client_keys.contains(key))
          return fail("unknown key '" + key + "' in [client]");
    } else if (section.rfind("job.", 0) == 0) {
      for (const auto& key : ini->keys(section))
        if (!known_job_keys.contains(key))
          return fail("unknown key '" + key + "' in [" + section + "]");
    } else {
      return fail("unknown section [" + section + "]");
    }
  }

  // [scenario]
  if (auto name = ini->get("scenario", "name")) spec.name = *name;
  if (auto control = ini->get("scenario", "control")) {
    const auto parsed = bw_control_from_name(*control);
    if (!parsed.has_value())
      return fail("bad control '" + *control +
                  "' (none|static|adaptive|gift)");
    spec.control = *parsed;
  }
  if (auto duration = ini->get_double("scenario", "duration_s")) {
    if (*duration <= 0.0) return fail("duration_s must be positive");
    spec.duration = SimDuration::from_seconds(*duration);
  } else if (ini->get("scenario", "duration_s")) {
    return fail("bad duration_s");
  }
  if (auto period = ini->get_double("scenario", "observation_ms")) {
    if (*period <= 0.0) return fail("observation_ms must be positive");
    spec.observation_period = SimDuration::from_seconds(*period / 1e3);
  }
  if (auto latency = ini->get_double("scenario", "apply_latency_ms"))
    spec.controller_apply_latency = SimDuration::from_seconds(*latency / 1e3);
  if (auto stop = ini->get_bool("scenario", "stop_when_idle"))
    spec.stop_when_idle = *stop;
  if (auto bin = ini->get_double("scenario", "timeline_bin_ms"))
    spec.timeline_bin = SimDuration::from_seconds(*bin / 1e3);
  if (auto rate = ini->get_double("scenario", "max_token_rate"))
    spec.max_token_rate = *rate;
  if (auto flag = ini->get_bool("scenario", "redistribution"))
    spec.enable_redistribution = *flag;
  if (auto flag = ini->get_bool("scenario", "recompensation"))
    spec.enable_recompensation = *flag;
  if (auto flag = ini->get_bool("scenario", "remainders"))
    spec.enable_remainders = *flag;
  if (auto depth = ini->get_double("scenario", "bucket_depth")) {
    if (*depth < 1.0) return fail("bucket_depth must be >= 1");
    spec.bucket_depth = *depth;
  }
  if (auto flag = ini->get_bool("scenario", "ewma_estimator"))
    spec.use_ewma_estimator = *flag;
  if (auto alpha = ini->get_double("scenario", "ewma_alpha")) {
    if (*alpha <= 0.0 || *alpha > 1.0)
      return fail("ewma_alpha must be in (0, 1]");
    spec.ewma_alpha = *alpha;
  }

  // [server]
  if (auto osts = ini->get_int("server", "osts")) {
    if (*osts < 1) return fail("osts must be >= 1");
    spec.num_osts = static_cast<std::uint32_t>(*osts);
  }
  if (auto threads = ini->get_int("server", "threads")) {
    if (*threads < 1) return fail("threads must be >= 1");
    spec.num_threads = static_cast<std::uint32_t>(*threads);
  }
  if (auto bw = ini->get_double("server", "seq_bandwidth_mibps")) {
    if (*bw <= 0.0) return fail("seq_bandwidth_mibps must be positive");
    spec.disk.seq_bandwidth = *bw * 1024 * 1024;
  }
  if (auto bw = ini->get_double("server", "rand_bandwidth_mibps")) {
    if (*bw <= 0.0) return fail("rand_bandwidth_mibps must be positive");
    spec.disk.rand_bandwidth = *bw * 1024 * 1024;
  }
  if (auto overhead = ini->get_double("server", "overhead_us")) {
    if (*overhead < 0.0) return fail("overhead_us must be non-negative");
    spec.disk.per_rpc_overhead = SimDuration::from_seconds(*overhead / 1e6);
  }

  // [client]
  if (auto size = ini->get_int("client", "rpc_size_kib")) {
    if (*size < 1) return fail("rpc_size_kib must be >= 1");
    spec.rpc_size_bytes = static_cast<std::uint32_t>(*size) * 1024;
  }
  if (auto inflight = ini->get_int("client", "max_inflight")) {
    if (*inflight < 1) return fail("max_inflight must be >= 1");
    spec.max_inflight_per_process = static_cast<std::uint32_t>(*inflight);
  }
  if (auto latency = ini->get_double("client", "network_latency_us")) {
    if (*latency < 0.0) return fail("network_latency_us must be >= 0");
    spec.network_latency = SimDuration::from_seconds(*latency / 1e6);
  }

  // [job.N]
  for (const auto& section : ini->sections()) {
    if (section.rfind("job.", 0) != 0) continue;
    const std::string id_text = section.substr(4);
    std::uint64_t id = 0;
    if (!parse_u64(id_text, id) || id == 0 || id >= JobId::kInvalid)
      return fail("bad job id in [" + section + "]");
    JobSpec job;
    job.id = JobId(static_cast<std::uint32_t>(id));
    job.name = ini->get(section, "name").value_or("Job" + id_text);
    if (auto nodes = ini->get_int(section, "nodes")) {
      if (*nodes < 1) return fail("nodes must be >= 1 in [" + section + "]");
      job.nodes = static_cast<std::uint32_t>(*nodes);
    }
    for (const auto& process_text : ini->get_all(section, "process")) {
      ProcessPattern pattern;
      std::uint64_t count = 1;
      std::string error;
      if (!parse_process(process_text, pattern, count, error))
        return fail("[" + section + "] process: " + error);
      for (std::uint64_t i = 0; i < count; ++i)
        job.processes.push_back(pattern);
    }
    if (job.processes.empty())
      return fail("[" + section + "] has no process lines");
    spec.jobs.push_back(std::move(job));
  }
  if (spec.jobs.empty()) return fail("scenario has no [job.N] sections");

  ScenarioLoadResult result;
  result.spec = std::move(spec);
  return result;
}

ScenarioLoadResult load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return load_scenario(buffer.str());
}

std::string scenario_to_ini(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "[scenario]\n";
  out << "name = " << spec.name << "\n";
  out << "control = ";
  switch (spec.control) {
    case BwControl::kNone: out << "none"; break;
    case BwControl::kStatic: out << "static"; break;
    case BwControl::kAdaptive: out << "adaptive"; break;
    case BwControl::kGift: out << "gift"; break;
  }
  out << "\n";
  out << "duration_s = " << spec.duration.to_seconds() << "\n";
  out << "observation_ms = " << spec.observation_period.to_seconds() * 1e3
      << "\n";
  out << "apply_latency_ms = "
      << spec.controller_apply_latency.to_seconds() * 1e3 << "\n";
  out << "stop_when_idle = " << (spec.stop_when_idle ? "true" : "false")
      << "\n";
  out << "timeline_bin_ms = " << spec.timeline_bin.to_seconds() * 1e3 << "\n";
  if (spec.max_token_rate > 0.0)
    out << "max_token_rate = " << spec.max_token_rate << "\n";
  out << "redistribution = " << (spec.enable_redistribution ? "true" : "false")
      << "\n";
  out << "recompensation = " << (spec.enable_recompensation ? "true" : "false")
      << "\n";
  out << "remainders = " << (spec.enable_remainders ? "true" : "false")
      << "\n";
  out << "bucket_depth = " << spec.bucket_depth << "\n";
  out << "ewma_estimator = " << (spec.use_ewma_estimator ? "true" : "false")
      << "\n";
  out << "ewma_alpha = " << spec.ewma_alpha << "\n";
  out << "\n[server]\n";
  out << "osts = " << spec.num_osts << "\n";
  out << "threads = " << spec.num_threads << "\n";
  out << "seq_bandwidth_mibps = " << spec.disk.seq_bandwidth / (1024 * 1024)
      << "\n";
  out << "rand_bandwidth_mibps = " << spec.disk.rand_bandwidth / (1024 * 1024)
      << "\n";
  out << "overhead_us = " << spec.disk.per_rpc_overhead.to_seconds() * 1e6
      << "\n";
  out << "\n[client]\n";
  out << "rpc_size_kib = " << spec.rpc_size_bytes / 1024 << "\n";
  out << "max_inflight = " << spec.max_inflight_per_process << "\n";
  out << "network_latency_us = "
      << spec.network_latency.to_seconds() * 1e6 << "\n";
  for (const auto& job : spec.jobs) {
    out << "\n[job." << job.id.value() << "]\n";
    out << "name = " << job.name << "\n";
    out << "nodes = " << job.nodes << "\n";
    for (const auto& process : job.processes) {
      if (process.kind == ProcessPattern::Kind::kContinuous) {
        out << "process = continuous total=" << process.total_rpcs;
      } else if (process.kind == ProcessPattern::Kind::kPoisson) {
        out << "process = poisson total=" << process.total_rpcs
            << " rate=" << process.poisson_rate
            << " seed=" << process.seed;
      } else {
        out << "process = burst total=" << process.total_rpcs
            << " burst=" << process.burst_rpcs
            << " period_ms=" << process.period.to_seconds() * 1e3;
      }
      out << " delay_ms=" << process.start_delay.to_seconds() * 1e3;
      if (process.locality == Locality::kRandom) out << " random=true";
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace adaptbf
