#include "workload/scenario.h"

#include "support/check.h"

namespace adaptbf {

std::string_view to_string(BwControl policy) {
  switch (policy) {
    case BwControl::kNone: return "No BW";
    case BwControl::kStatic: return "Static BW";
    case BwControl::kAdaptive: return "AdapTBF";
    case BwControl::kGift: return "GIFT";
  }
  return "?";
}

std::string_view bw_control_config_name(BwControl policy) {
  switch (policy) {
    case BwControl::kNone: return "none";
    case BwControl::kStatic: return "static";
    case BwControl::kAdaptive: return "adaptive";
    case BwControl::kGift: return "gift";
  }
  return "?";
}

std::optional<BwControl> bw_control_from_name(std::string_view name) {
  if (name == "none") return BwControl::kNone;
  if (name == "static") return BwControl::kStatic;
  if (name == "adaptive") return BwControl::kAdaptive;
  if (name == "gift") return BwControl::kGift;
  return std::nullopt;
}

std::uint32_t ScenarioSpec::total_nodes() const {
  std::uint32_t total = 0;
  for (const auto& job : jobs) total += job.nodes;
  return total;
}

double ScenarioSpec::static_priority(JobId job) const {
  const std::uint32_t total = total_nodes();
  ADAPTBF_CHECK(total > 0);
  for (const auto& spec : jobs)
    if (spec.id == job)
      return static_cast<double>(spec.nodes) / static_cast<double>(total);
  return 0.0;
}

ProcessPattern continuous_pattern(std::uint64_t total_rpcs,
                                  SimDuration start_delay) {
  ProcessPattern pattern;
  pattern.kind = ProcessPattern::Kind::kContinuous;
  pattern.total_rpcs = total_rpcs;
  pattern.start_delay = start_delay;
  return pattern;
}

ProcessPattern poisson_pattern(std::uint64_t total_rpcs, double rate_per_sec,
                               std::uint64_t seed, SimDuration start_delay) {
  ADAPTBF_CHECK(rate_per_sec > 0.0);
  ProcessPattern pattern;
  pattern.kind = ProcessPattern::Kind::kPoisson;
  pattern.total_rpcs = total_rpcs;
  pattern.poisson_rate = rate_per_sec;
  pattern.seed = seed;
  pattern.start_delay = start_delay;
  return pattern;
}

ProcessPattern burst_pattern(std::uint64_t total_rpcs,
                             std::uint64_t burst_rpcs, SimDuration period,
                             SimDuration start_delay) {
  ADAPTBF_CHECK(burst_rpcs > 0);
  ProcessPattern pattern;
  pattern.kind = ProcessPattern::Kind::kPeriodicBurst;
  pattern.total_rpcs = total_rpcs;
  pattern.burst_rpcs = burst_rpcs;
  pattern.period = period;
  pattern.start_delay = start_delay;
  return pattern;
}

}  // namespace adaptbf
