// Declarative experiment descriptions.
//
// A ScenarioSpec is everything needed to reproduce one of the paper's
// evaluation runs: the job mix (priorities = allocated compute nodes,
// per-process I/O patterns), the OST configuration, which bandwidth-control
// policy runs, and the observation window Δt. The cluster harness turns a
// spec into a wired simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ost/disk_model.h"
#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

/// Bandwidth-control policy under test (§IV-C evaluation baselines, plus
/// the GIFT-style comparator discussed there).
enum class BwControl {
  kNone,      ///< "No BW": FCFS, no TBF rules (Lustre default).
  kStatic,    ///< "Static BW": fixed TBF rules from global priorities.
  kAdaptive,  ///< AdapTBF: full borrowing/lending controller.
  kGift,      ///< GIFT-like centralized throttle-and-reward (see
              ///< adaptbf/gift_controller.h).
};

[[nodiscard]] std::string_view to_string(BwControl policy);

/// Config-file policy token: "none" | "static" | "adaptive" | "gift".
/// Unlike to_string (display names), these round-trip through
/// bw_control_from_name; the scenario/sweep loaders and the campaign
/// journal share them.
[[nodiscard]] std::string_view bw_control_config_name(BwControl policy);
[[nodiscard]] std::optional<BwControl> bw_control_from_name(
    std::string_view name);

/// Shape of one process's I/O within a job.
struct ProcessPattern {
  enum class Kind {
    kContinuous,     ///< Whole file released at start_delay.
    kPeriodicBurst,  ///< `burst` RPCs every `period` from start_delay.
    kPoisson,        ///< Single RPCs at exponential gaps (seeded).
  };
  Kind kind = Kind::kContinuous;
  std::uint64_t total_rpcs = 1024;  ///< 1 GiB file at 1 MiB RPCs.
  std::uint64_t burst_rpcs = 0;     ///< Only for kPeriodicBurst.
  SimDuration period{0};            ///< Only for kPeriodicBurst.
  double poisson_rate = 0.0;        ///< Mean RPCs/s, only for kPoisson.
  std::uint64_t seed = 1;           ///< Only for kPoisson.
  SimDuration start_delay{0};
  Locality locality = Locality::kSequential;
};

struct JobSpec {
  JobId id;
  std::string name;
  std::uint32_t nodes = 1;  ///< Allocated compute nodes: the priority input.
  std::vector<ProcessPattern> processes;
};

struct ScenarioSpec {
  std::string name;
  std::vector<JobSpec> jobs;

  // Server configuration.
  /// Independent OSTs on the OSS; each runs its own scheduler and (for
  /// AdapTBF) its own decentralized controller. Processes are assigned
  /// round-robin across OSTs (Lustre stripe_count=1 semantics: each
  /// file-per-process stream lands on one target).
  std::uint32_t num_osts = 1;
  std::uint32_t num_threads = 16;
  DiskModel::Config disk;

  // Client configuration.
  std::uint32_t rpc_size_bytes = 1024 * 1024;
  std::uint32_t max_inflight_per_process = 8;
  /// One-way network latency on each leg (request and response). Zero by
  /// default: the paper's testbed network (25 GbE) is never the
  /// bottleneck, but the model is available for WAN-ish studies.
  SimDuration network_latency{0};

  // Control configuration.
  BwControl control = BwControl::kAdaptive;
  SimDuration observation_period = SimDuration::millis(100);
  /// Framework processing cost per cycle (§IV-G measures ~25 ms): rules
  /// computed for a window take effect this long after it closes.
  SimDuration controller_apply_latency{0};
  /// Ablation switches forwarded to the allocator (DESIGN.md §4).
  bool enable_redistribution = true;
  bool enable_recompensation = true;
  bool enable_remainders = true;
  /// §IV-E extension: smooth the re-compensation demand estimate with an
  /// EWMA instead of the paper's d̄ = d assumption.
  bool use_ewma_estimator = false;
  double ewma_alpha = 0.3;
  /// TBF bucket depth used by AdapTBF/static rules (Lustre default 3).
  double bucket_depth = 3.0;
  /// OST max token rate T_i in tokens/s; <= 0 derives it from the disk
  /// model's sequential RPC capacity.
  double max_token_rate = -1.0;

  // Run configuration.
  SimDuration duration = SimDuration::seconds(120);
  /// Stop early once all processes finished (plus one settle window).
  bool stop_when_idle = true;
  SimDuration timeline_bin = SimDuration::millis(100);

  /// Convenience: total compute nodes across jobs.
  [[nodiscard]] std::uint32_t total_nodes() const;
  /// Priority share of `job` as the paper defines it for Static BW (its
  /// node count over all nodes in the system).
  [[nodiscard]] double static_priority(JobId job) const;
};

/// Helper constructors for the two pattern kinds.
[[nodiscard]] ProcessPattern continuous_pattern(std::uint64_t total_rpcs,
                                                SimDuration start_delay = SimDuration(0));
[[nodiscard]] ProcessPattern burst_pattern(std::uint64_t total_rpcs,
                                           std::uint64_t burst_rpcs,
                                           SimDuration period,
                                           SimDuration start_delay = SimDuration(0));
[[nodiscard]] ProcessPattern poisson_pattern(std::uint64_t total_rpcs,
                                             double rate_per_sec,
                                             std::uint64_t seed,
                                             SimDuration start_delay = SimDuration(0));

}  // namespace adaptbf
