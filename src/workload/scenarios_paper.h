// Scenario builders reproducing the paper's three evaluation workloads.
//
// Job mixes, priorities and pattern shapes follow §IV-D/E/F verbatim where
// the paper gives numbers (process counts, priorities, file sizes, delay
// points); burst magnitudes/intervals are stated only qualitatively
// ("varying", "interleaved"), so we pick concrete values that realize the
// described interleaving. All values are centralized here so every bench,
// test and example runs the identical workload.
#pragma once

#include "workload/scenario.h"

namespace adaptbf {

/// §IV-D "Evaluation on Token Allocation": four jobs with identical I/O
/// patterns and client configs but priorities 10/10/30/50 %. 16 processes
/// each, sequential 1 GiB file-per-process. Higher-priority jobs finish
/// earlier (under control), exercising adaptation to a shrinking job set.
[[nodiscard]] ScenarioSpec scenario_token_allocation(BwControl control);

/// §IV-E "Evaluation on Token Redistribution": three high-priority (30 %)
/// jobs issuing periodic short bursts with differing volume/interval, plus
/// one low-priority (10 %) job with continuous high demand from 16
/// processes. Exercises surplus lending toward the busy low-priority job
/// and burst absorption for the high-priority ones.
[[nodiscard]] ScenarioSpec scenario_token_redistribution(BwControl control);

/// §IV-F "Evaluation on Token Re-compensation": four equal-priority (25 %)
/// jobs. Jobs 1-3 run one small-burst process plus one continuous process
/// delayed by 20/50/80 s; job 4 runs 16 continuous processes from t=0.
/// Exercises the lend -> demand-rises -> re-compensate cycle (Fig. 7).
[[nodiscard]] ScenarioSpec scenario_token_recompensation(BwControl control);

/// Total simulated run length shared by the §IV-E / §IV-F scenarios.
[[nodiscard]] SimDuration paper_run_duration();

}  // namespace adaptbf
