#include "client/client_system.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

ClientSystem::ClientSystem(Simulator& sim, SimDuration response_latency)
    : sim_(sim), response_latency_(response_latency) {
  ADAPTBF_CHECK(response_latency >= SimDuration(0));
}

void ClientSystem::attach_ost(Ost& ost) {
  ost.add_completion_hook(
      [this](const RpcCompletion& completion) { route_completion(completion); });
}

ProcessStream& ClientSystem::add_process(Ost& ost,
                                         ProcessStream::Config config,
                                         std::unique_ptr<IoPattern> pattern) {
  // The id allocator doubles as the routing registrar: every id it hands
  // out is mapped back to the issuing process so completions can be
  // demultiplexed. The process pointer is only known after construction,
  // so the closure captures a slot filled in below.
  auto route_slot = std::make_shared<ProcessStream*>(nullptr);
  auto allocate_id = [this, route_slot]() -> std::uint64_t {
    const std::uint64_t id = next_rpc_id_++;
    ADAPTBF_CHECK(*route_slot != nullptr);
    inflight_routes_.emplace(id, *route_slot);
    return id;
  };
  auto process = std::make_unique<ProcessStream>(
      sim_, ost, config, std::move(pattern), std::move(allocate_id));
  *route_slot = process.get();
  processes_.push_back(std::move(process));
  return *processes_.back();
}

void ClientSystem::start_all() {
  for (auto& process : processes_) process->start();
}

bool ClientSystem::all_finished() const {
  for (const auto& process : processes_)
    if (!process->finished()) return false;
  return true;
}

SimTime ClientSystem::job_finish_time(JobId job) const {
  SimTime latest = SimTime::zero();
  for (const auto& process : processes_) {
    if (process->config().job != job || !process->finished()) continue;
    latest = std::max(latest, process->finish_time());
  }
  return latest;
}

void ClientSystem::route_completion(const RpcCompletion& completion) {
  auto it = inflight_routes_.find(completion.rpc.id);
  ADAPTBF_CHECK_MSG(it != inflight_routes_.end(),
                    "completion for unrouted RPC id");
  ProcessStream* process = it->second;
  inflight_routes_.erase(it);
  if (response_latency_ > SimDuration(0)) {
    sim_.schedule_after(response_latency_, [process, completion] {
      process->on_completion(completion);
    });
  } else {
    process->on_completion(completion);
  }
}

}  // namespace adaptbf
