// One application process issuing I/O to an OST in a closed loop.
//
// Filebench-style: each process writes its own file (file-per-process,
// §IV-D) as a stream of fixed-size bulk RPCs. The process keeps at most
// `max_inflight` RPCs outstanding — Lustre clients bound RPCs-in-flight per
// OSC — so throttling at the server back-pressures the client naturally,
// which is what makes TBF rate limits visible end-to-end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "client/io_pattern.h"
#include "ost/ost.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"

namespace adaptbf {

class ProcessStream {
 public:
  struct Config {
    JobId job;
    Nid nid;                       ///< Client node this process runs on.
    std::uint32_t process_index = 0;
    std::uint32_t rpc_size_bytes = 1024 * 1024;  ///< 1 MiB bulk default.
    Opcode opcode = Opcode::kOstWrite;
    Locality locality = Locality::kSequential;
    std::uint32_t max_inflight = 8;  ///< Lustre default max_rpcs_in_flight.
    /// One-way client -> server network latency. An issued RPC reaches the
    /// OST this much later; the in-flight slot is held from issue time, so
    /// a small window over a long link caps throughput at the classic
    /// bandwidth-delay product.
    SimDuration network_latency{0};
  };

  /// `next_rpc_id` supplies globally unique RPC ids (shared counter).
  ProcessStream(Simulator& sim, Ost& ost, Config config,
                std::unique_ptr<IoPattern> pattern,
                std::function<std::uint64_t()> next_rpc_id);

  /// Starts the pattern's release schedule. Call once before sim runs.
  void start();

  /// Called by the owning ClientSystem when one of this process's RPCs
  /// completes at the server.
  void on_completion(const RpcCompletion& completion);

  [[nodiscard]] bool finished() const {
    return completed_ == pattern_total_;
  }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t inflight() const { return inflight_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Time the final completion arrived (valid once finished()).
  [[nodiscard]] SimTime finish_time() const { return finish_time_; }

 private:
  void schedule_next_release();
  void issue_available();

  Simulator& sim_;
  Ost& ost_;
  Config config_;
  std::unique_ptr<IoPattern> pattern_;
  std::function<std::uint64_t()> next_rpc_id_;
  std::uint64_t pattern_total_ = 0;
  std::uint64_t available_ = 0;  ///< Released by the pattern, not yet issued.
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t inflight_ = 0;
  SimTime finish_time_;
};

}  // namespace adaptbf
