// Client-side aggregate: owns all processes and routes completions.
//
// One ClientSystem per experiment. It assigns processes to client nodes
// (NIDs), provides the global RPC id counter, registers itself as a
// completion hook on every OST, and demultiplexes completions back to the
// issuing ProcessStream by RPC id.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "client/process_stream.h"
#include "ost/ost.h"
#include "rpc/rpc.h"
#include "sim/simulator.h"

namespace adaptbf {

class ClientSystem {
 public:
  /// `response_latency` models the server -> client completion trip: a
  /// process learns of (and reacts to) a completion that much later.
  explicit ClientSystem(Simulator& sim,
                        SimDuration response_latency = SimDuration(0));

  /// Registers completion routing on an OST. Call once per OST, before any
  /// process targeting it is added.
  void attach_ost(Ost& ost);

  /// Creates a process issuing to `ost`. Returns a stable handle.
  ProcessStream& add_process(Ost& ost, ProcessStream::Config config,
                             std::unique_ptr<IoPattern> pattern);

  /// Starts every process's release schedule.
  void start_all();

  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<ProcessStream>>& processes()
      const {
    return processes_;
  }

  /// True when every process has completed its pattern.
  [[nodiscard]] bool all_finished() const;

  /// Latest finish time across processes of `job`; SimTime::zero() if the
  /// job has no finished process yet.
  [[nodiscard]] SimTime job_finish_time(JobId job) const;

 private:
  void route_completion(const RpcCompletion& completion);

  Simulator& sim_;
  SimDuration response_latency_{0};
  std::vector<std::unique_ptr<ProcessStream>> processes_;
  /// rpc id -> issuing process (entries removed on completion).
  std::unordered_map<std::uint64_t, ProcessStream*> inflight_routes_;
  std::uint64_t next_rpc_id_ = 1;
};

}  // namespace adaptbf
