#include "client/io_pattern.h"

#include <algorithm>

#include "support/check.h"

namespace adaptbf {

ContinuousPattern::ContinuousPattern(std::uint64_t total,
                                     SimDuration start_delay)
    : total_(total), start_delay_(start_delay) {
  ADAPTBF_CHECK(start_delay >= SimDuration(0));
}

std::optional<Release> ContinuousPattern::next_release() {
  if (emitted_ || total_ == 0) return std::nullopt;
  emitted_ = true;
  return Release{SimTime::zero() + start_delay_, total_};
}

PoissonPattern::PoissonPattern(std::uint64_t total, double rate_per_sec,
                               SimDuration start_delay, std::uint64_t seed)
    : total_(total),
      mean_gap_sec_(1.0 / rate_per_sec),
      next_time_(SimTime::zero() + start_delay),
      rng_(seed) {
  ADAPTBF_CHECK_MSG(rate_per_sec > 0.0, "Poisson rate must be positive");
  ADAPTBF_CHECK(start_delay >= SimDuration(0));
}

std::optional<Release> PoissonPattern::next_release() {
  if (released_ >= total_) return std::nullopt;
  const Release release{next_time_, 1};
  ++released_;
  next_time_ = next_time_ +
               SimDuration::from_seconds(rng_.next_exponential(mean_gap_sec_));
  return release;
}

PeriodicBurstPattern::PeriodicBurstPattern(std::uint64_t total,
                                           std::uint64_t burst,
                                           SimDuration period,
                                           SimDuration start_delay)
    : total_(total), burst_(burst), period_(period), start_delay_(start_delay) {
  ADAPTBF_CHECK_MSG(burst > 0, "burst size must be positive");
  ADAPTBF_CHECK_MSG(period > SimDuration(0), "burst period must be positive");
  ADAPTBF_CHECK(start_delay >= SimDuration(0));
}

std::optional<Release> PeriodicBurstPattern::next_release() {
  if (released_ >= total_) return std::nullopt;
  const std::uint64_t count = std::min(burst_, total_ - released_);
  const SimTime when = SimTime::zero() + start_delay_ +
                       period_ * static_cast<std::int64_t>(bursts_emitted_);
  released_ += count;
  ++bursts_emitted_;
  return Release{when, count};
}

}  // namespace adaptbf
