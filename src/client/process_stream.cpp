#include "client/process_stream.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

ProcessStream::ProcessStream(Simulator& sim, Ost& ost, Config config,
                             std::unique_ptr<IoPattern> pattern,
                             std::function<std::uint64_t()> next_rpc_id)
    : sim_(sim),
      ost_(ost),
      config_(config),
      pattern_(std::move(pattern)),
      next_rpc_id_(std::move(next_rpc_id)) {
  ADAPTBF_CHECK(pattern_ != nullptr);
  ADAPTBF_CHECK(next_rpc_id_ != nullptr);
  ADAPTBF_CHECK(config_.max_inflight > 0);
  ADAPTBF_CHECK(config_.rpc_size_bytes > 0);
  pattern_total_ = pattern_->total_rpcs();
}

void ProcessStream::start() { schedule_next_release(); }

void ProcessStream::schedule_next_release() {
  auto release = pattern_->next_release();
  if (!release.has_value()) return;
  const SimTime when = std::max(release->when, sim_.now());
  const std::uint64_t count = release->count;
  sim_.schedule_at(when, [this, count] {
    available_ += count;
    issue_available();
    schedule_next_release();
  });
}

void ProcessStream::issue_available() {
  while (available_ > 0 && inflight_ < config_.max_inflight) {
    Rpc rpc;
    rpc.id = next_rpc_id_();
    rpc.job = config_.job;
    rpc.nid = config_.nid;
    rpc.opcode = config_.opcode;
    rpc.locality = config_.locality;
    rpc.size_bytes = config_.rpc_size_bytes;
    rpc.issue_time = sim_.now();
    rpc.process = config_.process_index;
    --available_;
    ++issued_;
    ++inflight_;
    // issue_time stays the client-side issue instant, so completion
    // latency metrics include time on the wire.
    if (config_.network_latency > SimDuration(0)) {
      sim_.schedule_after(config_.network_latency,
                          [this, rpc] { ost_.submit(rpc); });
    } else {
      ost_.submit(rpc);
    }
  }
}

void ProcessStream::on_completion(const RpcCompletion& completion) {
  ADAPTBF_CHECK(completion.rpc.job == config_.job);
  ADAPTBF_CHECK(inflight_ > 0);
  --inflight_;
  ++completed_;
  if (completed_ == pattern_total_) finish_time_ = sim_.now();
  issue_available();
}

}  // namespace adaptbf
