// I/O release patterns — the Filebench-personality substitute.
//
// A pattern decides *when* RPCs become available for a process to issue;
// the process's closed inflight window (ProcessStream) decides how fast the
// available RPCs actually reach the server. The paper's workloads use three
// shapes, all expressible here:
//   * continuous file-per-process streams (16 procs x 1 GiB, §IV-D),
//   * periodic short bursts with varying magnitude/interval (§IV-E),
//   * continuous streams that start after a delay (20/50/80 s, §IV-F).
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.h"
#include "support/random.h"

namespace adaptbf {

/// One release: at `when`, `count` more RPCs become available to issue.
struct Release {
  SimTime when;
  std::uint64_t count;
};

/// Generator interface: next_release() returns releases in non-decreasing
/// time order until the pattern is exhausted.
class IoPattern {
 public:
  virtual ~IoPattern() = default;
  virtual std::optional<Release> next_release() = 0;
  /// Total RPCs the pattern will ever release (for progress accounting).
  [[nodiscard]] virtual std::uint64_t total_rpcs() const = 0;
};

/// Everything available immediately after `start_delay` (a process writing
/// its whole file as fast as its inflight window allows).
class ContinuousPattern final : public IoPattern {
 public:
  ContinuousPattern(std::uint64_t total, SimDuration start_delay);
  std::optional<Release> next_release() override;
  [[nodiscard]] std::uint64_t total_rpcs() const override { return total_; }

 private:
  std::uint64_t total_;
  SimDuration start_delay_;
  bool emitted_ = false;
};

/// Single RPCs released at exponentially distributed intervals (Poisson
/// arrivals) with the given mean rate, from `start_delay` until `total`
/// RPCs are out. Deterministic for a fixed seed. Models irregular,
/// think-time-driven I/O (interactive/analysis jobs) that neither the
/// continuous nor the periodic-burst shape captures.
class PoissonPattern final : public IoPattern {
 public:
  PoissonPattern(std::uint64_t total, double rate_per_sec,
                 SimDuration start_delay, std::uint64_t seed);
  std::optional<Release> next_release() override;
  [[nodiscard]] std::uint64_t total_rpcs() const override { return total_; }

 private:
  std::uint64_t total_;
  double mean_gap_sec_;
  SimTime next_time_;
  std::uint64_t released_ = 0;
  Xoshiro256 rng_;
};

/// `burst` RPCs every `period`, starting at `start_delay`, until `total`
/// RPCs have been released. The final burst is truncated to fit `total`.
class PeriodicBurstPattern final : public IoPattern {
 public:
  PeriodicBurstPattern(std::uint64_t total, std::uint64_t burst,
                       SimDuration period, SimDuration start_delay);
  std::optional<Release> next_release() override;
  [[nodiscard]] std::uint64_t total_rpcs() const override { return total_; }

 private:
  std::uint64_t total_;
  std::uint64_t burst_;
  SimDuration period_;
  SimDuration start_delay_;
  std::uint64_t released_ = 0;
  std::uint64_t bursts_emitted_ = 0;
};

}  // namespace adaptbf
