// Simulated time.
//
// SimTime is a strong type over signed 64-bit nanoseconds. Nanosecond ticks
// give 292 years of range, far beyond any experiment, while keeping all time
// arithmetic exact (no floating-point drift in deadlines, which matters for
// the TBF deadline heap's determinism).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace adaptbf {

class SimDuration {
 public:
  constexpr SimDuration() = default;
  explicit constexpr SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr SimDuration nanos(std::int64_t v) { return SimDuration(v); }
  [[nodiscard]] static constexpr SimDuration micros(std::int64_t v) { return SimDuration(v * 1'000); }
  [[nodiscard]] static constexpr SimDuration millis(std::int64_t v) { return SimDuration(v * 1'000'000); }
  [[nodiscard]] static constexpr SimDuration seconds(std::int64_t v) { return SimDuration(v * 1'000'000'000); }
  /// Fractional seconds, rounded to the nearest nanosecond.
  [[nodiscard]] static SimDuration from_seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration(ns_ * k); }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration(ns_ / k); }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// Absolute simulated time since experiment start.
class SimTime {
 public:
  constexpr SimTime() = default;
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  /// Sentinel greater than any reachable time; used for "no deadline".
  [[nodiscard]] static constexpr SimTime max() { return SimTime(INT64_MAX); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(ns_ - d.ns()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.ns(); return *this; }

 private:
  std::int64_t ns_ = 0;
};

/// "12.345s" human-readable rendering for logs and tables.
[[nodiscard]] inline std::string to_string(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", t.to_seconds());
  return buf;
}

}  // namespace adaptbf
