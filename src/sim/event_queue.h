// Pending-event set for the discrete-event simulator.
//
// Allocation-free core: events live in a slab of pooled slots addressed by
// {index, generation} handles, ordered by a 4-ary implicit min-heap keyed
// on (time, sequence). The sequence number breaks ties in insertion order,
// which makes event processing fully deterministic regardless of heap
// internals — a requirement for reproducible experiments and for the
// regression tests that assert exact token allocations.
//
// Cancellation is eager and O(log4 n) with no hash sets: the slot's
// back-pointer into the heap locates the entry directly, and the slot's
// generation counter is bumped on release so stale handles (fired or
// already-cancelled events) are rejected in O(1). Steady-state scheduling
// performs zero heap allocations: slots are recycled through a free list,
// and EventCallback stores small callables inline (see kInlineCapacity),
// falling back to the heap only for oversized captures.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace adaptbf {

/// Move-only callable with small-buffer optimization. Replaces
/// std::function in the event hot path: any callable whose captures fit
/// kInlineCapacity bytes (and is nothrow-movable) is stored inline in the
/// event slot, so scheduling it allocates nothing.
class EventCallback {
 public:
  /// Sized to hold every steady-state callback in the simulator inline
  /// (the largest is an RPC completion: Rpc + two SimTimes + a pointer).
  static constexpr std::size_t kInlineCapacity = 80;

  EventCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like std::function.
  EventCallback(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Process-wide count of callables that spilled to the heap because their
  /// captures exceeded kInlineCapacity. The sim-core bench asserts this
  /// stays flat in steady state.
  [[nodiscard]] static std::uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst from src, then destroys src (nothrow).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* storage) { (**std::launder(reinterpret_cast<Fn**>(storage)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* storage) { delete *std::launder(reinterpret_cast<Fn**>(storage)); }};

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;

  static inline std::atomic<std::uint64_t> heap_fallbacks_{0};
};

/// Generation-tagged reference to a pending event. Handles become stale the
/// moment the event fires or is cancelled (the slot's generation is bumped
/// on release), so holding one past its event's lifetime is always safe:
/// cancel()/pending() on a stale handle are harmless O(1) no-ops.
struct EventHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  std::uint32_t index = kInvalidIndex;
  /// 64-bit so a recycled slot can never wrap back to a stale handle's
  /// generation, even over arbitrarily deep simulation horizons.
  std::uint64_t generation = 0;

  [[nodiscard]] constexpr bool valid() const { return index != kInvalidIndex; }
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Returns a handle usable by
  /// cancel()/pending(); the handle goes stale once the event fires.
  EventHandle schedule(SimTime when, EventCallback fn);

  /// Cancels a pending event in O(log4 n) with no hashing. Returns false
  /// if the handle is stale (event already fired or already cancelled).
  bool cancel(EventHandle handle);

  /// True while the referenced event is still pending.
  [[nodiscard]] bool pending(EventHandle handle) const {
    return handle.valid() && handle.index < slots_.size() &&
           slots_[handle.index].generation == handle.generation;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t live() const { return heap_.size(); }

  /// Time of the earliest pending event; SimTime::max() when empty. O(1).
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? SimTime::max() : slots_[heap_[0]].time;
  }

  struct Fired {
    SimTime time;
    std::uint64_t seq;  ///< Schedule-order sequence number (tie-break key).
    EventCallback fn;
  };
  /// Pops and returns the earliest pending event. Requires !empty().
  Fired pop();

  /// Pre-sizes the slot pool and heap so a workload of up to `events`
  /// concurrent events runs without any further allocation.
  void reserve(std::size_t events);

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    /// Times the slot pool or heap storage had to grow. Flat in steady
    /// state: slots are recycled through the free list.
    std::uint64_t pool_reallocations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pool_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNil = EventHandle::kInvalidIndex;

  struct Slot {
    SimTime time;
    std::uint64_t seq = 0;
    EventCallback fn;
    std::uint64_t generation = 0;
    /// Position in heap_ while pending; next free slot index while free.
    std::uint32_t pos_or_next = kNil;
  };

  /// True when event `a` must fire strictly before `b`.
  [[nodiscard]] bool earlier(const Slot& a, const Slot& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void remove_heap_at(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // 4-ary implicit heap of slot indices
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace adaptbf
