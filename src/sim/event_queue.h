// Pending-event set for the discrete-event simulator.
//
// A binary min-heap keyed on (time, sequence). The sequence number breaks
// ties in insertion order, which makes event processing fully deterministic
// regardless of heap internals — a requirement for reproducible experiments
// and for the regression tests that assert exact token allocations.
//
// Cancellation is lazy: cancelled ids go into a tombstone set and are
// discarded when they reach the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace adaptbf {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Returns an id usable by cancel().
  EventId schedule(SimTime when, EventFn fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was already cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live() == 0; }
  [[nodiscard]] std::size_t live() const {
    return heap_.size() - cancelled_.size();
  }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time();

  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  /// Pops and returns the earliest live event. Requires !empty().
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_cancelled_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;  // ids currently in the heap
  EventId next_seq_ = 0;
};

}  // namespace adaptbf
