// Pending-event set for the discrete-event simulator.
//
// Allocation-free core: events live in a slab of pooled slots addressed by
// {index, generation} handles, ordered by (time, sequence) through one of
// two interchangeable ordering backends:
//
//   kHeap      4-ary implicit min-heap with heap back-pointers — O(log4 n)
//              schedule/pop/cancel, the default for the paper's
//              minutes-deep horizons.
//   kCalendar  calendar queue (Brown '88 style) with lazily-split,
//              power-of-two bucket array — amortized O(1) schedule and
//              O(1) eager cancel, built for very deep horizons where the
//              heap's log factor starts to show.
//
// Both backends share the slot pool, the callback machinery, and the exact
// same total order: the sequence number breaks time ties in insertion
// order, which makes event processing fully deterministic regardless of
// ordering-structure internals — a requirement for reproducible
// experiments and for the golden-trace tests that assert bit-identical
// dispatch streams across backends.
//
// Cancellation is eager with no hash sets: the slot's back-pointer locates
// the entry directly (heap position, or position within its calendar
// bucket), and the slot's generation counter is bumped on release so stale
// handles (fired or already-cancelled events) are rejected in O(1).
// Steady-state scheduling performs zero heap allocations: slots are
// recycled through a free list, and EventCallback stores small callables
// inline (see kInlineCapacity), falling back to the heap only for
// oversized captures (counted per queue in Stats::callback_heap_spills).
//
// Batched dispatch (pop_batch / collect_staged) drains the whole cohort of
// events sharing the earliest fire time with one bulk structure repair
// instead of one sift per event. Staged events keep their slots until
// collected, so cancel()/pending() observe exactly the same semantics as
// under single pop() — a callback dispatched early in a batch may still
// cancel a same-timestamp event staged behind it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace adaptbf {

/// Move-only callable with small-buffer optimization. Replaces
/// std::function in the event hot path: any callable whose captures fit
/// kInlineCapacity bytes (and is nothrow-movable) is stored inline in the
/// event slot, so scheduling it allocates nothing.
class EventCallback {
 public:
  /// Sized to hold every steady-state callback in the simulator inline
  /// (the largest is an RPC completion: Rpc + two SimTimes + a pointer).
  static constexpr std::size_t kInlineCapacity = 80;

  EventCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like std::function.
  EventCallback(F&& fn) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable's captures exceeded kInlineCapacity and
  /// spilled to the heap. EventQueue::schedule counts spills per queue
  /// (Stats::callback_heap_spills) so parallel sweep workers see their own
  /// numbers instead of aliasing a process-wide total.
  [[nodiscard]] bool heap_allocated() const {
    return ops_ != nullptr && ops_->on_heap;
  }

  /// DEPRECATED process-wide spill total, kept for the sim-core bench's
  /// --require-zero-alloc cross-check. Counts every spilled construction
  /// in the process, so parallel workers alias each other here — per-queue
  /// accounting lives in EventQueue::Stats::callback_heap_spills.
  [[nodiscard]] static std::uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst from src, then destroys src (nothrow).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool on_heap;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); },
      false};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* storage) { (**std::launder(reinterpret_cast<Fn**>(storage)))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* storage) { delete *std::launder(reinterpret_cast<Fn**>(storage)); },
      true};

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;

  static inline std::atomic<std::uint64_t> heap_fallbacks_{0};
};

/// Generation-tagged reference to a pending event. Handles become stale the
/// moment the event fires or is cancelled (the slot's generation is bumped
/// on release), so holding one past its event's lifetime is always safe:
/// cancel()/pending() on a stale handle are harmless O(1) no-ops.
struct EventHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  std::uint32_t index = kInvalidIndex;
  /// 64-bit so a recycled slot can never wrap back to a stale handle's
  /// generation, even over arbitrarily deep simulation horizons.
  std::uint64_t generation = 0;

  [[nodiscard]] constexpr bool valid() const { return index != kInvalidIndex; }
};

/// Ordering-structure backend. Config token: "heap" | "calendar".
enum class QueueBackend : std::uint8_t {
  kHeap,      ///< 4-ary implicit heap: O(log4 n), the default.
  kCalendar,  ///< Calendar queue: amortized O(1), for deep horizons.
};

[[nodiscard]] const char* queue_backend_name(QueueBackend backend);

class EventQueue {
 public:
  EventQueue() : EventQueue(QueueBackend::kHeap) {}
  explicit EventQueue(QueueBackend backend);

  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Schedules `fn` at absolute time `when`. Returns a handle usable by
  /// cancel()/pending(); the handle goes stale once the event fires.
  EventHandle schedule(SimTime when, EventCallback fn);

  /// Cancels a pending event with no hashing: O(log4 n) on the heap
  /// backend, O(1) on the calendar backend. Returns false if the handle is
  /// stale (event already fired or already cancelled). Cancelling an event
  /// staged by pop_batch but not yet collected succeeds, exactly as it
  /// would under single pop().
  bool cancel(EventHandle handle);

  /// True while the referenced event is still pending (staged-but-not-yet-
  /// collected events included).
  [[nodiscard]] bool pending(EventHandle handle) const {
    return handle.valid() && handle.index < slots_.size() &&
           slots_[handle.index].generation == handle.generation;
  }

  [[nodiscard]] bool empty() const { return live() == 0; }
  /// Pending events: ordering structure plus staged-but-uncollected.
  [[nodiscard]] std::size_t live() const {
    return structure_size() + staged_live_;
  }

  /// Time of the earliest event in the ordering structure; SimTime::max()
  /// when it is empty. O(1) on the heap backend, amortized O(1) on the
  /// calendar backend (the located minimum is cached until a mutation).
  /// Events currently staged for batch collection are excluded.
  [[nodiscard]] SimTime next_time() const;

  struct Fired {
    SimTime time;
    std::uint64_t seq = 0;  ///< Schedule-order sequence number (tie-break key).
    EventCallback fn;
  };
  /// Pops and returns the earliest pending event. Requires !empty() and no
  /// batch in progress.
  Fired pop();

  /// Batched pop: unlinks every event sharing the earliest fire time from
  /// the ordering structure — one bulk repair instead of one sift per
  /// event — and stages the cohort in sequence order for collect_staged().
  /// Staged events keep their slots, so handles stay valid: cancel() on a
  /// staged event prevents it from firing, exactly as under single pop().
  /// Returns the cohort size. Requires !empty() and no batch in progress.
  std::size_t pop_batch();

  /// Moves the next staged event into `out`, skipping events cancelled
  /// while staged. Returns false once the batch is exhausted (and the
  /// queue is ready for the next pop()/pop_batch()).
  bool collect_staged(Fired& out);

  /// Drops every pending event (destroying its callback state) and rewinds
  /// the sequence counter, but keeps all storage — slot slab, heap array,
  /// calendar buckets, staging scratch — at capacity. A reset queue is
  /// observationally identical to a freshly constructed one (same
  /// (time, seq) dispatch order for any subsequent operation sequence),
  /// except that old handles stay safely stale: slot generations are
  /// never rewound. This is what lets one sweep worker reuse a single
  /// warmed arena across every trial of a lease.
  void reset();

  /// Pre-sizes the slot pool and ordering structure so a workload of up to
  /// `events` concurrent events runs without any further allocation.
  void reserve(std::size_t events);

  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    /// Times the slot pool or ordering-structure storage had to grow.
    /// Flat in steady state: slots are recycled through the free list.
    std::uint64_t pool_reallocations = 0;
    /// Scheduled callbacks whose captures exceeded
    /// EventCallback::kInlineCapacity and spilled to the heap. Per queue —
    /// unlike the deprecated EventCallback::heap_fallbacks() process-wide
    /// total, parallel sweep workers never alias each other's counts.
    std::uint64_t callback_heap_spills = 0;
  };
  /// Per-queue operation counters. reset() zeroes them: stats are
  /// per-trial when the arena is reused.
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pool_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNil = EventHandle::kInvalidIndex;
  /// pos_or_next sentinel for slots staged by pop_batch: not in the
  /// ordering structure, not on the free list, awaiting collection.
  static constexpr std::uint32_t kStaged = 0xfffffffeu;

  struct Slot {
    SimTime time;
    std::uint64_t seq = 0;
    EventCallback fn;
    std::uint64_t generation = 0;
    /// Backend back-pointer while pending (heap position, or position
    /// within the calendar bucket derived from `time`); kStaged while
    /// staged; next free slot index while free.
    std::uint32_t pos_or_next = kNil;
  };

  /// Calendar bucket entry. Copies of (time, seq) keep min scans free of
  /// slot-slab indirection; `index` maintains the slot back-pointer when
  /// entries are swap-removed.
  struct CalendarEntry {
    SimTime time;
    std::uint64_t seq = 0;
    std::uint32_t index = kNil;
  };

  struct StagedEntry {
    std::uint64_t seq = 0;
    std::uint32_t index = kNil;
    std::uint64_t generation = 0;
  };

  /// True when event `a` must fire strictly before `b`.
  [[nodiscard]] bool earlier(const Slot& a, const Slot& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::size_t structure_size() const {
    return backend_ == QueueBackend::kHeap ? heap_.size() : calendar_live_;
  }
  [[nodiscard]] bool staging() const { return staged_next_ < staged_.size(); }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void stage_sorted_cohort();

  // Heap backend.
  void heap_insert(std::uint32_t index);
  void remove_heap_at(std::size_t pos);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_collect_cohort(SimTime when);
  void heap_bulk_remove();

  // Calendar backend.
  [[nodiscard]] std::size_t bucket_of(SimTime when) const {
    return static_cast<std::size_t>(when.ns() / bucket_width_ns_) &
           bucket_mask_;
  }
  void calendar_insert(std::uint32_t index);
  void calendar_remove(std::size_t bucket, std::size_t pos);
  void calendar_find_min() const;
  void calendar_grow(std::size_t min_buckets);

  QueueBackend backend_ = QueueBackend::kHeap;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  Stats stats_;

  // Staged batch (shared by both backends), in sequence order.
  std::vector<StagedEntry> staged_;
  std::size_t staged_next_ = 0;
  std::size_t staged_live_ = 0;

  // Heap backend state.
  std::vector<std::uint32_t> heap_;  ///< 4-ary implicit heap of slot indices.
  std::vector<std::uint32_t> cohort_;  ///< pop_batch position scratch.

  // Calendar backend state.
  std::vector<std::vector<CalendarEntry>> buckets_;
  std::size_t bucket_mask_ = 0;        ///< buckets_.size() - 1 (power of two).
  std::int64_t bucket_width_ns_ = 1024;
  std::size_t calendar_live_ = 0;
  /// Lower bound on every pending entry's time: raised to each popped
  /// time, lowered by schedules below it. Min scans start here.
  SimTime scan_from_;
  // Cached location of the minimum entry (mutable: locating the minimum
  // from const next_time() amortizes across repeated calls).
  mutable bool min_valid_ = false;
  mutable std::size_t min_bucket_ = 0;
  mutable std::size_t min_pos_ = 0;
};

}  // namespace adaptbf
