#include "sim/simulator.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  ADAPTBF_CHECK_MSG(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::schedule_after(SimDuration delay, EventFn fn) {
  ADAPTBF_CHECK_MSG(delay >= SimDuration(0), "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimDuration period,
                                                       EventFn fn) {
  ADAPTBF_CHECK_MSG(period > SimDuration(0), "period must be positive");
  const std::uint64_t key = next_periodic_key_++;
  periodics_.emplace(key, Periodic{period, std::move(fn)});
  arm_periodic(key);
  return PeriodicHandle{key};
}

void Simulator::arm_periodic(std::uint64_t key) {
  auto it = periodics_.find(key);
  if (it == periodics_.end() || it->second.cancelled) return;
  schedule_after(it->second.period, [this, key] {
    auto found = periodics_.find(key);
    if (found == periodics_.end() || found->second.cancelled) return;
    // Copy the callback: it may cancel itself (erasing the map entry).
    EventFn fn = found->second.fn;
    fn();
    arm_periodic(key);
  });
}

void Simulator::cancel_periodic(PeriodicHandle handle) {
  auto it = periodics_.find(handle.key);
  if (it == periodics_.end()) return;
  // Mark first (a pending armed event may still reference the key), then
  // erase; the armed lambda checks the map before firing.
  it->second.cancelled = true;
  periodics_.erase(it);
}

void Simulator::run_until(SimTime deadline) {
  ADAPTBF_CHECK(deadline >= now_);
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto fired = queue_.pop();
    ADAPTBF_CHECK(fired.time >= now_);
    now_ = fired.time;
    ++dispatched_;
    fired.fn();
  }
  now_ = deadline;
}

void Simulator::run_to_completion() {
  while (!queue_.empty()) {
    auto fired = queue_.pop();
    ADAPTBF_CHECK(fired.time >= now_);
    now_ = fired.time;
    ++dispatched_;
    fired.fn();
  }
}

}  // namespace adaptbf
