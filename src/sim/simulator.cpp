#include "sim/simulator.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

EventHandle Simulator::schedule_at(SimTime when, EventCallback fn) {
  ADAPTBF_CHECK_MSG(when >= now_, "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::schedule_after(SimDuration delay, EventCallback fn) {
  ADAPTBF_CHECK_MSG(delay >= SimDuration(0), "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimDuration period,
                                                       EventCallback fn) {
  ADAPTBF_CHECK_MSG(period > SimDuration(0), "period must be positive");
  ADAPTBF_CHECK_MSG(static_cast<bool>(fn), "cannot schedule a null periodic");
  std::uint32_t index;
  if (periodic_free_head_ != EventHandle::kInvalidIndex) {
    index = periodic_free_head_;
    periodic_free_head_ = periodics_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(periodics_.size());
    periodics_.emplace_back();
  }
  PeriodicSlot& slot = periodics_[index];
  slot.period = period;
  slot.fn = std::move(fn);
  slot.live = true;
  const std::uint64_t generation = slot.generation;
  arm_periodic(index, generation);
  return PeriodicHandle{index, generation};
}

void Simulator::arm_periodic(std::uint32_t index, std::uint64_t generation) {
  // The armed event captures only {this, index, generation} (24 bytes):
  // it stays inline in the event slot, and the slot pair (periodic +
  // event) is reused every period — zero allocations per tick.
  const EventHandle armed = schedule_after(
      periodics_[index].period,
      [this, index, generation] { fire_periodic(index, generation); });
  periodics_[index].armed = armed;
}

void Simulator::fire_periodic(std::uint32_t index, std::uint64_t generation) {
  {
    const PeriodicSlot& slot = periodics_[index];
    if (!slot.live || slot.generation != generation) return;
  }
  // Run the callback from a local: the body may cancel this periodic
  // (releasing the slot) or register new periodics (growing the pool and
  // relocating every slot). The move is an inline relocation, not a copy.
  EventCallback fn = std::move(periodics_[index].fn);
  fn();
  PeriodicSlot& slot = periodics_[index];
  if (!slot.live || slot.generation != generation) return;  // cancelled itself
  slot.fn = std::move(fn);
  arm_periodic(index, generation);
}

void Simulator::cancel_periodic(PeriodicHandle handle) {
  if (handle.index >= periodics_.size()) return;
  PeriodicSlot& slot = periodics_[handle.index];
  if (!slot.live || slot.generation != handle.generation) return;
  // Harmless no-op when called from inside the tick itself: the armed
  // handle went stale the moment the tick was popped for dispatch.
  queue_.cancel(slot.armed);
  slot.live = false;
  ++slot.generation;  // stale-ify the handle and any in-flight tick
  slot.fn = EventCallback();
  slot.next_free = periodic_free_head_;
  periodic_free_head_ = handle.index;
}

void Simulator::dispatch(EventQueue::Fired& fired) {
  ADAPTBF_CHECK(fired.time >= now_);
  now_ = fired.time;
  ++dispatched_;
  if (dispatch_hook_) [[unlikely]] dispatch_hook_(fired.time, fired.seq);
  fired.fn();
}

void Simulator::drain_batch() {
  queue_.pop_batch();
  EventQueue::Fired fired;
  while (queue_.collect_staged(fired)) dispatch(fired);
}

void Simulator::run_until(SimTime deadline) {
  ADAPTBF_CHECK(deadline >= now_);
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    if (config_.batched_dispatch) {
      // Every event staged here carries next_time() <= deadline: the whole
      // cohort shares one timestamp, so the deadline check holds for all.
      drain_batch();
    } else {
      auto fired = queue_.pop();
      dispatch(fired);
    }
  }
  now_ = deadline;
}

void Simulator::run_to_completion() {
  while (!queue_.empty()) {
    if (config_.batched_dispatch) {
      drain_batch();
    } else {
      auto fired = queue_.pop();
      dispatch(fired);
    }
  }
}

void Simulator::reset() {
  queue_.reset();
  now_ = SimTime::zero();
  dispatched_ = 0;
  dispatch_hook_ = nullptr;
  // Keep the periodic pool's storage but stale-ify every slot, exactly as
  // the event slab does: generations only ever move forward, so periodic
  // handles from before the reset can never alias a new registration.
  for (PeriodicSlot& slot : periodics_) {
    if (slot.live) {
      slot.live = false;
      ++slot.generation;
    }
    slot.fn = EventCallback();
    slot.armed = EventHandle{};
  }
  periodic_free_head_ = EventHandle::kInvalidIndex;
  for (std::size_t i = periodics_.size(); i-- > 0;) {
    periodics_[i].next_free = periodic_free_head_;
    periodic_free_head_ = static_cast<std::uint32_t>(i);
  }
}

}  // namespace adaptbf
