#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace adaptbf {

const char* queue_backend_name(QueueBackend backend) {
  return backend == QueueBackend::kHeap ? "heap" : "calendar";
}

EventQueue::EventQueue(QueueBackend backend) : backend_(backend) {
  if (backend_ == QueueBackend::kCalendar) {
    buckets_.resize(16);
    bucket_mask_ = buckets_.size() - 1;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].pos_or_next;
    return index;
  }
  ADAPTBF_CHECK_MSG(slots_.size() < kStaged, "event slot pool exhausted");
  if (slots_.size() == slots_.capacity()) ++stats_.pool_reallocations;
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // stale-ify every outstanding handle
  slot.fn = EventCallback();
  slot.pos_or_next = free_head_;
  free_head_ = index;
}

EventHandle EventQueue::schedule(SimTime when, EventCallback fn) {
  ADAPTBF_CHECK_MSG(static_cast<bool>(fn), "cannot schedule a null event");
  if (fn.heap_allocated()) ++stats_.callback_heap_spills;
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.time = when;
  slot.seq = next_seq_++;
  slot.fn = std::move(fn);
  if (backend_ == QueueBackend::kHeap) {
    heap_insert(index);
  } else {
    calendar_insert(index);
  }
  ++stats_.scheduled;
  return EventHandle{index, slot.generation};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!pending(handle)) return false;
  Slot& slot = slots_[handle.index];
  if (slot.pos_or_next == kStaged) {
    // Staged by pop_batch but not collected yet: releasing the slot bumps
    // its generation, so collect_staged() skips the entry — the event never
    // fires, exactly as if it had been cancelled while still queued.
    release_slot(handle.index);
    --staged_live_;
    ++stats_.cancelled;
    return true;
  }
  if (backend_ == QueueBackend::kHeap) {
    remove_heap_at(slot.pos_or_next);
  } else {
    calendar_remove(bucket_of(slot.time), slot.pos_or_next);
  }
  release_slot(handle.index);
  ++stats_.cancelled;
  return true;
}

SimTime EventQueue::next_time() const {
  if (backend_ == QueueBackend::kHeap)
    return heap_.empty() ? SimTime::max() : slots_[heap_[0]].time;
  if (calendar_live_ == 0) return SimTime::max();
  calendar_find_min();
  return buckets_[min_bucket_][min_pos_].time;
}

EventQueue::Fired EventQueue::pop() {
  ADAPTBF_CHECK_MSG(!staging(), "pop() while a batch is staged");
  ADAPTBF_CHECK_MSG(!empty(), "pop() on empty event queue");
  std::uint32_t index;
  if (backend_ == QueueBackend::kHeap) {
    index = heap_[0];
    Slot& slot = slots_[index];
    Fired fired{slot.time, slot.seq, std::move(slot.fn)};
    remove_heap_at(0);
    release_slot(index);
    ++stats_.fired;
    return fired;
  }
  calendar_find_min();
  index = buckets_[min_bucket_][min_pos_].index;
  Slot& slot = slots_[index];
  Fired fired{slot.time, slot.seq, std::move(slot.fn)};
  calendar_remove(min_bucket_, min_pos_);
  release_slot(index);
  scan_from_ = fired.time;
  ++stats_.fired;
  return fired;
}

std::size_t EventQueue::pop_batch() {
  ADAPTBF_CHECK_MSG(!staging(), "pop_batch() while a batch is staged");
  ADAPTBF_CHECK_MSG(!empty(), "pop_batch() on empty event queue");
  staged_.clear();
  staged_next_ = 0;
  if (backend_ == QueueBackend::kHeap) {
    const SimTime when = slots_[heap_[0]].time;
    heap_collect_cohort(when);
    heap_bulk_remove();
  } else {
    calendar_find_min();
    const std::size_t bucket = min_bucket_;
    const SimTime when = buckets_[bucket][min_pos_].time;
    // Equal times always map to the same bucket, so the whole cohort lives
    // in this one. Swap-removal revisits the same position, so no entry is
    // skipped when the back of the bucket is moved forward.
    std::size_t pos = 0;
    while (pos < buckets_[bucket].size()) {
      const CalendarEntry entry = buckets_[bucket][pos];
      if (entry.time != when) {
        ++pos;
        continue;
      }
      if (staged_.size() == staged_.capacity()) ++stats_.pool_reallocations;
      staged_.push_back({entry.seq, entry.index, slots_[entry.index].generation});
      slots_[entry.index].pos_or_next = kStaged;
      calendar_remove(bucket, pos);
    }
    scan_from_ = when;
  }
  stage_sorted_cohort();
  staged_live_ = staged_.size();
  return staged_.size();
}

void EventQueue::stage_sorted_cohort() {
  std::sort(staged_.begin(), staged_.end(),
            [](const StagedEntry& a, const StagedEntry& b) {
              return a.seq < b.seq;
            });
}

bool EventQueue::collect_staged(Fired& out) {
  while (staged_next_ < staged_.size()) {
    const StagedEntry entry = staged_[staged_next_++];
    Slot& slot = slots_[entry.index];
    if (slot.generation != entry.generation) continue;  // cancelled mid-batch
    out.time = slot.time;
    out.seq = slot.seq;
    out.fn = std::move(slot.fn);
    release_slot(entry.index);
    --staged_live_;
    ++stats_.fired;
    return true;
  }
  staged_.clear();
  staged_next_ = 0;
  return false;
}

void EventQueue::reset() {
  if (backend_ == QueueBackend::kHeap) {
    for (const std::uint32_t index : heap_) release_slot(index);
    heap_.clear();
  } else {
    for (auto& bucket : buckets_) {
      for (const CalendarEntry& entry : bucket) release_slot(entry.index);
      bucket.clear();
    }
    calendar_live_ = 0;
    min_valid_ = false;
    scan_from_ = SimTime::zero();
  }
  for (std::size_t i = staged_next_; i < staged_.size(); ++i) {
    const StagedEntry& entry = staged_[i];
    if (slots_[entry.index].generation == entry.generation)
      release_slot(entry.index);
  }
  staged_.clear();
  staged_next_ = 0;
  staged_live_ = 0;
  next_seq_ = 0;
  stats_ = Stats{};
}

void EventQueue::reserve(std::size_t events) {
  slots_.reserve(events);
  staged_.reserve(events);
  if (backend_ == QueueBackend::kHeap) {
    heap_.reserve(events);
    cohort_.reserve(events);
  } else if (events / 2 > buckets_.size()) {
    calendar_grow(events / 2);
  }
}

// ----------------------------------------------------------- heap backend

void EventQueue::heap_insert(std::uint32_t index) {
  if (heap_.size() == heap_.capacity()) ++stats_.pool_reallocations;
  heap_.push_back(index);
  slots_[index].pos_or_next = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void EventQueue::remove_heap_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated element may belong either direction; one of these
    // no-ops immediately.
    sift_down(pos);
    sift_up(pos);
  }
}

void EventQueue::sift_up(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  const Slot& slot = slots_[moving];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (earlier(slots_[heap_[parent]], slot)) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].pos_or_next = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const std::uint32_t moving = heap_[pos];
  const Slot& slot = slots_[moving];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t limit = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    const Slot* best_slot = &slots_[heap_[first]];
    for (std::size_t child = first + 1; child < limit; ++child) {
      const Slot* child_slot = &slots_[heap_[child]];
      if (earlier(*child_slot, *best_slot)) {
        best = child;
        best_slot = child_slot;
      }
    }
    if (!earlier(*best_slot, slot)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].pos_or_next = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_collect_cohort(SimTime when) {
  // The earliest-time cohort is ancestor-closed: `when` is the heap
  // minimum, so every ancestor of an equal-time node also carries `when`.
  // A worklist scan from the root that only descends into equal-time
  // children therefore visits exactly the cohort — O(m) for a cohort of m,
  // independent of the heap size.
  cohort_.clear();
  cohort_.push_back(0);
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    const std::size_t pos = cohort_[i];
    const std::size_t first = 4 * pos + 1;
    const std::size_t limit = std::min(first + 4, heap_.size());
    for (std::size_t child = first; child < limit; ++child) {
      if (slots_[heap_[child]].time == when) {
        if (cohort_.size() == cohort_.capacity()) ++stats_.pool_reallocations;
        cohort_.push_back(static_cast<std::uint32_t>(child));
      }
    }
  }
  for (const std::size_t pos : cohort_) {
    Slot& slot = slots_[heap_[pos]];
    if (staged_.size() == staged_.capacity()) ++stats_.pool_reallocations;
    staged_.push_back({slot.seq, heap_[pos], slot.generation});
    slot.pos_or_next = kStaged;
  }
}

void EventQueue::heap_bulk_remove() {
  // Removes every cohort position in one repair pass. Holes are filled
  // from the heap tail, then sifted deepest-first: a hole's children are
  // always repaired before the hole itself, and every hole's parent is
  // itself a hole (the cohort is ancestor-closed), so sift_down alone
  // restores the invariant. The filled elements sink only into the
  // cohort-sized top region — O(log m) per event instead of the O(log n)
  // a root-replacement pop pays.
  const std::size_t m = cohort_.size();
  const std::size_t new_size = heap_.size() - m;
  std::sort(cohort_.begin(), cohort_.end());
  const auto is_hole = [this](std::size_t pos) {
    return slots_[heap_[pos]].pos_or_next == kStaged;
  };
  std::size_t spare = heap_.size();
  for (const std::size_t pos : cohort_) {
    if (pos >= new_size) break;
    do {
      --spare;
    } while (is_hole(spare));
    ADAPTBF_CHECK(spare >= new_size);
    heap_[pos] = heap_[spare];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
  }
  heap_.resize(new_size);
  for (std::size_t i = cohort_.size(); i-- > 0;) {
    if (cohort_[i] < new_size) sift_down(cohort_[i]);
  }
  cohort_.clear();
}

// ------------------------------------------------------- calendar backend

void EventQueue::calendar_insert(std::uint32_t index) {
  Slot& slot = slots_[index];
  ADAPTBF_CHECK_MSG(slot.time.ns() >= 0,
                    "calendar backend requires non-negative event times");
  if (calendar_live_ + 1 > buckets_.size() * 2)
    calendar_grow(buckets_.size() * 2);
  const std::size_t bucket = bucket_of(slot.time);
  auto& entries = buckets_[bucket];
  if (entries.size() == entries.capacity()) ++stats_.pool_reallocations;
  entries.push_back({slot.time, slot.seq, index});
  slot.pos_or_next = static_cast<std::uint32_t>(entries.size() - 1);
  ++calendar_live_;
  if (slot.time < scan_from_) scan_from_ = slot.time;
  if (min_valid_) {
    // A fresh entry beats the cached minimum only on strictly earlier time
    // (its sequence number is the largest so far). Appends never move
    // existing entries, so the cache stays valid otherwise.
    if (slot.time < buckets_[min_bucket_][min_pos_].time) {
      min_bucket_ = bucket;
      min_pos_ = entries.size() - 1;
    }
  }
}

void EventQueue::calendar_remove(std::size_t bucket, std::size_t pos) {
  auto& entries = buckets_[bucket];
  const std::size_t last = entries.size() - 1;
  if (min_valid_ && bucket == min_bucket_) {
    if (pos == min_pos_) {
      min_valid_ = false;  // the cached minimum itself is leaving
    } else if (min_pos_ == last) {
      min_pos_ = pos;  // the cached minimum is the entry being moved down
    }
  }
  if (pos != last) {
    entries[pos] = entries[last];
    slots_[entries[pos].index].pos_or_next = static_cast<std::uint32_t>(pos);
  }
  entries.pop_back();
  --calendar_live_;
}

void EventQueue::calendar_find_min() const {
  if (min_valid_) return;
  ADAPTBF_CHECK(calendar_live_ > 0);
  // Classic calendar-queue search: walk one "year" of bucket-days starting
  // at the day of scan_from_ (a proven lower bound on every pending
  // entry). The first day that owns entries holds the global minimum —
  // later days and later years are strictly later in time.
  std::int64_t day = scan_from_.ns() / bucket_width_ns_;
  for (std::size_t step = 0; step < buckets_.size(); ++step, ++day) {
    const auto& entries = buckets_[static_cast<std::size_t>(day) & bucket_mask_];
    const std::int64_t day_end = (day + 1) * bucket_width_ns_;
    std::size_t best = entries.size();
    for (std::size_t pos = 0; pos < entries.size(); ++pos) {
      if (entries[pos].time.ns() >= day_end) continue;  // a later year
      if (best == entries.size() ||
          entries[pos].time < entries[best].time ||
          (entries[pos].time == entries[best].time &&
           entries[pos].seq < entries[best].seq)) {
        best = pos;
      }
    }
    if (best != entries.size()) {
      min_bucket_ = static_cast<std::size_t>(day) & bucket_mask_;
      min_pos_ = best;
      min_valid_ = true;
      return;
    }
  }
  // The whole year is empty: the next event is more than a year out.
  // Direct scan over every entry — rare, and O(live + buckets).
  bool found = false;
  for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
    const auto& entries = buckets_[bucket];
    for (std::size_t pos = 0; pos < entries.size(); ++pos) {
      if (!found || entries[pos].time < buckets_[min_bucket_][min_pos_].time ||
          (entries[pos].time == buckets_[min_bucket_][min_pos_].time &&
           entries[pos].seq < buckets_[min_bucket_][min_pos_].seq)) {
        min_bucket_ = bucket;
        min_pos_ = pos;
        found = true;
      }
    }
  }
  ADAPTBF_CHECK(found);
  min_valid_ = true;
}

void EventQueue::calendar_grow(std::size_t min_buckets) {
  // Lazily split: flatten, double (at least) the bucket array, re-derive
  // the day width from the occupied span so the current population spreads
  // at ~2 entries per day, and redistribute. Deterministic — a pure
  // function of the pending-event set.
  std::vector<CalendarEntry> all;
  all.reserve(calendar_live_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  std::size_t target = buckets_.size() == 0 ? 16 : buckets_.size();
  while (target < min_buckets) target *= 2;
  if (target > buckets_.size()) {
    buckets_.resize(target);
    ++stats_.pool_reallocations;
  }
  bucket_mask_ = buckets_.size() - 1;
  if (all.size() >= 2) {
    std::int64_t lo = all[0].time.ns();
    std::int64_t hi = lo;
    for (const CalendarEntry& entry : all) {
      lo = std::min(lo, entry.time.ns());
      hi = std::max(hi, entry.time.ns());
    }
    const auto gap = (hi - lo) / static_cast<std::int64_t>(all.size());
    bucket_width_ns_ = std::max<std::int64_t>(1, gap * 2);
  }
  for (const CalendarEntry& entry : all) {
    auto& entries = buckets_[bucket_of(entry.time)];
    entries.push_back(entry);
    slots_[entry.index].pos_or_next =
        static_cast<std::uint32_t>(entries.size() - 1);
  }
  min_valid_ = false;
}

}  // namespace adaptbf
