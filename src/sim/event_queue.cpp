#include "sim/event_queue.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].pos_or_next;
    return index;
  }
  ADAPTBF_CHECK_MSG(slots_.size() < EventHandle::kInvalidIndex,
                    "event slot pool exhausted");
  if (slots_.size() == slots_.capacity()) ++stats_.pool_reallocations;
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // stale-ify every outstanding handle
  slot.fn = EventCallback();
  slot.pos_or_next = free_head_;
  free_head_ = index;
}

EventHandle EventQueue::schedule(SimTime when, EventCallback fn) {
  ADAPTBF_CHECK_MSG(static_cast<bool>(fn), "cannot schedule a null event");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.time = when;
  slot.seq = next_seq_++;
  slot.fn = std::move(fn);
  if (heap_.size() == heap_.capacity()) ++stats_.pool_reallocations;
  heap_.push_back(index);
  slot.pos_or_next = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  ++stats_.scheduled;
  return EventHandle{index, slot.generation};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!pending(handle)) return false;
  remove_heap_at(slots_[handle.index].pos_or_next);
  release_slot(handle.index);
  ++stats_.cancelled;
  return true;
}

EventQueue::Fired EventQueue::pop() {
  ADAPTBF_CHECK_MSG(!heap_.empty(), "pop() on empty event queue");
  const std::uint32_t index = heap_[0];
  Slot& slot = slots_[index];
  Fired fired{slot.time, slot.seq, std::move(slot.fn)};
  remove_heap_at(0);
  release_slot(index);
  ++stats_.fired;
  return fired;
}

void EventQueue::reserve(std::size_t events) {
  slots_.reserve(events);
  heap_.reserve(events);
}

void EventQueue::remove_heap_at(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
  }
  heap_.pop_back();
  if (pos < heap_.size()) {
    // The relocated element may belong either direction; one of these
    // no-ops immediately.
    sift_down(pos);
    sift_up(pos);
  }
}

void EventQueue::sift_up(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  const Slot& slot = slots_[moving];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (earlier(slots_[heap_[parent]], slot)) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].pos_or_next = static_cast<std::uint32_t>(pos);
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const std::uint32_t moving = heap_[pos];
  const Slot& slot = slots_[moving];
  while (true) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t limit = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    const Slot* best_slot = &slots_[heap_[first]];
    for (std::size_t child = first + 1; child < limit; ++child) {
      const Slot* child_slot = &slots_[heap_[child]];
      if (earlier(*child_slot, *best_slot)) {
        best = child;
        best_slot = child_slot;
      }
    }
    if (!earlier(*best_slot, slot)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos]].pos_or_next = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = moving;
  slots_[moving].pos_or_next = static_cast<std::uint32_t>(pos);
}

}  // namespace adaptbf
