#include "sim/event_queue.h"

#include <utility>

#include "support/check.h"

namespace adaptbf {

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  ADAPTBF_CHECK_MSG(fn != nullptr, "cannot schedule a null event");
  const EventId id = next_seq_++;
  heap_.push_back(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  sift_up(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!pending_.contains(id) || cancelled_.contains(id)) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().seq)) {
    cancelled_.erase(heap_.front().seq);
    pending_.erase(heap_.front().seq);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  return heap_.empty() ? SimTime::max() : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_top();
  ADAPTBF_CHECK_MSG(!heap_.empty(), "pop() on empty event queue");
  Fired fired{heap_.front().time, heap_.front().seq,
              std::move(heap_.front().fn)};
  pending_.erase(fired.id);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return fired;
}

void EventQueue::sift_up(std::size_t i) {
  const Later later;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const Later later;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace adaptbf
