// Discrete-event simulator driver.
//
// Owns the clock and the event queue. Components schedule callbacks either
// at absolute times (schedule_at) or relative delays (schedule_after);
// run_until() / run_to_completion() dispatch events in deterministic
// (time, insertion) order. Single-threaded by design: an HPC storage server
// simulation at this granularity is dominated by event dispatch, and
// determinism is worth more than parallel speedup for reproducing figures.
//
// Periodic timers live in their own slot pool: each tick re-arms through a
// tiny {index, generation} trampoline and calls the stored callback in
// place, so a periodic costs zero heap allocations per period — the old
// design copied a std::function every tick.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace adaptbf {

class Simulator {
 public:
  /// Event-core configuration, fixed at construction.
  struct Config {
    QueueBackend backend = QueueBackend::kHeap;
    /// Batched: drain each same-timestamp cohort via pop_batch (one bulk
    /// structure repair for the whole cohort); single-pop: one pop per
    /// event. The dispatch order — and therefore every simulation result —
    /// is bit-identical either way; single-pop exists as the reference
    /// mode for the dispatch-equivalence tests.
    bool batched_dispatch = true;
  };

  Simulator() : Simulator(Config{}) {}
  explicit Simulator(Config config) : config_(config), queue_(config.backend) {}

  [[nodiscard]] const Config& config() const { return config_; }

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must not be in the past.
  EventHandle schedule_at(SimTime when, EventCallback fn);

  /// Schedules `fn` after a non-negative delay from now().
  EventHandle schedule_after(SimDuration delay, EventCallback fn);

  /// Schedules `fn` every `period` (must be strictly positive — a zero
  /// period would re-arm at the same timestamp forever), first firing at
  /// now() + period, until the returned handle is cancelled via
  /// cancel_periodic(). The callback runs before the next period is armed,
  /// so a callback may cancel itself.
  struct PeriodicHandle {
    std::uint32_t index = EventHandle::kInvalidIndex;
    std::uint64_t generation = 0;
  };
  PeriodicHandle schedule_periodic(SimDuration period, EventCallback fn);
  void cancel_periodic(PeriodicHandle handle);

  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// True while the referenced one-shot event is still pending; stale
  /// handles (fired/cancelled) answer false in O(1).
  [[nodiscard]] bool pending(EventHandle handle) const {
    return queue_.pending(handle);
  }

  /// Runs all events with time <= deadline; clock ends at exactly deadline.
  void run_until(SimTime deadline);

  /// Runs until no events remain.
  void run_to_completion();

  /// Rewinds the simulator to its freshly-constructed state — clock at
  /// zero, no pending events or periodics, counters zeroed, dispatch hook
  /// cleared — while keeping every arena (event slots, ordering structure,
  /// periodic pool) warm at capacity. Handles from before the reset stay
  /// safely stale. This is what lets a sweep worker run every trial of a
  /// lease on one simulator instead of rebuilding the pools per trial.
  void reset();

  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Pre-sizes the event arena: a workload with at most `events` concurrent
  /// pending events then runs allocation-free for the simulator's lifetime.
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  [[nodiscard]] const EventQueue::Stats& queue_stats() const {
    return queue_.stats();
  }
  [[nodiscard]] std::size_t event_pool_slots() const {
    return queue_.pool_slots();
  }

  /// Observer called once per dispatched event with (fire time, sequence
  /// number), before the callback runs. The sequence number is assigned in
  /// schedule order, so the stream of (time, seq) pairs pins the exact
  /// dispatch order — the determinism contract the golden-trace tests hash.
  using DispatchHook = std::function<void(SimTime, std::uint64_t)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

 private:
  struct PeriodicSlot {
    SimDuration period;
    EventCallback fn;
    EventHandle armed;  ///< The pending tick event (stale while firing).
    std::uint64_t generation = 0;
    std::uint32_t next_free = EventHandle::kInvalidIndex;
    bool live = false;
  };

  void arm_periodic(std::uint32_t index, std::uint64_t generation);
  void fire_periodic(std::uint32_t index, std::uint64_t generation);
  void dispatch(EventQueue::Fired& fired);
  void drain_batch();

  Config config_;
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t dispatched_ = 0;
  DispatchHook dispatch_hook_;
  std::vector<PeriodicSlot> periodics_;
  std::uint32_t periodic_free_head_ = EventHandle::kInvalidIndex;
};

}  // namespace adaptbf
