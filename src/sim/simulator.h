// Discrete-event simulator driver.
//
// Owns the clock and the event queue. Components schedule callbacks either
// at absolute times (schedule_at) or relative delays (schedule_after);
// run_until() / run_to_completion() dispatch events in deterministic
// (time, insertion) order. Single-threaded by design: an HPC storage server
// simulation at this granularity is dominated by event dispatch, and
// determinism is worth more than parallel speedup for reproducing figures.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace adaptbf {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must not be in the past.
  EventId schedule_at(SimTime when, EventFn fn);

  /// Schedules `fn` after a non-negative delay from now().
  EventId schedule_after(SimDuration delay, EventFn fn);

  /// Schedules `fn` every `period`, first firing at now() + period, until
  /// the returned handle is cancelled via cancel_periodic(). The callback
  /// runs before the next period is armed, so a callback may cancel itself.
  struct PeriodicHandle {
    std::uint64_t key = 0;
  };
  PeriodicHandle schedule_periodic(SimDuration period, EventFn fn);
  void cancel_periodic(PeriodicHandle handle);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs all events with time <= deadline; clock ends at exactly deadline.
  void run_until(SimTime deadline);

  /// Runs until no events remain.
  void run_to_completion();

  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Periodic {
    SimDuration period;
    EventFn fn;
    bool cancelled = false;
  };
  void arm_periodic(std::uint64_t key);

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t dispatched_ = 0;
  std::uint64_t next_periodic_key_ = 1;
  std::unordered_map<std::uint64_t, Periodic> periodics_;
};

}  // namespace adaptbf
