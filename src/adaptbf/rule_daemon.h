// Rule Management Daemon (§III-D).
//
// Translates a window's token allocations into live NRS-TBF rules:
//   * stops rules whose job was not active this window (its RPCs then flow
//     through the fallback queue, so inactive jobs never starve),
//   * starts one JobID rule per newly active job,
//   * re-rates existing rules to the allocated tokens / Δt,
//   * ranks rules by job priority so the hierarchy prefers high-priority
//     queues (lower rank = classified and tie-broken first).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "adaptbf/allocation_types.h"
#include "tbf/tbf_scheduler.h"

namespace adaptbf {

struct RuleDaemonConfig {
  std::string rule_prefix = "job_";
  /// Lustre TBF refuses zero rates; a job allocated zero tokens is parked
  /// at this floor rather than frozen (its next RPCs keep flowing slowly
  /// and will re-activate it).
  double min_rate = 1.0;
  /// Bucket depth for created rules (Lustre default 3).
  double depth = 3.0;
};

class RuleDaemon {
 public:
  RuleDaemon(TbfScheduler& scheduler, RuleDaemonConfig config);

  /// Reconciles the scheduler's rule set with the window's allocations.
  void apply(const WindowResult& window, SimTime now);

  [[nodiscard]] std::uint64_t rules_started() const { return started_; }
  [[nodiscard]] std::uint64_t rules_changed() const { return changed_; }
  [[nodiscard]] std::uint64_t rules_stopped() const { return stopped_; }

  [[nodiscard]] std::string rule_name(JobId job) const;

 private:
  TbfScheduler& scheduler_;
  RuleDaemonConfig config_;
  /// Rules this daemon started, mapped to their job. Needed to consult the
  /// job's queue backlog before stopping (see apply()).
  std::unordered_map<std::string, JobId> owned_rules_;
  std::uint64_t started_ = 0;
  std::uint64_t changed_ = 0;
  std::uint64_t stopped_ = 0;
};

}  // namespace adaptbf
