// Data types flowing through the token allocation algorithm.
//
// Field names mirror the paper's notation (Table I): p priority, d demand,
// u utilization, α allocation (initial / after redistribution RD / after
// re-compensation RC), r record, ρ remainder, T_s surplus, T_R reclaimed.
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/rpc.h"
#include "sim/time.h"

namespace adaptbf {

/// Per-job input for one observation window: what the System Stats
/// Controller hands the allocator (§III-B).
struct JobWindowInput {
  JobId job;
  std::uint32_t nodes = 1;  ///< n_x: allocated compute nodes.
  double demand = 0.0;      ///< d_x: RPCs issued during the window.
};

/// Per-job output of one allocation window, with every intermediate kept
/// for tests, traces (Fig. 7) and the ablation benches.
struct JobAllocation {
  JobId job;
  double priority = 0.0;            ///< p_x (eq. 1)
  double demand = 0.0;              ///< d_x
  double utilization = 0.0;         ///< u_x (eq. 3)
  double initial = 0.0;             ///< α_x^t (eq. 2)
  double surplus = 0.0;             ///< T_s^x (eq. 4)
  double after_redistribution = 0.0;  ///< α_RD (eq. 7)
  double record_after_redistribution = 0.0;  ///< r_RD (eq. 8)
  double reclaimed = 0.0;           ///< T_R^x taken FROM this job (eq. 14)
  double compensated = 0.0;         ///< share of T_R granted TO this job (eq. 19)
  double after_recompensation = 0.0;  ///< α_RC (eqs. 15/19)
  std::int64_t tokens = 0;          ///< Final integer allocation (eq. 23-25)
  double rate = 0.0;                ///< tokens / Δt, the TBF rule rate
  double record_after = 0.0;        ///< r after the window
  double remainder_after = 0.0;     ///< ρ after the window
};

/// Result of one full allocation window on one OST.
struct WindowResult {
  SimTime when;
  double total_tokens = 0.0;        ///< T_i * Δt
  double surplus_total = 0.0;       ///< T_s (eq. 5)
  double reclaim_total = 0.0;       ///< T_R (eq. 17)
  double reclaim_coefficient = 0.0; ///< C (eq. 13, clamped)
  std::vector<JobAllocation> jobs;  ///< Ascending JobId order.

  [[nodiscard]] const JobAllocation* find(JobId job) const {
    for (const auto& j : jobs)
      if (j.job == job) return &j;
    return nullptr;
  }
};

}  // namespace adaptbf
