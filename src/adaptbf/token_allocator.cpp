#include "adaptbf/token_allocator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.h"

namespace adaptbf {

TokenAllocator::TokenAllocator(AllocatorConfig config) : config_(config) {
  ADAPTBF_CHECK_MSG(config_.total_rate > 0.0, "T_i must be positive");
  ADAPTBF_CHECK_MSG(config_.dt > SimDuration(0), "Δt must be positive");
  ADAPTBF_CHECK(config_.deficit_saturation > 1.0);
  ADAPTBF_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                    "ewma_alpha must be in (0, 1]");
}

WindowResult TokenAllocator::allocate(std::span<const JobWindowInput> active,
                                      SimTime now) {
  WindowResult result;
  result.when = now;
  result.total_tokens = config_.total_rate * config_.dt.to_seconds();
  if (active.empty()) return result;

  // Sort by JobId and validate inputs.
  std::vector<JobWindowInput> inputs(active.begin(), active.end());
  std::sort(inputs.begin(), inputs.end(),
            [](const auto& a, const auto& b) { return a.job < b.job; });
  std::uint64_t sum_nodes = 0;
  {
    std::unordered_set<std::uint32_t> seen;
    for (const auto& input : inputs) {
      ADAPTBF_CHECK_MSG(input.nodes > 0, "job must hold >= 1 compute node");
      ADAPTBF_CHECK_MSG(input.demand >= 0.0, "demand must be non-negative");
      ADAPTBF_CHECK_MSG(seen.insert(input.job.value()).second,
                        "duplicate JobId in window input");
      sum_nodes += input.nodes;
    }
  }

  const double dt_sec = config_.dt.to_seconds();
  const std::size_t n = inputs.size();
  result.jobs.resize(n);

  // ---- Step 1: priority-based initial allocation (eqs. 1-2) ----
  for (std::size_t i = 0; i < n; ++i) {
    const auto& input = inputs[i];
    JobAllocation& out = result.jobs[i];
    out.job = input.job;
    out.demand = input.demand;
    out.priority = static_cast<double>(input.nodes) /
                   static_cast<double>(sum_nodes);
    out.initial = result.total_tokens * out.priority;

    JobState& st = state_[input.job];
    st.last_active = now;
    // Update the future-demand estimate d̄ (eq. 11). Under kLastWindow this
    // is exactly the paper's d̄ = d assumption.
    if (config_.demand_estimator == DemandEstimator::kEwma &&
        st.demand_estimate >= 0.0) {
      st.demand_estimate = config_.ewma_alpha * input.demand +
                           (1.0 - config_.ewma_alpha) * st.demand_estimate;
    } else {
      st.demand_estimate = input.demand;
    }
    // Utilization u = d / α_{t-1} (eq. 3), guarded per DESIGN.md: a job
    // never allocated before is neutral (u = 1); a job that had a zero
    // allocation but still shows demand is an unbounded deficit.
    if (st.prev_alloc < 0.0) {
      out.utilization = 1.0;
    } else if (st.prev_alloc == 0.0) {
      out.utilization = input.demand > 0.0 ? config_.deficit_saturation : 0.0;
    } else {
      out.utilization = input.demand / st.prev_alloc;
    }
  }

  // Distribution factor DF (eq. 6), shared by steps 2 and 3 (eq. 18).
  auto distribution_factor = [](const JobAllocation& j) {
    return j.utilization > 1.0 ? j.utilization + j.utilization * j.priority
                               : j.utilization * j.priority;
  };

  // ---- Step 2: redistribution of surplus tokens (eqs. 4-8) ----
  if (config_.enable_redistribution) {
    double surplus_total = 0.0;
    for (auto& j : result.jobs) {
      j.surplus = std::max(0.0, j.initial - j.demand);
      surplus_total += j.surplus;
    }
    double df_sum = 0.0;
    for (const auto& j : result.jobs) df_sum += distribution_factor(j);
    if (surplus_total > 0.0 && df_sum > 0.0) {
      result.surplus_total = surplus_total;
      for (auto& j : result.jobs) {
        const double share =
            distribution_factor(j) / df_sum * surplus_total;
        j.after_redistribution = j.initial - j.surplus + share;
        j.record_after_redistribution =
            state_.at(j.job).record + j.surplus - share;
      }
    } else {
      for (auto& j : result.jobs) {
        j.surplus = 0.0;
        j.after_redistribution = j.initial;
        j.record_after_redistribution = state_.at(j.job).record;
      }
    }
  } else {
    for (auto& j : result.jobs) {
      j.after_redistribution = j.initial;
      j.record_after_redistribution = state_.at(j.job).record;
    }
  }

  // ---- Step 3: re-compensation for borrowed tokens (eqs. 9-20) ----
  for (auto& j : result.jobs) j.after_recompensation = j.after_redistribution;
  if (config_.enable_recompensation) {
    // Membership (eqs. 9-10): sign must agree before AND after
    // redistribution, so a job that flipped sides this window sits out.
    std::vector<JobAllocation*> lenders;    // J_+
    std::vector<JobAllocation*> borrowers;  // J_-
    for (auto& j : result.jobs) {
      const double r_before = state_.at(j.job).record;
      const double r_rd = j.record_after_redistribution;
      if (r_before > 0.0 && r_rd > 0.0) lenders.push_back(&j);
      if (r_before < 0.0 && r_rd < 0.0) borrowers.push_back(&j);
    }
    if (!lenders.empty() && !borrowers.empty()) {
      // Reclaim coefficient C (eq. 13): one scalar for the window, built
      // from the lenders' current/estimated-future utilization and
      // priority, clamped to [0, 1].
      double coefficient = 0.0;
      for (const auto* j : lenders) {
        const double estimated = state_.at(j->job).demand_estimate;
        const double future_util =  // ū (eqs. 11-12)
            j->after_redistribution > 0.0
                ? estimated / j->after_redistribution
                : config_.deficit_saturation;
        coefficient += (j->priority * std::max(1.0, j->utilization) +
                        std::max(0.0, 1.0 - future_util)) /
                       2.0;
      }
      coefficient = std::clamp(coefficient, 0.0, 1.0);
      result.reclaim_coefficient = coefficient;

      // Reclaim from borrowers (eqs. 14-16), bounded by |r_RD| and by the
      // post-redistribution allocation itself.
      double reclaim_total = 0.0;
      for (auto* j : borrowers) {
        const double bound = std::abs(j->record_after_redistribution);
        j->reclaimed = std::min(
            bound,
            std::max(0.0, coefficient * j->after_redistribution));
        j->after_recompensation = j->after_redistribution - j->reclaimed;
        reclaim_total += j->reclaimed;
      }
      result.reclaim_total = reclaim_total;

      // Grant to lenders by DF share (eqs. 18-20); if every lender has a
      // zero factor (all fully idle), fall back to equal shares.
      if (reclaim_total > 0.0) {
        double df_sum = 0.0;
        for (const auto* j : lenders) df_sum += distribution_factor(*j);
        for (auto* j : lenders) {
          const double weight =
              df_sum > 0.0 ? distribution_factor(*j) / df_sum
                           : 1.0 / static_cast<double>(lenders.size());
          j->compensated = weight * reclaim_total;
          j->after_recompensation = j->after_redistribution + j->compensated;
        }
      }
    }
  }

  // ---- Step 4: integerization with remainders (eqs. 21-25) ----
  if (config_.enable_remainders) {
    // Window token budget as an integer, carrying its own fraction.
    double budget_exact = 0.0;
    for (const auto& j : result.jobs) budget_exact += j.after_recompensation;
    const double budget_with_carry = budget_exact + budget_carry_;
    const auto target = static_cast<std::int64_t>(std::floor(
        budget_with_carry + 1e-9));
    budget_carry_ = budget_with_carry - static_cast<double>(target);

    std::int64_t allocated = 0;
    for (auto& j : result.jobs) {
      const double raw = j.after_recompensation + state_.at(j.job).remainder;
      j.tokens = static_cast<std::int64_t>(std::floor(raw + 1e-9));
      if (j.tokens < 0) j.tokens = 0;  // remainders cannot drive negative
      j.remainder_after = raw - static_cast<double>(j.tokens);
      allocated += j.tokens;
    }
    // Largest-remainder repair: leftover -> +1 to the largest remainders;
    // excess -> -1 from the smallest remainders with tokens to give. Each
    // pass sorts once and walks the order, granting/taking at most one
    // token per job, so a window costs O(n log n) regardless of how many
    // tokens are off (the paper's O(n)-per-job claim holds: the mismatch
    // is bounded by the remainder pool, itself bounded by n).
    std::vector<JobAllocation*> order;
    order.reserve(result.jobs.size());
    for (auto& j : result.jobs) order.push_back(&j);
    while (allocated < target) {
      std::sort(order.begin(), order.end(),
                [](const auto* a, const auto* b) {
                  if (a->remainder_after != b->remainder_after)
                    return a->remainder_after > b->remainder_after;
                  return a->job < b->job;
                });
      for (auto* pick : order) {
        if (allocated >= target) break;
        pick->tokens += 1;
        pick->remainder_after -= 1.0;
        ++allocated;
      }
    }
    while (allocated > target) {
      std::sort(order.begin(), order.end(),
                [](const auto* a, const auto* b) {
                  if (a->remainder_after != b->remainder_after)
                    return a->remainder_after < b->remainder_after;
                  return a->job < b->job;
                });
      bool took_any = false;
      for (auto* pick : order) {
        if (allocated <= target) break;
        if (pick->tokens == 0) continue;
        pick->tokens -= 1;
        pick->remainder_after += 1.0;
        --allocated;
        took_any = true;
      }
      if (!took_any) break;  // nothing left to take
    }
  } else {
    for (auto& j : result.jobs) {
      j.tokens = static_cast<std::int64_t>(std::floor(
          j.after_recompensation + 1e-9));
      if (j.tokens < 0) j.tokens = 0;
      j.remainder_after = 0.0;
    }
  }

  // ---- Commit state and derive rates ----
  for (auto& j : result.jobs) {
    JobState& st = state_.at(j.job);
    // Record after the window: redistribution delta plus re-compensation
    // delta (eqs. 8, 16, 20).
    j.record_after = j.record_after_redistribution + j.reclaimed -
                     j.compensated;
    st.record = j.record_after;
    st.remainder = j.remainder_after;
    st.prev_alloc = static_cast<double>(j.tokens);
    j.rate = static_cast<double>(j.tokens) / dt_sec;
  }
  return result;
}

void TokenAllocator::collect_garbage(SimTime now) {
  for (auto it = state_.begin(); it != state_.end();) {
    if (now - it->second.last_active > config_.record_gc_horizon)
      it = state_.erase(it);
    else
      ++it;
  }
}

double TokenAllocator::record(JobId job) const {
  auto it = state_.find(job);
  return it == state_.end() ? 0.0 : it->second.record;
}

double TokenAllocator::remainder(JobId job) const {
  auto it = state_.find(job);
  return it == state_.end() ? 0.0 : it->second.remainder;
}

double TokenAllocator::estimated_demand(JobId job) const {
  auto it = state_.find(job);
  return it == state_.end() || it->second.demand_estimate < 0.0
             ? 0.0
             : it->second.demand_estimate;
}

}  // namespace adaptbf
